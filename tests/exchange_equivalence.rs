//! Equivalence suite for the split-phase and fused exchange paths.
//!
//! The split-phase engine (`gather_start`/`gather_finish`,
//! `scatter_append_start`/`scatter_append_finish`) and the fused multi-array paths
//! (`gather_multi`, `scatter_add_multi`) are *transport* optimisations: they must move
//! exactly the data the blocking single-array primitives move.  This suite pins that on
//! P = 1, 2 and 8 (single-rank degenerates to pure local delivery; 8 ranks leaves some
//! processor pairs silent — zero-count plan rows included):
//!
//! * ghost regions after a fused / split-phase gather are **byte-identical** to three
//!   blocking single-array gathers;
//! * owned sections after a fused scatter-add are byte-identical to three blocking
//!   `scatter_add`s;
//! * a split-phase append returns the identical item vector, in the identical order, as
//!   the blocking `scatter_append`;
//! * the `ExchangeStats` element totals (bytes each way) agree with the blocking path,
//!   while the fused message counts drop to one per pair.

use chaos_suite::chaos::prelude::*;
use chaos_suite::mpsim::{run, ExchangeStats, MachineConfig, Rank};

const MACHINE_SIZES: &[usize] = &[1, 2, 8];

/// Build a schedule over an irregular pattern that leaves some processor pairs silent
/// whenever P > 2 (rank r only references its own block and the block "ahead" of it),
/// so sparse plans carry genuine zero-count rows.
fn setup(rank: &mut Rank, n: usize) -> (CommSchedule, Vec<LocalRef>, std::ops::Range<usize>) {
    let nprocs = rank.nprocs();
    let me = rank.rank();
    let dist = BlockDist::new(n, nprocs);
    let ttable = TranslationTable::from_regular(&dist);
    let mut insp = Inspector::new(&ttable, me);
    let pattern: Vec<usize> = (0..n / 2)
        .map(|k| {
            let block = (me + k % 2) % nprocs;
            dist.local_range(block).start + (k * 5) % dist.local_size(block)
        })
        .collect();
    let refs = insp.hash_indices(rank, &pattern, Stamp::new(0));
    let sched = insp.build_schedule(rank, StampQuery::single(Stamp::new(0)));
    (sched, refs, dist.local_range(me))
}

/// Bit-level equality for f64 buffers ("byte-identical", not merely approximately equal).
fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: slot {i} differs ({x} vs {y})"
        );
    }
}

#[test]
fn fused_and_split_phase_gathers_match_blocking_byte_for_byte() {
    for &nprocs in MACHINE_SIZES {
        let out = run(MachineConfig::new(nprocs), move |rank| {
            let n = 64;
            let (sched, _refs, range) = setup(rank, n);
            let make = |scale: f64| -> [DistArray<f64>; 3] {
                [1.0, 0.25, -3.0].map(|lane| {
                    let owned: Vec<f64> =
                        range.clone().map(|g| (g as f64 + lane) * scale).collect();
                    DistArray::new(owned, sched.ghost_len())
                })
            };

            // Reference: three blocking single-array gathers.
            let [mut x1, mut y1, mut z1] = make(1.5);
            let single = gather(rank, &sched, &mut x1)
                .merged(&gather(rank, &sched, &mut y1))
                .merged(&gather(rank, &sched, &mut z1));

            // Fused: one gather_multi.
            let [mut x2, mut y2, mut z2] = make(1.5);
            let fused = gather_multi(rank, &sched, [&mut x2, &mut y2, &mut z2]);

            // Split-phase fused: start, compute, finish.
            let [mut x3, mut y3, mut z3] = make(1.5);
            let handle = gather_start(rank, &sched, [&x3, &y3, &z3]);
            rank.charge_compute(7.0);
            let split = gather_finish(rank, handle, &sched, [&mut x3, &mut y3, &mut z3]);

            for (a, b, c, name) in [
                (&x1, &x2, &x3, "x"),
                (&y1, &y2, &y3, "y"),
                (&z1, &z2, &z3, "z"),
            ] {
                assert_bits_eq(a.ghost(), b.ghost(), &format!("fused ghost {name}"));
                assert_bits_eq(a.ghost(), c.ghost(), &format!("split ghost {name}"));
            }
            (single, fused, split, sched.send_message_count())
        });
        for (p, (single, fused, split, sched_msgs)) in out.results.iter().enumerate() {
            assert_eq!(
                fused, split,
                "P={nprocs} rank {p}: fused and split-phase stats must agree"
            );
            assert_eq!(
                fused.bytes_sent, single.bytes_sent,
                "P={nprocs} rank {p}: fusion must not change the bytes moved"
            );
            assert_eq!(fused.bytes_received, single.bytes_received);
            assert_eq!(
                fused.msgs_sent as usize, *sched_msgs,
                "P={nprocs} rank {p}: one fused message per schedule destination"
            );
            assert_eq!(
                single.msgs_sent,
                3 * fused.msgs_sent,
                "P={nprocs} rank {p}: blocking path pays 3x the messages"
            );
            if nprocs == 1 {
                assert_eq!(single, &ExchangeStats::default(), "P=1 moves nothing");
            }
        }
    }
}

#[test]
fn fused_scatter_add_matches_blocking_byte_for_byte() {
    for &nprocs in MACHINE_SIZES {
        let out = run(MachineConfig::new(nprocs), move |rank| {
            let n = 48;
            let (sched, refs, range) = setup(rank, n);
            let me = rank.rank() as f64;
            let seed = |bias: f64| -> DistArray<f64> {
                let mut a = DistArray::new(vec![bias; range.len()], sched.ghost_len());
                // Accumulate irrational-ish contributions through every local reference
                // (ghost slots included) so the scatter folds real remote data back.
                for (k, &r) in refs.iter().enumerate() {
                    a[r] += (k as f64) * 0.3 + me * 0.7 + bias;
                }
                a
            };
            let [mut x1, mut y1, mut z1] = [seed(1.0), seed(2.0), seed(3.0)];
            let single = scatter_add(rank, &sched, &mut x1)
                .merged(&scatter_add(rank, &sched, &mut y1))
                .merged(&scatter_add(rank, &sched, &mut z1));
            let [mut x2, mut y2, mut z2] = [seed(1.0), seed(2.0), seed(3.0)];
            let fused = scatter_add_multi(rank, &sched, [&mut x2, &mut y2, &mut z2]);
            assert_bits_eq(x1.owned(), x2.owned(), "scatter_add x");
            assert_bits_eq(y1.owned(), y2.owned(), "scatter_add y");
            assert_bits_eq(z1.owned(), z2.owned(), "scatter_add z");
            (single, fused)
        });
        for (p, (single, fused)) in out.results.iter().enumerate() {
            assert_eq!(fused.bytes_sent, single.bytes_sent, "P={nprocs} rank {p}");
            assert_eq!(fused.bytes_received, single.bytes_received);
            assert_eq!(single.msgs_sent, 3 * fused.msgs_sent);
        }
    }
}

#[test]
fn split_phase_append_matches_blocking_order_and_totals() {
    for &nprocs in MACHINE_SIZES {
        let out = run(MachineConfig::new(nprocs), move |rank| {
            let me = rank.rank();
            // Destinations hit only "me" and the next rank, so P = 8 has zero-count rows
            // toward the other six; P = 1 keeps everything.
            let items: Vec<u64> = (0..20).map(|k| (1000 * me + k) as u64).collect();
            let dests: Vec<usize> = (0..20).map(|k| (me + k % 2) % nprocs).collect();
            let sched = LightweightSchedule::build(rank, &dests);

            let before = rank.stats();
            let blocking = scatter_append(rank, &sched, &items);
            let mid = rank.stats();
            let handle = scatter_append_start(rank, &sched, &items);
            rank.charge_compute(3.0); // survivors re-bin here in the DSMC MOVE phase
            let split = scatter_append_finish(rank, &sched, handle);
            let after = rank.stats();

            assert_eq!(blocking, split, "kept-first source-rank order preserved");
            (
                blocking.len(),
                mid.bytes_sent - before.bytes_sent,
                after.bytes_sent - mid.bytes_sent,
            )
        });
        let total: usize = out.results.iter().map(|r| r.0).sum();
        assert_eq!(total, nprocs * 20, "P={nprocs}: items conserved");
        for (p, (_, blocking_bytes, split_bytes)) in out.results.iter().enumerate() {
            assert_eq!(
                blocking_bytes, split_bytes,
                "P={nprocs} rank {p}: split-phase append moves identical bytes"
            );
        }
    }
}
