//! Message-count regression tests for the unified exchange engine: the engine must put
//! exactly the messages a schedule calls for on the wire — no empty messages, no
//! double-sends — and its per-execution [`ExchangeStats`] must agree with the machine's
//! own [`RankStats`] counters.

use chaos_suite::chaos::prelude::*;
use chaos_suite::mpsim::{run, CostModel, ExchangeStats, MachineConfig};

/// An 8-rank gather over an irregular access pattern: per-rank message counts through the
/// engine must equal `CommSchedule::send_message_count()`, exactly what the hand-rolled
/// pack/send/recv/unpack loops produced before the engine existed.
#[test]
fn gather_message_counts_match_the_schedule_on_8_ranks() {
    let n = 256;
    let nprocs = 8;
    let out = run(
        MachineConfig::new(nprocs).with_cost(CostModel::uniform(70.0, 0.36, 0.0)),
        move |rank| {
            let dist = BlockDist::new(n, rank.nprocs());
            let ttable = TranslationTable::from_regular(&dist);
            let mut insp = Inspector::new(&ttable, rank.rank());
            // An irregular pattern that leaves some processor pairs silent: each rank
            // only references its own block and the two blocks "ahead" of it.
            let me = rank.rank();
            let pattern: Vec<usize> = (0..96)
                .map(|k| {
                    let block = (me + k % 3) % nprocs;
                    dist.local_range(block).start + (k * 7) % dist.local_size(block)
                })
                .collect();
            insp.hash_indices(rank, &pattern, Stamp::new(0));
            let sched = insp.build_schedule(rank, StampQuery::single(Stamp::new(0)));

            let owned: Vec<f64> = dist.local_globals(me).map(|g| g as f64).collect();
            let mut x = DistArray::new(owned, sched.ghost_len());
            let before = rank.stats();
            let stats = gather(rank, &sched, &mut x);
            let after = rank.stats();
            (
                stats,
                after.msgs_sent - before.msgs_sent,
                after.bytes_sent - before.bytes_sent,
                after.msgs_received - before.msgs_received,
                sched.send_message_count(),
                sched.total_send(),
                sched.total_fetch(),
                sched.perm_lists.iter().filter(|l| !l.is_empty()).count(),
            )
        },
    );
    let mut machine_sent = 0u64;
    let mut machine_received = 0u64;
    for (
        p,
        (
            stats,
            rank_msgs,
            rank_bytes,
            rank_recvd,
            sched_msgs,
            total_send,
            total_fetch,
            fetch_peers,
        ),
    ) in out.results.iter().enumerate()
    {
        // ExchangeStats agree with the rank's own counters over the gather window.
        assert_eq!(stats.msgs_sent, *rank_msgs, "rank {p}: stats vs RankStats");
        assert_eq!(
            stats.bytes_sent, *rank_bytes,
            "rank {p}: bytes vs RankStats"
        );
        assert_eq!(stats.msgs_received, *rank_recvd, "rank {p}: recv counts");
        // One message per destination with a non-empty send list — never more (no
        // double-sends), never less, and nothing for the empty pairs.
        assert_eq!(
            stats.msgs_sent as usize, *sched_msgs,
            "rank {p}: engine must send exactly CommSchedule::send_message_count() messages"
        );
        assert_eq!(stats.msgs_received as usize, *fetch_peers, "rank {p}");
        // No empty messages: every message carries at least one 8-byte element, and the
        // byte total is exactly the element total.
        assert!(stats.msgs_sent == 0 || stats.bytes_sent >= 8 * stats.msgs_sent);
        assert_eq!(stats.bytes_sent as usize, total_send * 8, "rank {p}");
        assert_eq!(stats.bytes_received as usize, total_fetch * 8, "rank {p}");
        machine_sent += stats.msgs_sent;
        machine_received += stats.msgs_received;
    }
    // Conservation across the machine: every message sent is received exactly once.
    assert_eq!(machine_sent, machine_received);
    assert!(machine_sent > 0, "the pattern must actually communicate");
}

/// The sparse pattern above must not regress into dense all-to-all traffic: ranks that
/// share no data exchange no messages.
#[test]
fn silent_processor_pairs_stay_silent() {
    let nprocs = 8;
    let out = run(
        MachineConfig::new(nprocs).with_cost(CostModel::uniform(1.0, 1.0, 0.0)),
        move |rank| {
            // Ring pattern: each rank only references elements of the next rank.
            let n = 64;
            let dist = BlockDist::new(n, rank.nprocs());
            let ttable = TranslationTable::from_regular(&dist);
            let mut insp = Inspector::new(&ttable, rank.rank());
            let next = (rank.rank() + 1) % nprocs;
            let pattern: Vec<usize> = dist.local_globals(next).collect();
            insp.hash_indices(rank, &pattern, Stamp::new(0));
            let sched = insp.build_schedule(rank, StampQuery::single(Stamp::new(0)));
            let owned: Vec<f64> = dist.local_globals(rank.rank()).map(|g| g as f64).collect();
            let mut x = DistArray::new(owned, sched.ghost_len());

            gather(rank, &sched, &mut x)
        },
    );
    for (p, stats) in out.results.iter().enumerate() {
        assert_eq!(
            *stats,
            ExchangeStats {
                msgs_sent: 1,
                msgs_received: 1,
                bytes_sent: 8 * 8,
                bytes_received: 8 * 8,
            },
            "rank {p}: a ring gather is exactly one message each way"
        );
    }
}

/// scatter_append through the engine moves exactly one message per non-empty
/// (source, destination) pair, matching the light-weight schedule's own counts.
#[test]
fn scatter_append_message_counts_match_the_lightweight_schedule() {
    let nprocs = 8;
    let out = run(
        MachineConfig::new(nprocs).with_cost(CostModel::uniform(1.0, 1.0, 0.0)),
        move |rank| {
            let me = rank.rank();
            // Each rank keeps half its items and sends the rest to me+1 and me+2.
            let items: Vec<u64> = (0..12).map(|k| (100 * me + k) as u64).collect();
            let dests: Vec<usize> = (0..12)
                .map(|k| match k % 4 {
                    0 | 1 => me,
                    2 => (me + 1) % nprocs,
                    _ => (me + 2) % nprocs,
                })
                .collect();
            let sched = LightweightSchedule::build(rank, &dests);
            let before = rank.stats();
            let moved = scatter_append(rank, &sched, &items);
            let after = rank.stats();
            (
                after.msgs_sent - before.msgs_sent,
                moved.len(),
                sched.result_count(),
                sched.kept_count(),
            )
        },
    );
    for (p, (msgs, got, expected, kept)) in out.results.iter().enumerate() {
        assert_eq!(*msgs, 2, "rank {p}: one message per non-empty destination");
        assert_eq!(got, expected, "rank {p}");
        assert_eq!(*kept, 6, "rank {p}: kept items never touch the network");
    }
}
