//! Application-level integration tests: the CHARMM and DSMC mini-applications and the
//! Fortran-D executor, cross-checked against their sequential references and against each
//! other across machine sizes.

use chaos_suite::charmm::parallel::{ParallelConfig, PartitionerKind, ScheduleMode};
use chaos_suite::charmm::system::{MolecularSystem, SystemConfig};
use chaos_suite::charmm::{ParallelCharmm, SequentialCharmm};
use chaos_suite::dsmc::{
    parallel::run_parallel as dsmc_parallel, seed_particles, CellGrid, DsmcConfig, FlowConfig,
    MoveMode, RemapStrategy, SequentialDsmc,
};
use chaos_suite::fortrand::{compile, Executor};
use chaos_suite::mpsim::{run, MachineConfig};

#[test]
fn charmm_trajectory_is_independent_of_the_machine_size() {
    let sys_cfg = SystemConfig::small(77);
    let natoms = sys_cfg.total_atoms();
    let nsteps = 6;
    let update = 3;

    let mut reference = SequentialCharmm::new(MolecularSystem::build(&sys_cfg), update);
    reference.run(nsteps);

    for &nprocs in &[1usize, 2, 5, 8] {
        let cfg = sys_cfg.clone();
        let config = ParallelConfig {
            nsteps,
            list_update_interval: update,
            partitioner: PartitionerKind::Rcb,
            schedule_mode: ScheduleMode::Merged,
            repartition_interval: None,
            adapt_policy: None,
            monitor_group: None,
        };
        let out = run(MachineConfig::new(nprocs), move |rank| {
            let system = MolecularSystem::build(&cfg);
            ParallelCharmm::run(rank, &system, &config).owned_positions
        });
        let mut covered = vec![false; natoms];
        for per_rank in &out.results {
            for &(g, p) in per_rank {
                assert!(!covered[g], "atom {g} owned twice at nprocs={nprocs}");
                covered[g] = true;
                for (k, pk) in p.iter().enumerate() {
                    let dev = (pk - reference.system.positions[g][k]).abs();
                    assert!(dev < 1e-6, "nprocs={nprocs}, atom {g}: deviation {dev}");
                }
            }
        }
        assert!(
            covered.into_iter().all(|c| c),
            "some atom unowned at nprocs={nprocs}"
        );
    }
}

#[test]
fn dsmc_simulation_is_identical_across_move_modes_and_machine_sizes() {
    let grid = CellGrid::new_2d(10, 6);
    let flow = FlowConfig::directional(31);
    let nparticles = 700;
    let nsteps = 10;

    let particles = seed_particles(&grid, nparticles, &flow);
    let mut reference = SequentialDsmc::new(grid, particles, 0.4, 31);
    reference.run(nsteps);
    let mut expected = reference.fingerprint();
    expected.sort_unstable();

    for &nprocs in &[1usize, 2, 4, 6] {
        for mode in [MoveMode::Lightweight, MoveMode::Regular] {
            let config = DsmcConfig {
                nsteps,
                dt: 0.4,
                move_mode: mode,
                remap: RemapStrategy::Chain,
                remap_interval: 4,
                policy: None,
                monitor_group: None,
                seed: 31,
            };
            let out = run(MachineConfig::new(nprocs), move |rank| {
                let particles = seed_particles(&grid, nparticles, &flow);
                dsmc_parallel(rank, &grid, &particles, &config)
            });
            let mut merged: Vec<(usize, Vec<u64>)> = out
                .results
                .iter()
                .flat_map(|s| s.fingerprint.clone())
                .collect();
            merged.sort_unstable();
            assert_eq!(
                merged, expected,
                "nprocs={nprocs}, mode={mode:?}: parallel DSMC diverged from sequential"
            );
        }
    }
}

#[test]
fn compiled_figure10_template_matches_the_hand_written_kernel_numerically() {
    // The Table 6 fairness check: the compiler-generated (interpreted) Fortran-D loop and
    // a hand-written CHAOS kernel compute identical dx/dy displacement sums.
    let cfg = SystemConfig {
        protein_atoms: 40,
        water_molecules: 40,
        box_size: 12.0,
        cutoff: 4.0,
        seed: 5,
    };
    let system = MolecularSystem::build(&cfg);
    let natoms = system.natoms();
    let list = chaos_suite::charmm::nonbonded::build_neighbor_list(
        &system.positions,
        system.box_size,
        system.cutoff,
    );
    let inblo: Vec<i64> = list.offsets.iter().map(|&o| o as i64 + 1).collect();
    let jnb: Vec<i64> = list.partners.iter().map(|&p| p as i64 + 1).collect();

    // Sequential reference of the Figure 10 body.
    let x0: Vec<f64> = system.positions.iter().map(|p| p[0]).collect();
    let y0: Vec<f64> = system.positions.iter().map(|p| p[1]).collect();
    let mut dx_ref = vec![0.0f64; natoms];
    let mut dy_ref = vec![0.0f64; natoms];
    for i in 0..natoms {
        for j in (inblo[i] - 1)..(inblo[i + 1] - 1) {
            let p = (jnb[j as usize] - 1) as usize;
            dx_ref[p] += x0[p] - x0[i];
            dy_ref[p] += y0[p] - y0[i];
            dx_ref[i] += x0[i] - x0[p];
            dy_ref[i] += y0[i] - y0[p];
        }
    }

    let source = chaos_bench_source(natoms, jnb.len());
    let out = run(MachineConfig::new(4), move |rank| {
        let lowered = compile(&source).unwrap();
        let mut exec = Executor::new(rank, &lowered);
        exec.set_integer_array("INBLO", &inblo);
        exec.set_integer_array("JNB", &jnb);
        exec.set_integer_array(
            "MAP",
            &(0..natoms).map(|g| (g % 4) as i64).collect::<Vec<_>>(),
        );
        exec.set_real_array(
            "X",
            &system.positions.iter().map(|p| p[0]).collect::<Vec<_>>(),
        );
        exec.set_real_array(
            "Y",
            &system.positions.iter().map(|p| p[1]).collect::<Vec<_>>(),
        );
        exec.set_real_array("DX", &vec![0.0; natoms]);
        exec.set_real_array("DY", &vec![0.0; natoms]);
        exec.run_all(rank);
        (
            exec.get_real_array(rank, "DX"),
            exec.get_real_array(rank, "DY"),
        )
    });
    for (dx, dy) in &out.results {
        for g in 0..natoms {
            assert!((dx[g] - dx_ref[g]).abs() < 1e-9, "dx[{g}]");
            assert!((dy[g] - dy_ref[g]).abs() < 1e-9, "dy[{g}]");
        }
    }
}

/// The Figure 10 Fortran-D template used by the test above (kept in sync with the one the
/// benchmark harness generates).
fn chaos_bench_source(natoms: usize, list_len: usize) -> String {
    format!(
        "REAL x({n}), y({n}), dx({n}), dy({n})\n\
         INTEGER map({n}), inblo({m}), jnb({k})\n\
         C$ DECOMPOSITION reg({n})\n\
         C$ DISTRIBUTE reg(BLOCK)\n\
         C$ ALIGN x, y, dx, dy WITH reg\n\
         C$ DISTRIBUTE reg(map)\n\
         FORALL i = 1, {n}\n\
         FORALL j = inblo(i), inblo(i+1) - 1\n\
         REDUCE(SUM, dx(jnb(j)), x(jnb(j)) - x(i))\n\
         REDUCE(SUM, dy(jnb(j)), y(jnb(j)) - y(i))\n\
         REDUCE(SUM, dx(i), x(i) - x(jnb(j)))\n\
         REDUCE(SUM, dy(i), y(i) - y(jnb(j)))\n\
         END FORALL\n\
         END FORALL\n",
        n = natoms,
        m = natoms + 1,
        k = list_len
    )
}
