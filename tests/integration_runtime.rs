//! Cross-crate integration tests: the CHAOS runtime driving full irregular-loop scenarios
//! end to end on the simulated machine, checked against sequential references.

use chaos_suite::chaos::prelude::*;
use chaos_suite::mpsim::{run, MachineConfig};

/// The Figure 1 loop (x(ia(i)) += y(ib(i))) evaluated over several machine sizes and an
/// adapting indirection array, with schedule regeneration between phases.
#[test]
fn figure1_loop_with_adaptation_matches_sequential() {
    let n = 240;
    for &nprocs in &[1usize, 3, 7, 16] {
        let ia0: Vec<usize> = (0..n).map(|i| (i * 7 + 1) % n).collect();
        let ib: Vec<usize> = (0..n).map(|i| (i * 11 + 5) % n).collect();
        // The access pattern adapts after the first phase, as in an adaptive application.
        let ia1: Vec<usize> = ia0.iter().map(|&v| (v + 3) % n).collect();

        // Sequential reference: two phases with different patterns.
        let mut x_seq = vec![0.5f64; n];
        let y_seq: Vec<f64> = (0..n).map(|g| (g as f64).cos()).collect();
        for i in 0..n {
            x_seq[ia0[i]] += y_seq[ib[i]];
        }
        for i in 0..n {
            x_seq[ia1[i]] += y_seq[ib[i]] * 2.0;
        }

        let (ia0c, ia1c, ibc) = (ia0.clone(), ia1.clone(), ib.clone());
        let out = run(MachineConfig::new(nprocs), move |rank| {
            let dist = BlockDist::new(n, rank.nprocs());
            let ttable = TranslationTable::from_regular(&dist);
            let my_iters: Vec<usize> = dist.local_globals(rank.rank()).collect();
            let mut insp = Inspector::new(&ttable, rank.rank());
            let s_ia = Stamp::new(0);
            let s_ib = Stamp::new(1);

            let my_ib: Vec<usize> = my_iters.iter().map(|&i| ibc[i]).collect();
            let refs_ib = insp.hash_indices(rank, &my_ib, s_ib);

            let owned = dist.local_size(rank.rank());
            let mut x = DistArray::new(vec![0.5f64; owned], 0);
            let mut y = DistArray::new(
                dist.local_globals(rank.rank())
                    .map(|g| (g as f64).cos())
                    .collect(),
                0,
            );

            // Phase 1 with ia0.
            let my_ia: Vec<usize> = my_iters.iter().map(|&i| ia0c[i]).collect();
            let refs_ia = insp.hash_indices(rank, &my_ia, s_ia);
            let sched = insp.build_schedule(rank, StampQuery::any_of(&[s_ia, s_ib]));
            x.ensure_ghost(sched.ghost_len());
            y.ensure_ghost(sched.ghost_len());
            gather(rank, &sched, &mut y);
            for (ra, rb) in refs_ia.iter().zip(&refs_ib) {
                let v = y[*rb];
                x[*ra] += v;
            }
            scatter_add(rank, &sched, &mut x);
            x.clear_ghost();

            // The pattern adapts: clear the stamp, re-hash, rebuild the schedule.
            insp.clear_stamp(s_ia);
            let my_ia: Vec<usize> = my_iters.iter().map(|&i| ia1c[i]).collect();
            let refs_ia = insp.hash_indices(rank, &my_ia, s_ia);
            let sched = insp.build_schedule(rank, StampQuery::any_of(&[s_ia, s_ib]));
            x.ensure_ghost(sched.ghost_len());
            y.ensure_ghost(sched.ghost_len());
            gather(rank, &sched, &mut y);
            for (ra, rb) in refs_ia.iter().zip(&refs_ib) {
                let v = y[*rb] * 2.0;
                x[*ra] += v;
            }
            scatter_add(rank, &sched, &mut x);

            (
                dist.local_globals(rank.rank()).collect::<Vec<_>>(),
                x.owned().to_vec(),
            )
        });

        let mut x_par = vec![0.0f64; n];
        for (globals, values) in &out.results {
            for (g, v) in globals.iter().zip(values) {
                x_par[*g] = *v;
            }
        }
        for (a, b) in x_par.iter().zip(&x_seq) {
            assert!((a - b).abs() < 1e-9, "nprocs={nprocs}: {a} vs {b}");
        }
    }
}

/// Full phase-A-to-F pipeline with an irregular distribution produced by RCB, remapping,
/// and a distributed (non-replicated) translation table used for the remap lookups.
#[test]
fn partition_remap_execute_pipeline() {
    let n = 300;
    let nprocs = 6;
    let out = run(MachineConfig::new(nprocs), move |rank| {
        // Element coordinates on a ring, weights increasing with the index.
        let block = BlockDist::new(n, rank.nprocs());
        let my_block: Vec<usize> = block.local_globals(rank.rank()).collect();
        let coords: Vec<[f64; 3]> = my_block
            .iter()
            .map(|&g| {
                let t = g as f64 / n as f64 * std::f64::consts::TAU;
                [t.cos(), t.sin(), 0.0]
            })
            .collect();
        let weights: Vec<f64> = my_block.iter().map(|&g| 1.0 + (g % 5) as f64).collect();
        let parts = rcb_partition(rank, PartitionInput::new(&coords, &weights), rank.nprocs());

        // Build a *distributed* translation table from the new map and remap the data.
        let mut table = TranslationTable::distributed_from_map(rank, &parts, &block).unwrap();
        let values: Vec<f64> = my_block.iter().map(|&g| g as f64 * 1.5).collect();
        let plan = build_remap(rank, &my_block, &mut table);
        let new_values = remap_values(rank, &plan, &values, f64::NAN);
        let owned_globals = table.owned_globals(rank);
        assert_eq!(new_values.len(), owned_globals.len());
        // Every remapped value must still equal 1.5 * its global index.
        let consistent = owned_globals
            .iter()
            .zip(&new_values)
            .all(|(&g, &v)| (v - g as f64 * 1.5).abs() < 1e-12);
        (consistent, owned_globals.len())
    });
    let mut total = 0;
    for (consistent, owned) in &out.results {
        assert!(consistent);
        total += owned;
    }
    assert_eq!(total, n, "every element must end up owned exactly once");
}

/// Incremental schedules only move the data earlier schedules did not already bring in,
/// and the combination covers exactly the union (Figure 6's sched_A / inc_schedB).
#[test]
fn incremental_schedules_cover_the_union_without_duplication() {
    let n = 64;
    let out = run(MachineConfig::new(4), move |rank| {
        let dist = BlockDist::new(n, rank.nprocs());
        let ttable = TranslationTable::from_regular(&dist);
        let mut insp = Inspector::new(&ttable, rank.rank());
        let sa = Stamp::new(0);
        let sb = Stamp::new(1);
        let me = rank.rank();
        let a: Vec<usize> = (0..24).map(|k| (me * 16 + k * 3) % n).collect();
        let b: Vec<usize> = (0..24).map(|k| (me * 16 + k * 3 + 1) % n).collect();
        insp.hash_indices(rank, &a, sa);
        let sched_a = insp.build_schedule(rank, StampQuery::single(sa));
        insp.hash_indices(rank, &b, sb);
        let inc_b = insp.build_schedule(rank, StampQuery::minus(&[sb], &[sa]));
        let merged = insp.build_schedule(rank, StampQuery::any_of(&[sa, sb]));
        (
            sched_a.total_fetch(),
            inc_b.total_fetch(),
            merged.total_fetch(),
        )
    });
    for (a_fetch, inc_fetch, merged_fetch) in &out.results {
        assert_eq!(a_fetch + inc_fetch, *merged_fetch);
    }
}

/// Translation-table storage modes agree with each other under the same query load.
#[test]
fn translation_table_storage_modes_agree() {
    let n = 200;
    let nprocs = 5;
    let out = run(MachineConfig::new(nprocs), move |rank| {
        let map_dist = BlockDist::new(n, rank.nprocs());
        let local_map: Vec<usize> = map_dist
            .local_globals(rank.rank())
            .map(|g| (g * 13 + 7) % rank.nprocs())
            .collect();
        let rep = TranslationTable::replicated_from_map(rank, &local_map, &map_dist).unwrap();
        let mut dis = TranslationTable::distributed_from_map(rank, &local_map, &map_dist).unwrap();
        let mut paged = TranslationTable::paged_from_map(rank, &local_map, &map_dist, 16).unwrap();
        let queries: Vec<usize> = (0..n).filter(|g| (g + rank.rank()) % 3 == 0).collect();
        let from_rep: Vec<Loc> = queries
            .iter()
            .map(|&g| {
                rep.lookup_local(g)
                    .expect("replicated table answers locally")
            })
            .collect();
        let from_dis = dis.lookup(rank, &queries);
        let from_paged = paged.lookup(rank, &queries);
        (from_rep == from_dis, from_rep == from_paged)
    });
    for &(a, b) in &out.results {
        assert!(a && b);
    }
}
