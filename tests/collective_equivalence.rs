//! Equivalence suite for the log-depth collectives and hierarchical monitoring.
//!
//! The tree collectives (dissemination gathers, binomial broadcast, combining-butterfly
//! reductions) and the group-leader monitoring topology are *transport* optimisations:
//! they must deliver the same answers as a flat implementation.  This suite pins that at
//! power-of-two and awkward machine sizes — P = 1, 3, 5, 12 and 48 — so every schedule
//! role (butterfly extras, partial dissemination rounds, uneven leader groups) is
//! exercised:
//!
//! * gathers and broadcast are **byte-identical** to the flat reference (contributions
//!   indexed by source, in rank order);
//! * reductions with exact combiners (max, min, integer sums, integer-valued float
//!   sums) are byte-identical to a flat rank-order fold;
//! * inexact float sums are byte-identical *machine-wide* — every rank holds the same
//!   bits, the property the replicated remap controllers depend on — and agree with the
//!   flat fold to relative 1e-12;
//! * a hierarchically-monitored [`RemapController`] makes the identical remap decisions,
//!   on the identical steps, as flat monitoring over a drifting load.

use chaos_suite::chaos::adapt::{MonitorTopology, RemapController, RemapPolicy};
use chaos_suite::mpsim::{run, GroupMap, MachineConfig};

/// Non-power-of-two heavy: 1 (degenerate), 3 and 5 (butterfly extras), 12 (extras plus
/// multi-round dissemination tails), 48 (an uneven 7-group leader hierarchy).
const MACHINE_SIZES: &[usize] = &[1, 3, 5, 12, 48];

#[test]
fn gathers_and_broadcast_match_the_flat_reference_byte_for_byte() {
    for &nprocs in MACHINE_SIZES {
        let out = run(MachineConfig::new(nprocs), |rank| {
            let me = rank.rank();
            // A value whose bits vary irregularly with the rank.
            let one = rank.all_gather_one((me as f64 + 0.1) * 0.3);
            let slices = rank.all_gather(&vec![(me * me) as u32; me % 4]);
            let bcast = rank.broadcast(rank.nprocs() - 1, &[0.1f64, 0.2, 0.3]);
            (one, slices, bcast)
        });
        let expect_one: Vec<u64> = (0..nprocs)
            .map(|r| ((r as f64 + 0.1) * 0.3).to_bits())
            .collect();
        let expect_slices: Vec<Vec<u32>> =
            (0..nprocs).map(|r| vec![(r * r) as u32; r % 4]).collect();
        for (p, (one, slices, bcast)) in out.results.iter().enumerate() {
            let got: Vec<u64> = one.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, expect_one, "P={nprocs} rank {p}: all_gather_one");
            assert_eq!(slices, &expect_slices, "P={nprocs} rank {p}: all_gather");
            assert_eq!(bcast, &[0.1, 0.2, 0.3], "P={nprocs} rank {p}: broadcast");
        }
    }
}

#[test]
fn exact_reductions_match_a_flat_rank_order_fold_byte_for_byte() {
    for &nprocs in MACHINE_SIZES {
        let out = run(MachineConfig::new(nprocs), |rank| {
            let me = rank.rank();
            // Integer-valued f64 sums are exact in any association; max/min pick one of
            // the (distinct) inputs.  For all of these the butterfly must reproduce the
            // flat fold bit-for-bit.
            let sum = rank.all_reduce_sum((me * 3 + 1) as f64);
            let max = rank.all_reduce_max((me as f64 - 2.5) * 1.7);
            let min = rank.all_reduce_min((me as f64 - 2.5) * 1.7);
            let usum = rank.all_reduce_sum_usize(me * me + 7);
            (sum, max, min, usum)
        });
        let flat_sum: f64 = (0..nprocs).map(|r| (r * 3 + 1) as f64).sum();
        let flat_max = (0..nprocs)
            .map(|r| (r as f64 - 2.5) * 1.7)
            .fold(f64::NEG_INFINITY, f64::max);
        let flat_min = (0..nprocs)
            .map(|r| (r as f64 - 2.5) * 1.7)
            .fold(f64::INFINITY, f64::min);
        let flat_usum: usize = (0..nprocs).map(|r| r * r + 7).sum();
        for (p, (sum, max, min, usum)) in out.results.iter().enumerate() {
            assert_eq!(
                sum.to_bits(),
                flat_sum.to_bits(),
                "P={nprocs} rank {p}: sum"
            );
            assert_eq!(
                max.to_bits(),
                flat_max.to_bits(),
                "P={nprocs} rank {p}: max"
            );
            assert_eq!(
                min.to_bits(),
                flat_min.to_bits(),
                "P={nprocs} rank {p}: min"
            );
            assert_eq!(usum, &flat_usum, "P={nprocs} rank {p}: usize sum");
        }
    }
}

#[test]
fn inexact_sums_are_byte_identical_machine_wide() {
    for &nprocs in MACHINE_SIZES {
        let out = run(MachineConfig::new(nprocs), |rank| {
            // Deliberately inexact contributions: the butterfly's fixed bracketing may
            // differ from the flat fold in the last ulps, but never across ranks.
            rank.all_reduce_sum(0.1 * (rank.rank() as f64 + 1.0))
        });
        let first = out.results[0];
        for (p, v) in out.results.iter().enumerate() {
            assert_eq!(
                v.to_bits(),
                first.to_bits(),
                "P={nprocs} rank {p}: replicated sum diverged"
            );
        }
        let flat: f64 = (0..nprocs).map(|r| 0.1 * (r as f64 + 1.0)).sum();
        assert!(
            (first - flat).abs() <= 1e-12 * flat.abs(),
            "P={nprocs}: butterfly sum {first} strayed from flat fold {flat}"
        );
    }
}

/// Drive one controller per rank over a drifting synthetic load and record, per step,
/// whether it fired a remap.  Returns each rank's (fired-steps, remap-count).
fn drifting_decisions(
    nprocs: usize,
    topology: MonitorTopology,
    nsteps: usize,
) -> Vec<(Vec<usize>, usize)> {
    let out = run(MachineConfig::new(nprocs), move |rank| {
        let me = rank.rank();
        let policy = RemapPolicy::Threshold {
            lb_index: 1.25,
            hysteresis: 0.02,
            patience: 3,
        };
        let mut ctrl = RemapController::new(policy).with_topology(topology);
        let mut fired = Vec::new();
        for step in 0..nsteps {
            // Rank-dependent drift: imbalance grows with the step until a remap
            // "fixes" it (the synthetic load resets through steps_since_remap).
            let drift = ctrl.steps_since_remap().min(step) as f64;
            let local = 100.0 + drift * 6.0 * (me as f64 / nprocs.max(1) as f64);
            let decision = ctrl.observe_sample(rank, local);
            if decision.remap {
                fired.push(step);
                ctrl.note_external_remap();
            }
        }
        (fired, ctrl.remap_count())
    });
    out.results
}

#[test]
fn hierarchical_monitoring_reaches_the_flat_decisions() {
    for &nprocs in &[3usize, 5, 12, 48] {
        let flat = drifting_decisions(nprocs, MonitorTopology::Flat, 20);
        // Every rank of the flat run must agree with rank 0 (replicated controllers).
        for (p, r) in flat.iter().enumerate() {
            assert_eq!(r, &flat[0], "P={nprocs} flat rank {p} diverged");
        }
        assert!(
            !flat[0].0.is_empty(),
            "P={nprocs}: drift never fired a remap — the scenario is vacuous"
        );
        for group in [1usize, 2, GroupMap::square(nprocs).group_size(), nprocs] {
            let hier = drifting_decisions(nprocs, MonitorTopology::Hierarchical { group }, 20);
            for (p, r) in hier.iter().enumerate() {
                assert_eq!(
                    r, &flat[0],
                    "P={nprocs} group={group} rank {p}: hierarchical decisions diverged"
                );
            }
        }
    }
}
