//! Integration tests of the schedule-reuse machinery behind Table 3 of the paper:
//! merged schedules (`CommSchedule::merged_with`), incremental schedules
//! (`StampQuery::minus`), and stamp clearing followed by re-hashing.

use chaos_suite::chaos::prelude::*;
use chaos_suite::mpsim::{run, CostModel, MachineConfig};

/// Merging two schedules built from the same hash table must preserve ghost-slot
/// disjointness: the merged gather fills each array's ghost region exactly as the two
/// separate gathers would, with common fetches deduplicated.
#[test]
fn merged_schedule_gathers_once_for_both_patterns() {
    let n = 32;
    let nprocs = 4;
    let out = run(MachineConfig::new(nprocs), move |rank| {
        let dist = BlockDist::new(n, rank.nprocs());
        let ttable = TranslationTable::from_regular(&dist);
        let mut insp = Inspector::new(&ttable, rank.rank());
        let sa = Stamp::new(0);
        let sb = Stamp::new(1);
        // Two overlapping indirection arrays: both reference the "next block", b also
        // reaches one block further.
        let start = dist.local_range(rank.rank()).end;
        let a: Vec<usize> = (0..8).map(|k| (start + k) % n).collect();
        let b: Vec<usize> = (0..8).map(|k| (start + 4 + k) % n).collect();
        let ra = insp.hash_indices(rank, &a, sa);
        let rb = insp.hash_indices(rank, &b, sb);
        let sched_a = insp.build_schedule(rank, StampQuery::single(sa));
        let sched_b = insp.build_schedule(rank, StampQuery::single(sb));
        let merged = sched_a.merged_with(&sched_b);
        let by_query = insp.build_schedule(rank, StampQuery::any_of(&[sa, sb]));

        // The merged schedule must fetch each distinct element once: a and b overlap in
        // 4 elements, so the union is 12 (all off-processor here).
        let owned: Vec<f64> = dist
            .local_globals(rank.rank())
            .map(|g| g as f64 * 3.0)
            .collect();
        let mut x = DistArray::new(owned, merged.ghost_len());
        gather(rank, &merged, &mut x);
        let got_a: Vec<f64> = ra.iter().map(|&r| x[r]).collect();
        let got_b: Vec<f64> = rb.iter().map(|&r| x[r]).collect();
        (
            merged.total_fetch(),
            by_query.total_fetch(),
            got_a,
            got_b,
            a,
            b,
        )
    });
    for (merged_fetch, query_fetch, got_a, got_b, a, b) in &out.results {
        assert_eq!(*merged_fetch, 12, "common fetches must be deduplicated");
        assert_eq!(
            merged_fetch, query_fetch,
            "merging schedules and building from a merged stamp query must agree"
        );
        for (g, v) in a.iter().zip(got_a) {
            assert_eq!(*v, *g as f64 * 3.0);
        }
        for (g, v) in b.iter().zip(got_b) {
            assert_eq!(*v, *g as f64 * 3.0);
        }
    }
}

/// Ghost offsets of two schedules built from one hash table are drawn from the same slot
/// space, so merging never aliases two different elements onto one ghost slot.
#[test]
fn merged_schedules_keep_ghost_offsets_disjoint() {
    let n = 40;
    let out = run(MachineConfig::new(4), move |rank| {
        let dist = BlockDist::new(n, rank.nprocs());
        let ttable = TranslationTable::from_regular(&dist);
        let mut insp = Inspector::new(&ttable, rank.rank());
        let sa = Stamp::new(0);
        let sb = Stamp::new(1);
        let start = dist.local_range(rank.rank()).end;
        let a: Vec<usize> = (0..6).map(|k| (start + 2 * k) % n).collect();
        let b: Vec<usize> = (0..6).map(|k| (start + 2 * k + 1) % n).collect();
        insp.hash_indices(rank, &a, sa);
        insp.hash_indices(rank, &b, sb);
        let sched_a = insp.build_schedule(rank, StampQuery::single(sa));
        let sched_b = insp.build_schedule(rank, StampQuery::single(sb));
        let merged = sched_a.merged_with(&sched_b);
        // a and b are disjoint index sets, so each of the 12 fetched elements must have
        // its own ghost slot in the merged permutation lists.
        let mut slots: Vec<u32> = merged.perm_lists.iter().flatten().copied().collect();
        slots.sort_unstable();
        let before = slots.len();
        slots.dedup();
        (before, slots.len(), merged.ghost_len())
    });
    for (before, after, ghost_len) in &out.results {
        assert_eq!(*before, 12);
        assert_eq!(before, after, "merged ghost slots must stay disjoint");
        assert!(
            *ghost_len >= *after,
            "every slot must fit in the ghost region"
        );
    }
}

/// `merged_with` when the two schedules receive from **disjoint** peer sets: A fetches
/// only from the next rank, B only from the rank after.  The merged schedule must carry
/// both receive sides untouched — per-peer fetch sizes are exactly the union — and a
/// single merged gather must fill both ghost patterns.
#[test]
fn merging_disjoint_recv_sets_concatenates_per_peer_lists() {
    let n = 50;
    let nprocs = 5;
    let out = run(MachineConfig::new(nprocs), move |rank| {
        let dist = BlockDist::new(n, rank.nprocs());
        let ttable = TranslationTable::from_regular(&dist);
        let mut insp = Inspector::new(&ttable, rank.rank());
        let (sa, sb) = (Stamp::new(0), Stamp::new(1));
        let p = rank.nprocs();
        let next = (rank.rank() + 1) % p;
        let after = (rank.rank() + 2) % p;
        // a references only `next`'s block, b only `after`'s block.
        let a: Vec<usize> = dist.local_range(next).take(3).collect();
        let b: Vec<usize> = dist.local_range(after).take(4).collect();
        let ra = insp.hash_indices(rank, &a, sa);
        let rb = insp.hash_indices(rank, &b, sb);
        let sched_a = insp.build_schedule(rank, StampQuery::single(sa));
        let sched_b = insp.build_schedule(rank, StampQuery::single(sb));
        let merged = sched_a.merged_with(&sched_b);

        let fetch_next = merged.fetch_size(next);
        let fetch_after = merged.fetch_size(after);
        let owned: Vec<f64> = dist
            .local_globals(rank.rank())
            .map(|g| g as f64 - 1.5)
            .collect();
        let mut x = DistArray::new(owned, merged.ghost_len());
        gather(rank, &merged, &mut x);
        let got: Vec<f64> = ra.iter().chain(&rb).map(|&r| x[r]).collect();
        let want: Vec<f64> = a.iter().chain(&b).map(|&g| g as f64 - 1.5).collect();
        (
            sched_a.total_fetch(),
            sched_b.total_fetch(),
            merged.total_fetch(),
            fetch_next,
            fetch_after,
            got,
            want,
        )
    });
    for (fa, fb, fm, fetch_next, fetch_after, got, want) in &out.results {
        assert_eq!(*fa, 3);
        assert_eq!(*fb, 4);
        assert_eq!(
            *fm,
            fa + fb,
            "disjoint recv sets must merge without deduplication"
        );
        assert_eq!(*fetch_next, 3, "A's peer must keep exactly A's fetch list");
        assert_eq!(*fetch_after, 4, "B's peer must keep exactly B's fetch list");
        assert_eq!(got, want, "merged gather must fill both ghost patterns");
    }
}

/// `merged_with` when the two recv sets **overlap** on one peer: both schedules fetch
/// from `next` (sharing two elements) and only B fetches from `after`.  The shared peer's
/// fetch list must be deduplicated; the disjoint peer's must pass through unchanged; and
/// the merge must agree with building from the merged stamp query directly.
#[test]
fn merging_overlapping_recv_sets_deduplicates_only_the_shared_peer() {
    let n = 50;
    let nprocs = 5;
    let out = run(MachineConfig::new(nprocs), move |rank| {
        let dist = BlockDist::new(n, rank.nprocs());
        let ttable = TranslationTable::from_regular(&dist);
        let mut insp = Inspector::new(&ttable, rank.rank());
        let (sa, sb) = (Stamp::new(0), Stamp::new(1));
        let p = rank.nprocs();
        let next = (rank.rank() + 1) % p;
        let after = (rank.rank() + 2) % p;
        // a: 4 elements of `next`'s block.  b: the last 2 of those plus 3 of `after`'s.
        let a: Vec<usize> = dist.local_range(next).take(4).collect();
        let b: Vec<usize> = dist
            .local_range(next)
            .skip(2)
            .take(2)
            .chain(dist.local_range(after).take(3))
            .collect();
        let ra = insp.hash_indices(rank, &a, sa);
        let rb = insp.hash_indices(rank, &b, sb);
        let sched_a = insp.build_schedule(rank, StampQuery::single(sa));
        let sched_b = insp.build_schedule(rank, StampQuery::single(sb));
        let merged = sched_a.merged_with(&sched_b);
        let by_query = insp.build_schedule(rank, StampQuery::any_of(&[sa, sb]));

        let owned: Vec<f64> = dist
            .local_globals(rank.rank())
            .map(|g| g as f64 * 0.25)
            .collect();
        let mut x = DistArray::new(owned, merged.ghost_len());
        gather(rank, &merged, &mut x);
        let got: Vec<f64> = ra.iter().chain(&rb).map(|&r| x[r]).collect();
        let want: Vec<f64> = a.iter().chain(&b).map(|&g| g as f64 * 0.25).collect();
        (
            merged == by_query,
            merged.fetch_size(next),
            merged.fetch_size(after),
            merged.total_fetch(),
            got,
            want,
        )
    });
    for (same_as_query, fetch_next, fetch_after, total, got, want) in &out.results {
        assert!(
            *same_as_query,
            "merging schedules and building from the merged query must agree"
        );
        assert_eq!(*fetch_next, 4, "the shared peer's overlap must deduplicate");
        assert_eq!(
            *fetch_after, 3,
            "the disjoint peer must pass through unchanged"
        );
        assert_eq!(*total, 7);
        assert_eq!(
            got, want,
            "merged gather must serve both reference patterns"
        );
    }
}

/// The incremental-schedule pattern of Figure 6: after an indirection array adapts, clear
/// its stamp, re-hash, and gather only the `new minus old` elements on top of data the old
/// schedule already brought in.
#[test]
fn incremental_schedule_after_clear_stamp_completes_the_ghost_region() {
    let n = 24;
    let out = run(
        MachineConfig::new(3).with_cost(CostModel::uniform(100.0, 1.0, 0.0)),
        move |rank| {
            let dist = BlockDist::new(n, rank.nprocs());
            let ttable = TranslationTable::from_regular(&dist);
            let mut insp = Inspector::new(&ttable, rank.rank());
            let s_old = Stamp::new(0);
            let s_new = Stamp::new(1);
            let start = dist.local_range(rank.rank()).end;
            // The "old" pattern references 4 off-processor elements.
            let old: Vec<usize> = (0..4).map(|k| (start + k) % n).collect();
            insp.hash_indices(rank, &old, s_old);
            let sched_old = insp.build_schedule(rank, StampQuery::single(s_old));

            // The array adapts: two entries change, two stay.
            let adapted: Vec<usize> = vec![old[0], old[1], (start + 6) % n, (start + 7) % n];
            insp.clear_stamp(s_new); // no-op, symmetry with repeated timesteps
            let refs = insp.hash_indices(rank, &adapted, s_new);
            let sched_inc = insp.build_schedule(rank, StampQuery::minus(&[s_new], &[s_old]));

            // Execute: one full gather with the old schedule, then only the increment.
            let owned: Vec<f64> = dist
                .local_globals(rank.rank())
                .map(|g| g as f64 + 0.5)
                .collect();
            let mut x = DistArray::new(owned, insp.ghost_len());
            gather(rank, &sched_old, &mut x);
            let inc_stats = gather(rank, &sched_inc, &mut x);
            let got: Vec<f64> = refs.iter().map(|&r| x[r]).collect();
            (
                sched_old.total_fetch(),
                sched_inc.total_fetch(),
                inc_stats,
                got,
                adapted,
            )
        },
    );
    for (old_fetch, inc_fetch, inc_stats, got, adapted) in &out.results {
        assert_eq!(*old_fetch, 4);
        assert_eq!(
            *inc_fetch, 2,
            "the incremental schedule fetches only the two new elements"
        );
        assert_eq!(inc_stats.bytes_received, 2 * 8);
        for (g, v) in adapted.iter().zip(got) {
            assert_eq!(
                *v,
                *g as f64 + 0.5,
                "element {g} wrong after incremental gather"
            );
        }
    }
}

/// Clearing a stamp and re-hashing a slowly adapting array keeps ghost slots stable, so a
/// schedule rebuilt every "timestep" reuses the translation work — the CHARMM non-bonded
/// update pattern (§4.1).
#[test]
fn clear_and_rehash_reuses_ghost_slots_across_timesteps() {
    let n = 60;
    let out = run(MachineConfig::new(4), move |rank| {
        let dist = BlockDist::new(n, rank.nprocs());
        let ttable = TranslationTable::from_regular(&dist);
        let mut insp = Inspector::new(&ttable, rank.rank());
        let s = Stamp::new(2);
        let start = dist.local_range(rank.rank()).end;
        let mut pattern: Vec<usize> = (0..10).map(|k| (start + k) % n).collect();
        let mut ghost_sizes = Vec::new();
        let mut fetches = Vec::new();
        for step in 0..5 {
            insp.clear_stamp(s);
            // One reference drifts per step; the other nine are unchanged.
            pattern[step] = (pattern[step] + 10) % n;
            insp.hash_indices(rank, &pattern, s);
            let sched = insp.build_schedule(rank, StampQuery::single(s));
            ghost_sizes.push(insp.ghost_len());
            fetches.push(sched.total_fetch());
        }
        (ghost_sizes, fetches)
    });
    for (ghost_sizes, fetches) in &out.results {
        // Each step adds at most one genuinely new off-processor element to the table.
        for w in ghost_sizes.windows(2) {
            assert!(
                w[1] - w[0] <= 1,
                "ghost region must grow by at most the drifted reference: {ghost_sizes:?}"
            );
        }
        // Every per-step schedule still fetches only what the current pattern needs.
        for f in fetches {
            assert!(*f <= 10);
        }
    }
}
