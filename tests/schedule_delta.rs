//! Integration tests of the incremental schedule-maintenance subsystem: patched
//! [`CommSchedule`]s must be byte-identical to from-scratch rebuilds at every machine
//! size, through replicated *and* paged translation tables, across seeded drift
//! sequences, empty deltas and full replacements — and the stamp-keyed
//! [`ScheduleCache`] must never serve a stale schedule, including after `clear_stamp`
//! and after an eviction forces a rebuild.

use chaos_suite::chaos::prelude::*;
use chaos_suite::mpsim::{run, MachineConfig};

/// The splitmix-style stream used by every drift sequence here (and by the delta
/// benchmarks): deterministic, seedable, and different per rank.
fn lcg(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x >> 33
}

/// Drive one rank's patch-vs-rebuild lockstep for `rounds` rounds of seeded drift and
/// return whether every round's patched schedule equalled the rebuild byte for byte.
fn drift_lockstep(
    rank: &mut chaos_suite::mpsim::Rank,
    nglobals: usize,
    nrefs: usize,
    rounds: usize,
    drift_per_round: usize,
    seed: u64,
) -> bool {
    let me = rank.rank();
    let dist = BlockDist::new(nglobals, rank.nprocs());
    let ttable = TranslationTable::from_regular(&dist);
    let mut hash = IndexHashTable::new(me, dist.local_size(me));
    let stamp = Stamp::new(0);
    let query = StampQuery::single(stamp);

    let mut rng = seed.wrapping_add(me as u64 * 0x9E37_79B9);
    let mut refs: Vec<usize> = (0..nrefs)
        .map(|_| lcg(&mut rng) as usize % nglobals)
        .collect();
    hash.hash_in_replicated(rank, &ttable, &refs, stamp);
    let mut ms = build_maintained(rank, &hash, query);
    let mut identical = *ms.schedule() == build_schedule_from_table(rank, &hash, query);

    for _ in 0..rounds {
        for _ in 0..drift_per_round {
            let at = lcg(&mut rng) as usize % refs.len();
            refs[at] = lcg(&mut rng) as usize % nglobals;
        }
        hash.clear_stamp(stamp);
        hash.hash_in_replicated(rank, &ttable, &refs, stamp);
        patch_schedule(rank, &hash, &mut ms);
        identical &= *ms.schedule() == build_schedule_from_table(rank, &hash, query);
        identical &= ms.is_current(&hash);
    }
    identical
}

/// Satellite (a): the byte-identity battery over machine sizes.  P = 1 exercises the
/// no-ghost degenerate case, P = 48 a machine larger than any reference set's fan-out.
#[test]
fn patched_schedule_is_byte_identical_to_rebuild_across_machine_sizes() {
    for &nprocs in &[1usize, 2, 8, 48] {
        let out = run(MachineConfig::new(nprocs), move |rank| {
            drift_lockstep(rank, 96 * rank.nprocs(), 128, 6, 9, 0xC0FFEE)
        });
        for (r, ok) in out.results.iter().enumerate() {
            assert!(
                *ok,
                "P = {nprocs}: rank {r} saw a patched/rebuilt divergence"
            );
        }
    }
}

/// Satellite (a), empty-delta edge cases: a patch against an unchanged table is free (no
/// communication, `refreshed == false`), and a patch after re-hashing *identical*
/// contents (key changed, selection unchanged) ships zero edits yet refreshes the key.
#[test]
fn empty_deltas_cost_nothing_and_ship_no_edits() {
    let out = run(MachineConfig::new(4), |rank| {
        let me = rank.rank();
        let dist = BlockDist::new(64, rank.nprocs());
        let ttable = TranslationTable::from_regular(&dist);
        let mut hash = IndexHashTable::new(me, dist.local_size(me));
        let s = Stamp::new(3);
        let refs: Vec<usize> = (0..16).map(|k| (me * 16 + k * 3) % 64).collect();
        hash.hash_in_replicated(rank, &ttable, &refs, s);
        let mut ms = build_maintained(rank, &hash, StampQuery::single(s));

        // Unchanged table: the no-op fast path must not touch the network.
        let msgs_before = rank.stats().msgs_sent;
        let noop = patch_schedule(rank, &hash, &mut ms);
        let noop_msgs = rank.stats().msgs_sent - msgs_before;

        // Re-hash the same references: the version key moves, the selection does not.
        hash.clear_stamp(s);
        hash.hash_in_replicated(rank, &ttable, &refs, s);
        let stale_key = !ms.is_current(&hash);
        let refresh = patch_schedule(rank, &hash, &mut ms);
        let rebuilt = build_schedule_from_table(rank, &hash, StampQuery::single(s));
        (
            noop,
            noop_msgs,
            stale_key,
            refresh,
            *ms.schedule() == rebuilt,
            ms.is_current(&hash),
        )
    });
    for (noop, noop_msgs, stale_key, refresh, identical, current) in &out.results {
        assert!(!noop.refreshed, "an up-to-date schedule must not refresh");
        assert_eq!(*noop_msgs, 0, "the no-op fast path must not communicate");
        assert!(*stale_key, "re-hashing must advance the version key");
        assert!(refresh.refreshed);
        assert_eq!(
            refresh.edits_sent + refresh.edits_received,
            0,
            "identical contents must produce an empty edit script"
        );
        assert!(*identical, "zero-edit patch must still match the rebuild");
        assert!(*current, "the refreshed key must match the table again");
    }
}

/// Satellite (a), full-replacement edge case: after [`IndexHashTable::clear_all`] the
/// epoch moves, ghost slots are re-assigned from scratch (and may alias old slot numbers
/// onto different globals), and the patch path must still converge to the rebuild.
#[test]
fn full_replacement_after_clear_all_patches_to_the_rebuild() {
    let out = run(MachineConfig::new(8), |rank| {
        let me = rank.rank();
        let dist = BlockDist::new(128, rank.nprocs());
        let ttable = TranslationTable::from_regular(&dist);
        let mut hash = IndexHashTable::new(me, dist.local_size(me));
        let s = Stamp::new(0);
        let q = StampQuery::single(s);
        let first: Vec<usize> = (0..24).map(|k| (me * 16 + k * 5) % 128).collect();
        hash.hash_in_replicated(rank, &ttable, &first, s);
        let mut ms = build_maintained(rank, &hash, q);

        // Full replacement: wipe the table (epoch bump) and hash a disjoint-ish pattern.
        hash.clear_all();
        let second: Vec<usize> = (0..24).map(|k| (me * 16 + k * 7 + 2) % 128).collect();
        hash.hash_in_replicated(rank, &ttable, &second, s);
        let stats = patch_schedule(rank, &hash, &mut ms);
        let rebuilt = build_schedule_from_table(rank, &hash, q);
        (stats, *ms.schedule() == rebuilt)
    });
    for (stats, identical) in &out.results {
        assert!(stats.refreshed);
        assert!(
            *identical,
            "full replacement must equal a from-scratch build"
        );
    }
}

/// Satellite (a), paged translation: drift hashed through a **paged** table (remote
/// translations fetched page-wise and cached) patches to the same bytes as a rebuild,
/// and page invalidation in between does not disturb the schedules.
#[test]
fn paged_translation_drift_patches_byte_identically() {
    let nglobals = 256usize;
    let out = run(MachineConfig::new(8), move |rank| {
        let me = rank.rank();
        let nprocs = rank.nprocs();
        let map_dist = BlockDist::new(nglobals, nprocs);
        // An irregular ownership map: stripes of 8, striding over the ranks.
        let local_map: Vec<ProcId> = map_dist
            .local_globals(me)
            .map(|g| (g / 8) % nprocs)
            .collect();
        let mut ttable =
            TranslationTable::paged_from_map(rank, &local_map, &map_dist, 16).expect("valid map");
        let mut control =
            TranslationTable::paged_from_map(rank, &local_map, &map_dist, 16).expect("valid map");
        let owned = ttable.local_size(me);
        let mut hash = IndexHashTable::new(me, owned);
        let mut control_hash = IndexHashTable::new(me, owned);
        let s = Stamp::new(1);
        let q = StampQuery::single(s);

        let mut rng = 0xBADD_CAFEu64.wrapping_add(me as u64);
        let mut refs: Vec<usize> = (0..48).map(|_| lcg(&mut rng) as usize % nglobals).collect();
        hash.hash_in(rank, &mut ttable, &refs, s);
        control_hash.hash_in(rank, &mut control, &refs, s);
        let mut ms = build_maintained(rank, &hash, q);
        let mut identical = true;
        let mut pages_seen = ttable.cached_page_count();
        for round in 0..4 {
            for _ in 0..6 {
                let at = lcg(&mut rng) as usize % refs.len();
                refs[at] = lcg(&mut rng) as usize % nglobals;
            }
            if round == 2 {
                // Drop the cached pages for the current refs: the next hash_in must
                // re-fetch them and still assign identical locations.
                ttable.invalidate_pages(&refs);
            }
            hash.clear_stamp(s);
            hash.hash_in(rank, &mut ttable, &refs, s);
            control_hash.clear_stamp(s);
            control_hash.hash_in(rank, &mut control, &refs, s);
            patch_schedule(rank, &hash, &mut ms);
            identical &= *ms.schedule() == build_schedule_from_table(rank, &control_hash, q);
            pages_seen = pages_seen.max(ttable.cached_page_count());
        }
        (identical, pages_seen)
    });
    for (identical, pages_seen) in &out.results {
        assert!(*identical, "paged-table drift must patch to the rebuild");
        assert!(*pages_seen > 0, "remote translations must have paged in");
    }
}

/// Satellite (b): the deterministic cache property sweep.  Whatever mixture of drift,
/// stamp clearing and repeated queries hits the cache, the schedule it returns must
/// equal a from-scratch rebuild against the current table — a cache hit after
/// `clear_stamp` would be stale, and the version keys must prevent it.
#[test]
fn cache_never_serves_a_stale_schedule_through_drift_and_clears() {
    let out = run(MachineConfig::new(8), |rank| {
        let me = rank.rank();
        let nglobals = 32 * rank.nprocs();
        let dist = BlockDist::new(nglobals, rank.nprocs());
        let ttable = TranslationTable::from_regular(&dist);
        let mut hash = IndexHashTable::new(me, dist.local_size(me));
        let (sa, sb) = (Stamp::new(0), Stamp::new(1));
        let mut cache = ScheduleCache::new(2);
        let mut rng = 0x5EED_u64.wrapping_add(me as u64 * 31);
        let fixed: Vec<usize> = (0..nglobals).step_by(5).collect();
        hash.hash_in_replicated(rank, &ttable, &fixed, sb);

        let mut always_fresh = true;
        let mut hit_seen = false;
        let mut patch_seen = false;
        for round in 0..6 {
            let drifting: Vec<usize> = (0..40).map(|_| lcg(&mut rng) as usize % nglobals).collect();
            hash.clear_stamp(sa);
            hash.hash_in_replicated(rank, &ttable, &drifting, sa);
            for q in [StampQuery::single(sa), StampQuery::single(sb)] {
                let (sched, outcome) = cache.schedule(rank, &hash, q);
                let sched = sched.clone();
                match outcome {
                    CacheOutcome::Hit => hit_seen = true,
                    CacheOutcome::Patched(_) => patch_seen = true,
                    CacheOutcome::Missed => {}
                }
                always_fresh &= sched == build_schedule_from_table(rank, &hash, q);
            }
            if round == 3 {
                // Clear the *static* stamp too: its cached schedule is now stale and the
                // next query must patch it rather than hit.
                hash.clear_stamp(sb);
                hash.hash_in_replicated(rank, &ttable, &fixed, sb);
            }
        }
        (always_fresh, hit_seen, patch_seen, cache.stats())
    });
    for (always_fresh, hit_seen, patch_seen, stats) in &out.results {
        assert!(*always_fresh, "a cached schedule diverged from the rebuild");
        assert!(
            *hit_seen,
            "the static stamp should have produced cache hits"
        );
        assert!(*patch_seen, "the drifting stamp should have patched");
        assert_eq!(stats.misses, 2, "one miss per distinct query");
        assert!(stats.evictions == 0, "capacity 2 holds both live queries");
    }
}

/// Satellite (b), the negative test: evicting an entry forgets it, so re-querying the
/// evicted stamp is a miss that *rebuilds* — and the rebuilt schedule equals what the
/// cache would have produced had it never evicted.
#[test]
fn evicted_stamp_forces_a_rebuild_with_an_identical_result() {
    let out = run(MachineConfig::new(4), |rank| {
        let me = rank.rank();
        let nglobals = 32 * rank.nprocs();
        let dist = BlockDist::new(nglobals, rank.nprocs());
        let ttable = TranslationTable::from_regular(&dist);
        let mut hash = IndexHashTable::new(me, dist.local_size(me));
        let (sa, sb) = (Stamp::new(0), Stamp::new(1));
        let a: Vec<usize> = (0..nglobals).step_by(3).collect();
        let b: Vec<usize> = (1..nglobals).step_by(4).collect();
        hash.hash_in_replicated(rank, &ttable, &a, sa);
        hash.hash_in_replicated(rank, &ttable, &b, sb);

        // Capacity 1: every alternation evicts the other query's entry.
        let mut cache = ScheduleCache::new(1);
        let (first_a, m1) = {
            let (s, o) = cache.schedule(rank, &hash, StampQuery::single(sa));
            (s.clone(), o)
        };
        let (_, m2) = cache.schedule(rank, &hash, StampQuery::single(sb));
        // sa was evicted: this must be a fresh miss, not a hit on stale state...
        let (second_a, m3) = {
            let (s, o) = cache.schedule(rank, &hash, StampQuery::single(sa));
            (s.clone(), o)
        };
        // ...and the table is unchanged, so the result must be bit-for-bit the same.
        (
            matches!(m1, CacheOutcome::Missed),
            matches!(m2, CacheOutcome::Missed),
            matches!(m3, CacheOutcome::Missed),
            first_a == second_a,
            cache.stats(),
        )
    });
    for (m1, m2, m3, same, stats) in &out.results {
        assert!(*m1 && *m2, "distinct queries must each miss");
        assert!(
            *m3,
            "an evicted entry must be forgotten — re-query is a miss, never a stale hit"
        );
        assert!(
            *same,
            "rebuild after eviction must reproduce the schedule exactly"
        );
        assert_eq!(stats.misses, 3);
        assert_eq!(
            stats.evictions, 2,
            "capacity-1 cache evicts on each new query"
        );
        assert_eq!(stats.hits, 0);
    }
}
