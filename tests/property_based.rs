//! Property-style tests of the core CHAOS invariants.
//!
//! These were originally written against `proptest`; the build environment has no crates
//! registry, so each property is checked over a deterministic sweep of sizes, processor
//! counts and seeds instead of randomly drawn cases.  The invariants are unchanged.

use chaos_suite::chaos::distribution::{BlockDist, CyclicDist, RegularDist};
use chaos_suite::chaos::partitioners::weighted_median_split;
use chaos_suite::chaos::prelude::*;
use chaos_suite::mpsim::{run, CostModel, MachineConfig};

/// A tiny deterministic value stream for generating test cases.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit_f64(seed: u64, i: u64) -> f64 {
    (mix(seed, i) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Block and cyclic distributions are bijections between global indices and
/// (owner, offset) pairs, for a sweep of sizes and processor counts.
#[test]
fn regular_distributions_are_bijections() {
    for &n in &[0usize, 1, 7, 64, 129, 500] {
        for &p in &[1usize, 2, 3, 8, 13, 39] {
            for owner_offset in [
                (0..n)
                    .map(|g| {
                        let d = BlockDist::new(n, p);
                        (d.owner(g), d.local_offset(g))
                    })
                    .collect::<Vec<_>>(),
                (0..n)
                    .map(|g| {
                        let d = CyclicDist::new(n, p);
                        (d.owner(g), d.local_offset(g))
                    })
                    .collect::<Vec<_>>(),
            ] {
                let mut seen = std::collections::HashSet::new();
                for &(o, l) in &owner_offset {
                    assert!(o < p);
                    assert!(
                        seen.insert((o, l)),
                        "duplicate (owner, offset) for n={n} p={p}"
                    );
                }
            }
        }
    }
}

/// A weighted median split never loses elements, keeps both sides non-empty (when it
/// can), and puts between 0 and 100% of the weight on the left.
#[test]
fn weighted_median_split_is_a_partition() {
    for seed in 0..32u64 {
        let n = 1 + (mix(seed, 0) % 59) as usize;
        let keys: Vec<f64> = (0..n)
            .map(|i| unit_f64(seed, i as u64) * 2e3 - 1e3)
            .collect();
        let weights: Vec<f64> = (0..n)
            .map(|i| 0.01 + unit_f64(seed, 1000 + i as u64) * 9.99)
            .collect();
        let target = unit_f64(seed, 31);
        let left = weighted_median_split(&keys, &weights, target);
        assert_eq!(left.len(), n);
        let left_count = left.iter().filter(|&&b| b).count();
        assert!(left_count >= 1);
        if n >= 2 {
            assert!(
                left_count < n,
                "the right side must stay non-empty (seed {seed})"
            );
        }
    }
}

/// Gather followed by scatter returns every owned element unchanged, and a
/// gather + increment + scatter_add adds exactly the number of ranks referencing each
/// element — for a sweep of sizes, machine widths and access patterns.
#[test]
fn gather_scatter_round_trip_and_reduction() {
    for case in 0..12u64 {
        let n = 8 + (mix(case, 0) % 72) as usize;
        let nprocs = 1 + (mix(case, 1) % 5) as usize;
        let pattern_seed = mix(case, 2) % 1_000;
        let out = run(
            MachineConfig::new(nprocs).with_cost(CostModel::compute_only(0.0)),
            move |rank| {
                let dist = BlockDist::new(n, rank.nprocs());
                let ttable = TranslationTable::from_regular(&dist);
                let mut insp = Inspector::new(&ttable, rank.rank());
                // Every rank references a pseudo-random half of the elements.
                let pattern: Vec<usize> = (0..n)
                    .filter(|g| {
                        (g.wrapping_mul(2654435761) as u64 ^ pattern_seed).is_multiple_of(2)
                    })
                    .collect();
                let refs = insp.hash_indices(rank, &pattern, Stamp::new(0));
                let sched = insp.build_schedule(rank, StampQuery::single(Stamp::new(0)));
                let owned: Vec<f64> = dist
                    .local_globals(rank.rank())
                    .map(|g| g as f64 + 0.25)
                    .collect();
                let before = owned.clone();
                let mut x = DistArray::new(owned, sched.ghost_len());
                gather(rank, &sched, &mut x);
                // Round trip: scatter (overwrite) must leave owned values unchanged.
                scatter(rank, &sched, &mut x);
                let round_trip_ok = x.owned() == &before[..];
                // Reduction: add 1 through every reference, fold back.
                x.clear_ghost();
                for &r in &refs {
                    x[r] += 1.0;
                }
                scatter_add(rank, &sched, &mut x);
                let owned_globals: Vec<usize> = dist.local_globals(rank.rank()).collect();
                (
                    round_trip_ok,
                    owned_globals,
                    before,
                    x.owned().to_vec(),
                    pattern,
                )
            },
        );
        // Every rank uses the same pattern, so each referenced element must have gained
        // exactly `nprocs`, every other element exactly 0.
        let pattern = &out.results[0].4;
        for (round_trip_ok, owned_globals, before, after, _) in &out.results {
            assert!(*round_trip_ok, "round trip failed for case {case}");
            for ((g, b), a) in owned_globals.iter().zip(before).zip(after) {
                let expected = if pattern.contains(g) {
                    b + nprocs as f64
                } else {
                    *b
                };
                assert!((a - expected).abs() < 1e-9, "case {case}: element {g}");
            }
        }
    }
}

/// scatter_append conserves the multiset of items and routes every item to the rank
/// that was asked for, for a sweep of destination assignments.
#[test]
fn scatter_append_conserves_and_routes() {
    for case in 0..12u64 {
        let nprocs = 1 + (mix(case, 10) % 5) as usize;
        let dests_seed = mix(case, 11) % 1_000;
        let items_per_rank = (mix(case, 12) % 40) as usize;
        let out = run(
            MachineConfig::new(nprocs).with_cost(CostModel::compute_only(0.0)),
            move |rank| {
                let me = rank.rank();
                let items: Vec<u64> = (0..items_per_rank)
                    .map(|k| (me * 10_000 + k) as u64)
                    .collect();
                let dests: Vec<usize> = (0..items_per_rank)
                    .map(|k| (((k as u64 * 2654435761) ^ dests_seed) % nprocs as u64) as usize)
                    .collect();
                let sched = LightweightSchedule::build(rank, &dests);
                let got = scatter_append(rank, &sched, &items);
                (got, dests)
            },
        );
        // Conservation of the multiset.
        let mut all: Vec<u64> = out.results.iter().flat_map(|(g, _)| g.clone()).collect();
        all.sort_unstable();
        let mut expected: Vec<u64> = (0..nprocs)
            .flat_map(|me| (0..items_per_rank).map(move |k| (me * 10_000 + k) as u64))
            .collect();
        expected.sort_unstable();
        assert_eq!(all, expected, "multiset not conserved for case {case}");
        // Routing: every item landed on the destination its sender chose (destinations
        // are identical on every rank because the seed is shared).
        let dests = &out.results[0].1;
        for (p, (got, _)) in out.results.iter().enumerate() {
            for item in got {
                let k = (item % 10_000) as usize;
                assert_eq!(dests[k], p, "case {case}: item {item} misrouted");
            }
        }
    }
}

/// Remapping to an arbitrary valid owner map preserves every value and places it at
/// the location the new translation table dictates.
#[test]
fn remap_preserves_values_for_arbitrary_maps() {
    for case in 0..12u64 {
        let n = 4 + (mix(case, 20) % 116) as usize;
        let nprocs = 1 + (mix(case, 21) % 5) as usize;
        let map_seed = mix(case, 22) % 1_000;
        let out = run(
            MachineConfig::new(nprocs).with_cost(CostModel::compute_only(0.0)),
            move |rank| {
                let block = BlockDist::new(n, rank.nprocs());
                let my_block: Vec<usize> = block.local_globals(rank.rank()).collect();
                let local_map: Vec<usize> = my_block
                    .iter()
                    .map(|&g| ((g as u64 * 48271 + map_seed) % rank.nprocs() as u64) as usize)
                    .collect();
                let mut table =
                    TranslationTable::replicated_from_map(rank, &local_map, &block).unwrap();
                let values: Vec<f64> = my_block.iter().map(|&g| g as f64 * 2.0 + 1.0).collect();
                let plan = build_remap(rank, &my_block, &mut table);
                let new_values = remap_values(rank, &plan, &values, f64::NAN);
                let owned_globals = table.owned_globals(rank);
                owned_globals
                    .iter()
                    .zip(&new_values)
                    .all(|(&g, &v)| (v - (g as f64 * 2.0 + 1.0)).abs() < 1e-12)
            },
        );
        assert!(out.results.iter().all(|&ok| ok), "case {case}");
    }
}

/// The parallel partitioners assign every element a part in range, and the chain
/// partitioner's parts are monotone along the axis.
#[test]
fn partitioners_produce_valid_assignments() {
    for case in 0..8u64 {
        let nprocs = 1 + (mix(case, 30) % 5) as usize;
        let nparts = 1 + (mix(case, 31) % 8) as usize;
        let npoints = 1 + (mix(case, 32) % 49) as usize;
        let seed = mix(case, 33) % 500;
        let out = run(
            MachineConfig::new(nprocs).with_cost(CostModel::compute_only(0.0)),
            move |rank| {
                let me = rank.rank() as u64;
                let coords: Vec<[f64; 3]> = (0..npoints)
                    .map(|i| {
                        let s = (i as u64 * 7919 + me * 104729 + seed) as f64;
                        [
                            (s * 0.37).fract() * 8.0,
                            (s * 0.61).fract() * 8.0,
                            (s * 0.17).fract() * 8.0,
                        ]
                    })
                    .collect();
                let weights = vec![1.0f64; npoints];
                let rcb = rcb_partition(rank, PartitionInput::new(&coords, &weights), nparts);
                let xs: Vec<f64> = coords.iter().map(|c| c[0]).collect();
                let chain = chain_partition(rank, &xs, &weights, nparts);
                (rcb, chain, xs)
            },
        );
        for (rcb, chain, xs) in &out.results {
            assert!(rcb.iter().all(|&p| p < nparts), "case {case}");
            assert!(chain.iter().all(|&p| p < nparts), "case {case}");
            for i in 0..xs.len() {
                for j in 0..xs.len() {
                    if xs[i] < xs[j] {
                        assert!(
                            chain[i] <= chain[j],
                            "case {case}: chain parts must be monotone in x"
                        );
                    }
                }
            }
        }
    }
}
