//! Backend equivalence: every executor primitive produces byte-identical results and
//! wire statistics whichever [`mpsim::ExchangeBackend`] moves the bytes.
//!
//! The shared-memory transport is a pure wall-clock optimisation — per-pair lock-free
//! rings, a typed fast path that skips encode/decode for POD element types, and
//! pointer-move self-delivery.  None of that may be observable: these tests run the
//! same workload under [`ExchangeBackend::Modeled`] and [`ExchangeBackend::SharedMem`]
//! at P ∈ {1, 2, 8} and assert the array contents, append orders and
//! [`mpsim::ExchangeStats`] agree exactly.  P = 1 pins the self-delivery path (every
//! transfer is rank-to-self); the reference pattern leaves some processor pairs with
//! nothing to say, which pins the zero-count rows of each plan; and the interleaved
//! split-phase case crosses exchange epochs while two transfers are in flight.

use chaos::prelude::*;
use mpsim::{run, ExchangeBackend, MachineConfig, Rank};

const SWEEP: &[usize] = &[1, 2, 8];

/// Run `body` once per backend at machine size `p` and return both outcomes' results.
fn on_both_backends<T, F>(p: usize, body: F) -> (Vec<T>, Vec<T>)
where
    T: Send + std::fmt::Debug + 'static,
    F: Fn(&mut Rank) -> T + Send + Sync + Copy + 'static,
{
    let go =
        |backend: ExchangeBackend| run(MachineConfig::new(p).with_backend(backend), body).results;
    (go(ExchangeBackend::Modeled), go(ExchangeBackend::SharedMem))
}

/// The shared inspector setup: an `n`-element block-distributed array and a fixed
/// indirection pattern.  `(i * 3 + 1) % n` is affine, so at larger P each rank only
/// references a band of the array — several processor pairs exchange zero elements,
/// which keeps zero-count plan rows in every sweep point.
fn setup(rank: &mut Rank, n: usize) -> (CommSchedule, Vec<LocalRef>, std::ops::Range<usize>) {
    let dist = BlockDist::new(n, rank.nprocs());
    let ttable = TranslationTable::from_regular(&dist);
    let mut insp = Inspector::new(&ttable, rank.rank());
    let me = rank.rank();
    let pattern: Vec<usize> = (0..n / 2).map(|i| (i * 3 + 1 + me) % n).collect();
    let refs = insp.hash_indices(rank, &pattern, Stamp::new(0));
    let sched = insp.build_schedule(rank, StampQuery::single(Stamp::new(0)));
    (sched, refs, dist.local_range(me))
}

#[test]
fn gather_is_byte_identical_across_backends() {
    for &p in SWEEP {
        let (modeled, shared) = on_both_backends(p, |rank| {
            let (sched, _refs, range) = setup(rank, 64);
            let owned: Vec<f64> = range.clone().map(|g| (g * g) as f64 + 0.25).collect();
            let mut x = DistArray::new(owned, sched.ghost_len());
            let stats = gather(rank, &sched, &mut x);
            (x.owned().to_vec(), x.ghost().to_vec(), stats)
        });
        assert_eq!(modeled, shared, "gather diverged at P = {p}");
    }
}

#[test]
fn scatter_add_is_byte_identical_across_backends() {
    for &p in SWEEP {
        let (modeled, shared) = on_both_backends(p, |rank| {
            let (sched, refs, range) = setup(rank, 64);
            let mut x = DistArray::new(vec![1.5f64; range.len()], sched.ghost_len());
            for (k, &r) in refs.iter().enumerate() {
                x[r] += k as f64 * 0.5;
            }
            let stats = scatter_add(rank, &sched, &mut x);
            (x.owned().to_vec(), stats)
        });
        assert_eq!(modeled, shared, "scatter_add diverged at P = {p}");
    }
}

#[test]
fn fused_gather_is_byte_identical_across_backends() {
    for &p in SWEEP {
        let (modeled, shared) = on_both_backends(p, |rank| {
            let (sched, _refs, range) = setup(rank, 64);
            let make = |scale: f64| -> DistArray<f64> {
                let owned: Vec<f64> = range.clone().map(|g| g as f64 * scale).collect();
                DistArray::new(owned, sched.ghost_len())
            };
            let (mut x, mut y, mut z) = (make(1.0), make(0.5), make(-2.0));
            let stats = gather_multi(rank, &sched, [&mut x, &mut y, &mut z]);
            (
                x.ghost().to_vec(),
                y.ghost().to_vec(),
                z.ghost().to_vec(),
                stats,
            )
        });
        assert_eq!(modeled, shared, "gather_multi diverged at P = {p}");
    }
}

#[test]
fn interleaved_split_phase_transfers_are_byte_identical_across_backends() {
    // Two split-phase transfers in flight at once, finished in start order while a
    // blocking append crosses between them — three exchange epochs overlap, which is
    // exactly the situation the engine's epoch tags (and the shared rings' framing)
    // must keep apart.
    for &p in SWEEP {
        let (modeled, shared) = on_both_backends(p, |rank| {
            let me = rank.rank();
            let nprocs = rank.nprocs();
            let (sched, _refs, range) = setup(rank, 64);
            let owned: Vec<f64> = range.clone().map(|g| g as f64 + 0.5).collect();
            let a = DistArray::new(owned.clone(), sched.ghost_len());
            let b = DistArray::new(owned.iter().map(|v| -v).collect(), sched.ghost_len());
            let ha = gather_start(rank, &sched, [&a]);
            let hb = gather_start(rank, &sched, [&b]);
            // An unrelated blocking exchange while both gathers are in flight.
            let items: Vec<u64> = (0..12).map(|k| (1000 * me + k) as u64).collect();
            let dests: Vec<usize> = (0..12).map(|k| (k + me) % nprocs).collect();
            let lw = LightweightSchedule::build(rank, &dests);
            let appended = scatter_append(rank, &lw, &items);
            let (mut a, mut b) = (a, b);
            let sa = gather_finish(rank, ha, &sched, [&mut a]);
            let sb = gather_finish(rank, hb, &sched, [&mut b]);
            (a.ghost().to_vec(), b.ghost().to_vec(), appended, sa, sb)
        });
        assert_eq!(modeled, shared, "interleaved transfers diverged at P = {p}");
    }
}

#[test]
fn blocking_direct_gather_amid_split_phase_transfers_is_byte_identical() {
    // A *blocking* POD gather — the zero-copy direct-window path on SharedMem — runs
    // while two split-phase classic gathers are in flight.  Their payloads can arrive
    // during the blocking gather's window drain and must be stashed for the later
    // finishes, while the window's own (direct or fallback) contributions land in the
    // ghost region; the finishes then consume the stash across epochs.
    for &p in SWEEP {
        let (modeled, shared) = on_both_backends(p, |rank| {
            let (sched, _refs, range) = setup(rank, 64);
            let owned: Vec<f64> = range.clone().map(|g| g as f64 * 1.25 + 0.125).collect();
            let a = DistArray::new(owned.clone(), sched.ghost_len());
            let b = DistArray::new(owned.iter().map(|v| v + 7.0).collect(), sched.ghost_len());
            let ha = gather_start(rank, &sched, [&a]);
            let hb = gather_start(rank, &sched, [&b]);
            let mut c = DistArray::new(owned.iter().map(|v| v * -0.5).collect(), sched.ghost_len());
            let sc = gather(rank, &sched, &mut c);
            let (mut a, mut b) = (a, b);
            let sa = gather_finish(rank, ha, &sched, [&mut a]);
            let sb = gather_finish(rank, hb, &sched, [&mut b]);
            (
                a.ghost().to_vec(),
                b.ghost().to_vec(),
                c.ghost().to_vec(),
                sa,
                sb,
                sc,
            )
        });
        assert_eq!(
            modeled, shared,
            "blocking direct gather amid split-phase transfers diverged at P = {p}"
        );
    }
}

#[test]
fn split_phase_append_is_byte_identical_across_backends() {
    for &p in SWEEP {
        let (modeled, shared) = on_both_backends(p, |rank| {
            let me = rank.rank();
            let nprocs = rank.nprocs();
            let items: Vec<u64> = (0..10).map(|k| (1000 * me + k) as u64).collect();
            let dests: Vec<usize> = (0..10).map(|k| k % nprocs).collect();
            let sched = LightweightSchedule::build(rank, &dests);
            let handle = scatter_append_start(rank, &sched, &items);
            rank.charge_compute(5.0);
            scatter_append_finish(rank, &sched, handle)
        });
        assert_eq!(modeled, shared, "split-phase append diverged at P = {p}");
    }
}

#[test]
fn empty_schedules_move_nothing_on_either_backend() {
    // The degenerate end of the zero-count spectrum: a schedule with nothing in it at
    // all must be a no-op with default stats under both transports.
    for &p in SWEEP {
        let (modeled, shared) = on_both_backends(p, |rank| {
            let sched = CommSchedule::empty(rank.nprocs());
            let mut x: DistArray<f64> = DistArray::new(vec![1.0, 2.0], 0);
            let g = gather(rank, &sched, &mut x);
            let s = scatter_add(rank, &sched, &mut x);
            (x.owned().to_vec(), g, s)
        });
        assert_eq!(modeled, shared, "empty schedule diverged at P = {p}");
        for (owned, g, s) in &modeled {
            assert_eq!(owned, &vec![1.0, 2.0]);
            assert_eq!(*g, mpsim::ExchangeStats::default());
            assert_eq!(*s, mpsim::ExchangeStats::default());
        }
    }
}

#[test]
fn non_pod_element_types_agree_too() {
    // `[f64; 2]` with a non-trivial pattern goes through the encode/decode path on both
    // backends only if the type is not POD-little-endian; either way the contract is the
    // same bytes.  (On most hosts `[f64; 2]` *is* POD, so this doubles as a typed
    // fast-path case at a different element size.)
    for &p in SWEEP {
        let (modeled, shared) = on_both_backends(p, |rank| {
            let (sched, _refs, range) = setup(rank, 64);
            let owned: Vec<[f64; 2]> = range.clone().map(|g| [g as f64, -(g as f64)]).collect();
            let mut x = DistArray::new(owned, sched.ghost_len());
            let stats = gather(rank, &sched, &mut x);
            (x.ghost().to_vec(), stats)
        });
        assert_eq!(modeled, shared, "[f64; 2] gather diverged at P = {p}");
    }
}
