//! Intra-rank worker parallelism for the inspector's preprocessing sweeps.
//!
//! The paper's Table 2 headlines preprocessing cost: stamp clearing and schedule
//! bucketing are linear sweeps over the (large) index hash table, and both are
//! embarrassingly parallel over table slots.  This module provides the two chunked
//! helpers those sweeps use, plus the worker-count policy.
//!
//! **Determinism contract:** every helper splits its input into contiguous chunks and
//! combines per-chunk results in chunk order, so parallel execution is byte-identical to
//! sequential execution at any worker count.  The regression tests in
//! [`crate::inspector`] pin this.
//!
//! **Worker-count policy:** [`workers`] resolves, in order,
//!
//! 1. a [`with_workers`] override on the current thread (how benches and tests pin a
//!    worker count),
//! 2. the `CHAOS_WORKERS` environment variable (read once per process),
//! 3. the default of `1` — sequential.
//!
//! The default is deliberately *not* the host core count: an `mpsim` machine already
//! runs one OS thread per rank, so letting every rank fan out to all cores by default
//! would oversubscribe the host as soon as P > 1.  Callers that know their rank count
//! and host (the preprocessing benchmark, a dedicated inspector phase) opt in
//! explicitly.

use std::cell::Cell;
use std::sync::OnceLock;

/// Inputs smaller than this many elements are always processed sequentially — below it,
/// thread spawn/join overhead outweighs the sweep itself.
pub const PAR_MIN_ENTRIES: usize = 4096;

thread_local! {
    static WORKER_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of worker threads inspector sweeps on this thread may use.  See the module
/// docs for the resolution order; `1` means sequential.
pub fn workers() -> usize {
    if let Some(n) = WORKER_OVERRIDE.with(Cell::get) {
        return n;
    }
    static FROM_ENV: OnceLock<usize> = OnceLock::new();
    *FROM_ENV.get_or_init(|| {
        std::env::var("CHAOS_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    })
}

/// Run `f` with [`workers`] pinned to `n` on the current thread (and any inspector call
/// it makes).  Restores the previous value on exit, including on panic.
///
/// # Panics
/// Panics if `n` is zero.
pub fn with_workers<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "at least one worker is required");
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            WORKER_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(WORKER_OVERRIDE.with(|c| c.replace(Some(n))));
    f()
}

/// The chunk size that splits `len` elements across the current worker count, floored at
/// [`PAR_MIN_ENTRIES`] so no worker gets a trivial slice.
fn chunk_size(len: usize, workers: usize) -> usize {
    len.div_ceil(workers).max(PAR_MIN_ENTRIES)
}

/// Apply `f` to contiguous mutable chunks of `data`, one chunk per worker.  Sequential
/// (one call covering everything) when only one worker is configured or the input is
/// below the parallel threshold.
pub fn par_chunks_mut<T: Send>(data: &mut [T], f: impl Fn(&mut [T]) + Sync) {
    let w = workers();
    if w <= 1 || data.len() < 2 * PAR_MIN_ENTRIES {
        f(data);
        return;
    }
    let chunk = chunk_size(data.len(), w);
    std::thread::scope(|s| {
        let f = &f;
        for piece in data.chunks_mut(chunk) {
            s.spawn(move || f(piece));
        }
    });
}

/// Map `f` over contiguous chunks of `data` and return the per-chunk results **in chunk
/// order** — concatenating them reproduces sequential left-to-right processing exactly.
/// Returns a single-element vector (one call covering everything) when only one worker
/// is configured or the input is below the parallel threshold.
pub fn par_map_chunks<T: Sync, R: Send>(data: &[T], f: impl Fn(&[T]) -> R + Sync) -> Vec<R> {
    let w = workers();
    if w <= 1 || data.len() < 2 * PAR_MIN_ENTRIES {
        return vec![f(data)];
    }
    let chunk = chunk_size(data.len(), w);
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = data
            .chunks(chunk)
            .map(|piece| s.spawn(move || f(piece)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("inspector worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn workers_defaults_to_one_and_override_nests() {
        // The default (no override, no env in the test harness) is sequential.
        assert_eq!(workers(), 1);
        with_workers(4, || {
            assert_eq!(workers(), 4);
            with_workers(2, || assert_eq!(workers(), 2));
            assert_eq!(workers(), 4);
        });
        assert_eq!(workers(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_is_rejected() {
        with_workers(0, || {});
    }

    #[test]
    fn par_chunks_mut_touches_every_element_exactly_once() {
        let n = 3 * PAR_MIN_ENTRIES + 17;
        let mut data: Vec<u64> = (0..n as u64).collect();
        with_workers(4, || {
            par_chunks_mut(&mut data, |chunk| {
                for v in chunk {
                    *v += 1;
                }
            });
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
    }

    #[test]
    fn par_map_chunks_preserves_chunk_order() {
        let n = 4 * PAR_MIN_ENTRIES;
        let data: Vec<u64> = (0..n as u64).collect();
        let calls = AtomicU64::new(0);
        let chunks = with_workers(4, || {
            par_map_chunks(&data, |chunk| {
                calls.fetch_add(1, Ordering::Relaxed);
                (chunk[0], chunk.len())
            })
        });
        assert!(calls.load(Ordering::Relaxed) > 1, "must actually split");
        // Chunk firsts must be in ascending input order, and lengths must tile the input.
        let mut expected_first = 0u64;
        for (first, len) in chunks {
            assert_eq!(first, expected_first);
            expected_first += len as u64;
        }
        assert_eq!(expected_first, n as u64);
    }

    #[test]
    fn small_inputs_stay_sequential() {
        let data: Vec<u64> = (0..64).collect();
        let out = with_workers(8, || par_map_chunks(&data, <[u64]>::len));
        assert_eq!(out, vec![64], "below the threshold: one sequential call");
    }
}
