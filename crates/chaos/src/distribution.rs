//! Regular distribution descriptors (BLOCK and CYCLIC).
//!
//! Fortran-D / HPF provide BLOCK and CYCLIC as the standard regular distributions; CHAOS
//! uses them both as starting distributions (before data is repartitioned irregularly) and
//! as the distribution of *index spaces themselves* — the map array describing an irregular
//! distribution is itself block-distributed, and so are loop-iteration spaces before
//! iteration partitioning.  Owner and local-offset computations for these distributions are
//! pure arithmetic; no translation table is needed.

use crate::{Global, ProcId};

/// Operations every regular distribution supports.
pub trait RegularDist {
    /// Total number of elements in the global index space.
    fn global_size(&self) -> usize;
    /// Number of processors the space is distributed over.
    fn nprocs(&self) -> usize;
    /// The processor owning global index `g`.
    fn owner(&self, g: Global) -> ProcId;
    /// The local offset of global index `g` on its owner.
    fn local_offset(&self, g: Global) -> usize;
    /// Number of elements local to processor `p`.
    fn local_size(&self, p: ProcId) -> usize;
    /// The global index of local offset `l` on processor `p`.
    fn global_index(&self, p: ProcId, l: usize) -> Global;

    /// Iterator over the global indices owned by processor `p`, in local-offset order.
    fn local_globals(&self, p: ProcId) -> Box<dyn Iterator<Item = Global> + Send>
    where
        Self: Sized,
    {
        let size = self.local_size(p);
        let globals: Vec<Global> = (0..size).map(|l| self.global_index(p, l)).collect();
        Box::new(globals.into_iter())
    }

    /// The owner map for the whole index space (`map[g] = owner(g)`).
    fn owner_map(&self) -> Vec<ProcId> {
        (0..self.global_size()).map(|g| self.owner(g)).collect()
    }
}

/// HPF-style BLOCK distribution: contiguous chunks of `ceil(n/p)`-ish size.
///
/// The first `n % p` processors receive `ceil(n/p)` elements and the rest `floor(n/p)`,
/// which keeps the imbalance below one element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockDist {
    n: usize,
    nprocs: usize,
}

impl BlockDist {
    /// Distribute `n` elements over `nprocs` processors in contiguous blocks.
    pub fn new(n: usize, nprocs: usize) -> Self {
        assert!(nprocs > 0, "BlockDist needs at least one processor");
        Self { n, nprocs }
    }

    fn chunk(&self) -> (usize, usize) {
        // (base size, number of procs with one extra element)
        (self.n / self.nprocs, self.n % self.nprocs)
    }

    /// The half-open global index range `[start, end)` owned by processor `p`.
    pub fn local_range(&self, p: ProcId) -> std::ops::Range<Global> {
        assert!(p < self.nprocs, "processor {p} out of range");
        let (base, extra) = self.chunk();
        let start = p * base + p.min(extra);
        let len = base + usize::from(p < extra);
        start..start + len
    }
}

impl RegularDist for BlockDist {
    fn global_size(&self) -> usize {
        self.n
    }

    fn nprocs(&self) -> usize {
        self.nprocs
    }

    fn owner(&self, g: Global) -> ProcId {
        assert!(g < self.n, "global index {g} out of bounds ({})", self.n);
        let (base, extra) = self.chunk();
        if base == 0 {
            // Fewer elements than processors: element g lives on processor g.
            return g;
        }
        let boundary = extra * (base + 1);
        if g < boundary {
            g / (base + 1)
        } else {
            extra + (g - boundary) / base
        }
    }

    fn local_offset(&self, g: Global) -> usize {
        let p = self.owner(g);
        g - self.local_range(p).start
    }

    fn local_size(&self, p: ProcId) -> usize {
        self.local_range(p).len()
    }

    fn global_index(&self, p: ProcId, l: usize) -> Global {
        let range = self.local_range(p);
        assert!(
            l < range.len(),
            "local offset {l} out of bounds on processor {p} (size {})",
            range.len()
        );
        range.start + l
    }
}

/// HPF-style CYCLIC distribution: element `g` lives on processor `g mod p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CyclicDist {
    n: usize,
    nprocs: usize,
}

impl CyclicDist {
    /// Distribute `n` elements over `nprocs` processors round-robin.
    pub fn new(n: usize, nprocs: usize) -> Self {
        assert!(nprocs > 0, "CyclicDist needs at least one processor");
        Self { n, nprocs }
    }
}

impl RegularDist for CyclicDist {
    fn global_size(&self) -> usize {
        self.n
    }

    fn nprocs(&self) -> usize {
        self.nprocs
    }

    fn owner(&self, g: Global) -> ProcId {
        assert!(g < self.n, "global index {g} out of bounds ({})", self.n);
        g % self.nprocs
    }

    fn local_offset(&self, g: Global) -> usize {
        assert!(g < self.n, "global index {g} out of bounds ({})", self.n);
        g / self.nprocs
    }

    fn local_size(&self, p: ProcId) -> usize {
        assert!(p < self.nprocs, "processor {p} out of range");
        if p < self.n % self.nprocs {
            self.n / self.nprocs + 1
        } else {
            self.n / self.nprocs
        }
    }

    fn global_index(&self, p: ProcId, l: usize) -> Global {
        assert!(
            l < self.local_size(p),
            "local offset {l} out of bounds on processor {p}"
        );
        l * self.nprocs + p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_roundtrip<D: RegularDist>(d: &D) {
        // Every global index maps to a unique (owner, offset) and back.
        let mut seen = vec![false; d.global_size()];
        for p in 0..d.nprocs() {
            for l in 0..d.local_size(p) {
                let g = d.global_index(p, l);
                assert!(!seen[g], "global index {g} assigned twice");
                seen[g] = true;
                assert_eq!(d.owner(g), p);
                assert_eq!(d.local_offset(g), l);
            }
        }
        assert!(seen.into_iter().all(|s| s), "some global index unassigned");
        // Sizes add up.
        let total: usize = (0..d.nprocs()).map(|p| d.local_size(p)).sum();
        assert_eq!(total, d.global_size());
    }

    #[test]
    fn block_roundtrip_various_shapes() {
        for &(n, p) in &[
            (10, 3),
            (16, 4),
            (1, 1),
            (7, 8),
            (100, 7),
            (0, 3),
            (128, 128),
        ] {
            check_roundtrip(&BlockDist::new(n, p));
        }
    }

    #[test]
    fn cyclic_roundtrip_various_shapes() {
        for &(n, p) in &[
            (10, 3),
            (16, 4),
            (1, 1),
            (7, 8),
            (100, 7),
            (0, 3),
            (128, 128),
        ] {
            check_roundtrip(&CyclicDist::new(n, p));
        }
    }

    #[test]
    fn block_ranges_are_contiguous_and_ordered() {
        let d = BlockDist::new(11, 4);
        // 11 = 3+3+3+2 with the extra elements on the first processors.
        assert_eq!(d.local_range(0), 0..3);
        assert_eq!(d.local_range(1), 3..6);
        assert_eq!(d.local_range(2), 6..9);
        assert_eq!(d.local_range(3), 9..11);
        assert_eq!(d.local_size(3), 2);
    }

    #[test]
    fn block_imbalance_below_one_element() {
        for &(n, p) in &[(1000, 7), (14026, 128), (5, 4)] {
            let d = BlockDist::new(n, p);
            let sizes: Vec<usize> = (0..p).map(|q| d.local_size(q)).collect();
            let max = *sizes.iter().max().unwrap();
            let min = *sizes.iter().min().unwrap();
            assert!(max - min <= 1, "imbalance {} for n={n}, p={p}", max - min);
        }
    }

    #[test]
    fn cyclic_owner_is_modulo() {
        let d = CyclicDist::new(10, 3);
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(1), 1);
        assert_eq!(d.owner(2), 2);
        assert_eq!(d.owner(3), 0);
        assert_eq!(d.local_offset(3), 1);
        assert_eq!(d.local_size(0), 4);
        assert_eq!(d.local_size(2), 3);
    }

    #[test]
    fn more_procs_than_elements() {
        let d = BlockDist::new(3, 8);
        for g in 0..3 {
            assert_eq!(d.owner(g), g);
        }
        for p in 3..8 {
            assert_eq!(d.local_size(p), 0);
        }
    }

    #[test]
    fn owner_map_matches_owner() {
        let d = BlockDist::new(17, 5);
        let map = d.owner_map();
        for (g, &o) in map.iter().enumerate() {
            assert_eq!(o, d.owner(g));
        }
        let c = CyclicDist::new(17, 5);
        for (g, &o) in c.owner_map().iter().enumerate() {
            assert_eq!(o, c.owner(g));
        }
    }

    #[test]
    fn local_globals_iterates_in_offset_order() {
        let d = BlockDist::new(20, 3);
        let globals: Vec<usize> = d.local_globals(1).collect();
        assert_eq!(globals, (7..14).collect::<Vec<_>>());
        let c = CyclicDist::new(10, 3);
        let globals: Vec<usize> = c.local_globals(1).collect();
        assert_eq!(globals, vec![1, 4, 7]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn block_owner_rejects_out_of_range() {
        let d = BlockDist::new(4, 2);
        let _ = d.owner(4);
    }
}
