//! Delta-schedule maintenance: patch an existing [`CommSchedule`] instead of rebuilding.
//!
//! Table 2 of the paper shows preprocessing (inspector) cost dominating adaptive runs, and
//! §3.2.2's stamped hash table already amortises *index analysis*.  This module amortises
//! the other half — *schedule generation*.  A [`MaintainedSchedule`] remembers which rows
//! (ghost slot, owner offset) it requested from each owner; when the hash table drifts
//! (particles migrate, a non-bonded list adapts), [`patch_schedule`] diffs the old request
//! lists against the table's current selection and negotiates **only the edits** to the
//! owners, instead of re-sending every request through a dense all-to-all.
//!
//! The patched schedule is **byte-identical** to what [`build_schedule_from_table`] would
//! produce from scratch — same send lists, same permutation lists, same ghost length — so
//! executors, fused multi-array gathers, and split-phase handles can use it with no change
//! and applications can switch between rebuild and patch without perturbing results.  That
//! identity holds because both paths order rows the same way: hash-table insertion order,
//! in which ghost slots are strictly increasing per owner.
//!
//! Freshness is tracked by [`ScheduleKey`] operation counters (see
//! [`IndexHashTable::version`]); a schedule whose key still matches needs no maintenance at
//! all, and the check involves no communication.

use std::ops::Deref;

use mpsim::{route_sparse, Rank};

use crate::index_hash::{IndexHashTable, ScheduleKey, StampQuery};
use crate::inspector::build_schedule_from_table;
use crate::schedule::CommSchedule;

/// One requested row on the fetching side: the local ghost slot the element lands in and
/// the element's offset in its owner's owned section.  `(slot, offset)` — not slot alone —
/// is the row identity used when diffing: after [`IndexHashTable::clear_all`] slot numbers
/// are reused for *different* globals, and the offset disambiguates them.
type Row = (u32, u32);

/// An edit shipped to an owner: `(op, pos, offset)` where `op` 0 deletes the row at old
/// position `pos` of the owner's send list for us, and `op` 1 inserts `offset` at final
/// position `pos`.  Deletions are emitted in ascending old position, insertions in
/// ascending final position.
type Edit = (u32, u32, u32);

const EDIT_DELETE: u32 = 0;
const EDIT_INSERT: u32 = 1;

/// A [`CommSchedule`] bundled with the provenance needed to patch it in place.
///
/// Dereferences to the underlying schedule, so it can be passed to every executor entry
/// point (`gather(rank, &ms, ..)`) unchanged.
#[derive(Debug, Clone)]
pub struct MaintainedSchedule {
    key: ScheduleKey,
    schedule: CommSchedule,
    /// `rows[p]` — the rows this rank currently requests from owner `p`, in schedule
    /// order.  `rows[p][i].0` always equals `schedule.perm_lists[p][i]`.
    rows: Vec<Vec<Row>>,
}

impl Deref for MaintainedSchedule {
    type Target = CommSchedule;

    fn deref(&self) -> &CommSchedule {
        &self.schedule
    }
}

impl MaintainedSchedule {
    /// The underlying communication schedule.
    pub fn schedule(&self) -> &CommSchedule {
        &self.schedule
    }

    /// The version key the schedule is current for.
    pub fn key(&self) -> &ScheduleKey {
        &self.key
    }

    /// True when the schedule is exact for the table's current contents: no patch needed,
    /// and [`patch_schedule`] would return without communicating.  Local and free.
    pub fn is_current(&self, table: &IndexHashTable) -> bool {
        self.key == table.version(self.key.query())
    }

    /// Give up maintenance and keep just the schedule.
    pub fn into_schedule(self) -> CommSchedule {
        self.schedule
    }

    /// See [`CommSchedule::grow_ghost_len`]: raise the schedule's ghost-region bound when
    /// the table grew through *other* stamps while this schedule stayed current.
    pub fn grow_ghost_len(&mut self, len: usize) {
        self.schedule.grow_ghost_len(len);
    }
}

/// Statistics from one [`patch_schedule`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatchStats {
    /// False when the schedule was already current and nothing happened (no communication).
    pub refreshed: bool,
    /// Ghost rows unchanged between old and new selection (the amortised part).
    pub kept: usize,
    /// Ghost rows removed from this rank's fetch side.
    pub removed: usize,
    /// Ghost rows added on this rank's fetch side.
    pub added: usize,
    /// Edit records this rank shipped to owners (`removed + added`).
    pub edits_sent: usize,
    /// Edit records this rank received as an owner.
    pub edits_received: usize,
}

/// Build a schedule for `query` with the provenance needed to patch it later.
///
/// Collective.  The schedule is exactly [`build_schedule_from_table`]'s — maintenance adds
/// only the locally-kept row lists and the version key.
pub fn build_maintained(
    rank: &mut Rank,
    table: &IndexHashTable,
    query: StampQuery,
) -> MaintainedSchedule {
    let key = table.version(query);
    let schedule = build_schedule_from_table(rank, table, query);
    let rows = current_rows(rank.nprocs(), rank.rank(), table, query).0;
    MaintainedSchedule {
        key,
        schedule,
        rows,
    }
}

/// Collect the rows this rank currently requests from each owner, in schedule order, plus
/// the number of entries matching the query (for cost accounting).
fn current_rows(
    nprocs: usize,
    me: usize,
    table: &IndexHashTable,
    query: StampQuery,
) -> (Vec<Vec<Row>>, usize) {
    let mut rows: Vec<Vec<Row>> = vec![Vec::new(); nprocs];
    let mut matched = 0usize;
    for entry in table.entries_matching(query) {
        matched += 1;
        if let Some(slot) = entry.ghost_slot {
            let owner = entry.loc.owner as usize;
            debug_assert_ne!(owner, me, "owned entries never carry ghost slots");
            rows[owner].push((slot, entry.loc.offset));
        }
    }
    (rows, matched)
}

/// Patch `ms` so it matches what a from-scratch rebuild against `table` would produce.
///
/// Collective — all ranks must call it together (the no-op fast path is symmetric because
/// [`ScheduleKey`] comparisons are, so no rank communicates when any rank skips).  The diff
/// walks old and new row lists once per owner (both are in hash-insertion order, slots
/// strictly increasing), ships positional edit scripts through one fused log-depth routing
/// pass ([`mpsim::route_sparse`] — `ceil(log2 P)` messages per rank, no per-peer direct
/// messages), and owners splice their send lists — O(changed rows) bytes in O(log P)
/// messages instead of the rebuild's O(all rows) bytes in a dense O(P) all-to-all.
///
/// # Panics
/// Panics if `ms` was built for a different machine size than `rank`'s.
pub fn patch_schedule(
    rank: &mut Rank,
    table: &IndexHashTable,
    ms: &mut MaintainedSchedule,
) -> PatchStats {
    let nprocs = rank.nprocs();
    let me = rank.rank();
    assert_eq!(
        ms.schedule.nprocs(),
        nprocs,
        "schedule and machine span different sizes"
    );
    let query = ms.key.query();
    let key = table.version(query);
    if key == ms.key {
        // Other stamps may have grown the ghost region since; the selection is still
        // exact, so only the region bound needs refreshing — locally, for free.
        ms.schedule.grow_ghost_len(table.ghost_len());
        return PatchStats {
            refreshed: false,
            kept: ms.schedule.total_fetch(),
            ..PatchStats::default()
        };
    }

    // Diff the old request rows against the table's current selection, per owner.
    let (new_rows, matched) = current_rows(nprocs, me, table, query);
    let mut edits: Vec<Vec<Edit>> = vec![Vec::new(); nprocs];
    let mut stats = PatchStats {
        refreshed: true,
        ..PatchStats::default()
    };
    for p in 0..nprocs {
        diff_rows(&ms.rows[p], &new_rows[p], &mut edits[p], &mut stats);
    }
    stats.edits_sent = edits.iter().map(Vec::len).sum();

    // Ship the scripts through the fused log-depth routing pass: negotiation and delivery
    // in `ceil(log2 P)` messages per rank, total — no per-peer direct messages at all.
    let incoming = route_sparse(rank, &edits);
    stats.edits_received = incoming.iter().map(Vec::len).sum();
    // Patch cost: a twentieth of a unit per still-matching entry (reading the table) plus
    // a fifth per edit on each side — against the rebuild's fifth per *matched* entry.
    rank.charge_compute(
        matched as f64 * 0.05 + (stats.edits_sent + stats.edits_received) as f64 * 0.2,
    );

    // Owners splice the received edit scripts into their send lists.
    let mut send_lists = std::mem::take(&mut ms.schedule.send_lists);
    for (src, script) in incoming.iter().enumerate() {
        if !script.is_empty() {
            send_lists[src] = apply_edits(&send_lists[src], script);
        }
    }
    let perm_lists: Vec<Vec<u32>> = new_rows
        .iter()
        .map(|rows| rows.iter().map(|r| r.0).collect())
        .collect();
    ms.schedule = CommSchedule::from_parts(nprocs, send_lists, perm_lists, table.ghost_len());
    ms.rows = new_rows;
    ms.key = key;
    stats
}

/// Emit the edit script turning `old` into `new`.  Both lists are sorted by ghost slot
/// (strictly increasing — hash-insertion order per owner), so a single merge pass finds
/// kept rows, deletions (ascending old position) and insertions (ascending new position).
/// A slot reused for a different owner offset (possible after `clear_all`) becomes a
/// delete-plus-insert at the same position.
fn diff_rows(old: &[Row], new: &[Row], edits: &mut Vec<Edit>, stats: &mut PatchStats) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < old.len() && j < new.len() {
        let (oslot, ooff) = old[i];
        let (nslot, noff) = new[j];
        if oslot == nslot {
            if ooff != noff {
                edits.push((EDIT_DELETE, i as u32, 0));
                edits.push((EDIT_INSERT, j as u32, noff));
                stats.removed += 1;
                stats.added += 1;
            } else {
                stats.kept += 1;
            }
            i += 1;
            j += 1;
        } else if oslot < nslot {
            edits.push((EDIT_DELETE, i as u32, 0));
            stats.removed += 1;
            i += 1;
        } else {
            edits.push((EDIT_INSERT, j as u32, noff));
            stats.added += 1;
            j += 1;
        }
    }
    for (pos, _) in old.iter().enumerate().skip(i) {
        edits.push((EDIT_DELETE, pos as u32, 0));
        stats.removed += 1;
    }
    for (pos, &(_, noff)) in new.iter().enumerate().skip(j) {
        edits.push((EDIT_INSERT, pos as u32, noff));
        stats.added += 1;
    }
}

/// Apply one requester's edit script to the send list this rank keeps for it.
fn apply_edits(old: &[u32], script: &[Edit]) -> Vec<u32> {
    let mut deleted = vec![false; old.len()];
    let mut inserts: Vec<(u32, u32)> = Vec::new();
    let mut ndel = 0usize;
    for &(op, pos, off) in script {
        if op == EDIT_DELETE {
            deleted[pos as usize] = true;
            ndel += 1;
        } else {
            debug_assert!(
                inserts.last().is_none_or(|&(p, _)| p < pos),
                "insertions must arrive in ascending position order"
            );
            inserts.push((pos, off));
        }
    }
    let final_len = old.len() - ndel + inserts.len();
    let mut out = Vec::with_capacity(final_len);
    let mut kept = old
        .iter()
        .zip(&deleted)
        .filter(|(_, &d)| !d)
        .map(|(&o, _)| o);
    let mut ins = inserts.into_iter().peekable();
    for pos in 0..final_len as u32 {
        match ins.peek() {
            Some(&(p, off)) if p == pos => {
                out.push(off);
                ins.next();
            }
            _ => out.push(kept.next().expect("edit script shorter than send list")),
        }
    }
    debug_assert!(kept.next().is_none(), "edit script longer than send list");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{BlockDist, RegularDist};
    use crate::index_hash::Stamp;
    use crate::translation::TranslationTable;
    use mpsim::{run, MachineConfig};

    #[test]
    fn diff_and_apply_roundtrip_arbitrary_lists() {
        // Pure-logic check: for assorted old/new row lists, applying the diff's edit
        // script to the old offsets yields exactly the new offsets.
        let cases: Vec<(Vec<Row>, Vec<Row>)> = vec![
            (vec![], vec![]),
            (vec![], vec![(0, 4), (2, 9)]),
            (vec![(0, 4), (2, 9)], vec![]),
            (vec![(0, 4), (2, 9)], vec![(0, 4), (2, 9)]),
            (vec![(0, 4), (2, 9)], vec![(0, 4), (1, 7), (2, 9)]),
            (vec![(0, 4), (1, 7), (2, 9)], vec![(1, 7)]),
            // Slot reuse with a different offset (post-clear_all shape).
            (vec![(0, 4), (1, 7)], vec![(0, 5), (1, 7), (3, 2)]),
            (vec![(5, 1), (8, 2), (9, 3)], vec![(4, 6), (8, 2), (11, 0)]),
        ];
        for (old, new) in cases {
            let mut edits = Vec::new();
            let mut stats = PatchStats::default();
            diff_rows(&old, &new, &mut edits, &mut stats);
            let old_offsets: Vec<u32> = old.iter().map(|r| r.1).collect();
            let new_offsets: Vec<u32> = new.iter().map(|r| r.1).collect();
            assert_eq!(apply_edits(&old_offsets, &edits), new_offsets);
            assert_eq!(stats.kept + stats.removed, old.len());
            assert_eq!(stats.kept + stats.added, new.len());
        }
    }

    #[test]
    fn patched_schedule_equals_rebuild_after_drift() {
        let out = run(MachineConfig::new(4), |rank| {
            let dist = BlockDist::new(32, rank.nprocs());
            let ttable = TranslationTable::from_regular(&dist);
            let owned = dist.local_size(rank.rank());
            let mut h = IndexHashTable::new(rank.rank(), owned);
            let s = Stamp::new(0);
            let q = StampQuery::single(s);
            let first: Vec<usize> = (0..32).step_by(3).collect();
            h.hash_in_replicated(rank, &ttable, &first, s);
            let mut ms = build_maintained(rank, &h, q);
            assert!(ms.is_current(&h));
            // Drift: drop the stamp, re-hash a shifted pattern.
            h.clear_stamp(s);
            let second: Vec<usize> = (0..32).step_by(3).map(|g| (g + 1) % 32).collect();
            h.hash_in_replicated(rank, &ttable, &second, s);
            assert!(!ms.is_current(&h));
            let stats = patch_schedule(rank, &h, &mut ms);
            let rebuilt = build_schedule_from_table(rank, &h, q);
            (ms.schedule().clone(), rebuilt, stats)
        });
        for (patched, rebuilt, stats) in &out.results {
            assert_eq!(patched, rebuilt, "patched schedule must equal a rebuild");
            assert!(stats.refreshed);
        }
    }

    #[test]
    fn current_schedule_patches_for_free() {
        let out = run(MachineConfig::new(2), |rank| {
            let dist = BlockDist::new(8, rank.nprocs());
            let ttable = TranslationTable::from_regular(&dist);
            let mut h = IndexHashTable::new(rank.rank(), dist.local_size(rank.rank()));
            let s = Stamp::new(0);
            h.hash_in_replicated(rank, &ttable, &[0, 7, 3, 5], s);
            let mut ms = build_maintained(rank, &h, StampQuery::single(s));
            let before = ms.schedule().clone();
            let msgs_before = rank.stats().msgs_sent;
            let stats = patch_schedule(rank, &h, &mut ms);
            (
                stats,
                ms.schedule() == &before,
                rank.stats().msgs_sent - msgs_before,
            )
        });
        for (stats, unchanged, msgs) in &out.results {
            assert!(!stats.refreshed);
            assert_eq!(stats.edits_sent + stats.edits_received, 0);
            assert!(*unchanged);
            assert_eq!(*msgs, 0, "a current schedule must not communicate");
        }
    }
}
