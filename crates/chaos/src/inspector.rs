//! The inspector (Phase E): index analysis and schedule generation.
//!
//! The paper splits the inspector into two steps precisely so that adaptive applications
//! can repeat only the part that changed:
//!
//! 1. **index analysis** — hash the indirection arrays into the stamped
//!    [`IndexHashTable`], removing duplicates and translating global to local indices
//!    ([`Inspector::hash_indices`]);
//! 2. **schedule generation** — read the hash-table entries selected by a [`StampQuery`]
//!    and construct a [`CommSchedule`] ([`Inspector::build_schedule`]).
//!
//! When an indirection array adapts (CHARMM's non-bonded list), the old stamp is cleared,
//! the new array is hashed (mostly hitting existing entries), and only the schedule is
//! rebuilt — the translation results and ghost-slot assignments persist in the table.

use mpsim::Rank;

use crate::darray::LocalRef;
use crate::index_hash::{IndexHashTable, Stamp, StampQuery};
use crate::maintained::{MaintainedSchedule, PatchStats};
use crate::schedule::CommSchedule;
use crate::translation::TranslationTable;
use crate::{Global, ProcId};

/// High-level inspector for the common case of a **replicated** translation table (the
/// configuration both applications in the paper use).  For distributed or paged tables,
/// drive an [`IndexHashTable`] directly with [`IndexHashTable::hash_in`] and build the
/// schedule with [`build_schedule_from_table`].
pub struct Inspector<'t> {
    ttable: &'t TranslationTable,
    my_rank: ProcId,
    table: IndexHashTable,
}

impl<'t> Inspector<'t> {
    /// Create an inspector for the data distribution described by `ttable`.
    ///
    /// # Panics
    /// Panics if `ttable` is not replicated (use the lower-level API in that case).
    pub fn new(ttable: &'t TranslationTable, my_rank: ProcId) -> Self {
        assert!(
            ttable.is_replicated(),
            "Inspector requires a replicated translation table; \
             use IndexHashTable::hash_in with a distributed table"
        );
        let owned = ttable.local_size(my_rank);
        Self {
            ttable,
            my_rank,
            table: IndexHashTable::new(my_rank, owned),
        }
    }

    /// The rank this inspector belongs to.
    pub fn my_rank(&self) -> ProcId {
        self.my_rank
    }

    /// Access the underlying hash table (e.g. to inspect entry counts in tests).
    pub fn hash_table(&self) -> &IndexHashTable {
        &self.table
    }

    /// Index analysis: hash one indirection array under `stamp` and return the translated
    /// local references in input order.  Purely local (the table is replicated), but the
    /// cost of hashing is charged to the calling rank's modeled computation time.
    pub fn hash_indices(
        &mut self,
        rank: &mut Rank,
        globals: &[Global],
        stamp: Stamp,
    ) -> Vec<LocalRef> {
        self.table
            .hash_in_replicated(rank, self.ttable, globals, stamp)
    }

    /// Clear `stamp` so the indirection array it identified can be re-hashed after it
    /// adapts.  Translation results and ghost slots are retained.
    pub fn clear_stamp(&mut self, stamp: Stamp) {
        self.table.clear_stamp(stamp);
    }

    /// Ghost-region length arrays used with this inspector's schedules must provide.
    pub fn ghost_len(&self) -> usize {
        self.table.ghost_len()
    }

    /// Schedule generation: build a communication schedule for the hash-table entries
    /// matching `query`.  Collective — all ranks must call it together.
    pub fn build_schedule(&self, rank: &mut Rank, query: StampQuery) -> CommSchedule {
        build_schedule_from_table(rank, &self.table, query)
    }

    /// Like [`Inspector::build_schedule`], but keeps the provenance needed to patch the
    /// schedule incrementally after the indirection drifts (see [`crate::maintained`]).
    /// Collective.
    pub fn build_maintained(&self, rank: &mut Rank, query: StampQuery) -> MaintainedSchedule {
        crate::maintained::build_maintained(rank, &self.table, query)
    }

    /// Bring a maintained schedule up to date with this inspector's hash table, shipping
    /// only the drifted rows.  Collective; a no-op (without communication) when the
    /// schedule is already current.
    pub fn sync_schedule(&self, rank: &mut Rank, ms: &mut MaintainedSchedule) -> PatchStats {
        crate::maintained::patch_schedule(rank, &self.table, ms)
    }
}

/// Schedule generation from any [`IndexHashTable`] (Figure 6's `CHAOS_schedule`).
///
/// Collective.  Each rank extracts its off-processor entries matching `query`, groups the
/// requests by owning processor, and a single all-to-all informs every owner which of its
/// elements to send; the requesting side keeps the ghost slots in the same order as its
/// requests, which becomes the permutation list.
///
/// For large tables the extraction sweep runs across [`crate::par::workers`] threads:
/// each worker buckets a contiguous chunk of the table's slot array, and the per-chunk
/// buckets are concatenated in chunk order — reproducing the sequential insertion order
/// exactly, so the resulting schedule is byte-identical at any worker count.
pub fn build_schedule_from_table(
    rank: &mut Rank,
    table: &IndexHashTable,
    query: StampQuery,
) -> CommSchedule {
    let nprocs = rank.nprocs();
    let me = rank.rank();
    let chunks = crate::par::par_map_chunks(table.entries_in_order(), |slots| {
        let mut requests: Vec<Vec<u64>> = vec![Vec::new(); nprocs];
        let mut perm_lists: Vec<Vec<u32>> = vec![Vec::new(); nprocs];
        let mut matched = 0usize;
        for entry in slots.iter().filter(|e| query.matches(e.stamps)) {
            matched += 1;
            if let Some(slot) = entry.ghost_slot {
                let owner = entry.loc.owner as usize;
                debug_assert_ne!(owner, me, "owned entries never carry ghost slots");
                requests[owner].push(entry.loc.offset as u64);
                perm_lists[owner].push(slot);
            }
        }
        (matched, requests, perm_lists)
    });
    let mut requests: Vec<Vec<u64>> = vec![Vec::new(); nprocs];
    let mut perm_lists: Vec<Vec<u32>> = vec![Vec::new(); nprocs];
    let mut matched = 0usize;
    for (chunk_matched, chunk_requests, chunk_perms) in chunks {
        matched += chunk_matched;
        for (p, mut reqs) in chunk_requests.into_iter().enumerate() {
            requests[p].append(&mut reqs);
        }
        for (p, mut perms) in chunk_perms.into_iter().enumerate() {
            perm_lists[p].append(&mut perms);
        }
    }
    // Schedule construction cost: proportional to the number of selected entries.
    rank.charge_compute(matched as f64 * 0.2);
    let incoming = rank.all_to_all(&requests);
    let send_lists: Vec<Vec<u32>> = incoming
        .into_iter()
        .map(|offs| offs.into_iter().map(|o| o as u32).collect())
        .collect();
    CommSchedule::from_parts(nprocs, send_lists, perm_lists, table.ghost_len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{BlockDist, RegularDist};
    use mpsim::{run, MachineConfig};

    #[test]
    fn schedule_pairs_send_and_fetch_sizes_consistently() {
        // 3 ranks, 12 elements.  Every rank references the two elements to the "right" of
        // its block, so each rank should fetch 2 and send 2.
        let out = run(MachineConfig::new(3), |rank| {
            let dist = BlockDist::new(12, rank.nprocs());
            let ttable = TranslationTable::from_regular(&dist);
            let mut insp = Inspector::new(&ttable, rank.rank());
            let my_range = dist.local_range(rank.rank());
            let wanted: Vec<usize> = (0..2).map(|k| (my_range.end + k) % 12).collect();
            insp.hash_indices(rank, &wanted, Stamp::new(0));
            let sched = insp.build_schedule(rank, StampQuery::single(Stamp::new(0)));
            (sched.total_fetch(), sched.total_send(), sched.ghost_len())
        });
        for (fetch, send, ghost) in &out.results {
            assert_eq!(*fetch, 2);
            assert_eq!(*send, 2);
            assert_eq!(*ghost, 2);
        }
    }

    #[test]
    fn duplicates_are_fetched_once() {
        let out = run(MachineConfig::new(2), |rank| {
            let dist = BlockDist::new(8, rank.nprocs());
            let ttable = TranslationTable::from_regular(&dist);
            let mut insp = Inspector::new(&ttable, rank.rank());
            // Reference the same off-processor element five times.
            let other = if rank.rank() == 0 { 6 } else { 1 };
            let refs = insp.hash_indices(rank, &[other; 5], Stamp::new(0));
            let sched = insp.build_schedule(rank, StampQuery::single(Stamp::new(0)));
            (refs, sched.total_fetch())
        });
        for (refs, fetch) in &out.results {
            assert_eq!(*fetch, 1, "software caching must deduplicate fetches");
            assert!(refs.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn incremental_schedule_fetches_only_new_elements() {
        let out = run(MachineConfig::new(2), |rank| {
            let dist = BlockDist::new(10, rank.nprocs());
            let ttable = TranslationTable::from_regular(&dist);
            let mut insp = Inspector::new(&ttable, rank.rank());
            let sa = Stamp::new(0);
            let sb = Stamp::new(1);
            // Array a references {5, 7} off rank 0's block; array b references {5, 8}.
            let (a, b) = if rank.rank() == 0 {
                (vec![5usize, 7, 1], vec![5usize, 8, 2])
            } else {
                (vec![0usize, 2, 6], vec![0usize, 4, 7])
            };
            insp.hash_indices(rank, &a, sa);
            let sched_a = insp.build_schedule(rank, StampQuery::single(sa));
            insp.hash_indices(rank, &b, sb);
            let inc_b = insp.build_schedule(rank, StampQuery::minus(&[sb], &[sa]));
            let merged = insp.build_schedule(rank, StampQuery::any_of(&[sa, sb]));
            (
                sched_a.total_fetch(),
                inc_b.total_fetch(),
                merged.total_fetch(),
            )
        });
        for (a_fetch, inc_fetch, merged_fetch) in &out.results {
            assert_eq!(*a_fetch, 2);
            assert_eq!(
                *inc_fetch, 1,
                "incremental schedule fetches only the new element"
            );
            assert_eq!(*merged_fetch, 3);
        }
    }

    #[test]
    fn rebuilding_after_adaptation_reuses_ghost_slots() {
        let out = run(MachineConfig::new(2), |rank| {
            let dist = BlockDist::new(20, rank.nprocs());
            let ttable = TranslationTable::from_regular(&dist);
            let mut insp = Inspector::new(&ttable, rank.rank());
            let s = Stamp::new(3);
            let first: Vec<usize> = (0..20).step_by(2).collect();
            insp.hash_indices(rank, &first, s);
            let sched1 = insp.build_schedule(rank, StampQuery::single(s));
            let ghost1 = insp.ghost_len();
            // Adapt: drop one index, add one new one.
            let mut second = first.clone();
            second[0] = 1;
            insp.clear_stamp(s);
            insp.hash_indices(rank, &second, s);
            let sched2 = insp.build_schedule(rank, StampQuery::single(s));
            let ghost2 = insp.ghost_len();
            (sched1.total_fetch(), sched2.total_fetch(), ghost1, ghost2)
        });
        for (f1, f2, g1, g2) in &out.results {
            // Both versions fetch the same number of off-processor elements (10 of the 20
            // referenced minus the 10 owned... exactly half are off-processor each time).
            assert_eq!(f1, f2);
            // The ghost region grows by at most one slot (the single new index).
            assert!(g2 - g1 <= 1);
        }
    }

    #[test]
    fn schedule_send_lists_reference_owned_offsets() {
        let out = run(MachineConfig::new(4), |rank| {
            let dist = BlockDist::new(16, rank.nprocs());
            let ttable = TranslationTable::from_regular(&dist);
            let mut insp = Inspector::new(&ttable, rank.rank());
            // Everyone references every element; every owner must send each of its 4
            // elements to the other 3 ranks.
            let all: Vec<usize> = (0..16).collect();
            insp.hash_indices(rank, &all, Stamp::new(0));
            let sched = insp.build_schedule(rank, StampQuery::single(Stamp::new(0)));
            let owned = dist.local_size(rank.rank());
            let ok = sched
                .send_lists
                .iter()
                .flatten()
                .all(|&off| (off as usize) < owned);
            (ok, sched.total_send(), sched.total_fetch())
        });
        for (ok, send, fetch) in &out.results {
            assert!(ok);
            assert_eq!(*send, 12);
            assert_eq!(*fetch, 12);
        }
    }

    #[test]
    fn parallel_schedule_build_is_byte_identical_to_sequential() {
        // A table large enough to cross the parallel threshold: every rank references all
        // n elements, so each table holds n slots (> 2 * PAR_MIN_ENTRIES).  The schedule
        // built with 4 workers must equal the sequential one field-for-field —
        // CommSchedule derives Eq, so this pins request/permutation ordering exactly.
        let n = 3 * crate::par::PAR_MIN_ENTRIES;
        let out = run(MachineConfig::new(2), move |rank| {
            let dist = BlockDist::new(n, rank.nprocs());
            let ttable = TranslationTable::from_regular(&dist);
            let mut insp = Inspector::new(&ttable, rank.rank());
            // A non-monotone pattern so permutation lists carry real structure.
            let refs: Vec<usize> = (0..n).map(|i| (i * 7 + 3) % n).collect();
            insp.hash_indices(rank, &refs, Stamp::new(0));
            let query = StampQuery::single(Stamp::new(0));
            let seq = insp.build_schedule(rank, query);
            let par = crate::par::with_workers(4, || insp.build_schedule(rank, query));
            assert_eq!(seq, par, "worker count must not change the schedule");
            seq.total_fetch()
        });
        for fetch in &out.results {
            assert_eq!(*fetch, n / 2, "each rank fetches the other rank's half");
        }
    }

    #[test]
    #[should_panic(expected = "replicated translation table")]
    fn inspector_rejects_distributed_tables() {
        let out = run(MachineConfig::new(2), |rank| {
            let map_dist = BlockDist::new(8, rank.nprocs());
            let local: Vec<usize> = map_dist.local_globals(rank.rank()).map(|g| g % 2).collect();
            let t = TranslationTable::distributed_from_map(rank, &local, &map_dist).unwrap();
            if rank.rank() == 0 {
                let _ = Inspector::new(&t, rank.rank());
            }
        });
        drop(out);
    }
}
