//! A stamp-keyed cache of maintained schedules, reused across phases and time steps.
//!
//! Long-lived adaptive runs ask for the same few schedules over and over — CHARMM wants
//! its bonded (`IB + JB`) and non-bonded (`NB`) schedules every step, DSMC wants its
//! migration schedule every MOVE phase.  [`ScheduleCache`] keeps a small set of
//! [`MaintainedSchedule`]s keyed by *(table identity, query)* and, on each request,
//! compares the stored [`ScheduleKey`](crate::index_hash::ScheduleKey) against the
//! table's current version:
//!
//! * **hit** — key unchanged: return the schedule with **no communication at all**;
//! * **patch** — same table and query but stamps drifted: [`patch_schedule`] splices the
//!   delta (cost proportional to the drift, not the schedule);
//! * **miss** — unknown (table, query): full [`build_maintained`] rebuild, inserted into
//!   the cache, evicting the least-recently-used entry if at capacity.
//!
//! Staleness is impossible by construction: every mutation of an [`IndexHashTable`]
//! advances the version counters its keys are built from, so a hit proves the stored
//! schedule is exact (pinned by the property sweep in `tests/schedule_delta.rs`).
//!
//! # Collective discipline
//!
//! [`ScheduleCache::schedule`] is collective, and the hit path skips communication — safe
//! only because every rank takes the same branch.  That holds as long as the SPMD program
//! mutates tables and queries the cache at the same program points on every rank (the
//! normal discipline for any collective).  The keys count *operations*, not contents, so
//! rank-dependent data never desynchronises the decision; a rank-dependent *call sequence*
//! (one rank re-hashing while another skips straight to the cache) is a program error of
//! the same kind as calling any collective from a subset of ranks.

use mpsim::Rank;

use crate::index_hash::{IndexHashTable, StampQuery};
use crate::maintained::{build_maintained, patch_schedule, MaintainedSchedule, PatchStats};
use crate::schedule::CommSchedule;

/// Running counters for one [`ScheduleCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from the cache with no communication.
    pub hits: u64,
    /// Requests for an unknown (table, query) — full collective rebuild.
    pub misses: u64,
    /// Requests answered by patching a cached schedule forward.
    pub patches: u64,
    /// Entries evicted to make room (least recently used first).
    pub evictions: u64,
}

struct CacheSlot {
    ms: MaintainedSchedule,
    last_used: u64,
}

/// A bounded, deterministically-evicting cache of [`MaintainedSchedule`]s.
///
/// Lookup is a linear scan — the working set is a handful of schedules, and scan order
/// must be identical on every rank anyway (see the module docs).
pub struct ScheduleCache {
    capacity: usize,
    clock: u64,
    slots: Vec<CacheSlot>,
    stats: CacheStats,
}

impl ScheduleCache {
    /// Create a cache holding at most `capacity` schedules.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a schedule cache needs room for one schedule");
        Self {
            capacity,
            clock: 0,
            slots: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// Counters since construction (or the last [`ScheduleCache::clear`]).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of schedules currently cached.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Drop every cached schedule and reset the counters.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.stats = CacheStats::default();
        self.clock = 0;
    }

    /// Drop cached schedules built from `table` (by identity), returning how many were
    /// dropped.  Local bookkeeping only — useful when a table is about to be discarded so
    /// its slots free up early instead of waiting for LRU eviction.
    pub fn retire_table(&mut self, table: &IndexHashTable) -> usize {
        let before = self.slots.len();
        self.slots
            .retain(|s| s.ms.key().table_id() != table.table_id());
        before - self.slots.len()
    }

    /// The schedule for `query` against `table`, current as of the table's contents.
    ///
    /// Collective — all ranks must call together (hit/patch/miss branches are
    /// machine-wide consistent, see the module docs).  Returns the schedule and what the
    /// cache did to produce it.
    pub fn schedule(
        &mut self,
        rank: &mut Rank,
        table: &IndexHashTable,
        query: StampQuery,
    ) -> (&CommSchedule, CacheOutcome) {
        self.clock += 1;
        let now = self.clock;
        let current = table.version(query);
        if let Some(i) = self
            .slots
            .iter()
            .position(|s| s.ms.key().same_source(&current))
        {
            self.slots[i].last_used = now;
            if *self.slots[i].ms.key() == current {
                // Other stamps may have grown the table's ghost region since this entry
                // was stored; refresh the (local) bound so a hit stays byte-identical to
                // a rebuild.
                self.slots[i].ms.grow_ghost_len(table.ghost_len());
                self.stats.hits += 1;
                return (self.slots[i].ms.schedule(), CacheOutcome::Hit);
            }
            let patch = patch_schedule(rank, table, &mut self.slots[i].ms);
            self.stats.patches += 1;
            return (self.slots[i].ms.schedule(), CacheOutcome::Patched(patch));
        }
        let ms = build_maintained(rank, table, query);
        self.stats.misses += 1;
        if self.slots.len() == self.capacity {
            // Deterministic LRU: smallest last-used clock wins; the scan takes the first
            // (lowest index) on ties, and clocks advance identically on every rank.
            let victim = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i)
                .expect("capacity > 0, so a full cache has a victim");
            self.slots.remove(victim);
            self.stats.evictions += 1;
        }
        self.slots.push(CacheSlot { ms, last_used: now });
        let slot = self.slots.last().expect("just pushed");
        (slot.ms.schedule(), CacheOutcome::Missed)
    }

    /// Peek at the cached schedule for `(table, query)` **if it is current** — no
    /// communication, no statistics, no recency update.  `None` means a collective
    /// [`ScheduleCache::schedule`] call would patch or rebuild.
    pub fn lookup_current(
        &self,
        table: &IndexHashTable,
        query: StampQuery,
    ) -> Option<&CommSchedule> {
        let current = table.version(query);
        self.slots
            .iter()
            .find(|s| *s.ms.key() == current)
            .map(|s| s.ms.schedule())
    }
}

/// What [`ScheduleCache::schedule`] did to satisfy a request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CacheOutcome {
    /// Served as-is; no communication happened.
    Hit,
    /// A cached schedule was patched forward to the table's current contents.
    Patched(PatchStats),
    /// Built from scratch and inserted.
    Missed,
}
