//! Translation tables: the CHAOS representation of irregular distributions.
//!
//! A translation table is "a globally accessible data structure which lists the home
//! processor and offset address of each data array element" (§3.1).  The paper notes that
//! the table "may be replicated, distributed regularly, or stored in a paged fashion,
//! depending on storage requirements" — all three storage modes are implemented here:
//!
//! * [`TranslationTable::replicated_from_map`] — every rank holds the whole table; lookups
//!   are purely local (what the CHARMM and DSMC parallelisations in the paper use).
//! * [`TranslationTable::distributed_from_map`] — each rank holds the block of table
//!   entries for a contiguous range of global indices; lookups of remote entries require a
//!   collective dereference (an all-to-all of queries and answers).
//! * [`TranslationTable::paged_from_map`] — like the distributed table, but remote entries
//!   are fetched a *page* at a time and cached, so repeated lookups of nearby indices (the
//!   common case for adaptive indirection arrays that change slowly) hit the cache.
//!
//! The map array from which a table is built follows the Fortran-D convention (§5.1.1):
//! `map[g] = p` assigns global element `g` to processor `p`; local offsets are assigned in
//! increasing global-index order within each processor.

use std::collections::HashMap;

use mpsim::{alltoallv, ExchangePlan, Rank};

use crate::distribution::{BlockDist, RegularDist};
use crate::{ChaosError, Global, ProcId};

/// The home of one distributed-array element: owning processor and local offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Loc {
    /// Owning processor.
    pub owner: u32,
    /// Offset within the owner's local section.
    pub offset: u32,
}

impl Loc {
    /// Convenience constructor.
    pub fn new(owner: ProcId, offset: usize) -> Self {
        Loc {
            owner: owner as u32,
            offset: offset as u32,
        }
    }
}

/// How the table entries are stored across the machine.
enum Storage {
    /// Every rank holds every entry.
    Replicated(Vec<Loc>),
    /// Each rank holds the entries for the block of global indices assigned to it by
    /// `home`; nothing is cached.
    Distributed { home: BlockDist, local: Vec<Loc> },
    /// Like `Distributed`, but remote entries are fetched in pages of `page_size` entries
    /// and cached locally.
    Paged {
        home: BlockDist,
        local: Vec<Loc>,
        page_size: usize,
        cache: HashMap<usize, Vec<Loc>>,
    },
}

/// A translation table describing an irregular distribution of `global_size` elements over
/// `nprocs` processors.
pub struct TranslationTable {
    global_size: usize,
    nprocs: usize,
    /// Number of elements owned by each processor (replicated on every rank).
    local_sizes: Vec<usize>,
    storage: Storage,
}

impl TranslationTable {
    // ------------------------------------------------------------------ construction --

    /// Build a replicated table describing a *regular* distribution.  Purely local.
    pub fn from_regular<D: RegularDist>(dist: &D) -> Self {
        let n = dist.global_size();
        let mut entries = Vec::with_capacity(n);
        for g in 0..n {
            entries.push(Loc::new(dist.owner(g), dist.local_offset(g)));
        }
        let local_sizes = (0..dist.nprocs()).map(|p| dist.local_size(p)).collect();
        TranslationTable {
            global_size: n,
            nprocs: dist.nprocs(),
            local_sizes,
            storage: Storage::Replicated(entries),
        }
    }

    /// Build a replicated table describing the given BLOCK distribution.  Block ownership
    /// is pure arithmetic every rank can evaluate on its own, so no rank handle is needed
    /// and nothing is charged to the cost model — unlike the `*_from_map` constructors,
    /// which really communicate.
    pub fn replicated_from_block(dist: &BlockDist) -> Self {
        Self::from_regular(dist)
    }

    /// Build a **replicated** table from a block-distributed map array.
    ///
    /// `local_map` holds this rank's slice of the Fortran-D map array: entry `i` gives the
    /// owner of global element `map_dist.global_index(rank, i)`.  Collective: all ranks
    /// must call with their own slice.
    pub fn replicated_from_map(
        rank: &mut Rank,
        local_map: &[ProcId],
        map_dist: &BlockDist,
    ) -> Result<Self, ChaosError> {
        let nprocs = rank.nprocs();
        validate_map(local_map, nprocs)?;
        assert_eq!(
            local_map.len(),
            map_dist.local_size(rank.rank()),
            "local map slice does not match the map distribution"
        );
        // Gather the full map on every rank, then number elements per owner in global order.
        let gathered = rank.all_gather(&local_map.iter().map(|&p| p as u32).collect::<Vec<_>>());
        let mut full_map = Vec::with_capacity(map_dist.global_size());
        for part in gathered {
            full_map.extend(part.into_iter().map(|p| p as usize));
        }
        let mut next_offset = vec![0usize; nprocs];
        let mut entries = Vec::with_capacity(full_map.len());
        for &owner in &full_map {
            let off = next_offset[owner];
            next_offset[owner] += 1;
            entries.push(Loc::new(owner, off));
        }
        Ok(TranslationTable {
            global_size: full_map.len(),
            nprocs,
            local_sizes: next_offset,
            storage: Storage::Replicated(entries),
        })
    }

    /// Build a **replicated** table directly from an already-replicated map array (entry
    /// `g` names the owner of global element `g`).  Purely local — every rank holds the
    /// whole map, so unlike [`TranslationTable::replicated_from_map`] no gather is needed.
    /// Elements are numbered per owner in global-index order, exactly as the `*_from_map`
    /// constructors do.
    pub fn replicated_from_full_map(map: &[ProcId], nprocs: usize) -> Result<Self, ChaosError> {
        validate_map(map, nprocs)?;
        let mut next_offset = vec![0usize; nprocs];
        let mut entries = Vec::with_capacity(map.len());
        for &owner in map {
            let off = next_offset[owner];
            next_offset[owner] += 1;
            entries.push(Loc::new(owner, off));
        }
        Ok(TranslationTable {
            global_size: map.len(),
            nprocs,
            local_sizes: next_offset,
            storage: Storage::Replicated(entries),
        })
    }

    /// Build a **distributed** table from a block-distributed map array.  Each rank keeps
    /// only the entries for its slice of the global index space; remote lookups go through
    /// [`TranslationTable::lookup`]'s collective dereference.
    pub fn distributed_from_map(
        rank: &mut Rank,
        local_map: &[ProcId],
        map_dist: &BlockDist,
    ) -> Result<Self, ChaosError> {
        let (local, local_sizes) = Self::number_local(rank, local_map, map_dist)?;
        Ok(TranslationTable {
            global_size: map_dist.global_size(),
            nprocs: rank.nprocs(),
            local_sizes,
            storage: Storage::Distributed {
                home: *map_dist,
                local,
            },
        })
    }

    /// Build a **paged** table from a block-distributed map array.  Remote entries are
    /// fetched `page_size` at a time and cached.
    pub fn paged_from_map(
        rank: &mut Rank,
        local_map: &[ProcId],
        map_dist: &BlockDist,
        page_size: usize,
    ) -> Result<Self, ChaosError> {
        assert!(page_size > 0, "page size must be positive");
        let (local, local_sizes) = Self::number_local(rank, local_map, map_dist)?;
        Ok(TranslationTable {
            global_size: map_dist.global_size(),
            nprocs: rank.nprocs(),
            local_sizes,
            storage: Storage::Paged {
                home: *map_dist,
                local,
                page_size,
                cache: HashMap::new(),
            },
        })
    }

    /// Shared numbering step for the distributed/paged tables: compute, for each entry in
    /// this rank's slice of the map, the owner and the owner-local offset, without ever
    /// materialising the whole map on one rank.
    fn number_local(
        rank: &mut Rank,
        local_map: &[ProcId],
        map_dist: &BlockDist,
    ) -> Result<(Vec<Loc>, Vec<usize>), ChaosError> {
        let nprocs = rank.nprocs();
        validate_map(local_map, nprocs)?;
        assert_eq!(
            local_map.len(),
            map_dist.local_size(rank.rank()),
            "local map slice does not match the map distribution"
        );
        // Count how many elements of each owner appear in this rank's slice.
        let mut my_counts = vec![0usize; nprocs];
        for &owner in local_map {
            my_counts[owner] += 1;
        }
        // Every rank learns every rank's per-owner counts; the starting offset for owner p
        // on this rank is the sum of owner-p counts on all lower-numbered map slices.
        let all_counts = rank.all_gather(&my_counts);
        let mut start = vec![0usize; nprocs];
        for lower in &all_counts[..rank.rank()] {
            for (s, c) in start.iter_mut().zip(lower) {
                *s += c;
            }
        }
        let mut local_sizes = vec![0usize; nprocs];
        for counts in &all_counts {
            for (t, c) in local_sizes.iter_mut().zip(counts) {
                *t += c;
            }
        }
        let mut next = start;
        let mut local = Vec::with_capacity(local_map.len());
        for &owner in local_map {
            local.push(Loc::new(owner, next[owner]));
            next[owner] += 1;
        }
        Ok((local, local_sizes))
    }

    // ----------------------------------------------------------------------- queries --

    /// Total number of elements described by the table.
    pub fn global_size(&self) -> usize {
        self.global_size
    }

    /// Number of processors.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Number of elements owned by processor `p` under this distribution.
    pub fn local_size(&self, p: ProcId) -> usize {
        self.local_sizes[p]
    }

    /// True if lookups never require communication.
    pub fn is_replicated(&self) -> bool {
        matches!(self.storage, Storage::Replicated(_))
    }

    /// Look up the homes of `queries`.
    ///
    /// For a replicated table this is local.  For distributed and paged tables it is a
    /// **collective** operation — every rank must call it in the same program step, even
    /// with an empty query list — because remote entries are dereferenced with an
    /// all-to-all exchange.
    pub fn lookup(&mut self, rank: &mut Rank, queries: &[Global]) -> Vec<Loc> {
        for &q in queries {
            assert!(
                q < self.global_size,
                "translation lookup of index {q} outside array of size {}",
                self.global_size
            );
        }
        match &mut self.storage {
            Storage::Replicated(entries) => queries.iter().map(|&g| entries[g]).collect(),
            Storage::Distributed { home, local } => {
                let home = *home;
                lookup_remote(rank, &home, local, queries)
            }
            Storage::Paged {
                home,
                local,
                page_size,
                cache,
            } => {
                let home = *home;
                lookup_paged(rank, &home, local, *page_size, cache, queries)
            }
        }
    }

    /// Non-collective lookup.  Returns `Some(loc)` for a replicated table and `None`
    /// for distributed/paged storage, where the entry may live on another rank — those
    /// tables must be dereferenced through the collective [`TranslationTable::lookup`]
    /// (or converted with [`TranslationTable::replicate`] first).  Callers that require
    /// replication by contract spell it out with
    /// `.expect("... requires a replicated translation table")`.
    ///
    /// # Panics
    /// Panics if `g` is outside the table's global index space (a caller bug regardless
    /// of storage mode).
    pub fn lookup_local(&self, g: Global) -> Option<Loc> {
        assert!(
            g < self.global_size,
            "translation lookup of index {g} outside array of size {}",
            self.global_size
        );
        match &self.storage {
            Storage::Replicated(entries) => Some(entries[g]),
            _ => None,
        }
    }

    /// The global indices owned by the calling rank, in local-offset order.  Collective
    /// for distributed/paged tables.
    pub fn owned_globals(&mut self, rank: &mut Rank) -> Vec<Global> {
        let me = rank.rank() as u32;
        match &self.storage {
            Storage::Replicated(entries) => {
                let mut owned: Vec<(u32, Global)> = entries
                    .iter()
                    .enumerate()
                    .filter(|(_, loc)| loc.owner == me)
                    .map(|(g, loc)| (loc.offset, g))
                    .collect();
                owned.sort_unstable();
                owned.into_iter().map(|(_, g)| g).collect()
            }
            Storage::Distributed { home, local } | Storage::Paged { home, local, .. } => {
                // Each rank sends, for every entry it stores, (offset, global) to the
                // entry's owner; owners sort by offset.
                let nprocs = rank.nprocs();
                let mut sends: Vec<Vec<(u64, u64)>> = vec![Vec::new(); nprocs];
                let base = home.local_range(rank.rank()).start;
                for (i, loc) in local.iter().enumerate() {
                    sends[loc.owner as usize].push((loc.offset as u64, (base + i) as u64));
                }
                let received = rank.all_to_all(&sends);
                let mut owned: Vec<(u64, u64)> = received.into_iter().flatten().collect();
                owned.sort_unstable();
                owned.into_iter().map(|(_, g)| g as usize).collect()
            }
        }
    }

    /// Number of remote pages currently held in the page cache.  Zero for non-paged
    /// tables.  Local.
    pub fn cached_page_count(&self) -> usize {
        match &self.storage {
            Storage::Paged { cache, .. } => cache.len(),
            _ => 0,
        }
    }

    /// Drop every cached page covering any of `globals`, returning how many pages were
    /// dropped.  Local, and a no-op for non-paged tables.
    ///
    /// This is the paged table's delta-maintenance hook: when a remap changes where some
    /// elements live, their home entries are rewritten but copies may survive in page
    /// caches.  Invalidating exactly the touched pages keeps the rest of the cache warm
    /// while guaranteeing the next lookup re-fetches current locations — cached pages are
    /// never updated in place, because a remap renumbers owner offsets in global order
    /// and an in-place edit could not see the neighbouring entries it would need.
    pub fn invalidate_pages(&mut self, globals: &[Global]) -> usize {
        match &mut self.storage {
            Storage::Paged {
                page_size, cache, ..
            } => {
                let ps = *page_size;
                let before = cache.len();
                for &g in globals {
                    cache.remove(&(g / ps));
                }
                before - cache.len()
            }
            _ => 0,
        }
    }

    /// Replace the table with a replicated copy of itself (collective).  Used when an
    /// application decides the lookup traffic of a distributed table is not worth the
    /// memory savings.
    pub fn replicate(&mut self, rank: &mut Rank) {
        if self.is_replicated() {
            return;
        }
        let (home, local) = match &self.storage {
            Storage::Distributed { home, local } | Storage::Paged { home, local, .. } => {
                (*home, local.clone())
            }
            Storage::Replicated(_) => unreachable!(),
        };
        let packed: Vec<(u32, u32)> = local.iter().map(|l| (l.owner, l.offset)).collect();
        let gathered = rank.all_gather(&packed);
        let mut entries = Vec::with_capacity(self.global_size);
        for (p, part) in gathered.into_iter().enumerate() {
            debug_assert_eq!(part.len(), home.local_size(p));
            entries.extend(
                part.into_iter()
                    .map(|(owner, offset)| Loc { owner, offset }),
            );
        }
        self.storage = Storage::Replicated(entries);
    }
}

fn validate_map(local_map: &[ProcId], nprocs: usize) -> Result<(), ChaosError> {
    for (i, &owner) in local_map.iter().enumerate() {
        if owner >= nprocs {
            return Err(ChaosError::OwnerOutOfRange {
                index: i,
                owner,
                nprocs,
            });
        }
    }
    Ok(())
}

/// Collective dereference against a block-distributed table.
fn lookup_remote(rank: &mut Rank, home: &BlockDist, local: &[Loc], queries: &[Global]) -> Vec<Loc> {
    let nprocs = rank.nprocs();
    let me = rank.rank();
    let my_base = home.local_range(me).start;
    // Split queries by the rank that stores the entry.
    let mut by_home: Vec<Vec<u64>> = vec![Vec::new(); nprocs];
    let mut placement: Vec<(ProcId, usize)> = Vec::with_capacity(queries.len());
    for &g in queries {
        let h = home.owner(g);
        placement.push((h, by_home[h].len()));
        by_home[h].push(g as u64);
    }
    // Exchange query lists, answer from the local slice, exchange answers back.
    let incoming = rank.all_to_all(&by_home);
    let answers: Vec<Vec<(u32, u32)>> = incoming
        .iter()
        .map(|qs| {
            qs.iter()
                .map(|&g| {
                    let loc = local[g as usize - my_base];
                    (loc.owner, loc.offset)
                })
                .collect()
        })
        .collect();
    let returned = rank.all_to_all(&answers);
    placement
        .into_iter()
        .map(|(h, idx)| {
            let (owner, offset) = returned[h][idx];
            Loc { owner, offset }
        })
        .collect()
}

/// Paged dereference: fetch whole pages of the table on demand and cache them.
fn lookup_paged(
    rank: &mut Rank,
    home: &BlockDist,
    local: &[Loc],
    page_size: usize,
    cache: &mut HashMap<usize, Vec<Loc>>,
    queries: &[Global],
) -> Vec<Loc> {
    let nprocs = rank.nprocs();
    let me = rank.rank();
    let my_range = home.local_range(me);

    // Which pages do we need that we neither own nor have cached?
    let mut needed: Vec<usize> = queries
        .iter()
        .filter(|&&g| !my_range.contains(&g))
        .map(|&g| g / page_size)
        .filter(|page| !cache.contains_key(page))
        .collect();
    needed.sort_unstable();
    needed.dedup();

    // Ask the rank that stores each page's first entry for the whole page.  (Pages are
    // aligned to page_size, which need not align with the block boundaries; the serving
    // rank answers for the portion it stores and the requester falls back to per-index
    // dereference for any remainder — rare, and only at block boundaries.)
    let mut requests: Vec<Vec<u64>> = vec![Vec::new(); nprocs];
    for &page in &needed {
        let first = page * page_size;
        requests[home.owner(first.min(home.global_size() - 1))].push(page as u64);
    }
    let incoming = rank.all_to_all(&requests);
    let my_base = my_range.start;
    let my_end = my_range.end;
    let replies: Vec<Vec<(u64, u32, u32)>> = incoming
        .iter()
        .map(|pages| {
            let mut out = Vec::new();
            for &page in pages {
                let first = page as usize * page_size;
                let last = (first + page_size).min(home.global_size());
                for g in first.max(my_base)..last.min(my_end) {
                    let loc = local[g - my_base];
                    out.push((g as u64, loc.owner, loc.offset));
                }
            }
            out
        })
        .collect();
    let returned = rank.all_to_all(&replies);

    // Install fetched entries into the page cache.
    for part in returned {
        for (g, owner, offset) in part {
            let page = g as usize / page_size;
            let entry = cache.entry(page).or_insert_with(|| {
                vec![
                    Loc {
                        owner: u32::MAX,
                        offset: 0
                    };
                    page_size
                ]
            });
            entry[g as usize % page_size] = Loc { owner, offset };
        }
    }

    // Resolve queries: owned entries from the local slice, others from the cache.  Entries
    // a page could not fully cover (block-boundary stragglers) are resolved with a final
    // per-index dereference.
    let mut unresolved: Vec<Global> = Vec::new();
    let mut result: Vec<Option<Loc>> = queries
        .iter()
        .map(|&g| {
            if my_range.contains(&g) {
                Some(local[g - my_base])
            } else if let Some(page) = cache.get(&(g / page_size)) {
                let loc = page[g % page_size];
                if loc.owner == u32::MAX {
                    unresolved.push(g);
                    None
                } else {
                    Some(loc)
                }
            } else {
                unresolved.push(g);
                None
            }
        })
        .collect();
    // Collective fallback — all ranks must participate even with nothing unresolved.
    let fallback = lookup_remote_fallback(rank, home, local, &unresolved);
    let mut fb = fallback.into_iter();
    for slot in result.iter_mut() {
        if slot.is_none() {
            *slot = Some(fb.next().expect("fallback answer missing"));
        }
    }
    result.into_iter().map(|l| l.unwrap()).collect()
}

/// The per-index dereference used as the paged table's fallback.  The same
/// query/answer protocol as [`lookup_remote`], but sparse: a count negotiation tells every
/// rank what it will be asked, queries travel only where they exist, and the answer round
/// needs no negotiation because its sizes mirror the query round.
fn lookup_remote_fallback(
    rank: &mut Rank,
    home: &BlockDist,
    local: &[Loc],
    queries: &[Global],
) -> Vec<Loc> {
    let nprocs = rank.nprocs();
    let me = rank.rank();
    let my_base = home.local_range(me).start;
    let mut by_home: Vec<Vec<u64>> = vec![Vec::new(); nprocs];
    let mut placement: Vec<(ProcId, usize)> = Vec::with_capacity(queries.len());
    for &g in queries {
        let h = home.owner(g);
        placement.push((h, by_home[h].len()));
        by_home[h].push(g as u64);
    }
    // Query round: negotiated sparse exchange (self queries arrive via local delivery).
    let query_counts: Vec<usize> = by_home.iter().map(Vec::len).collect();
    let query_plan = ExchangePlan::negotiate(rank, query_counts);
    let mut incoming_queries: Vec<Vec<u64>> = vec![Vec::new(); nprocs];
    // The queries must survive until the answer round packs from them, so ownership is
    // taken (`into_vec`) rather than borrowed.
    alltoallv(rank, &query_plan, &by_home, |src, qs| {
        incoming_queries[src] = qs.into_vec();
    });
    // Answer round: sizes mirror the query round exactly (the query plan's send side
    // becomes the answer plan's receive side), so no negotiation is needed.
    let answer_plan = ExchangePlan::sparse(
        me,
        incoming_queries.iter().map(Vec::len).collect(),
        query_plan.send_counts(),
    );
    let answer_sends: Vec<Vec<(u32, u32)>> = incoming_queries
        .iter()
        .map(|qs| {
            qs.iter()
                .map(|&g| {
                    let loc = local[g as usize - my_base];
                    (loc.owner, loc.offset)
                })
                .collect()
        })
        .collect();
    let mut answers_by_home: Vec<Vec<(u32, u32)>> = vec![Vec::new(); nprocs];
    alltoallv(rank, &answer_plan, &answer_sends, |src, ans| {
        answers_by_home[src] = ans.into_vec();
    });
    placement
        .into_iter()
        .map(|(h, idx)| {
            let (owner, offset) = answers_by_home[h][idx];
            Loc { owner, offset }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsim::{run, MachineConfig};

    /// An irregular map used by several tests: owner(g) = (g*7+3) mod nprocs.
    fn test_map(n: usize, nprocs: usize) -> Vec<ProcId> {
        (0..n).map(|g| (g * 7 + 3) % nprocs).collect()
    }

    /// Reference numbering: offsets in increasing global order per owner.
    fn reference_locs(map: &[ProcId], nprocs: usize) -> Vec<Loc> {
        let mut next = vec![0usize; nprocs];
        map.iter()
            .map(|&p| {
                let off = next[p];
                next[p] += 1;
                Loc::new(p, off)
            })
            .collect()
    }

    #[test]
    fn from_regular_matches_block_arithmetic() {
        let dist = BlockDist::new(17, 4);
        let t = TranslationTable::from_regular(&dist);
        assert!(t.is_replicated());
        for g in 0..17 {
            let loc = t.lookup_local(g).unwrap();
            assert_eq!(loc.owner as usize, dist.owner(g));
            assert_eq!(loc.offset as usize, dist.local_offset(g));
        }
        for p in 0..4 {
            assert_eq!(t.local_size(p), dist.local_size(p));
        }
    }

    #[test]
    fn replicated_table_from_map_matches_reference() {
        let n = 53;
        let nprocs = 4;
        let map = test_map(n, nprocs);
        let expected = reference_locs(&map, nprocs);
        let map_for_run = map.clone();
        let out = run(MachineConfig::new(nprocs), move |rank| {
            let map_dist = BlockDist::new(n, rank.nprocs());
            let local: Vec<ProcId> = map_dist
                .local_globals(rank.rank())
                .map(|g| map_for_run[g])
                .collect();
            let t = TranslationTable::replicated_from_map(rank, &local, &map_dist).unwrap();
            let locs: Vec<Loc> = (0..n).map(|g| t.lookup_local(g).unwrap()).collect();
            (
                locs,
                (0..nprocs).map(|p| t.local_size(p)).collect::<Vec<_>>(),
            )
        });
        for (locs, sizes) in &out.results {
            assert_eq!(locs, &expected);
            let mut counts = vec![0usize; nprocs];
            for &p in &map {
                counts[p] += 1;
            }
            assert_eq!(sizes, &counts);
        }
    }

    #[test]
    fn distributed_table_lookup_matches_replicated() {
        let n = 61;
        let nprocs = 5;
        let map = test_map(n, nprocs);
        let expected = reference_locs(&map, nprocs);
        let out = run(MachineConfig::new(nprocs), move |rank| {
            let map_dist = BlockDist::new(n, rank.nprocs());
            let local: Vec<ProcId> = map_dist
                .local_globals(rank.rank())
                .map(|g| map[g])
                .collect();
            let mut t = TranslationTable::distributed_from_map(rank, &local, &map_dist).unwrap();
            assert!(!t.is_replicated());
            // Every rank queries a different, overlapping subset.
            let queries: Vec<Global> = (0..n).filter(|g| (g + rank.rank()) % 2 == 0).collect();
            let locs = t.lookup(rank, &queries);
            (queries, locs)
        });
        for (queries, locs) in &out.results {
            for (q, loc) in queries.iter().zip(locs) {
                assert_eq!(loc, &expected[*q]);
            }
        }
    }

    #[test]
    fn paged_table_lookup_matches_and_caches() {
        let n = 96;
        let nprocs = 4;
        let map = test_map(n, nprocs);
        let expected = reference_locs(&map, nprocs);
        let out = run(MachineConfig::new(nprocs), move |rank| {
            let map_dist = BlockDist::new(n, rank.nprocs());
            let local: Vec<ProcId> = map_dist
                .local_globals(rank.rank())
                .map(|g| map[g])
                .collect();
            let mut t = TranslationTable::paged_from_map(rank, &local, &map_dist, 8).unwrap();
            let queries: Vec<Global> = (0..n).step_by(3).collect();
            let first = t.lookup(rank, &queries);
            let bytes_after_first = rank.stats().bytes_sent;
            // Repeat the same lookup: pages are cached, so no new page traffic for the
            // remote entries (the collective fallback still synchronises but sends nothing).
            let second = t.lookup(rank, &queries);
            let bytes_after_second = rank.stats().bytes_sent;
            (
                first,
                second,
                bytes_after_first,
                bytes_after_second,
                queries,
            )
        });
        for (first, second, b1, b2, queries) in &out.results {
            for (q, loc) in queries.iter().zip(first) {
                assert_eq!(loc, &expected[*q]);
            }
            assert_eq!(first, second);
            // The second lookup must move far fewer bytes than the first (page cache hit).
            let first_cost = *b1;
            let second_cost = *b2 - *b1;
            assert!(
                second_cost < first_cost / 2,
                "expected cache to reduce traffic: first={first_cost} second={second_cost}"
            );
        }
    }

    #[test]
    fn owned_globals_consistent_across_storage_modes() {
        let n = 40;
        let nprocs = 4;
        let map = test_map(n, nprocs);
        let map2 = map.clone();
        let out = run(MachineConfig::new(nprocs), move |rank| {
            let map_dist = BlockDist::new(n, rank.nprocs());
            let local: Vec<ProcId> = map_dist
                .local_globals(rank.rank())
                .map(|g| map2[g])
                .collect();
            let mut rep = TranslationTable::replicated_from_map(rank, &local, &map_dist).unwrap();
            let mut dis = TranslationTable::distributed_from_map(rank, &local, &map_dist).unwrap();
            let a = rep.owned_globals(rank);
            let b = dis.owned_globals(rank);
            (a, b)
        });
        for (p, (a, b)) in out.results.iter().enumerate() {
            assert_eq!(a, b);
            // Owned globals must be exactly those the map assigns to p, in global order.
            let expected: Vec<usize> = (0..n).filter(|&g| map[g] == p).collect();
            assert_eq!(a, &expected);
        }
    }

    #[test]
    fn replicate_converts_distributed_table() {
        let n = 30;
        let nprocs = 3;
        let map = test_map(n, nprocs);
        let expected = reference_locs(&map, nprocs);
        let out = run(MachineConfig::new(nprocs), move |rank| {
            let map_dist = BlockDist::new(n, rank.nprocs());
            let local: Vec<ProcId> = map_dist
                .local_globals(rank.rank())
                .map(|g| map[g])
                .collect();
            let mut t = TranslationTable::distributed_from_map(rank, &local, &map_dist).unwrap();
            t.replicate(rank);
            assert!(t.is_replicated());
            (0..n)
                .map(|g| t.lookup_local(g).unwrap())
                .collect::<Vec<_>>()
        });
        for locs in &out.results {
            assert_eq!(locs, &expected);
        }
    }

    #[test]
    fn bad_owner_is_rejected() {
        let out = run(MachineConfig::new(2), |rank| {
            let map_dist = BlockDist::new(4, 2);
            let local = vec![0usize, 7]; // 7 is not a valid owner on 2 procs
            TranslationTable::replicated_from_map(rank, &local, &map_dist).is_err()
        });
        assert!(out.results.iter().all(|&e| e));
    }

    #[test]
    fn lookup_local_returns_none_on_non_replicated_tables() {
        // A distributed (or paged) table cannot answer locally: `lookup_local` says so
        // with `None` instead of tearing the rank down, and the collective `lookup`
        // still dereferences the same index.
        let n = 8;
        let out = run(MachineConfig::new(2), move |rank| {
            let map_dist = BlockDist::new(n, 2);
            let local: Vec<ProcId> = map_dist.local_globals(rank.rank()).map(|g| g % 2).collect();
            let mut dist = TranslationTable::distributed_from_map(rank, &local, &map_dist).unwrap();
            let mut paged = TranslationTable::paged_from_map(rank, &local, &map_dist, 4).unwrap();
            let local_answers: Vec<Option<Loc>> = (0..n).map(|g| dist.lookup_local(g)).collect();
            assert!((0..n).all(|g| paged.lookup_local(g).is_none()));
            let queries: Vec<Global> = (0..n).collect();
            let collective = dist.lookup(rank, &queries);
            let collective_paged = paged.lookup(rank, &queries);
            (local_answers, collective, collective_paged)
        });
        for (local_answers, collective, collective_paged) in &out.results {
            assert!(local_answers.iter().all(Option::is_none));
            assert_eq!(collective, collective_paged);
            for (g, loc) in collective.iter().enumerate() {
                assert_eq!(loc.owner as usize, g % 2);
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside array of size")]
    fn lookup_local_still_rejects_out_of_bounds_indices() {
        let dist = BlockDist::new(4, 2);
        let t = TranslationTable::from_regular(&dist);
        let _ = t.lookup_local(4);
    }
}
