//! Distributed arrays: the local section of a partitioned data array plus its ghost area.
//!
//! After index translation, every reference produced by the inspector is a [`LocalRef`]:
//! either an offset into the locally *owned* section (for on-processor elements) or a slot
//! in the *ghost* region appended after it (for copies of off-processor elements brought in
//! by `gather`).  This mirrors the PARTI/CHAOS convention of allocating a buffer area for
//! incoming off-processor data directly after the local section, so the executor loop can
//! index one flat array regardless of where an element lives.

use std::ops::{Index, IndexMut};

/// A translated local reference: an index into the owned-followed-by-ghost address space of
/// one rank's [`DistArray`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocalRef(pub usize);

impl LocalRef {
    /// The raw flat index.
    pub fn index(self) -> usize {
        self.0
    }

    /// True if this reference points into the owned section of an array with `owned_len`
    /// owned elements.
    pub fn is_owned(self, owned_len: usize) -> bool {
        self.0 < owned_len
    }
}

/// One rank's section of a distributed array: owned elements followed by a ghost region.
#[derive(Debug, Clone, PartialEq)]
pub struct DistArray<T> {
    owned: Vec<T>,
    ghost: Vec<T>,
}

impl<T: Clone + Default> DistArray<T> {
    /// Create a local section from its owned elements, with `ghost_len` default-initialised
    /// ghost slots.
    pub fn new(owned: Vec<T>, ghost_len: usize) -> Self {
        Self {
            owned,
            ghost: vec![T::default(); ghost_len],
        }
    }

    /// Create a local section of `owned_len` default-initialised owned elements and
    /// `ghost_len` ghost slots.
    pub fn zeroed(owned_len: usize, ghost_len: usize) -> Self {
        Self {
            owned: vec![T::default(); owned_len],
            ghost: vec![T::default(); ghost_len],
        }
    }

    /// Grow (never shrink) the ghost region to hold at least `ghost_len` slots.  Called
    /// when a new schedule needs more ghost slots than previous ones.
    pub fn ensure_ghost(&mut self, ghost_len: usize) {
        if self.ghost.len() < ghost_len {
            self.ghost.resize(ghost_len, T::default());
        }
    }

    /// Reset every ghost slot to the default value (used between executor phases that
    /// accumulate into the ghost region before a `scatter_add`).
    pub fn clear_ghost(&mut self) {
        for g in &mut self.ghost {
            *g = T::default();
        }
    }
}

impl<T> DistArray<T> {
    /// Number of owned elements.
    pub fn owned_len(&self) -> usize {
        self.owned.len()
    }

    /// Number of ghost slots.
    pub fn ghost_len(&self) -> usize {
        self.ghost.len()
    }

    /// Total addressable length (owned + ghost).
    pub fn len(&self) -> usize {
        self.owned.len() + self.ghost.len()
    }

    /// True if the array has no owned elements and no ghost slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The owned section.
    pub fn owned(&self) -> &[T] {
        &self.owned
    }

    /// The owned section, mutably.
    pub fn owned_mut(&mut self) -> &mut [T] {
        &mut self.owned
    }

    /// The ghost region.
    pub fn ghost(&self) -> &[T] {
        &self.ghost
    }

    /// The ghost region, mutably.
    pub fn ghost_mut(&mut self) -> &mut [T] {
        &mut self.ghost
    }

    /// Consume the array and return its owned section.
    pub fn into_owned(self) -> Vec<T> {
        self.owned
    }

    /// Borrow the owned section immutably and the ghost region mutably at the same time —
    /// the borrow pattern of `gather`, which packs outgoing messages from owned elements
    /// while placing incoming copies into ghost slots.
    pub fn owned_and_ghost_mut(&mut self) -> (&[T], &mut [T]) {
        (&self.owned, &mut self.ghost)
    }

    /// Borrow the ghost region immutably and the owned section mutably at the same time —
    /// the borrow pattern of the scatters, which pack from ghost slots and combine into
    /// owned elements.
    pub fn ghost_and_owned_mut(&mut self) -> (&[T], &mut [T]) {
        (&self.ghost, &mut self.owned)
    }
}

impl<T> Index<LocalRef> for DistArray<T> {
    type Output = T;

    fn index(&self, r: LocalRef) -> &T {
        if r.0 < self.owned.len() {
            &self.owned[r.0]
        } else {
            &self.ghost[r.0 - self.owned.len()]
        }
    }
}

impl<T> IndexMut<LocalRef> for DistArray<T> {
    fn index_mut(&mut self, r: LocalRef) -> &mut T {
        if r.0 < self.owned.len() {
            &mut self.owned[r.0]
        } else {
            &mut self.ghost[r.0 - self.owned.len()]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_spans_owned_then_ghost() {
        let mut a = DistArray::new(vec![10, 20, 30], 2);
        assert_eq!(a.owned_len(), 3);
        assert_eq!(a.ghost_len(), 2);
        assert_eq!(a.len(), 5);
        assert_eq!(a[LocalRef(0)], 10);
        assert_eq!(a[LocalRef(2)], 30);
        assert_eq!(a[LocalRef(3)], 0);
        a[LocalRef(3)] = 99;
        a[LocalRef(1)] = 21;
        assert_eq!(a.ghost()[0], 99);
        assert_eq!(a.owned()[1], 21);
    }

    #[test]
    fn ensure_ghost_only_grows() {
        let mut a: DistArray<f64> = DistArray::zeroed(2, 1);
        a.ensure_ghost(4);
        assert_eq!(a.ghost_len(), 4);
        a.ensure_ghost(2);
        assert_eq!(a.ghost_len(), 4);
    }

    #[test]
    fn clear_ghost_resets_only_ghost() {
        let mut a = DistArray::new(vec![1.0, 2.0], 3);
        a[LocalRef(3)] = 7.5;
        a.clear_ghost();
        assert_eq!(a.owned(), &[1.0, 2.0]);
        assert!(a.ghost().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn localref_ownership_test() {
        assert!(LocalRef(2).is_owned(3));
        assert!(!LocalRef(3).is_owned(3));
        assert_eq!(LocalRef(5).index(), 5);
    }

    #[test]
    #[should_panic]
    fn out_of_range_reference_panics() {
        let a: DistArray<i32> = DistArray::zeroed(2, 2);
        let _ = a[LocalRef(4)];
    }

    #[test]
    fn into_owned_returns_owned_section() {
        let a = DistArray::new(vec![4, 5, 6], 9);
        assert_eq!(a.into_owned(), vec![4, 5, 6]);
    }
}
