//! Error type for fallible CHAOS operations.
//!
//! Most of the runtime follows the original library's philosophy and treats programming
//! errors (out-of-range indices, mismatched collective calls) as panics, but operations
//! whose failure is data-dependent — e.g. a partitioner asked for more parts than
//! elements, or a map array that does not cover every element — report a `ChaosError`.

use std::fmt;

/// Errors reported by CHAOS runtime procedures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosError {
    /// A distribution map assigned an element to a processor outside `0..nprocs`.
    OwnerOutOfRange {
        /// The offending global index.
        index: usize,
        /// The processor it was assigned to.
        owner: usize,
        /// Number of processors in the machine.
        nprocs: usize,
    },
    /// A partitioner was asked to produce more parts than there are elements.
    TooManyParts {
        /// Elements available.
        elements: usize,
        /// Parts requested.
        parts: usize,
    },
    /// An indirection array referenced a global index outside the distributed array.
    IndexOutOfBounds {
        /// The offending global index.
        index: usize,
        /// The size of the global index space.
        size: usize,
    },
    /// Inputs to a collective operation disagree across ranks (detected sizes mismatch).
    CollectiveMismatch {
        /// Human-readable description of the disagreement.
        detail: String,
    },
}

impl fmt::Display for ChaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosError::OwnerOutOfRange {
                index,
                owner,
                nprocs,
            } => write!(
                f,
                "element {index} assigned to processor {owner}, but the machine has {nprocs} processors"
            ),
            ChaosError::TooManyParts { elements, parts } => write!(
                f,
                "cannot partition {elements} elements into {parts} non-empty parts"
            ),
            ChaosError::IndexOutOfBounds { index, size } => write!(
                f,
                "global index {index} is outside the distributed array of size {size}"
            ),
            ChaosError::CollectiveMismatch { detail } => {
                write!(f, "collective call mismatch: {detail}")
            }
        }
    }
}

impl std::error::Error for ChaosError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_numbers() {
        let e = ChaosError::OwnerOutOfRange {
            index: 3,
            owner: 9,
            nprocs: 4,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('9') && s.contains('4'));

        let e = ChaosError::TooManyParts {
            elements: 2,
            parts: 5,
        };
        assert!(e.to_string().contains('5'));

        let e = ChaosError::IndexOutOfBounds { index: 10, size: 8 };
        assert!(e.to_string().contains("10"));

        let e = ChaosError::CollectiveMismatch {
            detail: "sizes differ".into(),
        };
        assert!(e.to_string().contains("sizes differ"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<ChaosError>();
    }
}
