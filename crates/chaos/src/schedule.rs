//! Communication schedules (§3.2.1 of the paper).
//!
//! A *communication schedule* records, for one processor, everything the executor needs to
//! move off-processor data without any further analysis:
//!
//! * **send list** — which of my owned elements other processors will read (per
//!   destination, as local offsets),
//! * **permutation list** — where incoming off-processor copies land in my ghost region,
//! * **send sizes / fetch sizes** — message sizes in both directions, so the executor can
//!   post exactly the right receives.
//!
//! Regular schedules are built by the inspector from the stamped hash table
//! ([`crate::inspector::Inspector::build_schedule`]); they implement software caching
//! (duplicates removed) and communication vectorization (one message per processor pair).
//!
//! A [`LightweightSchedule`] is the cheaper cousin used when the *placement order of
//! incoming elements does not matter* (the DSMC MOVE phase): no index translation, no
//! permutation list, no duplicate removal — just per-destination element lists and receive
//! counts.  It is built with a single all-to-all of counts and drives
//! [`crate::executor::scatter_append`].

use mpsim::{ExchangePlan, Rank};

use crate::ProcId;

/// A regular (PARTI-style) communication schedule for one processor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommSchedule {
    nprocs: usize,
    /// `send_lists[p]` — local offsets (into the owned section) of the elements this
    /// processor must send to processor `p`, in the order they will be packed.
    pub send_lists: Vec<Vec<u32>>,
    /// `perm_lists[p]` — ghost-region slots where the elements received from processor `p`
    /// are placed, in the order `p` packs them.
    pub perm_lists: Vec<Vec<u32>>,
    /// Size of the ghost region arrays used with this schedule must provide.  This is the
    /// hash table's total ghost count at build time, so ghost slots are shared consistently
    /// between schedules built from the same table (incremental/merged schedules).
    ghost_len: usize,
}

impl CommSchedule {
    /// Build a schedule directly from its parts (used by the inspector and by tests).
    pub fn from_parts(
        nprocs: usize,
        send_lists: Vec<Vec<u32>>,
        perm_lists: Vec<Vec<u32>>,
        ghost_len: usize,
    ) -> Self {
        assert_eq!(send_lists.len(), nprocs);
        assert_eq!(perm_lists.len(), nprocs);
        Self {
            nprocs,
            send_lists,
            perm_lists,
            ghost_len,
        }
    }

    /// An empty schedule (nothing to communicate) for a machine of `nprocs` processors.
    pub fn empty(nprocs: usize) -> Self {
        Self {
            nprocs,
            send_lists: vec![Vec::new(); nprocs],
            perm_lists: vec![Vec::new(); nprocs],
            ghost_len: 0,
        }
    }

    /// Number of processors the schedule spans.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Number of elements sent to processor `p` (the paper's *send size*).
    pub fn send_size(&self, p: ProcId) -> usize {
        self.send_lists[p].len()
    }

    /// Number of elements fetched from processor `p` (the paper's *fetch size*).
    pub fn fetch_size(&self, p: ProcId) -> usize {
        self.perm_lists[p].len()
    }

    /// Total number of elements this processor sends.
    pub fn total_send(&self) -> usize {
        self.send_lists.iter().map(Vec::len).sum()
    }

    /// Total number of elements this processor fetches.
    pub fn total_fetch(&self) -> usize {
        self.perm_lists.iter().map(Vec::len).sum()
    }

    /// Number of messages this processor will send when the schedule is executed
    /// (one per destination with a non-empty send list).
    pub fn send_message_count(&self) -> usize {
        self.send_lists.iter().filter(|l| !l.is_empty()).count()
    }

    /// Number of messages this processor will receive when the schedule is executed in
    /// the gather direction (one per source with a non-empty permutation list) — equally,
    /// the messages it *sends* in the scatter direction.  Together with
    /// [`CommSchedule::send_message_count`] this prices one full gather + scatter round
    /// trip: with the fused multi-array executor paths, that price is per *step*, not per
    /// array.
    pub fn recv_message_count(&self) -> usize {
        self.perm_lists.iter().filter(|l| !l.is_empty()).count()
    }

    /// Required ghost-region length.
    pub fn ghost_len(&self) -> usize {
        self.ghost_len
    }

    /// Raise the ghost-region requirement to `len`; never lowers it.  Used by the
    /// maintenance layer when a schedule is served unchanged but *other* stamps have
    /// since grown the hash table's ghost region — the selection is untouched, only the
    /// region bound moves, and raising it (locally, for free) keeps a cached or
    /// maintained schedule byte-identical to a from-scratch rebuild.
    pub fn grow_ghost_len(&mut self, len: usize) {
        self.ghost_len = self.ghost_len.max(len);
    }

    /// The exchange plan executing this schedule in the gather direction on `my_rank`:
    /// send-list elements go out, permutation-list elements come in.  Self transfers are
    /// excluded — a schedule never fetches elements the rank already owns.
    pub fn gather_plan(&self, my_rank: ProcId) -> ExchangePlan {
        let mut send_counts: Vec<usize> = self.send_lists.iter().map(Vec::len).collect();
        let mut recv_counts: Vec<usize> = self.perm_lists.iter().map(Vec::len).collect();
        send_counts[my_rank] = 0;
        recv_counts[my_rank] = 0;
        ExchangePlan::sparse(my_rank, send_counts, recv_counts)
    }

    /// The exchange plan for the scatter direction (the mirror image of
    /// [`CommSchedule::gather_plan`]): ghost copies travel back to their owners.
    pub fn scatter_plan(&self, my_rank: ProcId) -> ExchangePlan {
        let mut send_counts: Vec<usize> = self.perm_lists.iter().map(Vec::len).collect();
        let mut recv_counts: Vec<usize> = self.send_lists.iter().map(Vec::len).collect();
        send_counts[my_rank] = 0;
        recv_counts[my_rank] = 0;
        ExchangePlan::sparse(my_rank, send_counts, recv_counts)
    }

    /// Merge two schedules built against the *same* hash table (so their ghost slots are
    /// drawn from the same space) into one that performs both transfers in a single pass.
    /// Duplicate (destination, offset) pairs are kept only once.
    pub fn merged_with(&self, other: &CommSchedule) -> CommSchedule {
        assert_eq!(
            self.nprocs, other.nprocs,
            "schedules span different machines"
        );
        let mut send_lists = Vec::with_capacity(self.nprocs);
        let mut perm_lists = Vec::with_capacity(self.nprocs);
        for p in 0..self.nprocs {
            // The pairing between one rank's send list entry k for processor p and
            // processor p's perm list entry k must be preserved, so merging appends
            // `other`'s pairs after `self`'s and drops pairs already present in `self`.
            let mut sends = self.send_lists[p].clone();
            let mut perms = self.perm_lists[p].clone();
            // Sends and perms describe opposite directions; deduplicate each against the
            // existing entries independently (an element already sent need not be sent
            // twice; a ghost slot already filled need not be filled twice).
            for &s in &other.send_lists[p] {
                if !self.send_lists[p].contains(&s) {
                    sends.push(s);
                }
            }
            for &q in &other.perm_lists[p] {
                if !self.perm_lists[p].contains(&q) {
                    perms.push(q);
                }
            }
            send_lists.push(sends);
            perm_lists.push(perms);
        }
        CommSchedule {
            nprocs: self.nprocs,
            send_lists,
            perm_lists,
            ghost_len: self.ghost_len.max(other.ghost_len),
        }
    }
}

/// A light-weight schedule: per-destination element lists and receive counts, with no
/// placement information.  Section 3.2.1: "for some adaptive applications ... there is no
/// significance attached to the placement order of incoming array elements".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LightweightSchedule {
    nprocs: usize,
    my_rank: ProcId,
    /// `send_item_lists[p]` — positions (into the caller's item slice) of the items to be
    /// appended on processor `p`.  `send_item_lists[my_rank]` holds the items that stay.
    pub send_item_lists: Vec<Vec<u32>>,
    /// `recv_counts[p]` — how many items processor `p` will append to us.
    pub recv_counts: Vec<usize>,
}

impl LightweightSchedule {
    /// Build a light-weight schedule from the destination processor of every local item.
    ///
    /// Collective: one all-to-all of counts tells every processor how much it will receive
    /// from everyone else — that is the entire inspector for this kind of schedule, which
    /// is why it is so much cheaper to regenerate every time step than a regular schedule.
    pub fn build(rank: &mut Rank, dest_proc_per_item: &[ProcId]) -> Self {
        let nprocs = rank.nprocs();
        let me = rank.rank();
        let mut send_item_lists: Vec<Vec<u32>> = vec![Vec::new(); nprocs];
        for (i, &dest) in dest_proc_per_item.iter().enumerate() {
            assert!(
                dest < nprocs,
                "item {i} destined for processor {dest}, but the machine has {nprocs}"
            );
            send_item_lists[dest].push(i as u32);
        }
        // A small, fixed amount of work per item (binning); contrast with the regular
        // inspector which charges per-index translation and hashing.
        rank.charge_compute(dest_proc_per_item.len() as f64 * 0.05);
        // The entire inspector for this kind of schedule is the exchange engine's count
        // negotiation: one dense all-to-all of item counts.  The counts are packed and
        // placed entirely through pooled engine buffers (borrowed placement), so
        // rebuilding a schedule every time step — the DSMC MOVE pattern — allocates
        // nothing once the pools are warm.
        let send_counts: Vec<usize> = send_item_lists.iter().map(Vec::len).collect();
        let plan = ExchangePlan::negotiate(rank, send_counts);
        let mut recv_counts = plan.recv_counts();
        recv_counts[me] = send_item_lists[me].len();
        Self {
            nprocs,
            my_rank: me,
            send_item_lists,
            recv_counts,
        }
    }

    /// The exchange plan that moves this schedule's items: per-destination item counts
    /// out, negotiated counts in.  The kept portion never enters the plan — the executor
    /// copies it straight from the caller's item slice.
    pub fn append_plan(&self) -> ExchangePlan {
        let mut send_counts: Vec<usize> = self.send_item_lists.iter().map(Vec::len).collect();
        send_counts[self.my_rank] = 0;
        let mut recv_counts = self.recv_counts.clone();
        recv_counts[self.my_rank] = 0;
        ExchangePlan::sparse(self.my_rank, send_counts, recv_counts)
    }

    /// Number of processors the schedule spans.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The rank this schedule belongs to.
    pub fn my_rank(&self) -> ProcId {
        self.my_rank
    }

    /// Items that stay on this processor.
    pub fn kept_count(&self) -> usize {
        self.send_item_lists[self.my_rank].len()
    }

    /// Total number of items sent away (excluding kept items).
    pub fn total_send(&self) -> usize {
        self.send_item_lists
            .iter()
            .enumerate()
            .filter(|(p, _)| *p != self.my_rank)
            .map(|(_, l)| l.len())
            .sum()
    }

    /// Total number of items that will arrive from other processors.
    pub fn total_recv(&self) -> usize {
        self.recv_counts
            .iter()
            .enumerate()
            .filter(|(p, _)| *p != self.my_rank)
            .map(|(_, c)| *c)
            .sum()
    }

    /// The number of items this processor will hold after the append (kept + received).
    pub fn result_count(&self) -> usize {
        self.kept_count() + self.total_recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsim::{run, MachineConfig};

    #[test]
    fn comm_schedule_sizes() {
        let s = CommSchedule::from_parts(
            3,
            vec![vec![], vec![0, 2], vec![1]],
            vec![vec![], vec![0], vec![1, 2, 3]],
            4,
        );
        assert_eq!(s.nprocs(), 3);
        assert_eq!(s.send_size(1), 2);
        assert_eq!(s.fetch_size(2), 3);
        assert_eq!(s.total_send(), 3);
        assert_eq!(s.total_fetch(), 4);
        assert_eq!(s.send_message_count(), 2);
        assert_eq!(s.ghost_len(), 4);
    }

    #[test]
    fn empty_schedule_is_inert() {
        let s = CommSchedule::empty(4);
        assert_eq!(s.total_send(), 0);
        assert_eq!(s.total_fetch(), 0);
        assert_eq!(s.send_message_count(), 0);
        assert_eq!(s.ghost_len(), 0);
    }

    #[test]
    fn merged_schedule_unions_without_duplicates() {
        let a = CommSchedule::from_parts(2, vec![vec![], vec![0, 1]], vec![vec![], vec![0, 1]], 2);
        let b = CommSchedule::from_parts(2, vec![vec![], vec![1, 2]], vec![vec![], vec![1, 2]], 3);
        let m = a.merged_with(&b);
        assert_eq!(m.send_lists[1], vec![0, 1, 2]);
        assert_eq!(m.perm_lists[1], vec![0, 1, 2]);
        assert_eq!(m.ghost_len(), 3);
        assert_eq!(m.total_send(), 3);
    }

    #[test]
    #[should_panic(expected = "different machines")]
    fn merging_mismatched_machine_sizes_panics() {
        let a = CommSchedule::empty(2);
        let b = CommSchedule::empty(3);
        let _ = a.merged_with(&b);
    }

    #[test]
    fn lightweight_schedule_counts_match_across_ranks() {
        let out = run(MachineConfig::new(4), |rank| {
            let me = rank.rank();
            // Every rank has 8 items; item i goes to processor (me + i) % 4.
            let dests: Vec<usize> = (0..8).map(|i| (me + i) % 4).collect();
            let lw = LightweightSchedule::build(rank, &dests);
            (
                lw.kept_count(),
                lw.total_send(),
                lw.total_recv(),
                lw.result_count(),
                lw.recv_counts.clone(),
            )
        });
        for (kept, sent, recvd, result, recv_counts) in &out.results {
            assert_eq!(*kept, 2);
            assert_eq!(*sent, 6);
            assert_eq!(*recvd, 6);
            assert_eq!(*result, 8);
            // Every other rank sends exactly 2 items to us.
            assert_eq!(recv_counts.iter().sum::<usize>(), 8);
        }
    }

    #[test]
    fn lightweight_build_with_no_items() {
        let out = run(MachineConfig::new(3), |rank| {
            let lw = LightweightSchedule::build(rank, &[]);
            (lw.kept_count(), lw.total_recv(), lw.result_count())
        });
        for r in &out.results {
            assert_eq!(*r, (0, 0, 0));
        }
    }

    #[test]
    fn lightweight_rejects_bad_destination() {
        let result = std::panic::catch_unwind(|| {
            run(MachineConfig::new(2), |rank| {
                let _ = LightweightSchedule::build(rank, &[5]);
            })
        });
        assert!(result.is_err());
    }
}
