//! Feedback-driven remapping: measured load decides *when* to repartition.
//!
//! Section 4 of the paper evaluates remapping on a fixed cadence (DSMC remaps every 40
//! steps), but motivates the decision with the drift of the measured load-balance index
//! `LB = max_i(t_i) * n / sum_i(t_i)`: remapping is worthwhile once the time lost to
//! imbalance exceeds what the remap costs.  This module closes that loop as a reusable
//! runtime subsystem:
//!
//! * [`LoadMonitor`] — a windowed record of per-step, per-rank compute-time samples and the
//!   load-balance indices derived from them;
//! * [`RemapPolicy`] — the pluggable decision rules: [`RemapPolicy::Interval`] (the paper's
//!   fixed cadence), [`RemapPolicy::Threshold`] (remap when the LB index crosses a bound,
//!   with hysteresis against thrashing), and [`RemapPolicy::CostBenefit`] (the paper's
//!   drift criterion: remap once the compute time lost to imbalance since the last remap
//!   outweighs the measured cost of a remap);
//! * [`RemapController`] — the collective driver: every rank contributes its compute-time
//!   sample through one all-gather (see [`mpsim::Rank::all_gather_compute_since`]), so
//!   every rank evaluates the policy on the *same* per-rank vector and reaches the *same*
//!   deterministic remap/keep decision — no rank may remap alone.
//!
//! # Collective discipline
//!
//! [`RemapController::observe_phase`] / [`RemapController::observe_sample`] are collective:
//! every rank of the machine must call them once per step, in the same order relative to
//! other collectives.  A returned [`RemapDecision`] with `remap == true` is *binding* — the
//! controller records the remap in its internal state, so the caller must perform the
//! remap (and should then report its cost via [`RemapController::record_remap`], which is
//! also collective) before the next observation.
//!
//! # Non-finite samples
//!
//! A non-finite sample poisons the step's load-balance index to `NaN` (the contract pinned
//! in [`crate::loadbalance`]); every policy treats a `NaN` index as "keep": a corrupted
//! measurement never triggers (or re-arms) a remap.

use std::collections::VecDeque;

use mpsim::{GroupMap, Rank, TimeSnapshot};

use crate::loadbalance::load_balance_index;

/// Number of recent steps a [`LoadMonitor`] keeps by default.  Large enough to smooth
/// per-step noise, small enough to track a drifting workload.
pub const DEFAULT_WINDOW: usize = 8;

/// When (and whether) the controller decides to remap.
#[derive(Debug, Clone, PartialEq)]
pub enum RemapPolicy {
    /// Remap every `every` observed steps — the paper's baseline cadence (Table 5 remaps
    /// every 40 steps).  `every == 0` means *never*: the controller still samples and
    /// records the load trajectory but always decides "keep".
    Interval {
        /// Steps between remaps (0 = never remap).
        every: usize,
    },
    /// Remap when the measured load-balance index exceeds `lb_index`.  After a remap the
    /// trigger is disarmed, so an imbalance the partitioner cannot fix does not cause a
    /// remap storm; it re-arms when any of three things happens:
    ///
    /// * the index recovers below `lb_index - hysteresis` — the remap worked, watch for
    ///   the next excursion;
    /// * the index grows past the first post-remap reading by more than `hysteresis` — a
    ///   fresh drift the partitioner has not seen yet (hovering at the post-remap level
    ///   stays disarmed);
    /// * `patience` steps have passed since the remap — the workload has moved even if
    ///   the index has not, so a retry is no longer a repeat (0 disables this escape).
    Threshold {
        /// Load-balance index above which a remap fires (1.0 is perfect balance).
        lb_index: f64,
        /// Dead-band width for the recovery and regrowth re-arm conditions.
        hysteresis: f64,
        /// Steps after which a disarmed trigger re-arms unconditionally (0 = never).
        patience: usize,
    },
    /// The paper's drift criterion: remap once the compute time lost to imbalance since
    /// the last remap exceeds what a remap costs.  Each step loses
    /// `max_i(t_i) - avg_i(t_i)` — the time a perfectly balanced distribution would have
    /// recovered — and the monitor accumulates it; the remap cost is the machine-wide
    /// maximum modeled time of the last remap reported through
    /// [`RemapController::record_remap`].  Until one has been recorded,
    /// `assumed_cost_us` stands in (derived, for example, from a
    /// [`crate::remap::RemapPlan`]'s byte volume under the machine's cost model).
    CostBenefit {
        /// Remap-cost estimate (modeled microseconds) used before any remap has been
        /// measured.
        assumed_cost_us: f64,
    },
}

/// A windowed record of measured per-rank compute times.
///
/// Each [`LoadMonitor::record`] call stores the step's load-balance index in the full
/// trajectory and the step's *imbalance gain* (`max - mean` of the per-rank times — the
/// per-step compute time a perfect rebalance would recover) in a bounded window.  Steps
/// with non-finite samples contribute `NaN` to the trajectory and are excluded from the
/// window.
#[derive(Debug, Clone)]
pub struct LoadMonitor {
    window: usize,
    gains: VecDeque<f64>,
    cum_gain_us: f64,
    lb_history: Vec<f64>,
}

impl LoadMonitor {
    /// A monitor keeping the last `window` steps (at least 1).
    pub fn new(window: usize) -> Self {
        LoadMonitor {
            window: window.max(1),
            gains: VecDeque::new(),
            cum_gain_us: 0.0,
            lb_history: Vec::new(),
        }
    }

    /// Record one step's per-rank compute times; returns the step's load-balance index
    /// (`NaN` if any sample is non-finite, per the [`crate::loadbalance`] contract).
    pub fn record(&mut self, per_rank_us: &[f64]) -> f64 {
        let lb = load_balance_index(per_rank_us);
        self.lb_history.push(lb);
        if !per_rank_us.is_empty() && per_rank_us.iter().all(|t| t.is_finite()) {
            let max = per_rank_us.iter().copied().fold(0.0f64, f64::max);
            let mean = per_rank_us.iter().sum::<f64>() / per_rank_us.len() as f64;
            let gain = (max - mean).max(0.0);
            self.cum_gain_us += gain;
            self.gains.push_back(gain);
            while self.gains.len() > self.window {
                self.gains.pop_front();
            }
        }
        lb
    }

    /// Mean per-step imbalance gain (`max - mean` compute microseconds) over the window;
    /// 0.0 while the window is empty, so an unmeasured workload never looks imbalanced.
    pub fn mean_gain_us(&self) -> f64 {
        if self.gains.is_empty() {
            0.0
        } else {
            self.gains.iter().sum::<f64>() / self.gains.len() as f64
        }
    }

    /// The load-balance index of every recorded step, in order (`NaN` entries mark steps
    /// with non-finite samples).
    pub fn lb_history(&self) -> &[f64] {
        &self.lb_history
    }

    /// The most recent load-balance index, if any step has been recorded.
    pub fn latest_lb(&self) -> Option<f64> {
        self.lb_history.last().copied()
    }

    /// Total imbalance loss accumulated since the last [`LoadMonitor::reset_window`]: the
    /// sum over every observed step of `max - mean` compute microseconds — the compute
    /// time that would have been saved had the machine been perfectly balanced throughout.
    pub fn cum_gain_us(&self) -> f64 {
        self.cum_gain_us
    }

    /// Number of steps currently in the gain window.
    pub fn window_len(&self) -> usize {
        self.gains.len()
    }

    /// Forget the windowed gains and the accumulated loss (the trajectory is kept).
    /// Called after a remap: the pre-remap imbalance must not argue for remapping the
    /// already-remapped distribution.
    pub fn reset_window(&mut self) {
        self.gains.clear();
        self.cum_gain_us = 0.0;
    }
}

/// How the controller's per-step measurement collective is organised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorTopology {
    /// Every rank all-gathers the full per-rank sample vector and evaluates the policy
    /// itself.  `O(log P)` messages per rank per step (the gather is a dissemination
    /// collective), with full-vector payloads and P redundant policy evaluations.
    Flat,
    /// Group-leader monitoring: samples are gathered up a binomial tree to one leader
    /// per `group` consecutive ranks, the leaders exchange group vectors and evaluate
    /// the policy on the full rank-ordered vector, and the decision is broadcast back
    /// down — `O(log P)` messages per step with the near-square split, and the policy
    /// runs once per *group* instead of once per rank.  Decisions are bit-identical to
    /// [`MonitorTopology::Flat`]: leaders see the same rank-ordered vector a flat
    /// gather would deliver, and member ranks replay the leader's decision through the
    /// same state transitions.
    Hierarchical {
        /// Ranks per leader group; [`MonitorTopology::square_group`] picks `≈ sqrt(P)`.
        group: usize,
    },
}

impl MonitorTopology {
    /// The near-square hierarchical split for a machine of `nprocs` ranks
    /// (`group ≈ sqrt(P)`), the conventional default for two-level monitoring.
    pub fn square_group(nprocs: usize) -> Self {
        MonitorTopology::Hierarchical {
            group: GroupMap::square(nprocs).group_size(),
        }
    }
}

/// One collective remap/keep decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemapDecision {
    /// `true` — every rank must now remap (the decision is binding, see the module docs).
    pub remap: bool,
    /// The load-balance index measured this step (`NaN` if a sample was non-finite).
    pub lb_index: f64,
}

/// The collective feedback controller: samples per-rank compute times, evaluates a
/// [`RemapPolicy`], and returns one machine-wide [`RemapDecision`] per step.
#[derive(Debug, Clone)]
pub struct RemapController {
    policy: RemapPolicy,
    topology: MonitorTopology,
    monitor: LoadMonitor,
    step: usize,
    last_remap_step: usize,
    remaps: usize,
    armed: bool,
    post_remap_lb: Option<f64>,
    awaiting_baseline: bool,
    last_remap_cost_us: Option<f64>,
    last_remap_bytes: u64,
}

impl RemapController {
    /// A controller with the default monitor window ([`DEFAULT_WINDOW`]).
    pub fn new(policy: RemapPolicy) -> Self {
        Self::with_window(policy, DEFAULT_WINDOW)
    }

    /// A controller with an explicit monitor window.
    pub fn with_window(policy: RemapPolicy, window: usize) -> Self {
        RemapController {
            policy,
            topology: MonitorTopology::Flat,
            monitor: LoadMonitor::new(window),
            step: 0,
            last_remap_step: 0,
            remaps: 0,
            armed: true,
            post_remap_lb: None,
            awaiting_baseline: false,
            last_remap_cost_us: None,
            last_remap_bytes: 0,
        }
    }

    /// Choose how the per-step measurement collective is organised (builder-style).
    /// Defaults to [`MonitorTopology::Flat`].  Must be identical on every rank, and must
    /// not change mid-run: member ranks of the hierarchical mode carry reduced monitor
    /// state that only a leader-issued decision stream keeps consistent.
    pub fn with_topology(mut self, topology: MonitorTopology) -> Self {
        self.topology = topology;
        self
    }

    /// The monitoring topology this controller observes through.
    pub fn topology(&self) -> MonitorTopology {
        self.topology
    }

    /// Collective: sample the compute time each rank accumulated since its `phase_start`
    /// snapshot and decide.  Every rank receives the same decision.
    pub fn observe_phase(&mut self, rank: &mut Rank, phase_start: &TimeSnapshot) -> RemapDecision {
        let sample = rank.modeled().since(phase_start).compute_us;
        self.observe_sample(rank, sample)
    }

    /// Collective: like [`RemapController::observe_phase`], but with an explicit per-rank
    /// sample (modeled microseconds of compute) — for callers whose measured phase is not
    /// the tail of the modeled-time stream.  Routed through the configured
    /// [`MonitorTopology`]; the decision is identical either way.
    pub fn observe_sample(&mut self, rank: &mut Rank, local_compute_us: f64) -> RemapDecision {
        match self.topology {
            MonitorTopology::Flat => {
                let times = rank.all_gather_one(local_compute_us);
                self.decide(&times)
            }
            MonitorTopology::Hierarchical { group } => {
                let groups = GroupMap::new(rank.nprocs(), group);
                if groups.is_leader(rank.rank()) {
                    // The decision closure runs here, on the full rank-ordered vector —
                    // the same bytes a flat gather would deliver — so every leader's
                    // controller walks the exact state path of a flat controller.
                    let enc = rank.hierarchical_sample::<2>(&groups, local_compute_us, |v| {
                        let d = self.decide(v);
                        [if d.remap { 1.0 } else { 0.0 }, d.lb_index]
                    });
                    RemapDecision {
                        remap: enc[0] != 0.0,
                        lb_index: enc[1],
                    }
                } else {
                    let enc = rank.hierarchical_sample::<2>(&groups, local_compute_us, |_| {
                        unreachable!("only group leaders evaluate the policy")
                    });
                    let remap = enc[0] != 0.0;
                    let lb = enc[1];
                    self.apply_leader_decision(remap, lb);
                    RemapDecision {
                        remap,
                        lb_index: lb,
                    }
                }
            }
        }
    }

    /// Non-collective: advance the controller one step *without* a measurement.  Only the
    /// measurement-free [`RemapPolicy::Interval`] can fire from a tick; the
    /// measurement-driven policies always keep (they have seen nothing new), and no
    /// trajectory entry is recorded.  Fixed-cadence drivers use this so a paper-default
    /// run pays zero monitoring communication.
    pub fn tick(&mut self) -> RemapDecision {
        let since = self.step - self.last_remap_step;
        let remap = matches!(&self.policy, RemapPolicy::Interval { every } if *every > 0 && since >= *every);
        self.commit(remap);
        RemapDecision {
            remap,
            lb_index: f64::NAN,
        }
    }

    /// The decision core: record the gathered per-rank times and evaluate the policy.
    /// Deterministic — identical inputs yield identical decisions and state transitions on
    /// every rank.  Public so policies can be unit-tested and replayed offline against
    /// recorded trajectories.
    pub fn decide(&mut self, per_rank_us: &[f64]) -> RemapDecision {
        let lb = self.monitor.record(per_rank_us);
        let remap = self.evaluate(lb);
        self.commit(remap);
        RemapDecision {
            remap,
            lb_index: lb,
        }
    }

    /// Replay a leader's broadcast decision on a member rank of the hierarchical
    /// topology: push the step's index onto the trajectory, walk the same lb-driven
    /// state transitions the leader walked (Threshold arming and baselines depend only
    /// on the index), and commit the leader's verdict.  The member's gain window stays
    /// empty — it never evaluates the accumulating CostBenefit policy itself; verdicts
    /// always arrive from a leader.
    fn apply_leader_decision(&mut self, remap: bool, lb: f64) {
        self.monitor.lb_history.push(lb);
        let _ = self.evaluate(lb);
        self.commit(remap);
    }

    /// The policy evaluation on one step's load-balance index, including the lb-driven
    /// state transitions (post-remap baseline capture, Threshold arming).
    fn evaluate(&mut self, lb: f64) -> bool {
        // The first finite reading after a remap (the controller's own or an external
        // one) is the baseline the Threshold policy measures renewed drift against.
        if self.awaiting_baseline && lb.is_finite() {
            self.post_remap_lb = Some(lb);
            self.awaiting_baseline = false;
        }
        let since = self.step - self.last_remap_step;
        match &self.policy {
            RemapPolicy::Interval { every } => *every > 0 && since >= *every,
            RemapPolicy::Threshold {
                lb_index,
                hysteresis,
                patience,
            } => {
                // Re-arm on recovery (the remap worked; watch for the next excursion), on
                // renewed growth past the post-remap baseline (a drift the partitioner has
                // not seen), or once `patience` steps have gone by (the workload has moved
                // even if the index has not).  Hovering at the post-remap level within the
                // patience window stays disarmed.
                if lb <= lb_index - hysteresis {
                    self.armed = true;
                } else if let Some(base) = self.post_remap_lb {
                    if lb > base + hysteresis {
                        self.armed = true;
                    }
                }
                if *patience > 0 && since >= *patience {
                    self.armed = true;
                }
                self.armed && lb > *lb_index
            }
            RemapPolicy::CostBenefit { assumed_cost_us } => {
                let cost = self.last_remap_cost_us.unwrap_or(*assumed_cost_us);
                self.monitor.cum_gain_us() > cost
            }
        }
    }

    /// Shared end-of-observation bookkeeping for [`RemapController::decide`] and
    /// [`RemapController::tick`].
    fn commit(&mut self, remap: bool) {
        if remap {
            self.remaps += 1;
            self.last_remap_step = self.step;
            self.reset_after_remap();
        }
        self.step += 1;
    }

    /// The state a remap invalidates, however it was triggered: the old distribution's
    /// accumulated losses, the Threshold arm, and the post-remap baseline.
    fn reset_after_remap(&mut self) {
        self.armed = false;
        self.post_remap_lb = None;
        self.awaiting_baseline = true;
        self.monitor.reset_window();
    }

    /// Tell the controller that a remap it did *not* decide has just been performed (for
    /// example a fixed-interval repartition composed with an adaptive policy).  Clears
    /// the accumulated imbalance state — losses measured on the old distribution say
    /// nothing about the new one and must not argue for an immediate second remap — and
    /// restarts the interval/patience clock.  Not collective (pure local bookkeeping),
    /// but every rank must call it for the same remap to keep decisions replicated.
    pub fn note_external_remap(&mut self) {
        self.last_remap_step = self.step;
        self.reset_after_remap();
    }

    /// Collective: report what the remap just performed actually cost, so the
    /// [`RemapPolicy::CostBenefit`] policy amortises *measured* cost instead of its
    /// `assumed_cost_us` bootstrap.  `local_bytes_sent` is summed and `local_modeled_us`
    /// max-reduced across the machine (a remap is over when its slowest rank is), so every
    /// rank stores the same figures.
    pub fn record_remap(&mut self, rank: &mut Rank, local_bytes_sent: u64, local_modeled_us: f64) {
        let bytes = rank.all_reduce_sum(local_bytes_sent as f64);
        let cost = rank.all_reduce_max(local_modeled_us);
        self.last_remap_bytes = bytes as u64;
        self.last_remap_cost_us = Some(cost);
    }

    /// Number of remap decisions issued so far.
    pub fn remap_count(&self) -> usize {
        self.remaps
    }

    /// The load-balance index of every observed step, in order.
    pub fn lb_trajectory(&self) -> &[f64] {
        self.monitor.lb_history()
    }

    /// Machine-wide modeled cost of the last recorded remap, if any.
    pub fn last_remap_cost_us(&self) -> Option<f64> {
        self.last_remap_cost_us
    }

    /// Machine-wide byte volume of the last recorded remap.
    pub fn last_remap_bytes(&self) -> u64 {
        self.last_remap_bytes
    }

    /// Observed steps since the last remap (or since the start, before any remap).
    pub fn steps_since_remap(&self) -> usize {
        self.step - self.last_remap_step
    }

    /// The policy this controller evaluates.
    pub fn policy(&self) -> &RemapPolicy {
        &self.policy
    }

    /// The monitor holding the windowed samples and the full LB trajectory.
    pub fn monitor(&self) -> &LoadMonitor {
        &self.monitor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsim::{run, CostModel, MachineConfig};

    fn balanced(n: usize) -> Vec<f64> {
        vec![10.0; n]
    }

    fn skewed(n: usize) -> Vec<f64> {
        let mut v = vec![10.0; n];
        v[0] = 10.0 * n as f64;
        v
    }

    #[test]
    fn interval_policy_matches_the_fixed_cadence() {
        // `step % 5 == 0 && step > 0` remapped at steps 5 and 10 over 15 steps; the
        // controller must reproduce exactly that schedule.
        let mut ctrl = RemapController::new(RemapPolicy::Interval { every: 5 });
        let mut remap_steps = Vec::new();
        for step in 0..15 {
            if ctrl.decide(&balanced(4)).remap {
                remap_steps.push(step);
            }
        }
        assert_eq!(remap_steps, vec![5, 10]);
        assert_eq!(ctrl.remap_count(), 2);
        assert_eq!(ctrl.lb_trajectory().len(), 15);
    }

    #[test]
    fn tick_drives_interval_without_measurements() {
        // The measurement-free path must reproduce the same cadence as decide()...
        let mut ctrl = RemapController::new(RemapPolicy::Interval { every: 5 });
        let mut remap_steps = Vec::new();
        for step in 0..15 {
            let d = ctrl.tick();
            assert!(d.lb_index.is_nan(), "a tick has no measurement");
            if d.remap {
                remap_steps.push(step);
            }
        }
        assert_eq!(remap_steps, vec![5, 10]);
        // ...and record no trajectory.
        assert!(ctrl.lb_trajectory().is_empty());
        // Measurement-driven policies can never fire from a tick.
        let mut thr = RemapController::new(RemapPolicy::Threshold {
            lb_index: 1.0,
            hysteresis: 0.0,
            patience: 1,
        });
        let mut cb = RemapController::new(RemapPolicy::CostBenefit {
            assumed_cost_us: 0.0,
        });
        for _ in 0..10 {
            assert!(!thr.tick().remap);
            assert!(!cb.tick().remap);
        }
    }

    #[test]
    fn interval_zero_never_remaps() {
        let mut ctrl = RemapController::new(RemapPolicy::Interval { every: 0 });
        for _ in 0..50 {
            assert!(!ctrl.decide(&skewed(4)).remap);
        }
        assert_eq!(ctrl.remap_count(), 0);
        // The trajectory is still recorded: interval-0 is the "sample only" configuration.
        assert_eq!(ctrl.lb_trajectory().len(), 50);
    }

    #[test]
    fn threshold_fires_on_imbalance_and_disarms_until_rebalanced() {
        let mut ctrl = RemapController::new(RemapPolicy::Threshold {
            lb_index: 1.5,
            hysteresis: 0.2,
            patience: 0,
        });
        // Balanced: no trigger.
        assert!(!ctrl.decide(&balanced(4)).remap);
        // Skewed (LB = 2.85 for n=4): fires.
        let d = ctrl.decide(&skewed(4));
        assert!(d.remap);
        assert!(d.lb_index > 1.5);
        // Still skewed right after the remap: disarmed, must not thrash.
        assert!(!ctrl.decide(&skewed(4)).remap);
        assert!(!ctrl.decide(&skewed(4)).remap);
        // Falls below 1.5 - 0.2: re-arms (LB of balanced is 1.0) without firing...
        assert!(!ctrl.decide(&balanced(4)).remap);
        // ...and the next excursion fires again.
        assert!(ctrl.decide(&skewed(4)).remap);
        assert_eq!(ctrl.remap_count(), 2);
    }

    #[test]
    fn threshold_dead_band_blocks_hovering_but_regrowth_refires() {
        let mut ctrl = RemapController::new(RemapPolicy::Threshold {
            lb_index: 1.5,
            hysteresis: 0.2,
            patience: 0,
        });
        assert!(ctrl.decide(&skewed(4)).remap);
        // Post-remap baseline ~ 1.4: hovering in the dead band (above the recovery bound
        // of 1.3, below the trigger) stays disarmed — no thrashing on an imbalance the
        // partitioner could not fully fix.
        let dead_band = vec![14.8, 10.0, 10.0, 7.5];
        let lb = load_balance_index(&dead_band);
        assert!(lb < 1.5 && lb > 1.3);
        assert!(!ctrl.decide(&dead_band).remap);
        assert!(!ctrl.decide(&dead_band).remap);
        // Renewed growth well past the baseline is a drift the partitioner has not seen:
        // the trigger re-arms and fires.
        assert!(ctrl.decide(&skewed(4)).remap);
        assert_eq!(ctrl.remap_count(), 2);
    }

    #[test]
    fn threshold_patience_rearms_a_stuck_trigger() {
        let mut ctrl = RemapController::new(RemapPolicy::Threshold {
            lb_index: 1.5,
            hysteresis: 0.2,
            patience: 4,
        });
        assert!(ctrl.decide(&skewed(4)).remap);
        // Post-remap the index hovers at its baseline: disarmed, within patience.
        assert!(!ctrl.decide(&skewed(4)).remap);
        assert!(!ctrl.decide(&skewed(4)).remap);
        assert!(!ctrl.decide(&skewed(4)).remap);
        // Four steps after the remap the patience escape re-arms the trigger: the world
        // has moved on, a retry is no longer a repeat.
        assert!(ctrl.decide(&skewed(4)).remap);
        assert_eq!(ctrl.remap_count(), 2);
    }

    #[test]
    fn cost_benefit_accumulates_losses_until_they_exceed_the_cost() {
        // skewed(4) loses max - mean = 40 - 17.5 = 22.5 us of compute per step; the
        // accumulated loss crosses the 100 us cost on the 5th observation (5 * 22.5).
        let mut ctrl = RemapController::new(RemapPolicy::CostBenefit {
            assumed_cost_us: 100.0,
        });
        let mut fired_at = None;
        for step in 0..10 {
            if ctrl.decide(&skewed(4)).remap {
                fired_at = Some(step);
                break;
            }
        }
        assert_eq!(fired_at, Some(4));
        // The accumulator reset with the remap: a balanced machine never re-fires.
        for _ in 0..10 {
            assert!(!ctrl.decide(&balanced(4)).remap);
        }
        assert_eq!(ctrl.remap_count(), 1);
    }

    #[test]
    fn external_remap_clears_accumulated_losses() {
        // A fixed-interval repartition composed with a CostBenefit policy: losses
        // accumulated on the *old* distribution must not fire a redundant remap of the
        // freshly-balanced one.
        let mut ctrl = RemapController::new(RemapPolicy::CostBenefit {
            assumed_cost_us: 100.0,
        });
        for _ in 0..4 {
            assert!(!ctrl.decide(&skewed(4)).remap); // cum loss now 90 us, just below
        }
        ctrl.note_external_remap();
        // Without the reset, one more skewed step would cross 100 us and fire; with it,
        // the accumulator restarts from the new distribution.
        assert!(!ctrl.decide(&skewed(4)).remap);
        assert_eq!(ctrl.steps_since_remap(), 1);
        assert_eq!(
            ctrl.remap_count(),
            0,
            "external remaps are not controller decisions"
        );
    }

    #[test]
    fn external_remap_restarts_threshold_baseline_and_patience() {
        let mut ctrl = RemapController::new(RemapPolicy::Threshold {
            lb_index: 1.5,
            hysteresis: 0.2,
            patience: 0,
        });
        ctrl.note_external_remap();
        // Disarmed by the external remap; the first reading becomes the baseline...
        assert!(!ctrl.decide(&skewed(4)).remap);
        // ...and hovering there stays disarmed, exactly as after a decided remap.
        assert!(!ctrl.decide(&skewed(4)).remap);
        // A balanced reading re-arms and the next excursion fires.
        assert!(!ctrl.decide(&balanced(4)).remap);
        assert!(ctrl.decide(&skewed(4)).remap);
    }

    #[test]
    fn cost_benefit_never_remaps_a_balanced_machine() {
        let mut ctrl = RemapController::new(RemapPolicy::CostBenefit {
            assumed_cost_us: 0.0,
        });
        for _ in 0..20 {
            assert!(!ctrl.decide(&balanced(8)).remap);
        }
    }

    #[test]
    fn measured_remap_cost_replaces_the_assumed_bootstrap() {
        let out = run(MachineConfig::new(2), |rank| {
            let mut ctrl = RemapController::new(RemapPolicy::CostBenefit {
                assumed_cost_us: 1e12,
            });
            // Against the absurd bootstrap cost nothing fires...
            let kept = !ctrl.decide(&[100.0, 0.0]).remap;
            // ...but once a cheap measured cost is recorded, the already-accumulated
            // loss (50 us) plus one more step (100 us total) exceeds 60 us.
            ctrl.record_remap(rank, 0, 60.0);
            let fired = ctrl.decide(&[100.0, 0.0]).remap;
            (kept, fired, ctrl.last_remap_cost_us())
        });
        for (kept, fired, cost) in &out.results {
            assert!(*kept);
            assert!(*fired);
            assert_eq!(*cost, Some(60.0));
        }
    }

    #[test]
    fn non_finite_samples_always_keep() {
        for policy in [
            RemapPolicy::Interval { every: 1 },
            RemapPolicy::Threshold {
                lb_index: 1.1,
                hysteresis: 0.1,
                patience: 0,
            },
            RemapPolicy::CostBenefit {
                assumed_cost_us: 0.0,
            },
        ] {
            let mut ctrl = RemapController::new(policy.clone());
            let poisoned = vec![10.0, f64::NAN, 10.0, 10.0];
            let d = ctrl.decide(&poisoned);
            assert!(d.lb_index.is_nan());
            if policy != (RemapPolicy::Interval { every: 1 }) {
                // Threshold and CostBenefit read the measurement: NaN must mean keep.
                assert!(!d.remap, "{policy:?} remapped on a poisoned sample");
            }
            // An infinite sample is poison too.
            let d = ctrl.decide(&[10.0, f64::INFINITY, 10.0, 10.0]);
            assert!(d.lb_index.is_nan());
        }
    }

    #[test]
    fn monitor_window_is_bounded_and_resettable() {
        let mut m = LoadMonitor::new(3);
        for _ in 0..10 {
            m.record(&skewed(4));
        }
        assert_eq!(m.window_len(), 3);
        assert_eq!(m.lb_history().len(), 10);
        assert!((m.mean_gain_us() - 22.5).abs() < 1e-9);
        assert!(
            (m.cum_gain_us() - 225.0).abs() < 1e-9,
            "accumulated loss spans all 10 steps, not just the window"
        );
        m.reset_window();
        assert_eq!(m.window_len(), 0);
        assert_eq!(m.mean_gain_us(), 0.0);
        assert_eq!(m.cum_gain_us(), 0.0);
        assert_eq!(m.lb_history().len(), 10, "trajectory survives a reset");
    }

    /// Run a drifting workload (rank 0's load ramps) through the controller at machine
    /// size `p` with the given monitoring topology; returns every rank's decision
    /// stream, LB trajectory and remap count.
    fn drift_run(p: usize, topology: MonitorTopology) -> Vec<(Vec<bool>, Vec<f64>, usize)> {
        let out = run(MachineConfig::new(p), move |rank| {
            let mut ctrl = RemapController::new(RemapPolicy::CostBenefit {
                assumed_cost_us: 120.0,
            })
            .with_topology(topology);
            let mut decisions = Vec::new();
            for step in 0..20 {
                let units = if rank.rank() == 0 {
                    10.0 + step as f64 * 3.0
                } else {
                    10.0
                };
                decisions.push(ctrl.observe_sample(rank, units).remap);
            }
            (decisions, ctrl.lb_trajectory().to_vec(), ctrl.remap_count())
        });
        out.results
    }

    #[test]
    fn hierarchical_monitoring_matches_flat_decisions() {
        // The acceptance pin: group-leader monitoring must reproduce the flat
        // controller's decision stream bit-exactly — same remap steps, same recorded
        // trajectory, on every rank, at non-power-of-two sizes and ragged group splits.
        for p in [3usize, 5, 9] {
            let flat = drift_run(p, MonitorTopology::Flat);
            for g in [1usize, 2, 4] {
                let hier = drift_run(p, MonitorTopology::Hierarchical { group: g });
                assert_eq!(flat, hier, "P={p} group={g}");
            }
            let square = drift_run(p, MonitorTopology::square_group(p));
            assert_eq!(flat, square, "P={p} square split");
            // The drift must actually fire at least once for the pin to mean anything.
            assert!(flat[0].2 >= 1, "P={p}: ramp never triggered a remap");
        }
    }

    #[test]
    fn hierarchical_monitoring_message_budget() {
        // One monitored step at P=16 with the square split: every rank stays within the
        // O(log P) budget (ceil(log2 16) = 4, plus tree forwarding slack).
        let out = run(MachineConfig::new(16), |rank| {
            let mut ctrl = RemapController::new(RemapPolicy::Interval { every: 0 })
                .with_topology(MonitorTopology::square_group(rank.nprocs()));
            let s0 = rank.stats().msgs_sent;
            ctrl.observe_sample(rank, 1.0);
            rank.stats().msgs_sent - s0
        });
        for (r, sent) in out.results.iter().enumerate() {
            assert!(*sent <= 6, "rank {r} sent {sent} messages in one step");
        }
    }

    #[test]
    fn collective_observation_agrees_on_every_rank() {
        // Rank 0 does 4x the compute of the others; with a threshold of 1.5 every rank
        // must reach the same "remap" decision from the same gathered samples.
        let cfg = MachineConfig::new(4).with_cost(CostModel::uniform(1.0, 0.0, 1.0));
        let out = run(cfg, |rank| {
            let mut ctrl = RemapController::new(RemapPolicy::Threshold {
                lb_index: 1.5,
                hysteresis: 0.1,
                patience: 0,
            });
            let t0 = rank.modeled();
            let units = if rank.rank() == 0 { 400.0 } else { 100.0 };
            rank.charge_compute(units);
            let d = ctrl.observe_phase(rank, &t0);
            ctrl.record_remap(rank, 64 * (rank.rank() as u64 + 1), units);
            (
                d,
                ctrl.last_remap_bytes(),
                ctrl.last_remap_cost_us().unwrap(),
            )
        });
        for (d, bytes, cost) in &out.results {
            assert!(d.remap);
            assert!((d.lb_index - 400.0 * 4.0 / 700.0).abs() < 1e-9);
            // 64*(1+2+3+4) bytes summed, 400 us max-reduced — identical everywhere.
            assert_eq!(*bytes, 640);
            assert_eq!(*cost, 400.0);
        }
    }
}
