//! # chaos — runtime support for adaptive irregular problems
//!
//! A Rust reproduction of the **CHAOS** runtime library described in
//! *"Run-time and compile-time support for adaptive irregular problems"*
//! (Sharma, Ponnusamy, Moon, Hwang, Das, Saltz — Supercomputing '94).  CHAOS subsumes the
//! earlier PARTI library: it supports the classic inspector/executor pattern for *static*
//! irregular loops and adds the machinery that *adaptive* applications need — cheap
//! schedule regeneration through a reusable stamped hash table, light-weight schedules for
//! order-insensitive data movement, and dynamic repartitioning/remapping of data and loop
//! iterations.
//!
//! The library is written against the [`mpsim`] simulated distributed-memory machine; every
//! collective operation takes a `&mut mpsim::Rank` and must be called by all ranks of the
//! machine (SPMD style), exactly as the original CHAOS procedures were called from
//! node programs on the Intel iPSC/860.
//!
//! ## The six phases (Figure 4 of the paper)
//!
//! | Phase | What it does | Where it lives |
//! |-------|--------------|----------------|
//! | A — data partitioning      | decide which processor owns each data-array element | [`partitioners`] |
//! | B — data remapping         | move data arrays to the new distribution | [`remap`] |
//! | C — iteration partitioning | decide which processor executes each loop iteration | [`iteration`] |
//! | D — iteration remapping    | move indirection-array slices to the executing processor | [`remap`] |
//! | E — inspector              | translate indices, build communication schedules | [`index_hash`], [`inspector`], [`schedule`] |
//! | F — executor               | gather/scatter/scatter_append data and run the loop | [`executor`] |
//!
//! ## Quick example: the irregular loop of Figure 1
//!
//! ```
//! use chaos::prelude::*;
//! use mpsim::{run, MachineConfig};
//!
//! // x(ia(i)) = x(ia(i)) + y(ib(i)) over a block-distributed x, y.
//! let n = 64;
//! let ia: Vec<usize> = (0..n).map(|i| (i * 7) % n).collect();
//! let ib: Vec<usize> = (0..n).map(|i| (i * 13 + 5) % n).collect();
//! let out = run(MachineConfig::new(4), move |rank| {
//!     let dist = BlockDist::new(n, rank.nprocs());
//!     let ttable = TranslationTable::replicated_from_block(&dist);
//!     // This rank executes the block of iterations it owns.
//!     let iters: Vec<usize> = dist.local_globals(rank.rank()).collect();
//!     let my_ia: Vec<usize> = iters.iter().map(|&i| ia[i]).collect();
//!     let my_ib: Vec<usize> = iters.iter().map(|&i| ib[i]).collect();
//!
//!     let mut insp = Inspector::new(&ttable, rank.rank());
//!     let la = insp.hash_indices(rank, &my_ia, Stamp::new(0));
//!     let lb = insp.hash_indices(rank, &my_ib, Stamp::new(1));
//!     let sched = insp.build_schedule(rank, StampQuery::any_of(&[Stamp::new(0), Stamp::new(1)]));
//!
//!     let mut x = DistArray::new(vec![1.0f64; dist.local_size(rank.rank())], sched.ghost_len());
//!     let mut y = DistArray::new(
//!         iters.iter().map(|&i| i as f64).collect::<Vec<_>>(),
//!         sched.ghost_len(),
//!     );
//!     gather(rank, &sched, &mut y);
//!     for (a, b) in la.iter().zip(&lb) {
//!         let v = y[*b];
//!         x[*a] += v;
//!     }
//!     scatter_add(rank, &sched, &mut x);
//!     x.owned().to_vec()
//! });
//! assert_eq!(out.results.len(), 4);
//! ```

#![deny(missing_docs)]

pub mod adapt;
pub mod cache;
pub mod darray;
pub mod distribution;
pub mod error;
pub mod executor;
pub mod index_hash;
pub mod inspector;
pub mod iteration;
pub mod loadbalance;
pub mod maintained;
pub mod par;
pub mod partitioners;
pub mod remap;
pub mod schedule;
pub mod translation;

/// A global (pre-distribution) array index.
pub type Global = usize;
/// A processor (rank) identifier.
pub type ProcId = usize;

pub use adapt::{LoadMonitor, MonitorTopology, RemapController, RemapDecision, RemapPolicy};
pub use cache::{CacheOutcome, CacheStats, ScheduleCache};
pub use darray::{DistArray, LocalRef};
pub use distribution::{BlockDist, CyclicDist, RegularDist};
pub use error::ChaosError;
pub use executor::{
    gather, gather_finish, gather_finish_dyn, gather_multi, gather_multi_dyn, gather_start,
    gather_start_dyn, scatter, scatter_add, scatter_add_multi, scatter_add_multi_dyn,
    scatter_append, scatter_append_finish, scatter_append_start, scatter_op, AppendHandle,
    GatherHandle,
};
pub use index_hash::{IndexHashTable, ScheduleKey, Stamp, StampQuery};
pub use inspector::{build_schedule_from_table, Inspector};
pub use iteration::{
    almost_owner_computes, almost_owner_computes_replicated, owner_computes,
    owner_computes_replicated, IterationPartition,
};
pub use loadbalance::{imbalance_ratio, load_balance_index};
pub use maintained::{build_maintained, patch_schedule, MaintainedSchedule, PatchStats};
pub use remap::{build_remap, remap_indices, remap_values, RemapPlan};
pub use schedule::{CommSchedule, LightweightSchedule};
pub use translation::{Loc, TranslationTable};

/// Commonly used items, re-exported for `use chaos::prelude::*`.
pub mod prelude {
    pub use crate::adapt::{
        LoadMonitor, MonitorTopology, RemapController, RemapDecision, RemapPolicy,
    };
    pub use crate::cache::{CacheOutcome, CacheStats, ScheduleCache};
    pub use crate::darray::{DistArray, LocalRef};
    pub use crate::distribution::{BlockDist, CyclicDist, RegularDist};
    pub use crate::executor::{
        gather, gather_finish, gather_finish_dyn, gather_multi, gather_multi_dyn, gather_start,
        gather_start_dyn, scatter, scatter_add, scatter_add_multi, scatter_add_multi_dyn,
        scatter_append, scatter_append_finish, scatter_append_start, scatter_op, AppendHandle,
        GatherHandle,
    };
    pub use crate::index_hash::{IndexHashTable, ScheduleKey, Stamp, StampQuery};
    pub use crate::inspector::{build_schedule_from_table, Inspector};
    pub use crate::iteration::{
        almost_owner_computes, almost_owner_computes_replicated, owner_computes,
        owner_computes_replicated, IterationPartition,
    };
    pub use crate::loadbalance::{imbalance_ratio, load_balance_index};
    pub use crate::maintained::{build_maintained, patch_schedule, MaintainedSchedule, PatchStats};
    pub use crate::partitioners::{chain_partition, rcb_partition, rib_partition, PartitionInput};
    pub use crate::remap::{build_remap, remap_indices, remap_values, RemapPlan};
    pub use crate::schedule::{CommSchedule, LightweightSchedule};
    pub use crate::translation::{Loc, TranslationTable};
    pub use crate::{Global, ProcId};
}
