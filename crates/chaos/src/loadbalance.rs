//! Load-balance metrics.
//!
//! Section 4.1 of the paper defines the load-balance index as
//! `LB = max_i(t_i) * n / sum_i(t_i)` where `t_i` is processor *i*'s computation time —
//! 1.0 is perfect balance, and CHARMM stays between 1.03 and 1.08 up to 128 processors.
//! DSMC uses the drift of this quantity to decide when remapping is worthwhile.

/// The paper's load-balance index: `max(times) * n / sum(times)`.  Returns 1.0 for an
/// empty slice or an all-zero workload (a degenerate but balanced situation).
pub fn load_balance_index(per_proc_times: &[f64]) -> f64 {
    if per_proc_times.is_empty() {
        return 1.0;
    }
    let max = per_proc_times.iter().copied().fold(0.0f64, f64::max);
    let sum: f64 = per_proc_times.iter().sum();
    if sum <= 0.0 {
        1.0
    } else {
        max * per_proc_times.len() as f64 / sum
    }
}

/// The ratio of the most-loaded to the least-loaded processor (`inf` if some processor has
/// zero load while another does not).  A blunter but more intuitive indicator used by the
/// DSMC driver to decide when to trigger remapping.
pub fn imbalance_ratio(per_proc_times: &[f64]) -> f64 {
    if per_proc_times.is_empty() {
        return 1.0;
    }
    let max = per_proc_times.iter().copied().fold(f64::MIN, f64::max);
    let min = per_proc_times.iter().copied().fold(f64::MAX, f64::min);
    if max <= 0.0 {
        1.0
    } else if min <= 0.0 {
        f64::INFINITY
    } else {
        max / min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_balance_is_one() {
        assert_eq!(load_balance_index(&[5.0, 5.0, 5.0, 5.0]), 1.0);
        assert_eq!(imbalance_ratio(&[5.0, 5.0]), 1.0);
    }

    #[test]
    fn paper_definition_matches_hand_computation() {
        // times 1,2,3,4: max=4, mean=2.5 => LB = 1.6
        assert!((load_balance_index(&[1.0, 2.0, 3.0, 4.0]) - 1.6).abs() < 1e-12);
        assert_eq!(imbalance_ratio(&[1.0, 2.0, 3.0, 4.0]), 4.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(load_balance_index(&[]), 1.0);
        assert_eq!(load_balance_index(&[0.0, 0.0]), 1.0);
        assert_eq!(imbalance_ratio(&[]), 1.0);
        assert_eq!(imbalance_ratio(&[0.0, 0.0]), 1.0);
        assert!(imbalance_ratio(&[0.0, 3.0]).is_infinite());
    }

    #[test]
    fn single_processor_is_balanced() {
        assert_eq!(load_balance_index(&[42.0]), 1.0);
        assert_eq!(imbalance_ratio(&[42.0]), 1.0);
    }
}
