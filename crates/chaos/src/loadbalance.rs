//! Load-balance metrics.
//!
//! Section 4.1 of the paper defines the load-balance index as
//! `LB = max_i(t_i) * n / sum_i(t_i)` where `t_i` is processor *i*'s computation time —
//! 1.0 is perfect balance, and CHARMM stays between 1.03 and 1.08 up to 128 processors.
//! DSMC uses the drift of this quantity to decide when remapping is worthwhile; the
//! [`crate::adapt::RemapController`] turns that drift into remap/keep decisions.
//!
//! # The non-finite contract
//!
//! Both metrics return `NaN` whenever *any* sample is non-finite (`NaN` or `±inf`).  A
//! corrupted sample must never be laundered into a plausible-looking index: every
//! comparison against `NaN` is false, so a `NaN` index fails every "imbalanced enough to
//! remap?" test and the remap controller safely keeps the current distribution.  The tests
//! below pin this contract; [`crate::adapt`] relies on it.

/// True when every sample is a finite number — the precondition for a meaningful metric.
fn all_finite(per_proc_times: &[f64]) -> bool {
    per_proc_times.iter().all(|t| t.is_finite())
}

/// The paper's load-balance index: `max(times) * n / sum(times)`.  Returns 1.0 for an
/// empty slice or an all-zero workload (a degenerate but balanced situation), and `NaN`
/// when any sample is non-finite (see the module docs for the contract).
pub fn load_balance_index(per_proc_times: &[f64]) -> f64 {
    if per_proc_times.is_empty() {
        return 1.0;
    }
    if !all_finite(per_proc_times) {
        return f64::NAN;
    }
    let max = per_proc_times.iter().copied().fold(0.0f64, f64::max);
    let sum: f64 = per_proc_times.iter().sum();
    if sum <= 0.0 {
        1.0
    } else {
        max * per_proc_times.len() as f64 / sum
    }
}

/// The ratio of the most-loaded to the least-loaded processor (`inf` if some processor has
/// zero load while another does not).  A blunter but more intuitive indicator than the
/// load-balance index.  Returns `NaN` when any sample is non-finite (see the module docs).
pub fn imbalance_ratio(per_proc_times: &[f64]) -> f64 {
    if per_proc_times.is_empty() {
        return 1.0;
    }
    if !all_finite(per_proc_times) {
        return f64::NAN;
    }
    let max = per_proc_times.iter().copied().fold(f64::MIN, f64::max);
    let min = per_proc_times.iter().copied().fold(f64::MAX, f64::min);
    if max <= 0.0 {
        1.0
    } else if min <= 0.0 {
        f64::INFINITY
    } else {
        max / min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_balance_is_one() {
        assert_eq!(load_balance_index(&[5.0, 5.0, 5.0, 5.0]), 1.0);
        assert_eq!(imbalance_ratio(&[5.0, 5.0]), 1.0);
    }

    #[test]
    fn paper_definition_matches_hand_computation() {
        // times 1,2,3,4: max=4, mean=2.5 => LB = 1.6
        assert!((load_balance_index(&[1.0, 2.0, 3.0, 4.0]) - 1.6).abs() < 1e-12);
        assert_eq!(imbalance_ratio(&[1.0, 2.0, 3.0, 4.0]), 4.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(load_balance_index(&[]), 1.0);
        assert_eq!(load_balance_index(&[0.0, 0.0]), 1.0);
        assert_eq!(imbalance_ratio(&[]), 1.0);
        assert_eq!(imbalance_ratio(&[0.0, 0.0]), 1.0);
        assert!(imbalance_ratio(&[0.0, 3.0]).is_infinite());
    }

    #[test]
    fn single_processor_is_balanced() {
        assert_eq!(load_balance_index(&[42.0]), 1.0);
        assert_eq!(imbalance_ratio(&[42.0]), 1.0);
    }

    #[test]
    fn any_nan_sample_poisons_both_metrics() {
        // The contract: one NaN sample anywhere makes the whole metric NaN — it must not
        // be silently dropped by the max/min folds (f64::max(x, NaN) returns x, which
        // would otherwise hide the corruption entirely).
        assert!(load_balance_index(&[f64::NAN]).is_nan());
        assert!(load_balance_index(&[1.0, f64::NAN, 3.0]).is_nan());
        assert!(load_balance_index(&[f64::NAN, 1.0]).is_nan());
        assert!(imbalance_ratio(&[f64::NAN]).is_nan());
        assert!(imbalance_ratio(&[2.0, f64::NAN]).is_nan());
        assert!(imbalance_ratio(&[f64::NAN, 2.0]).is_nan());
    }

    #[test]
    fn infinite_samples_are_poison_too() {
        assert!(load_balance_index(&[1.0, f64::INFINITY]).is_nan());
        assert!(load_balance_index(&[f64::NEG_INFINITY, 1.0]).is_nan());
        assert!(imbalance_ratio(&[1.0, f64::INFINITY]).is_nan());
        assert!(imbalance_ratio(&[f64::NEG_INFINITY, 1.0]).is_nan());
    }

    #[test]
    // The negated comparisons are the point: NaN makes every ordering comparison false.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn nan_index_never_triggers_a_threshold() {
        // What the remap controller relies on: every comparison against the poisoned
        // index is false, so no threshold test can fire.
        let lb = load_balance_index(&[1.0, f64::NAN]);
        assert!(!(lb > 1.5));
        assert!(!(lb >= 0.0));
        assert!(!(lb < f64::INFINITY));
    }
}
