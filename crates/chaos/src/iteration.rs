//! Loop-iteration partitioning (Phase C).
//!
//! Once the data arrays are distributed, CHAOS decides which processor executes each loop
//! iteration.  Two heuristics from §3.1 are provided:
//!
//! * **owner-computes** — an iteration runs on the processor that owns a designated "home"
//!   data element (CHARMM's non-bonded loop iterates over atoms, so the iteration for atom
//!   *i* runs wherever atom *i* lives);
//! * **almost-owner-computes** — an iteration runs on the processor owning the *majority*
//!   of the data elements it touches, which biases the assignment towards lower
//!   communication volume (used for CHARMM's bonded loop, whose iterations touch two
//!   atoms).
//!
//! Both return, for each locally held iteration, the processor that should execute it;
//! [`IterationPartition`] wraps the result together with helpers to build the translation
//! table of the iteration space and remap indirection arrays to their executing
//! processors (Phase D).

use mpsim::Rank;

use crate::distribution::{BlockDist, RegularDist};
use crate::remap::{build_remap, remap_indices, RemapPlan};
use crate::translation::TranslationTable;
use crate::{Global, ProcId};

/// The result of partitioning a block-distributed iteration space.
pub struct IterationPartition {
    /// Owner (executing processor) of each locally held iteration, in local order.
    pub local_owners: Vec<ProcId>,
    /// The block distribution the iteration space had *before* partitioning (the
    /// distribution `local_owners` is aligned with).
    pub iter_dist: BlockDist,
}

impl IterationPartition {
    /// Build the translation table of the partitioned iteration space (collective).
    pub fn translation_table(&self, rank: &mut Rank) -> TranslationTable {
        TranslationTable::replicated_from_map(rank, &self.local_owners, &self.iter_dist)
            .expect("iteration owners are valid processor ids by construction")
    }

    /// Build the remap plan that moves per-iteration data (for example indirection-array
    /// slices) from the original block distribution to the executing processors
    /// (collective).
    pub fn remap_plan(&self, rank: &mut Rank) -> RemapPlan {
        let globals: Vec<Global> = self.iter_dist.local_globals(rank.rank()).collect();
        let mut table = self.translation_table(rank);
        build_remap(rank, &globals, &mut table)
    }

    /// Remap one indirection array so each executing processor holds the entries of the
    /// iterations assigned to it (Phase D).  `plan` must come from
    /// [`IterationPartition::remap_plan`].
    pub fn remap_indirection(
        &self,
        rank: &mut Rank,
        plan: &RemapPlan,
        local_entries: &[Global],
    ) -> Vec<Global> {
        remap_indices(rank, plan, local_entries)
    }

    /// Number of iterations assigned to each processor (collective: requires a reduction).
    pub fn counts_per_processor(&self, rank: &mut Rank) -> Vec<usize> {
        let mut counts = vec![0.0f64; rank.nprocs()];
        for &p in &self.local_owners {
            counts[p] += 1.0;
        }
        rank.all_reduce_sum_vec(&counts)
            .into_iter()
            .map(|c| c as usize)
            .collect()
    }
}

/// Owner-computes iteration partitioning: iteration `i` (whose home data element is
/// `home_elements[i]`, a global index into the data array described by `data_table`) is
/// executed by the owner of that element.
///
/// `iter_dist` describes how the iteration space is currently block-distributed;
/// `home_elements` are the home data elements of this rank's local iterations.
/// Collective if `data_table` is distributed.
pub fn owner_computes(
    rank: &mut Rank,
    data_table: &mut TranslationTable,
    iter_dist: BlockDist,
    home_elements: &[Global],
) -> IterationPartition {
    let locs = data_table.lookup(rank, home_elements);
    rank.charge_compute(home_elements.len() as f64 * 0.05);
    IterationPartition {
        local_owners: locs.iter().map(|l| l.owner as usize).collect(),
        iter_dist,
    }
}

/// Non-collective variant of [`owner_computes`] for **replicated** data translation
/// tables (no communication can be needed, so the table is taken by shared reference).
pub fn owner_computes_replicated(
    rank: &mut Rank,
    data_table: &TranslationTable,
    iter_dist: BlockDist,
    home_elements: &[Global],
) -> IterationPartition {
    rank.charge_compute(home_elements.len() as f64 * 0.05);
    IterationPartition {
        local_owners: home_elements
            .iter()
            .map(|&g| {
                data_table
                    .lookup_local(g)
                    .expect("owner-computes partitioning requires a replicated translation table")
                    .owner as usize
            })
            .collect(),
        iter_dist,
    }
}

/// Non-collective variant of [`almost_owner_computes`] for **replicated** data translation
/// tables.
pub fn almost_owner_computes_replicated(
    rank: &mut Rank,
    data_table: &TranslationTable,
    iter_dist: BlockDist,
    accesses: &[Vec<Global>],
) -> IterationPartition {
    let nprocs = rank.nprocs();
    rank.charge_compute(accesses.iter().map(Vec::len).sum::<usize>() as f64 * 0.08);
    let mut votes = vec![0usize; nprocs];
    let local_owners = accesses
        .iter()
        .map(|access| {
            for v in votes.iter_mut() {
                *v = 0;
            }
            for &g in access {
                let loc = data_table
                    .lookup_local(g)
                    .expect("almost-owner-computes requires a replicated translation table");
                votes[loc.owner as usize] += 1;
            }
            votes
                .iter()
                .enumerate()
                .max_by_key(|&(p, &count)| (count, std::cmp::Reverse(p)))
                .map_or(rank.rank(), |(p, _)| p)
        })
        .collect();
    IterationPartition {
        local_owners,
        iter_dist,
    }
}

/// Almost-owner-computes iteration partitioning: each iteration is executed by the
/// processor owning the majority of the data elements it accesses; ties are broken in
/// favour of the lowest processor id (deterministic).
///
/// `accesses` lists, for each locally held iteration, the global data elements that
/// iteration touches.  Collective if `data_table` is distributed.
pub fn almost_owner_computes(
    rank: &mut Rank,
    data_table: &mut TranslationTable,
    iter_dist: BlockDist,
    accesses: &[Vec<Global>],
) -> IterationPartition {
    // Flatten the accesses so a distributed table pays one collective lookup.
    let flat: Vec<Global> = accesses.iter().flatten().copied().collect();
    let locs = data_table.lookup(rank, &flat);
    rank.charge_compute(flat.len() as f64 * 0.08);
    let nprocs = rank.nprocs();
    let mut local_owners = Vec::with_capacity(accesses.len());
    let mut cursor = 0usize;
    let mut votes = vec![0usize; nprocs];
    for access in accesses {
        for v in votes.iter_mut() {
            *v = 0;
        }
        for _ in access {
            votes[locs[cursor].owner as usize] += 1;
            cursor += 1;
        }
        let winner = votes
            .iter()
            .enumerate()
            .max_by_key(|&(p, &count)| (count, std::cmp::Reverse(p)))
            .map_or(rank.rank(), |(p, _)| p);
        local_owners.push(winner);
    }
    IterationPartition {
        local_owners,
        iter_dist,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::RegularDist;
    use mpsim::{run, MachineConfig};

    #[test]
    fn owner_computes_follows_data_owner() {
        let n_data = 16;
        let n_iter = 16;
        let out = run(MachineConfig::new(4), move |rank| {
            let data_dist = BlockDist::new(n_data, rank.nprocs());
            let mut table = TranslationTable::from_regular(&data_dist);
            let iter_dist = BlockDist::new(n_iter, rank.nprocs());
            // Iteration i's home element is (i + 5) mod n_data.
            let homes: Vec<usize> = iter_dist
                .local_globals(rank.rank())
                .map(|i| (i + 5) % n_data)
                .collect();
            let part = owner_computes(rank, &mut table, iter_dist, &homes);
            (part.local_owners.clone(), homes)
        });
        let data_dist = BlockDist::new(n_data, 4);
        for (owners, homes) in &out.results {
            for (o, h) in owners.iter().zip(homes) {
                assert_eq!(*o, data_dist.owner(*h));
            }
        }
    }

    #[test]
    fn almost_owner_computes_takes_majority_and_breaks_ties_low() {
        let n_data = 12;
        let out = run(MachineConfig::new(3), move |rank| {
            let data_dist = BlockDist::new(n_data, rank.nprocs());
            let mut table = TranslationTable::from_regular(&data_dist);
            // Each rank holds two iterations:
            //   iteration A touches {0, 1, 11}  -> majority on processor 0
            //   iteration B touches {0, 4, 8}   -> three-way tie -> processor 0 (lowest)
            let iter_dist = BlockDist::new(6, rank.nprocs());
            let accesses = vec![vec![0usize, 1, 11], vec![0usize, 4, 8]];
            let part = almost_owner_computes(rank, &mut table, iter_dist, &accesses);
            part.local_owners.clone()
        });
        for owners in &out.results {
            assert_eq!(owners, &vec![0, 0]);
        }
    }

    #[test]
    fn iteration_translation_table_and_counts() {
        let n_iter = 20;
        let out = run(MachineConfig::new(4), move |rank| {
            let iter_dist = BlockDist::new(n_iter, rank.nprocs());
            // Assign every iteration to processor (g mod 2): only processors 0 and 1
            // execute anything.
            let owners: Vec<usize> = iter_dist
                .local_globals(rank.rank())
                .map(|g| g % 2)
                .collect();
            let part = IterationPartition {
                local_owners: owners,
                iter_dist,
            };
            let counts = part.counts_per_processor(rank);
            let table = part.translation_table(rank);
            (counts, table.local_size(0), table.local_size(3))
        });
        for (counts, size0, size3) in &out.results {
            assert_eq!(counts, &vec![10, 10, 0, 0]);
            assert_eq!(*size0, 10);
            assert_eq!(*size3, 0);
        }
    }

    #[test]
    fn indirection_arrays_follow_their_iterations() {
        // Phase D: after iteration partitioning, each executing processor must hold the
        // indirection-array entries of the iterations it was assigned.
        let n_data = 24;
        let n_iter = 24;
        let out = run(MachineConfig::new(3), move |rank| {
            let data_dist = BlockDist::new(n_data, rank.nprocs());
            let mut table = TranslationTable::from_regular(&data_dist);
            let iter_dist = BlockDist::new(n_iter, rank.nprocs());
            let my_iters: Vec<usize> = iter_dist.local_globals(rank.rank()).collect();
            // ia[i] = (7i + 2) mod n_data; iteration i's home is ia[i].
            let my_ia: Vec<usize> = my_iters.iter().map(|&i| (7 * i + 2) % n_data).collect();
            let part = owner_computes(rank, &mut table, iter_dist, &my_ia);
            let plan = part.remap_plan(rank);
            let new_ia = part.remap_indirection(rank, &plan, &my_ia);
            // After remapping, every entry this rank holds must reference data it owns
            // (owner-computes guarantees home == owned).
            let all_owned = new_ia.iter().all(|&g| data_dist.owner(g) == rank.rank());
            (all_owned, new_ia.len())
        });
        let mut total = 0;
        for (all_owned, len) in &out.results {
            assert!(all_owned);
            total += len;
        }
        assert_eq!(total, n_iter, "no iteration may be lost or duplicated");
    }
}
