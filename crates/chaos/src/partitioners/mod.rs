//! Data partitioners (Phase A).
//!
//! CHAOS "supports a number of parallel partitioners that partition data arrays using
//! heuristics based on spatial positions, computational load, connectivity, etc." (§3.1).
//! The ones the paper's experiments use are implemented here:
//!
//! * [`rcb_partition`] — recursive coordinate bisection (Berger–Bokhari style): split the
//!   bounding box along its longest axis at the weighted median, recurse.
//! * [`rib_partition`] — recursive inertial bisection (Nour-Omid et al.): like RCB but the
//!   split direction is the principal axis of inertia of the point set, which adapts to
//!   skewed geometries.
//! * [`chain_partition`] — the fast one-dimensional chain partitioner (Nicol/O'Hallaron)
//!   used by DSMC when the particle flow is strongly directional: equal-weight contiguous
//!   slabs along one axis, computed from a weight histogram in a single reduction.
//! * [`block_map`] / [`cyclic_map`] — the regular distributions, for comparison baselines.
//!
//! All geometric partitioners are SPMD: each rank passes the coordinates and computational
//! weights of the elements it currently holds and receives the *new owner* of each of those
//! elements.  The result is a map-array fragment that feeds straight into
//! [`crate::translation::TranslationTable::replicated_from_map`] (or the distributed
//! variants) and then [`crate::remap`].

mod bisection;
mod chain;
mod geometry;
mod regular;

pub use bisection::{rcb_partition, rib_partition};
pub use chain::chain_partition;
pub use geometry::{bounding_box, principal_axis, weighted_median_split};
pub use regular::{block_map, cyclic_map};

/// The per-element inputs a geometric partitioner needs: spatial position and
/// computational weight (for CHARMM, the non-bonded list length of the atom; for DSMC, the
/// number of molecules in the cell).
#[derive(Debug, Clone, Copy)]
pub struct PartitionInput<'a> {
    /// Spatial position of each local element (2-D problems set the third component to 0).
    pub coords: &'a [[f64; 3]],
    /// Non-negative computational weight of each local element.
    pub weights: &'a [f64],
}

impl<'a> PartitionInput<'a> {
    /// Bundle coordinates and weights, checking that the lengths agree.
    pub fn new(coords: &'a [[f64; 3]], weights: &'a [f64]) -> Self {
        assert_eq!(
            coords.len(),
            weights.len(),
            "coordinates and weights must have the same length"
        );
        Self { coords, weights }
    }

    /// Number of local elements.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// True if this rank currently holds no elements.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_input_checks_lengths() {
        let coords = [[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]];
        let weights = [1.0, 2.0];
        let input = PartitionInput::new(&coords, &weights);
        assert_eq!(input.len(), 2);
        assert!(!input.is_empty());
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn partition_input_rejects_mismatched_lengths() {
        let coords = [[0.0, 0.0, 0.0]];
        let weights = [1.0, 2.0];
        let _ = PartitionInput::new(&coords, &weights);
    }
}
