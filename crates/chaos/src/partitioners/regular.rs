//! The regular (BLOCK / CYCLIC) map arrays, used as baselines and starting distributions.

use crate::distribution::{BlockDist, CyclicDist, RegularDist};
use crate::ProcId;

/// The map array of an `n`-element BLOCK distribution over `nprocs` processors.
pub fn block_map(n: usize, nprocs: usize) -> Vec<ProcId> {
    BlockDist::new(n, nprocs).owner_map()
}

/// The map array of an `n`-element CYCLIC distribution over `nprocs` processors.
pub fn cyclic_map(n: usize, nprocs: usize) -> Vec<ProcId> {
    CyclicDist::new(n, nprocs).owner_map()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_map_is_sorted_and_balanced() {
        let map = block_map(10, 3);
        assert_eq!(map, vec![0, 0, 0, 0, 1, 1, 1, 2, 2, 2]);
        let mut sorted = map.clone();
        sorted.sort_unstable();
        assert_eq!(map, sorted);
    }

    #[test]
    fn cyclic_map_round_robins() {
        assert_eq!(cyclic_map(7, 3), vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn empty_maps() {
        assert!(block_map(0, 4).is_empty());
        assert!(cyclic_map(0, 4).is_empty());
    }
}
