//! Geometric helpers shared by the bisection partitioners: bounding boxes, weighted median
//! splits, and principal (inertial) axes.

/// Axis-aligned bounding box of a point set: `(min, max)` per dimension.  Returns
/// `([0;3], [0;3])` for an empty set.
pub fn bounding_box(coords: &[[f64; 3]]) -> ([f64; 3], [f64; 3]) {
    if coords.is_empty() {
        return ([0.0; 3], [0.0; 3]);
    }
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for c in coords {
        for d in 0..3 {
            lo[d] = lo[d].min(c[d]);
            hi[d] = hi[d].max(c[d]);
        }
    }
    (lo, hi)
}

/// Split a weighted, keyed element set into a "left" part holding approximately
/// `target_fraction` of the total weight (elements with the smallest keys) and a "right"
/// part with the rest.  Returns a boolean per element (`true` = left), in input order.
///
/// Ties on the key are broken by input order, which keeps the split deterministic for the
/// group leader that evaluates it, and therefore for the whole machine.  Keys are ordered
/// with [`f64::total_cmp`], so `NaN` keys (a corrupted coordinate, an inertial projection
/// of a degenerate point set) order deterministically at the extremes instead of
/// panicking — positive `NaN` after every finite key, sign-bit-set `NaN` before — and the
/// split stays total.
pub fn weighted_median_split(keys: &[f64], weights: &[f64], target_fraction: f64) -> Vec<bool> {
    assert_eq!(keys.len(), weights.len());
    assert!(
        (0.0..=1.0).contains(&target_fraction),
        "target fraction must lie in [0, 1]"
    );
    let n = keys.len();
    if n == 0 {
        return Vec::new();
    }
    let total: f64 = weights.iter().sum();
    let target = total * target_fraction;
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| keys[a].total_cmp(&keys[b]).then(a.cmp(&b)));
    let mut left = vec![false; n];
    let mut acc = 0.0;
    for (taken, &i) in order.iter().enumerate() {
        // Take elements while we are still below the target, but always take at least one
        // and never take everything (both sides must be non-empty when n >= 2).
        if taken > 0 && (acc >= target || taken + 1 >= n) {
            break;
        }
        left[i] = true;
        acc += weights[i];
    }
    left
}

/// The principal axis of inertia of a weighted point set: the direction in which the set
/// is most spread out.  Computed with a fixed number of power iterations on the weighted
/// covariance matrix, which is deterministic and ample for a bisection heuristic.  Returns
/// a unit vector; degenerate sets fall back to the x axis.
pub fn principal_axis(coords: &[[f64; 3]], weights: &[f64]) -> [f64; 3] {
    assert_eq!(coords.len(), weights.len());
    let total: f64 = weights.iter().sum();
    if coords.is_empty() || total <= 0.0 {
        return [1.0, 0.0, 0.0];
    }
    // Weighted centroid.
    let mut c = [0.0f64; 3];
    for (p, &w) in coords.iter().zip(weights) {
        for d in 0..3 {
            c[d] += p[d] * w;
        }
    }
    for v in &mut c {
        *v /= total;
    }
    // Weighted covariance (symmetric 3x3).
    let mut cov = [[0.0f64; 3]; 3];
    for (p, &w) in coords.iter().zip(weights) {
        let d = [p[0] - c[0], p[1] - c[1], p[2] - c[2]];
        for i in 0..3 {
            for j in 0..3 {
                cov[i][j] += w * d[i] * d[j];
            }
        }
    }
    // Power iteration from a fixed, slightly asymmetric seed so symmetric point sets do
    // not stall on a zero vector.
    let mut v = [1.0f64, 0.7, 0.4];
    for _ in 0..50 {
        let mut next = [0.0f64; 3];
        for i in 0..3 {
            for j in 0..3 {
                next[i] += cov[i][j] * v[j];
            }
        }
        let norm = (next[0] * next[0] + next[1] * next[1] + next[2] * next[2]).sqrt();
        if norm < 1e-30 {
            return [1.0, 0.0, 0.0];
        }
        v = [next[0] / norm, next[1] / norm, next[2] / norm];
    }
    v
}

/// Index of the longest extent of a bounding box (0 = x, 1 = y, 2 = z).
pub fn longest_dimension(lo: [f64; 3], hi: [f64; 3]) -> usize {
    let extents = [hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]];
    let mut best = 0;
    for d in 1..3 {
        if extents[d] > extents[best] {
            best = d;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounding_box_of_points() {
        let pts = [[1.0, -2.0, 3.0], [4.0, 0.0, -1.0], [2.0, 5.0, 0.0]];
        let (lo, hi) = bounding_box(&pts);
        assert_eq!(lo, [1.0, -2.0, -1.0]);
        assert_eq!(hi, [4.0, 5.0, 3.0]);
        assert_eq!(longest_dimension(lo, hi), 1);
        let (lo, hi) = bounding_box(&[]);
        assert_eq!(lo, [0.0; 3]);
        assert_eq!(hi, [0.0; 3]);
    }

    #[test]
    fn median_split_balances_weight() {
        // 10 unit-weight elements with keys 0..10, half-half target.
        let keys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let weights = vec![1.0; 10];
        let left = weighted_median_split(&keys, &weights, 0.5);
        let left_count = left.iter().filter(|&&b| b).count();
        assert_eq!(left_count, 5);
        // The left elements are exactly the 5 smallest keys.
        for (i, &l) in left.iter().enumerate() {
            assert_eq!(l, i < 5);
        }
    }

    #[test]
    fn median_split_respects_weights() {
        // One very heavy element at the small end: a 50% split should take only it.
        let keys = vec![0.0, 1.0, 2.0, 3.0];
        let weights = vec![10.0, 1.0, 1.0, 1.0];
        let left = weighted_median_split(&keys, &weights, 0.5);
        assert_eq!(left, vec![true, false, false, false]);
    }

    #[test]
    fn median_split_never_empties_a_side() {
        let keys = vec![1.0, 2.0];
        let weights = vec![100.0, 1.0];
        let left = weighted_median_split(&keys, &weights, 0.01);
        assert_eq!(left.iter().filter(|&&b| b).count(), 1);
        let left = weighted_median_split(&keys, &weights, 0.999);
        assert!(left.iter().filter(|&&b| b).count() < 2);
        // Single element: goes left regardless of the target.
        assert_eq!(weighted_median_split(&[5.0], &[1.0], 0.0), vec![true]);
        assert!(weighted_median_split(&[], &[], 0.5).is_empty());
    }

    #[test]
    fn median_split_tolerates_nan_keys() {
        // Regression: the sort used `partial_cmp(..).unwrap()`, which panicked the moment
        // a NaN coordinate reached the partitioner.  Positive NaN keys now order after
        // every finite key (total_cmp), so they stay out of the left part whenever
        // enough finite keys exist.
        let keys = vec![2.0, f64::NAN, 0.0, 1.0];
        let weights = vec![1.0; 4];
        let left = weighted_median_split(&keys, &weights, 0.5);
        assert_eq!(left, vec![false, false, true, true]);
        // All-NaN keys: still total and deterministic — ties broken by input order.
        let left = weighted_median_split(&[f64::NAN, f64::NAN], &[1.0, 1.0], 0.5);
        assert_eq!(left, vec![true, false]);
    }

    #[test]
    fn median_split_single_element_edges() {
        // n = 1: the only element goes left no matter the target.
        assert_eq!(weighted_median_split(&[5.0], &[1.0], 0.0), vec![true]);
        assert_eq!(weighted_median_split(&[5.0], &[1.0], 0.5), vec![true]);
        assert_eq!(weighted_median_split(&[5.0], &[1.0], 1.0), vec![true]);
        assert_eq!(weighted_median_split(&[5.0], &[0.0], 1.0), vec![true]);
    }

    #[test]
    fn median_split_extreme_targets_keep_both_sides_nonempty() {
        let keys: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let weights = vec![1.0; 6];
        // target_fraction = 0: exactly one element (the smallest key) goes left.
        let left = weighted_median_split(&keys, &weights, 0.0);
        assert_eq!(left.iter().filter(|&&b| b).count(), 1);
        assert!(left[0]);
        // target_fraction = 1: everything but one element goes left.
        let left = weighted_median_split(&keys, &weights, 1.0);
        assert_eq!(left.iter().filter(|&&b| b).count(), 5);
        assert!(!left[5]);
    }

    #[test]
    fn median_split_all_zero_weights() {
        // Zero total weight means the target is hit immediately; the split still takes
        // exactly one element so both sides are non-empty.
        let keys = vec![3.0, 1.0, 2.0];
        let weights = vec![0.0; 3];
        let left = weighted_median_split(&keys, &weights, 0.5);
        assert_eq!(left, vec![false, true, false]);
    }

    #[test]
    fn median_split_uneven_target() {
        let keys: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let weights = vec![1.0; 8];
        // Quarter split: 2 of 8 elements go left.
        let left = weighted_median_split(&keys, &weights, 0.25);
        assert_eq!(left.iter().filter(|&&b| b).count(), 2);
    }

    #[test]
    fn principal_axis_finds_the_spread_direction() {
        // Points spread along the y axis.
        let pts: Vec<[f64; 3]> = (0..20)
            .map(|i| [0.1 * (i % 3) as f64, i as f64, 0.05 * (i % 2) as f64])
            .collect();
        let w = vec![1.0; 20];
        let axis = principal_axis(&pts, &w);
        assert!(
            axis[1].abs() > 0.95,
            "expected y-dominant axis, got {axis:?}"
        );
        // Unit length.
        let norm = (axis[0] * axis[0] + axis[1] * axis[1] + axis[2] * axis[2]).sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn principal_axis_degenerate_sets() {
        assert_eq!(principal_axis(&[], &[]), [1.0, 0.0, 0.0]);
        let pts = [[2.0, 2.0, 2.0]];
        assert_eq!(principal_axis(&pts, &[1.0]), [1.0, 0.0, 0.0]);
    }
}
