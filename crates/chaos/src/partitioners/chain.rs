//! The one-dimensional chain partitioner (§4.2.1 of the paper).
//!
//! DSMC's particle flow is strongly directional (in the paper's experiments more than 70 %
//! of the molecules drift along +x), so partitioning the cells into contiguous slabs along
//! the flow direction gives good load balance at a fraction of the cost of recursive
//! bisection: the whole partition is derived from one weight histogram reduction.  The
//! paper reports that the chain partitioner "reduces partitioning cost dramatically to a
//! scale conformable to adaptive data migration primitives" while matching the bisection
//! partitioners' balance — Table 5 is the corresponding experiment.

use mpsim::Rank;

use crate::ProcId;

/// Number of histogram bins used to approximate the weight distribution along the axis.
/// More bins sharpen the cuts at the price of a larger (still tiny) reduction message.
const HISTOGRAM_BINS: usize = 512;

/// Partition elements into `nparts` contiguous slabs along one axis so that each slab
/// carries approximately the same total weight.
///
/// `axis_coords[i]` is the coordinate of local element `i` along the chain direction and
/// `weights[i]` its computational weight.  Returns the part of each local element.
/// Collective: one min/max reduction plus one histogram gather/broadcast.
pub fn chain_partition(
    rank: &mut Rank,
    axis_coords: &[f64],
    weights: &[f64],
    nparts: usize,
) -> Vec<ProcId> {
    assert_eq!(
        axis_coords.len(),
        weights.len(),
        "coordinates and weights must have the same length"
    );
    assert!(nparts >= 1, "cannot partition into zero parts");
    if nparts == 1 {
        return vec![0; axis_coords.len()];
    }

    // Global coordinate range.
    let local_min = axis_coords.iter().copied().fold(f64::INFINITY, f64::min);
    let local_max = axis_coords
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let global_min = rank.all_reduce_min(local_min);
    let global_max = rank.all_reduce_max(local_max);
    if !global_min.is_finite() || !global_max.is_finite() || global_max <= global_min {
        // No elements anywhere, or all at the same coordinate: everything in part 0.
        return vec![0; axis_coords.len()];
    }
    let span = global_max - global_min;

    // Local weight histogram, gathered at rank 0 which computes the cut positions.
    let mut histogram = vec![0.0f64; HISTOGRAM_BINS];
    for (&x, &w) in axis_coords.iter().zip(weights) {
        let bin = (((x - global_min) / span) * HISTOGRAM_BINS as f64) as usize;
        histogram[bin.min(HISTOGRAM_BINS - 1)] += w;
    }
    rank.charge_compute(axis_coords.len() as f64 * 0.02);
    let gathered = rank.gather_to_root(0, &histogram);
    let cuts: Vec<f64> = if rank.rank() == 0 {
        let mut total_hist = vec![0.0f64; HISTOGRAM_BINS];
        for h in &gathered {
            for (t, v) in total_hist.iter_mut().zip(h) {
                *t += v;
            }
        }
        let total: f64 = total_hist.iter().sum();
        rank.charge_compute(HISTOGRAM_BINS as f64 * nparts as f64 * 0.02);
        // Cut after the bin where the cumulative weight crosses k/nparts of the total.
        let mut cuts = Vec::with_capacity(nparts - 1);
        let mut acc = 0.0;
        let mut next_target = 1;
        for (b, &w) in total_hist.iter().enumerate() {
            acc += w;
            while next_target < nparts && acc >= total * next_target as f64 / nparts as f64 {
                let cut = global_min + span * (b + 1) as f64 / HISTOGRAM_BINS as f64;
                cuts.push(cut);
                next_target += 1;
            }
        }
        while cuts.len() < nparts - 1 {
            cuts.push(global_max);
        }
        rank.broadcast(0, &cuts)
    } else {
        rank.broadcast(0, &[])
    };

    // Assign each element the number of cuts strictly below its coordinate.
    axis_coords
        .iter()
        .map(|&x| cuts.iter().take_while(|&&c| x >= c).count().min(nparts - 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsim::{run, MachineConfig};

    fn part_weights(results: &[(Vec<usize>, Vec<f64>)], nparts: usize) -> Vec<f64> {
        let mut pw = vec![0.0; nparts];
        for (parts, weights) in results {
            for (&p, &w) in parts.iter().zip(weights) {
                pw[p] += w;
            }
        }
        pw
    }

    #[test]
    fn uniform_weights_give_contiguous_balanced_slabs() {
        let nprocs = 4;
        let nparts = 4;
        let out = run(MachineConfig::new(nprocs), move |rank| {
            // Rank r holds coordinates r, r+4, r+8, ... spread over [0, 100).
            let coords: Vec<f64> = (0..100)
                .filter(|i| i % nprocs == rank.rank())
                .map(|i| i as f64)
                .collect();
            let weights = vec![1.0; coords.len()];
            let parts = chain_partition(rank, &coords, &weights, nparts);
            (parts, weights, coords)
        });
        let flat: Vec<(Vec<usize>, Vec<f64>)> = out
            .results
            .iter()
            .map(|(p, w, _)| (p.clone(), w.clone()))
            .collect();
        let pw = part_weights(&flat, nparts);
        let max = pw.iter().copied().fold(0.0, f64::max);
        let mean: f64 = pw.iter().sum::<f64>() / nparts as f64;
        assert!(max / mean < 1.2, "chain imbalance too high: {pw:?}");
        // Monotonic: a larger coordinate never lands in a smaller part.
        for (parts, _, coords) in &out.results {
            for i in 0..coords.len() {
                for j in 0..coords.len() {
                    if coords[i] < coords[j] {
                        assert!(parts[i] <= parts[j]);
                    }
                }
            }
        }
    }

    #[test]
    fn skewed_weights_move_the_cuts() {
        // 70 % of the weight in the first 30 % of the axis: the first slabs must be
        // geometrically narrow.
        let nparts = 4;
        let out = run(MachineConfig::new(2), move |rank| {
            let coords: Vec<f64> = (0..200)
                .filter(|i| i % 2 == rank.rank())
                .map(|i| i as f64 / 200.0)
                .collect();
            let weights: Vec<f64> = coords
                .iter()
                .map(|&x| if x < 0.3 { 7.0 } else { 1.0 })
                .collect();
            let parts = chain_partition(rank, &coords, &weights, nparts);
            (parts, weights, coords)
        });
        let flat: Vec<(Vec<usize>, Vec<f64>)> = out
            .results
            .iter()
            .map(|(p, w, _)| (p.clone(), w.clone()))
            .collect();
        let pw = part_weights(&flat, nparts);
        let max = pw.iter().copied().fold(0.0, f64::max);
        let mean: f64 = pw.iter().sum::<f64>() / nparts as f64;
        assert!(max / mean < 1.35, "chain imbalance too high: {pw:?}");
        // The geometric extent of part 0 must be much narrower than that of part 3.
        let mut extent = vec![(f64::INFINITY, f64::NEG_INFINITY); nparts];
        for (parts, _, coords) in &out.results {
            for (&p, &x) in parts.iter().zip(coords) {
                extent[p].0 = extent[p].0.min(x);
                extent[p].1 = extent[p].1.max(x);
            }
        }
        let width0 = extent[0].1 - extent[0].0;
        let width3 = extent[3].1 - extent[3].0;
        assert!(
            width0 < width3,
            "weighted slab should be narrower: {extent:?}"
        );
    }

    #[test]
    fn chain_is_much_cheaper_than_its_inputs_suggest() {
        // The whole point of the chain partitioner: constant number of messages per rank,
        // independent of the element count.
        let out = run(MachineConfig::new(4), |rank| {
            let coords: Vec<f64> = (0..5_000).map(|i| (i % 997) as f64).collect();
            let weights = vec![1.0; coords.len()];
            let before = rank.stats().msgs_sent;
            let _ = chain_partition(rank, &coords, &weights, 4);
            rank.stats().msgs_sent - before
        });
        for &msgs in &out.results {
            // min + max reductions, one histogram gather, one broadcast: a handful of
            // messages per rank, never thousands.
            assert!(msgs < 20, "chain partitioner sent {msgs} messages");
        }
    }

    #[test]
    fn degenerate_inputs_fall_back_to_part_zero() {
        let out = run(MachineConfig::new(2), |rank| {
            let same = vec![5.0; 10];
            let w = vec![1.0; 10];
            let all_same = chain_partition(rank, &same, &w, 4);
            let empty = chain_partition(rank, &[], &[], 4);
            let single_part = chain_partition(rank, &same, &w, 1);
            (all_same, empty, single_part)
        });
        for (all_same, empty, single) in &out.results {
            assert!(all_same.iter().all(|&p| p == 0));
            assert!(empty.is_empty());
            assert!(single.iter().all(|&p| p == 0));
        }
    }

    #[test]
    fn every_part_id_is_in_range() {
        let out = run(MachineConfig::new(3), |rank| {
            let coords: Vec<f64> = (0..77)
                .map(|i| ((i * 31 + rank.rank() * 7) % 100) as f64)
                .collect();
            let weights: Vec<f64> = (0..77).map(|i| 1.0 + (i % 5) as f64).collect();
            chain_partition(rank, &coords, &weights, 5)
        });
        for parts in &out.results {
            assert!(parts.iter().all(|&p| p < 5));
        }
    }
}
