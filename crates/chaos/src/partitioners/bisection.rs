//! Parallel recursive bisection partitioners (RCB and RIB).
//!
//! Both follow the structure CHAOS used on the iPSC/860: the element set is split
//! recursively into two weighted halves, `log2(nparts)` times.  At every level each group
//! of parts has a *leader* processor; every rank ships the coordinates and weights of its
//! elements currently assigned to that group to the leader, the leader evaluates the split
//! (along the longest bounding-box axis for RCB, along the principal inertial axis for
//! RIB), and the left/right decision for every element is returned to the rank that
//! contributed it.  Two all-to-all exchanges per level — this is what makes the
//! partitioners "parallelized but still expensive" (§4.2.1): their communication cost grows
//! with the number of processors, which is exactly the effect Table 5 of the paper shows at
//! high processor counts.

use mpsim::Rank;

use super::geometry::{bounding_box, longest_dimension, principal_axis, weighted_median_split};
use super::PartitionInput;
use crate::ProcId;

/// Which geometric rule picks the split direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BisectionKind {
    /// Longest axis of the axis-aligned bounding box (RCB).
    Coordinate,
    /// Principal axis of inertia (RIB).
    Inertial,
}

/// Recursive coordinate bisection: partition this rank's elements (and, collectively,
/// everyone else's) into `nparts` parts of approximately equal total weight, splitting
/// along the longest coordinate axis at every level.  Returns the part assigned to each
/// local element.  Collective.
pub fn rcb_partition(rank: &mut Rank, input: PartitionInput<'_>, nparts: usize) -> Vec<ProcId> {
    bisect(rank, input, nparts, BisectionKind::Coordinate)
}

/// Recursive inertial bisection: like [`rcb_partition`] but each split is made across the
/// principal axis of inertia of the group, which adapts to skewed geometries.  Collective.
pub fn rib_partition(rank: &mut Rank, input: PartitionInput<'_>, nparts: usize) -> Vec<ProcId> {
    bisect(rank, input, nparts, BisectionKind::Inertial)
}

fn bisect(
    rank: &mut Rank,
    input: PartitionInput<'_>,
    nparts: usize,
    kind: BisectionKind,
) -> Vec<ProcId> {
    assert!(nparts >= 1, "cannot partition into zero parts");
    let n_local = input.len();
    if nparts == 1 {
        return vec![0; n_local];
    }
    // Each element carries the half-open range of parts it may still end up in.
    let mut ranges: Vec<(u32, u32)> = vec![(0, nparts as u32); n_local];
    // The group tree is the same on every rank: level 0 is the single group [0, nparts);
    // each level splits every group of two or more parts at its midpoint.
    let mut level_groups: Vec<(u32, u32)> = vec![(0, nparts as u32)];
    loop {
        let active: Vec<(u32, u32)> = level_groups
            .iter()
            .copied()
            .filter(|(lo, hi)| hi - lo >= 2)
            .collect();
        if active.is_empty() {
            break;
        }
        process_level(rank, &input, &mut ranges, &active, kind);
        level_groups = active
            .iter()
            .flat_map(|&(lo, hi)| {
                let mid = lo + (hi - lo) / 2;
                [(lo, mid), (mid, hi)]
            })
            .collect();
    }
    ranges.into_iter().map(|(lo, _)| lo as usize).collect()
}

/// One level of the bisection: ship group members to leaders, leaders decide the split,
/// decisions come back.
fn process_level(
    rank: &mut Rank,
    input: &PartitionInput<'_>,
    ranges: &mut [(u32, u32)],
    active: &[(u32, u32)],
    kind: BisectionKind,
) {
    let nprocs = rank.nprocs();
    let me = rank.rank();

    // ---- 1. Ship (coords, weight) of every element to its group's leader. -------------
    // Payload to each leader: for every group it leads, a frame
    //   [group_index, member_count, (x, y, z, w) * member_count]
    let mut payloads: Vec<Vec<f64>> = vec![Vec::new(); nprocs];
    let mut sent_elems: Vec<Vec<usize>> = vec![Vec::new(); active.len()];
    for (gi, &(lo, hi)) in active.iter().enumerate() {
        let leader = lo as usize % nprocs;
        let members: Vec<usize> = (0..input.len())
            .filter(|&i| ranges[i] == (lo, hi))
            .collect();
        let buf = &mut payloads[leader];
        buf.push(gi as f64);
        buf.push(members.len() as f64);
        for &i in &members {
            buf.push(input.coords[i][0]);
            buf.push(input.coords[i][1]);
            buf.push(input.coords[i][2]);
            buf.push(input.weights[i]);
        }
        sent_elems[gi] = members;
    }
    rank.charge_compute(input.len() as f64 * 0.05);
    let incoming = rank.all_to_all(&payloads);

    // ---- 2. Leaders evaluate the split for each group they lead. -----------------------
    // Parse each source's payload into (group index, members) frames, preserving order.
    let parsed: Vec<Vec<(usize, Vec<[f64; 4]>)>> =
        incoming.iter().map(|buf| parse_frames(buf)).collect();
    // Reply to each source: frames [group_index, member_count, (0.0|1.0) * member_count].
    let mut replies: Vec<Vec<f64>> = vec![Vec::new(); nprocs];
    for (gi, &(lo, hi)) in active.iter().enumerate() {
        if lo as usize % nprocs != me {
            continue;
        }
        // Concatenate members in source-rank order.
        let mut coords: Vec<[f64; 3]> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        let mut source_counts: Vec<(usize, usize)> = Vec::new(); // (source, count)
        for (src, frames) in parsed.iter().enumerate() {
            for (g, members) in frames {
                if *g == gi {
                    source_counts.push((src, members.len()));
                    for m in members {
                        coords.push([m[0], m[1], m[2]]);
                        weights.push(m[3]);
                    }
                }
            }
        }
        let m = coords.len();
        if m == 0 {
            continue;
        }
        // Split direction and per-element keys.
        let keys: Vec<f64> = match kind {
            BisectionKind::Coordinate => {
                let (blo, bhi) = bounding_box(&coords);
                let dim = longest_dimension(blo, bhi);
                coords.iter().map(|c| c[dim]).collect()
            }
            BisectionKind::Inertial => {
                let axis = principal_axis(&coords, &weights);
                coords
                    .iter()
                    .map(|c| c[0] * axis[0] + c[1] * axis[1] + c[2] * axis[2])
                    .collect()
            }
        };
        let mid = lo + (hi - lo) / 2;
        let target = (mid - lo) as f64 / (hi - lo) as f64;
        let left = weighted_median_split(&keys, &weights, target);
        // The leader's sort dominates the sequential cost of the partitioner.
        rank.charge_compute(m as f64 * ((m as f64).log2().max(1.0)) * 0.4);
        // Hand the decisions back to the ranks that contributed the elements, in the order
        // they packed them.
        let mut cursor = 0usize;
        for (src, count) in source_counts {
            let buf = &mut replies[src];
            buf.push(gi as f64);
            buf.push(count as f64);
            for k in 0..count {
                buf.push(if left[cursor + k] { 1.0 } else { 0.0 });
            }
            cursor += count;
        }
    }
    let decisions = rank.all_to_all(&replies);

    // ---- 3. Apply the decisions to the local elements. ---------------------------------
    for buf in &decisions {
        for (gi, flags) in parse_flag_frames(buf) {
            let (lo, hi) = active[gi];
            let mid = lo + (hi - lo) / 2;
            for (k, &go_left) in flags.iter().enumerate() {
                let elem = sent_elems[gi][k];
                ranges[elem] = if go_left { (lo, mid) } else { (mid, hi) };
            }
        }
    }
}

/// Parse `[gi, count, (x, y, z, w) * count]*` frames.
fn parse_frames(buf: &[f64]) -> Vec<(usize, Vec<[f64; 4]>)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < buf.len() {
        let gi = buf[i] as usize;
        let count = buf[i + 1] as usize;
        i += 2;
        let mut members = Vec::with_capacity(count);
        for _ in 0..count {
            members.push([buf[i], buf[i + 1], buf[i + 2], buf[i + 3]]);
            i += 4;
        }
        out.push((gi, members));
    }
    out
}

/// Parse `[gi, count, flag * count]*` frames.
fn parse_flag_frames(buf: &[f64]) -> Vec<(usize, Vec<bool>)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < buf.len() {
        let gi = buf[i] as usize;
        let count = buf[i + 1] as usize;
        i += 2;
        let flags = (0..count).map(|k| buf[i + k] > 0.5).collect();
        i += count;
        out.push((gi, flags));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsim::{run, MachineConfig};

    /// Deterministic pseudo-random points in the unit cube with unit weights.
    fn cloud(rank_id: usize, n: usize) -> (Vec<[f64; 3]>, Vec<f64>) {
        let coords: Vec<[f64; 3]> = (0..n)
            .map(|i| {
                let s = (rank_id * 10_007 + i * 97 + 13) as f64;
                [
                    (s * 0.618).fract(),
                    (s * 0.414).fract(),
                    (s * 0.732).fract(),
                ]
            })
            .collect();
        let weights = vec![1.0; n];
        (coords, weights)
    }

    fn balance_of(
        parts_per_rank: &[Vec<usize>],
        weights_per_rank: &[Vec<f64>],
        nparts: usize,
    ) -> f64 {
        let mut part_weights = vec![0.0f64; nparts];
        for (parts, weights) in parts_per_rank.iter().zip(weights_per_rank) {
            for (&p, &w) in parts.iter().zip(weights) {
                part_weights[p] += w;
            }
        }
        let max = part_weights.iter().copied().fold(0.0, f64::max);
        let mean = part_weights.iter().sum::<f64>() / nparts as f64;
        max / mean
    }

    #[test]
    fn rcb_assigns_every_element_a_valid_part_and_balances() {
        let nprocs = 4;
        let nparts = 4;
        let out = run(MachineConfig::new(nprocs), move |rank| {
            let (coords, weights) = cloud(rank.rank(), 200);
            let parts = rcb_partition(rank, PartitionInput::new(&coords, &weights), nparts);
            (parts, weights)
        });
        let parts: Vec<Vec<usize>> = out.results.iter().map(|(p, _)| p.clone()).collect();
        let weights: Vec<Vec<f64>> = out.results.iter().map(|(_, w)| w.clone()).collect();
        for p in parts.iter().flatten() {
            assert!(*p < nparts);
        }
        let balance = balance_of(&parts, &weights, nparts);
        assert!(balance < 1.15, "RCB imbalance too high: {balance}");
    }

    #[test]
    fn rib_balances_a_skewed_cloud() {
        // Points stretched along a diagonal: RIB should still split into near-equal parts.
        let nprocs = 4;
        let nparts = 8;
        let out = run(MachineConfig::new(nprocs), move |rank| {
            let n = 150;
            let coords: Vec<[f64; 3]> = (0..n)
                .map(|i| {
                    let t = (rank.rank() * n + i) as f64 / (nprocs * n) as f64;
                    let jitter = ((i * 37 + 11) % 17) as f64 * 0.002;
                    [10.0 * t + jitter, 10.0 * t - jitter, 0.3 * jitter]
                })
                .collect();
            let weights = vec![1.0; n];
            let parts = rib_partition(rank, PartitionInput::new(&coords, &weights), nparts);
            (parts, weights)
        });
        let parts: Vec<Vec<usize>> = out.results.iter().map(|(p, _)| p.clone()).collect();
        let weights: Vec<Vec<f64>> = out.results.iter().map(|(_, w)| w.clone()).collect();
        let balance = balance_of(&parts, &weights, nparts);
        assert!(balance < 1.25, "RIB imbalance too high: {balance}");
    }

    #[test]
    fn weighted_elements_shift_the_cut() {
        // All weight concentrated in x < 0.5: that half must be spread over more parts.
        let nprocs = 2;
        let nparts = 4;
        let out = run(MachineConfig::new(nprocs), move |rank| {
            let n = 100;
            let coords: Vec<[f64; 3]> = (0..n)
                .map(|i| [(i as f64 + 0.5) / n as f64, 0.0, 0.0])
                .collect();
            let weights: Vec<f64> = coords
                .iter()
                .map(|c| if c[0] < 0.5 { 10.0 } else { 1.0 })
                .collect();
            let parts = rcb_partition(rank, PartitionInput::new(&coords, &weights), nparts);
            (coords, weights, parts)
        });
        // Count how many parts appear strictly below x = 0.5.
        let mut parts_below = std::collections::HashSet::new();
        let mut parts_above = std::collections::HashSet::new();
        for (coords, _w, parts) in &out.results {
            for (c, &p) in coords.iter().zip(parts) {
                if c[0] < 0.5 {
                    parts_below.insert(p);
                } else {
                    parts_above.insert(p);
                }
            }
        }
        assert!(
            parts_below.len() >= 3,
            "heavy half should receive most parts, got {parts_below:?}"
        );
        assert!(parts_above.len() <= 2);
    }

    #[test]
    fn single_part_is_trivial_and_free() {
        let out = run(MachineConfig::new(3), |rank| {
            let (coords, weights) = cloud(rank.rank(), 10);
            let before = rank.stats().msgs_sent;
            let parts = rcb_partition(rank, PartitionInput::new(&coords, &weights), 1);
            (parts, rank.stats().msgs_sent - before)
        });
        for (parts, msgs) in &out.results {
            assert!(parts.iter().all(|&p| p == 0));
            assert_eq!(*msgs, 0);
        }
    }

    #[test]
    fn non_power_of_two_parts() {
        let nprocs = 3;
        let nparts = 6;
        let out = run(MachineConfig::new(nprocs), move |rank| {
            let (coords, weights) = cloud(rank.rank(), 120);
            let parts = rcb_partition(rank, PartitionInput::new(&coords, &weights), nparts);
            (parts, weights)
        });
        let parts: Vec<Vec<usize>> = out.results.iter().map(|(p, _)| p.clone()).collect();
        let weights: Vec<Vec<f64>> = out.results.iter().map(|(_, w)| w.clone()).collect();
        for p in parts.iter().flatten() {
            assert!(*p < nparts);
        }
        let balance = balance_of(&parts, &weights, nparts);
        assert!(balance < 1.3, "imbalance too high for 6 parts: {balance}");
    }

    #[test]
    fn rcb_is_deterministic() {
        let make = || {
            run(MachineConfig::new(4), |rank| {
                let (coords, weights) = cloud(rank.rank(), 64);
                rcb_partition(rank, PartitionInput::new(&coords, &weights), 4)
            })
            .results
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn ranks_with_no_elements_participate() {
        let out = run(MachineConfig::new(4), |rank| {
            let (coords, weights) = if rank.rank() == 0 {
                cloud(0, 200)
            } else {
                (Vec::new(), Vec::new())
            };
            rcb_partition(rank, PartitionInput::new(&coords, &weights), 4)
        });
        assert_eq!(out.results[0].len(), 200);
        assert!(out.results[1..].iter().all(|p| p.is_empty()));
        // All four parts used even though only one rank contributed elements.
        let used: std::collections::HashSet<usize> = out.results[0].iter().copied().collect();
        assert_eq!(used.len(), 4);
    }
}
