//! Remapping data and indirection arrays between distributions (Phases B and D).
//!
//! When a partitioner produces a new irregular distribution, every array aligned with the
//! repartitioned template must move: the paper's `remap` procedure builds an optimized
//! communication schedule for the move and `gather`/`scatter`-style primitives execute it.
//! Here the plan construction ([`build_remap`]) and the data movement
//! ([`remap_values`] / [`remap_indices`]) are separated for the same reason the inspector
//! and executor are: CHARMM remaps several data arrays (coordinates, forces, displacement
//! arrays) with the *same* plan, paying the analysis once.

use mpsim::{alltoallv_with, Element, ExchangePlan, PackBuf, Placed, Rank};

use crate::translation::TranslationTable;
use crate::{Global, ProcId};

/// A reusable plan for moving an array from one distribution to another.
#[derive(Debug, Clone)]
pub struct RemapPlan {
    nprocs: usize,
    my_rank: ProcId,
    /// `send_old_offsets[p]` — old local offsets (into the array being remapped) of the
    /// elements this rank must send to processor `p`, in packing order.
    send_old_offsets: Vec<Vec<u32>>,
    /// `recv_placements[p]` — new local offsets at which the elements received from
    /// processor `p` are stored, in `p`'s packing order.
    recv_placements: Vec<Vec<u32>>,
    /// Size of this rank's local section under the new distribution.
    new_local_size: usize,
}

impl RemapPlan {
    /// Number of elements this rank sends away (excluding elements it keeps).
    pub fn total_send(&self) -> usize {
        self.send_old_offsets
            .iter()
            .enumerate()
            .filter(|(p, _)| *p != self.my_rank)
            .map(|(_, l)| l.len())
            .sum()
    }

    /// Number of elements this rank receives from other ranks.
    pub fn total_recv(&self) -> usize {
        self.recv_placements
            .iter()
            .enumerate()
            .filter(|(p, _)| *p != self.my_rank)
            .map(|(_, l)| l.len())
            .sum()
    }

    /// Size of the local section under the new distribution.
    pub fn new_local_size(&self) -> usize {
        self.new_local_size
    }

    /// True when executing this plan would change nothing on this rank: no element leaves
    /// or arrives, and every kept element stays at its old offset.  Local — in SPMD use,
    /// combine across ranks (e.g. `rank.all_reduce_sum_usize(!plan.is_identity() as usize)
    /// == 0`) before skipping a remap, so every rank skips together.  Skipping an identity
    /// remap keeps hash tables, maintained schedules and schedule caches valid, which is
    /// what lets adaptive drivers survive a repartitioner re-emitting the distribution it
    /// was given (see `charmm::parallel`).
    pub fn is_identity(&self) -> bool {
        self.total_send() == 0
            && self.total_recv() == 0
            && self.send_old_offsets[self.my_rank].len() == self.new_local_size
            && self.recv_placements[self.my_rank].len() == self.new_local_size
            && self.send_old_offsets[self.my_rank]
                .iter()
                .zip(&self.recv_placements[self.my_rank])
                .all(|(old, new)| old == new)
    }

    /// The exchange plan that executes this remap: old-offset lists out, placement lists
    /// in.  The kept (self → self) portion never enters the plan — [`remap_values`]
    /// places it straight from the old local section.
    pub fn exchange_plan(&self) -> ExchangePlan {
        let mut send_counts: Vec<usize> = self.send_old_offsets.iter().map(Vec::len).collect();
        send_counts[self.my_rank] = 0;
        let mut recv_counts: Vec<usize> = self.recv_placements.iter().map(Vec::len).collect();
        recv_counts[self.my_rank] = 0;
        ExchangePlan::sparse(self.my_rank, send_counts, recv_counts)
    }
}

/// Build a remap plan for an array whose elements this rank currently owns.
///
/// `old_owned_globals[l]` is the global index of the element stored at old local offset
/// `l`; `new_table` describes the target distribution.  Collective: performs the
/// translation lookups (which may communicate for distributed tables) and one all-to-all of
/// placement lists.
pub fn build_remap(
    rank: &mut Rank,
    old_owned_globals: &[Global],
    new_table: &mut TranslationTable,
) -> RemapPlan {
    let nprocs = rank.nprocs();
    let me = rank.rank();
    let locs = new_table.lookup(rank, old_owned_globals);
    rank.charge_compute(old_owned_globals.len() as f64 * 0.1);
    let mut send_old_offsets: Vec<Vec<u32>> = vec![Vec::new(); nprocs];
    let mut send_new_offsets: Vec<Vec<u64>> = vec![Vec::new(); nprocs];
    for (l, loc) in locs.iter().enumerate() {
        let dest = loc.owner as usize;
        send_old_offsets[dest].push(l as u32);
        send_new_offsets[dest].push(loc.offset as u64);
    }
    // Tell every destination where (in its new local numbering) to place what we send it.
    let incoming_placements = rank.all_to_all(&send_new_offsets);
    let recv_placements: Vec<Vec<u32>> = incoming_placements
        .into_iter()
        .map(|v| v.into_iter().map(|o| o as u32).collect())
        .collect();
    RemapPlan {
        nprocs,
        my_rank: me,
        send_old_offsets,
        recv_placements,
        new_local_size: new_table.local_size(me),
    }
}

/// Execute a remap plan on an array of values, returning the new local section (with
/// `fill` in any slot the plan does not cover — normally none).
pub fn remap_values<T: Element>(
    rank: &mut Rank,
    plan: &RemapPlan,
    old_local: &[T],
    fill: T,
) -> Vec<T> {
    assert_eq!(plan.nprocs, rank.nprocs(), "plan/machine size mismatch");
    assert_eq!(
        plan.my_rank,
        rank.rank(),
        "plan belongs to a different rank"
    );
    let me = plan.my_rank;
    let eplan = plan.exchange_plan();
    // The kept portion skips the engine and is placed straight from the old local section;
    // every other destination's elements are packed into its message in old-offset order.
    let mut new_local = vec![fill; plan.new_local_size];
    for (&old_off, &new_off) in plan.send_old_offsets[me]
        .iter()
        .zip(&plan.recv_placements[me])
    {
        new_local[new_off as usize] = old_local[old_off as usize];
    }
    alltoallv_with(
        rank,
        &eplan,
        |p, buf: &mut PackBuf<'_, T>| {
            for &l in &plan.send_old_offsets[p] {
                buf.push(old_local[l as usize]);
            }
        },
        // Placement only copies each value to its new offset, so the borrowed view
        // suffices and the remap loop's receive path stays allocation-free.
        |src, values: Placed<'_, T>| {
            debug_assert_eq!(
                values.len(),
                plan.recv_placements[src].len(),
                "remap: receive count mismatch from processor {src}"
            );
            for (&new_off, &v) in plan.recv_placements[src].iter().zip(values.iter()) {
                new_local[new_off as usize] = v;
            }
        },
    );
    new_local
}

/// Execute a remap plan on an array of indices (a convenience wrapper over
/// [`remap_values`] for `usize` payloads such as indirection arrays).
pub fn remap_indices(rank: &mut Rank, plan: &RemapPlan, old_local: &[usize]) -> Vec<usize> {
    remap_values(rank, plan, old_local, usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{BlockDist, CyclicDist, RegularDist};
    use mpsim::{run, MachineConfig};

    #[test]
    fn remap_block_to_cyclic_preserves_global_values() {
        let n = 23;
        let nprocs = 4;
        let out = run(MachineConfig::new(nprocs), move |rank| {
            let old = BlockDist::new(n, rank.nprocs());
            let new = CyclicDist::new(n, rank.nprocs());
            let mut new_table = TranslationTable::from_regular(&new);
            let old_globals: Vec<usize> = old.local_globals(rank.rank()).collect();
            let old_local: Vec<f64> = old_globals.iter().map(|&g| g as f64 * 1.5).collect();
            let plan = build_remap(rank, &old_globals, &mut new_table);
            let new_local = remap_values(rank, &plan, &old_local, f64::NAN);
            (new_local, plan.new_local_size())
        });
        let new = CyclicDist::new(n, nprocs);
        for (p, (new_local, size)) in out.results.iter().enumerate() {
            assert_eq!(*size, new.local_size(p));
            assert_eq!(new_local.len(), new.local_size(p));
            for (l, v) in new_local.iter().enumerate() {
                let g = new.global_index(p, l);
                assert_eq!(*v, g as f64 * 1.5, "element {g} misplaced on processor {p}");
            }
        }
    }

    #[test]
    fn remap_to_irregular_distribution() {
        let n = 30;
        let nprocs = 3;
        // New owner of g: (g / 2) % 3 — an "irregular" map built through a map array.
        let map: Vec<usize> = (0..n).map(|g| (g / 2) % nprocs).collect();
        let map2 = map.clone();
        let out = run(MachineConfig::new(nprocs), move |rank| {
            let old = BlockDist::new(n, rank.nprocs());
            let map_dist = BlockDist::new(n, rank.nprocs());
            let local_map: Vec<usize> = map_dist
                .local_globals(rank.rank())
                .map(|g| map2[g])
                .collect();
            let mut new_table =
                TranslationTable::replicated_from_map(rank, &local_map, &map_dist).unwrap();
            let old_globals: Vec<usize> = old.local_globals(rank.rank()).collect();
            let old_vals: Vec<i64> = old_globals.iter().map(|&g| g as i64 * 7).collect();
            let plan = build_remap(rank, &old_globals, &mut new_table);
            let new_vals = remap_values(rank, &plan, &old_vals, i64::MIN);
            let owned_globals = new_table.owned_globals(rank);
            (new_vals, owned_globals)
        });
        for (p, (vals, owned_globals)) in out.results.iter().enumerate() {
            assert_eq!(vals.len(), owned_globals.len());
            for (v, g) in vals.iter().zip(owned_globals) {
                assert_eq!(map[*g], p);
                assert_eq!(*v, *g as i64 * 7);
            }
        }
    }

    #[test]
    fn remap_indices_moves_indirection_arrays() {
        let n = 16;
        let out = run(MachineConfig::new(2), move |rank| {
            let old = BlockDist::new(n, rank.nprocs());
            let new = CyclicDist::new(n, rank.nprocs());
            let mut new_table = TranslationTable::from_regular(&new);
            let old_globals: Vec<usize> = old.local_globals(rank.rank()).collect();
            // The indirection array entry for iteration g is (3g+1) mod n.
            let old_ind: Vec<usize> = old_globals.iter().map(|&g| (3 * g + 1) % n).collect();
            let plan = build_remap(rank, &old_globals, &mut new_table);
            remap_indices(rank, &plan, &old_ind)
        });
        let new = CyclicDist::new(n, 2);
        for (p, ind) in out.results.iter().enumerate() {
            for (l, v) in ind.iter().enumerate() {
                let g = new.global_index(p, l);
                assert_eq!(*v, (3 * g + 1) % n);
            }
        }
    }

    #[test]
    fn plan_counts_are_symmetric_across_machine() {
        let n = 40;
        let out = run(MachineConfig::new(4), move |rank| {
            let old = BlockDist::new(n, rank.nprocs());
            let new = CyclicDist::new(n, rank.nprocs());
            let mut new_table = TranslationTable::from_regular(&new);
            let old_globals: Vec<usize> = old.local_globals(rank.rank()).collect();
            let plan = build_remap(rank, &old_globals, &mut new_table);
            (plan.total_send(), plan.total_recv())
        });
        let total_sent: usize = out.results.iter().map(|(s, _)| s).sum();
        let total_recv: usize = out.results.iter().map(|(_, r)| r).sum();
        assert_eq!(total_sent, total_recv);
        assert!(total_sent > 0);
    }

    #[test]
    fn identity_remap_moves_no_data() {
        let n = 20;
        let out = run(MachineConfig::new(4), move |rank| {
            let dist = BlockDist::new(n, rank.nprocs());
            let mut table = TranslationTable::from_regular(&dist);
            let globals: Vec<usize> = dist.local_globals(rank.rank()).collect();
            let vals: Vec<u32> = globals.iter().map(|&g| g as u32).collect();
            let plan = build_remap(rank, &globals, &mut table);
            let before = rank.stats().bytes_sent;
            let new_vals = remap_values(rank, &plan, &vals, 0);
            let moved = rank.stats().bytes_sent - before;
            (new_vals == vals, plan.total_send(), moved)
        });
        for (same, sent, moved) in &out.results {
            assert!(*same);
            assert_eq!(*sent, 0);
            assert_eq!(*moved, 0);
        }
    }
}
