//! The stamped index hash table (§3.2.2 of the paper).
//!
//! The inspector's index analysis — duplicate removal, global-to-local translation, ghost
//! buffer allocation — is expensive, and in adaptive problems it has to be repeated every
//! time an indirection array changes.  CHAOS amortises the cost by keeping all results of
//! index analysis in a hash table keyed by global index.  Each entry records:
//!
//! * the *translated address* (owning processor and offset) from the translation table,
//! * the *local ghost slot* assigned to the element if it is off-processor,
//! * a *stamp* bit-set identifying which indirection arrays reference the element.
//!
//! Hashing a new version of an indirection array is cheap when most of its entries are
//! already present (the CHARMM non-bonded list changes slowly); clearing a stamp and
//! re-hashing reuses both the translation results and the ghost slots.  Communication
//! schedules are built from the table by selecting entries whose stamps match a
//! [`StampQuery`], which is how merged (`a + b + c`) and incremental (`b - a`) schedules of
//! Figure 6 are expressed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use mpsim::Rank;

use crate::darray::LocalRef;
use crate::translation::{Loc, TranslationTable};
use crate::{Global, ProcId};

/// A stamp identifies one indirection array (or one use of one) inside the hash table.
/// Stamps are bit positions, so at most 64 distinct stamps can be live at once — far more
/// than any loop nest in the paper's applications needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Stamp(u8);

impl Stamp {
    /// Create stamp number `bit` (0..=63).
    pub const fn new(bit: u8) -> Self {
        assert!(bit < 64, "at most 64 stamps are supported");
        Stamp(bit)
    }

    /// The bit mask of this stamp.
    pub fn mask(self) -> u64 {
        1u64 << self.0
    }

    /// The bit position of this stamp.
    pub fn bit(self) -> u8 {
        self.0
    }
}

/// A logical combination of stamps used to select hash-table entries when building a
/// schedule: an entry matches if it carries **any** of the `include` stamps and **none** of
/// the `exclude` stamps.
///
/// * merged schedule over arrays a, b, c  → `StampQuery::any_of(&[a, b, c])`
/// * incremental schedule "b minus a"     → `StampQuery::minus(&[b], &[a])`
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StampQuery {
    include: u64,
    exclude: u64,
}

impl StampQuery {
    /// Entries stamped by `stamp`.
    pub fn single(stamp: Stamp) -> Self {
        StampQuery {
            include: stamp.mask(),
            exclude: 0,
        }
    }

    /// Entries stamped by any of `stamps` (a *merged* schedule).
    pub fn any_of(stamps: &[Stamp]) -> Self {
        StampQuery {
            include: stamps.iter().fold(0, |m, s| m | s.mask()),
            exclude: 0,
        }
    }

    /// Entries stamped by any of `include` but none of `exclude` (an *incremental*
    /// schedule: gather only what earlier schedules have not already brought in).
    pub fn minus(include: &[Stamp], exclude: &[Stamp]) -> Self {
        StampQuery {
            include: include.iter().fold(0, |m, s| m | s.mask()),
            exclude: exclude.iter().fold(0, |m, s| m | s.mask()),
        }
    }

    /// Does an entry with the given stamp bits match?
    pub fn matches(&self, stamps: u64) -> bool {
        (stamps & self.include) != 0 && (stamps & self.exclude) == 0
    }

    /// Bit mask of the included stamps.
    pub fn include_mask(&self) -> u64 {
        self.include
    }

    /// Bit mask of the excluded stamps.
    pub fn exclude_mask(&self) -> u64 {
        self.exclude
    }
}

/// Source of process-unique [`IndexHashTable`] identities (see [`ScheduleKey`]).
static NEXT_TABLE_ID: AtomicU64 = AtomicU64::new(1);

/// A version key identifying *which* contents of *which* hash table a schedule was built
/// from.  Two keys are equal exactly when the entries matching the key's query are
/// guaranteed unchanged, so `key == table.version(query)` means a schedule built earlier
/// from `key` is still exact and can be reused without any communication.
///
/// The key is composed of operation counters, not content hashes:
///
/// * `table_id` — process-unique identity of the table (a new table never matches keys
///   from an old one, even if it reuses the same memory),
/// * `epoch` — bumped by [`IndexHashTable::clear_all`] (all translations invalidated),
/// * `gens` — one generation counter per stamp named by the query (include *or* exclude),
///   bumped every time that stamp is hashed under or cleared.
///
/// Because the counters advance once per *operation* (not per element), SPMD programs that
/// mutate the table at the same program points on every rank observe the same
/// changed/unchanged pattern machine-wide — which is what makes it safe for a cache to
/// *skip a collective rebuild* on a key match (see `crate::cache::ScheduleCache`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleKey {
    table_id: u64,
    epoch: u64,
    query: StampQuery,
    /// Generation of each stamp bit named by `query`, in ascending bit order.
    gens: Vec<u64>,
}

impl ScheduleKey {
    /// The query this key versions.
    pub fn query(&self) -> StampQuery {
        self.query
    }

    /// The process-unique identity of the table this key was taken from (compare with
    /// [`IndexHashTable::table_id`]).
    pub fn table_id(&self) -> u64 {
        self.table_id
    }

    /// True when `self` and `other` describe the same query over the same table —
    /// regardless of whether the versions match.  This is the cache-lookup predicate:
    /// same source means a stored schedule is *patchable*; equal keys mean it is *current*.
    pub fn same_source(&self, other: &ScheduleKey) -> bool {
        self.table_id == other.table_id && self.query == other.query
    }
}

/// One hash-table entry (see the field list in §3.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashEntry {
    /// The global index hashed in.
    pub global: Global,
    /// Translated address: owning processor and offset on that processor.
    pub loc: Loc,
    /// Ghost slot assigned to this element if it is off-processor, else `None`.
    pub ghost_slot: Option<u32>,
    /// Bit set of stamps: which indirection arrays reference this element.
    pub stamps: u64,
}

/// The stamped hash table used by the inspector for index analysis.
pub struct IndexHashTable {
    my_rank: ProcId,
    owned_len: usize,
    entries: HashMap<Global, usize>,
    /// Entry storage in insertion order — iteration order must be deterministic so that
    /// every rank builds schedules with identical request ordering.
    slots: Vec<HashEntry>,
    next_ghost_slot: u32,
    /// Process-unique identity, for [`ScheduleKey`]s.
    table_id: u64,
    /// Bumped by [`IndexHashTable::clear_all`].
    epoch: u64,
    /// Per-stamp generation counters: `stamp_gens[b]` advances once per `hash_in` /
    /// `hash_in_replicated` *call* under stamp `b` and once per `clear_stamp(b)`.
    stamp_gens: [u64; 64],
}

impl IndexHashTable {
    /// Create an empty table for a rank owning `owned_len` elements of the data array
    /// distribution being analysed.
    pub fn new(my_rank: ProcId, owned_len: usize) -> Self {
        Self {
            my_rank,
            owned_len,
            entries: HashMap::new(),
            slots: Vec::new(),
            next_ghost_slot: 0,
            table_id: NEXT_TABLE_ID.fetch_add(1, Ordering::Relaxed),
            epoch: 0,
            stamp_gens: [0; 64],
        }
    }

    /// This table's process-unique identity (every `new` table gets a fresh one).
    pub fn table_id(&self) -> u64 {
        self.table_id
    }

    /// The version key for `query` against the table's current contents.  A schedule
    /// built (or last patched) when the table reported this same key needs no maintenance;
    /// see [`ScheduleKey`] for the machine-wide-consistency contract.
    pub fn version(&self, query: StampQuery) -> ScheduleKey {
        let named = query.include_mask() | query.exclude_mask();
        let gens = (0..64)
            .filter(|b| named & (1u64 << b) != 0)
            .map(|b| self.stamp_gens[b])
            .collect();
        ScheduleKey {
            table_id: self.table_id,
            epoch: self.epoch,
            query,
            gens,
        }
    }

    /// Number of distinct global indices hashed in so far.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if nothing has been hashed in.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of ghost slots assigned so far (the ghost-region size any array used with
    /// schedules built from this table must provide).
    pub fn ghost_len(&self) -> usize {
        self.next_ghost_slot as usize
    }

    /// Number of owned elements this table translates against.
    pub fn owned_len(&self) -> usize {
        self.owned_len
    }

    /// Hash the global indices of one indirection array into the table under `stamp`,
    /// translating them through `ttable`, and return the corresponding local references
    /// (owned offset or ghost slot) in input order.
    ///
    /// This is `CHAOS_hash` from the paper.  It is collective when `ttable` is distributed
    /// or paged (translation lookups may require communication); with a replicated table it
    /// performs no communication at all.
    pub fn hash_in(
        &mut self,
        rank: &mut Rank,
        ttable: &mut TranslationTable,
        globals: &[Global],
        stamp: Stamp,
    ) -> Vec<LocalRef> {
        self.stamp_gens[stamp.bit() as usize] += 1;
        // 1. Find the indices we have never seen before and translate them (batched, so a
        //    distributed translation table pays one collective dereference, not one per
        //    index).
        let mut unknown: Vec<Global> = Vec::new();
        let mut first_occurrence: HashMap<Global, ()> = HashMap::new();
        for &g in globals {
            if !self.entries.contains_key(&g) && !first_occurrence.contains_key(&g) {
                first_occurrence.insert(g, ());
                unknown.push(g);
            }
        }
        // Index analysis cost: one unit per new index (hash insert + translation), a tenth
        // of a unit per already-known index (hash probe only).  This is what makes hash
        // reuse visible in the modeled preprocessing times.
        let known = globals.len() - unknown.len();
        rank.charge_compute(unknown.len() as f64 + known as f64 * 0.1);

        let locs = ttable.lookup(rank, &unknown);
        for (g, loc) in unknown.iter().zip(locs) {
            let ghost_slot = if loc.owner as usize == self.my_rank {
                None
            } else {
                let slot = self.next_ghost_slot;
                self.next_ghost_slot += 1;
                Some(slot)
            };
            let idx = self.slots.len();
            self.slots.push(HashEntry {
                global: *g,
                loc,
                ghost_slot,
                stamps: 0,
            });
            self.entries.insert(*g, idx);
        }

        // 2. Mark the stamp and emit local references in input order.
        let mask = stamp.mask();
        globals
            .iter()
            .map(|g| {
                let idx = self.entries[g];
                let entry = &mut self.slots[idx];
                entry.stamps |= mask;
                match entry.ghost_slot {
                    None => LocalRef(entry.loc.offset as usize),
                    Some(slot) => LocalRef(self.owned_len + slot as usize),
                }
            })
            .collect()
    }

    /// Variant of [`IndexHashTable::hash_in`] for **replicated** translation tables: no
    /// communication can occur, so the table is taken by shared reference.  This is the
    /// path [`crate::inspector::Inspector::hash_indices`] uses.
    ///
    /// # Panics
    /// Panics if `ttable` is not replicated.
    pub fn hash_in_replicated(
        &mut self,
        rank: &mut Rank,
        ttable: &TranslationTable,
        globals: &[Global],
        stamp: Stamp,
    ) -> Vec<LocalRef> {
        assert!(
            ttable.is_replicated(),
            "hash_in_replicated requires a replicated translation table"
        );
        self.stamp_gens[stamp.bit() as usize] += 1;
        let mask = stamp.mask();
        let mut new_count = 0usize;
        let refs = globals
            .iter()
            .map(|&g| {
                let idx = match self.entries.get(&g) {
                    Some(&idx) => idx,
                    None => {
                        new_count += 1;
                        let loc = ttable
                            .lookup_local(g)
                            .expect("hash_in_replicated requires a replicated translation table");
                        let ghost_slot = if loc.owner as usize == self.my_rank {
                            None
                        } else {
                            let slot = self.next_ghost_slot;
                            self.next_ghost_slot += 1;
                            Some(slot)
                        };
                        let idx = self.slots.len();
                        self.slots.push(HashEntry {
                            global: g,
                            loc,
                            ghost_slot,
                            stamps: 0,
                        });
                        self.entries.insert(g, idx);
                        idx
                    }
                };
                let entry = &mut self.slots[idx];
                entry.stamps |= mask;
                match entry.ghost_slot {
                    None => LocalRef(entry.loc.offset as usize),
                    Some(slot) => LocalRef(self.owned_len + slot as usize),
                }
            })
            .collect();
        let known = globals.len() - new_count;
        rank.charge_compute(new_count as f64 + known as f64 * 0.1);
        refs
    }

    /// Clear `stamp` from every entry.  Entries themselves (and their translation results
    /// and ghost slots) are retained so that re-hashing a slightly modified indirection
    /// array under the same stamp is cheap — exactly the CHARMM non-bonded-list update
    /// pattern described in §4.1.
    /// The sweep runs across [`crate::par::workers`] threads for large tables; each
    /// worker masks a contiguous slot range, so the result is identical at any worker
    /// count.
    pub fn clear_stamp(&mut self, stamp: Stamp) {
        self.stamp_gens[stamp.bit() as usize] += 1;
        let mask = !stamp.mask();
        crate::par::par_chunks_mut(&mut self.slots, |chunk| {
            for entry in chunk {
                entry.stamps &= mask;
            }
        });
    }

    /// Remove every entry and release all ghost slots.  Used when the data distribution
    /// itself changes (after a remap) and all translation results are stale.
    pub fn clear_all(&mut self) {
        self.entries.clear();
        self.slots.clear();
        self.next_ghost_slot = 0;
        self.epoch += 1;
    }

    /// All entries in deterministic (insertion) order.  The parallel inspector sweeps
    /// chunk this slice; single-entry lookups go through [`IndexHashTable::get`].
    pub fn entries_in_order(&self) -> &[HashEntry] {
        &self.slots
    }

    /// Iterate over entries matching `query` in deterministic (insertion) order.
    pub fn entries_matching<'a>(
        &'a self,
        query: StampQuery,
    ) -> impl Iterator<Item = &'a HashEntry> + 'a {
        self.slots.iter().filter(move |e| query.matches(e.stamps))
    }

    /// Look up the entry for a global index, if present.
    pub fn get(&self, g: Global) -> Option<&HashEntry> {
        self.entries.get(&g).map(|&idx| &self.slots[idx])
    }

    /// Count of off-processor entries matching `query` (the number of elements a schedule
    /// built from that query will fetch).
    pub fn off_processor_count(&self, query: StampQuery) -> usize {
        self.entries_matching(query)
            .filter(|e| e.ghost_slot.is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{BlockDist, RegularDist};
    use mpsim::{run, MachineConfig};

    fn table_for(rank: &mut Rank, n: usize) -> (TranslationTable, usize) {
        let dist = BlockDist::new(n, rank.nprocs());
        let owned = dist.local_size(rank.rank());
        (TranslationTable::from_regular(&dist), owned)
    }

    #[test]
    fn stamp_masks_and_queries() {
        let a = Stamp::new(0);
        let b = Stamp::new(1);
        let c = Stamp::new(5);
        assert_eq!(a.mask(), 1);
        assert_eq!(b.mask(), 2);
        assert_eq!(c.mask(), 32);
        assert_eq!(c.bit(), 5);
        let merged = StampQuery::any_of(&[a, b, c]);
        assert!(merged.matches(a.mask()));
        assert!(merged.matches(b.mask() | c.mask()));
        assert!(!merged.matches(1 << 7));
        let inc = StampQuery::minus(&[b], &[a]);
        assert!(inc.matches(b.mask()));
        assert!(!inc.matches(b.mask() | a.mask()));
        assert!(!inc.matches(a.mask()));
        let single = StampQuery::single(a);
        assert!(single.matches(a.mask() | b.mask()));
        assert!(!single.matches(b.mask()));
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn stamp_bit_out_of_range_panics() {
        let _ = Stamp::new(64);
    }

    #[test]
    fn hash_in_translates_dedupes_and_assigns_ghost_slots() {
        // 2 ranks, 8 elements block distributed: rank 0 owns 0..4, rank 1 owns 4..8.
        let out = run(MachineConfig::new(2), |rank| {
            let (mut ttable, owned) = table_for(rank, 8);
            let mut h = IndexHashTable::new(rank.rank(), owned);
            // Same access pattern on both ranks for simplicity: references 0,5,0,7,3.
            let refs = h.hash_in(rank, &mut ttable, &[0, 5, 0, 7, 3], Stamp::new(0));
            (refs, h.ghost_len(), h.len())
        });
        // Rank 0 owns 0..4: indices 0 and 3 are owned; 5 and 7 are ghosts (2 slots).
        let (refs0, ghost0, len0) = &out.results[0];
        assert_eq!(*len0, 4); // distinct indices 0,5,7,3
        assert_eq!(*ghost0, 2);
        assert_eq!(refs0[0], LocalRef(0)); // global 0 -> owned offset 0
        assert_eq!(refs0[2], LocalRef(0)); // duplicate resolves to the same reference
        assert_eq!(refs0[4], LocalRef(3)); // global 3 -> owned offset 3
        assert!(refs0[1].0 >= 4 && refs0[3].0 >= 4); // ghosts after owned section
        assert_ne!(refs0[1], refs0[3]);
        // Rank 1 owns 4..8: 5 and 7 owned (offsets 1 and 3), 0 and 3 ghosts.
        let (refs1, ghost1, _) = &out.results[1];
        assert_eq!(*ghost1, 2);
        assert_eq!(refs1[1], LocalRef(1));
        assert_eq!(refs1[3], LocalRef(3));
        assert!(refs1[0].0 >= 4 && refs1[4].0 >= 4);
    }

    #[test]
    fn rehashing_reuses_entries_and_ghost_slots() {
        let out = run(MachineConfig::new(2), |rank| {
            let (mut ttable, owned) = table_for(rank, 100);
            let mut h = IndexHashTable::new(rank.rank(), owned);
            let a: Vec<usize> = (0..50).map(|i| (i * 3) % 100).collect();
            let first = h.hash_in(rank, &mut ttable, &a, Stamp::new(0));
            let ghost_after_first = h.ghost_len();
            // The indirection array "adapts": most entries identical, a few new.
            let mut b = a.clone();
            b[0] = 99;
            b[1] = 98;
            h.clear_stamp(Stamp::new(0));
            let second = h.hash_in(rank, &mut ttable, &b, Stamp::new(0));
            let ghost_after_second = h.ghost_len();
            // Unchanged indices must resolve to the identical local references.
            let same = a
                .iter()
                .zip(&b)
                .enumerate()
                .filter(|(_, (x, y))| x == y)
                .all(|(i, _)| first[i] == second[i]);
            (same, ghost_after_first, ghost_after_second, h.len())
        });
        for (same, g1, g2, len) in &out.results {
            assert!(*same, "unchanged indices must keep their local references");
            // Ghost region grows by at most the number of genuinely new off-processor
            // indices (here at most 2).
            assert!(*g2 - *g1 <= 2, "ghost grew by {} slots", g2 - g1);
            assert!(*len >= 34); // 34 distinct values in a
        }
    }

    #[test]
    fn clear_stamp_excludes_entries_from_queries_but_keeps_them() {
        let out = run(MachineConfig::new(2), |rank| {
            let (mut ttable, owned) = table_for(rank, 16);
            let mut h = IndexHashTable::new(rank.rank(), owned);
            let sa = Stamp::new(0);
            let sb = Stamp::new(1);
            h.hash_in(rank, &mut ttable, &[1, 9, 12], sa);
            h.hash_in(rank, &mut ttable, &[9, 3], sb);
            let both = h.entries_matching(StampQuery::any_of(&[sa, sb])).count();
            h.clear_stamp(sa);
            let after_clear_a = h.entries_matching(StampQuery::single(sa)).count();
            let still_b = h.entries_matching(StampQuery::single(sb)).count();
            (both, after_clear_a, still_b, h.len())
        });
        for (both, after_a, still_b, len) in &out.results {
            assert_eq!(*both, 4); // distinct: 1, 9, 12, 3
            assert_eq!(*after_a, 0);
            assert_eq!(*still_b, 2); // 9 and 3
            assert_eq!(*len, 4); // entries retained
        }
    }

    #[test]
    fn incremental_query_selects_only_new_entries() {
        // Mirrors Figure 6: schedule for b-minus-a fetches only what b needs that a did
        // not already bring in.
        let out = run(MachineConfig::new(2), |rank| {
            let (mut ttable, owned) = table_for(rank, 10);
            let mut h = IndexHashTable::new(rank.rank(), owned);
            let sa = Stamp::new(0);
            let sb = Stamp::new(1);
            h.hash_in(rank, &mut ttable, &[1, 3, 7, 9, 2], sa);
            h.hash_in(rank, &mut ttable, &[1, 5, 7, 8, 2], sb);
            let inc: Vec<Global> = h
                .entries_matching(StampQuery::minus(&[sb], &[sa]))
                .map(|e| e.global)
                .collect();
            inc
        });
        for inc in &out.results {
            assert_eq!(inc, &vec![5, 8]);
        }
    }

    #[test]
    fn parallel_clear_stamp_is_byte_identical_to_sequential() {
        // Two identical tables, big enough to cross the parallel threshold; clearing a
        // stamp with 4 workers must leave exactly the same entries as clearing with 1.
        let n = 3 * crate::par::PAR_MIN_ENTRIES;
        let out = run(MachineConfig::new(2), move |rank| {
            let (mut ttable, owned) = table_for(rank, n);
            let sa = Stamp::new(0);
            let sb = Stamp::new(1);
            let all: Vec<Global> = (0..n).collect();
            let odd: Vec<Global> = (0..n).filter(|g| g % 2 == 1).collect();
            let mut seq = IndexHashTable::new(rank.rank(), owned);
            seq.hash_in(rank, &mut ttable, &all, sa);
            seq.hash_in(rank, &mut ttable, &odd, sb);
            let mut par = IndexHashTable::new(rank.rank(), owned);
            par.hash_in(rank, &mut ttable, &all, sa);
            par.hash_in(rank, &mut ttable, &odd, sb);
            assert_eq!(seq.entries_in_order(), par.entries_in_order());
            seq.clear_stamp(sa);
            crate::par::with_workers(4, || par.clear_stamp(sa));
            assert_eq!(seq.entries_in_order(), par.entries_in_order());
            // sb survives the sweep untouched on both.
            (
                par.entries_matching(StampQuery::single(sa)).count(),
                par.entries_matching(StampQuery::single(sb)).count(),
            )
        });
        for (a_left, b_left) in &out.results {
            assert_eq!(*a_left, 0);
            assert_eq!(*b_left, n / 2);
        }
    }

    #[test]
    fn clear_all_resets_ghost_slots() {
        let out = run(MachineConfig::new(2), |rank| {
            let (mut ttable, owned) = table_for(rank, 8);
            let mut h = IndexHashTable::new(rank.rank(), owned);
            h.hash_in(rank, &mut ttable, &[0, 7, 5], Stamp::new(0));
            let before = h.ghost_len();
            h.clear_all();
            (before, h.ghost_len(), h.len(), h.is_empty())
        });
        for (before, after, len, empty) in &out.results {
            assert!(*before > 0);
            assert_eq!(*after, 0);
            assert_eq!(*len, 0);
            assert!(*empty);
        }
    }

    #[test]
    fn schedule_keys_track_operations_not_contents() {
        let out = run(MachineConfig::new(1), |rank| {
            let (mut ttable, owned) = table_for(rank, 8);
            let mut h = IndexHashTable::new(rank.rank(), owned);
            let sa = Stamp::new(0);
            let sb = Stamp::new(1);
            let q = StampQuery::single(sa);
            let k0 = h.version(q);
            // Reading the version is pure: asking twice gives equal keys.
            assert_eq!(k0, h.version(q));
            h.hash_in(rank, &mut ttable, &[1, 2], sa);
            let k1 = h.version(q);
            assert_ne!(k0, k1, "hashing under a queried stamp must change the key");
            // Re-hashing the *same* contents still advances the key (operation counting).
            h.hash_in(rank, &mut ttable, &[1, 2], sa);
            let k2 = h.version(q);
            assert_ne!(k1, k2);
            // Mutating an unrelated stamp leaves the key alone.
            h.hash_in(rank, &mut ttable, &[3], sb);
            assert_eq!(k2, h.version(q));
            h.clear_stamp(sb);
            assert_eq!(k2, h.version(q));
            // ...but an any_of/minus query naming sb does see it.
            let q_ab = StampQuery::minus(&[sa], &[sb]);
            let kab = h.version(q_ab);
            h.clear_stamp(sb);
            assert_ne!(kab, h.version(q_ab));
            // clear_stamp / clear_all on the queried stamp invalidate.
            h.clear_stamp(sa);
            let k3 = h.version(q);
            assert_ne!(k2, k3);
            h.clear_all();
            assert_ne!(k3, h.version(q));
            // Keys from distinct tables never compare equal or same-source.
            let other = IndexHashTable::new(rank.rank(), owned);
            let ko = other.version(q);
            assert_ne!(ko, h.version(q));
            assert!(!ko.same_source(&h.version(q)));
            assert!(h.version(q).same_source(&k0));
            assert_eq!(k0.query(), q);
        });
        assert_eq!(out.results.len(), 1);
    }

    #[test]
    fn off_processor_count_counts_only_ghosts() {
        let out = run(MachineConfig::new(4), |rank| {
            let (mut ttable, owned) = table_for(rank, 16);
            let mut h = IndexHashTable::new(rank.rank(), owned);
            let s = Stamp::new(0);
            h.hash_in(rank, &mut ttable, &(0..16).collect::<Vec<_>>(), s);
            h.off_processor_count(StampQuery::single(s))
        });
        // Each rank owns 4 of 16 elements, so 12 are off-processor.
        assert!(out.results.iter().all(|&c| c == 12));
    }
}
