//! The executor (Phase F): data-transportation primitives driven by communication
//! schedules.
//!
//! * [`gather`] — bring one copy of every off-processor element referenced by a schedule
//!   into the ghost region of a [`DistArray`] (software caching + communication
//!   vectorization: one message per processor pair, duplicates already removed by the
//!   inspector).
//! * [`scatter`] — the reverse transfer: push ghost-region values back to their owners,
//!   overwriting the owner's copy.
//! * [`scatter_add`] / [`scatter_op`] — reverse transfer combining with the owner's copy
//!   (the reduction form used by `x(ia(i)) = x(ia(i)) + …` loops).
//! * [`scatter_append`] — the light-weight-schedule primitive: move whole elements to new
//!   owners and append them in arbitrary order (the DSMC MOVE phase).
//!
//! All primitives are collective: every rank of the machine must call them with its own
//! schedule (built in the same collective inspector call).  Each is a thin adapter over
//! the unified [`mpsim::exchange`] engine: the schedule provides the
//! [`mpsim::ExchangePlan`], the primitive packs from / places into the distributed array,
//! and the engine moves the bytes and charges the cost model.  The returned
//! [`ExchangeStats`] reports exactly what went on the wire.
//!
//! All four primitives use the engine's packing form ([`mpsim::alltoallv_with`]): elements
//! are encoded from the array straight into pooled message buffers, so a steady-state
//! executor loop — the shape of every time-stepped application in the paper — allocates
//! no fresh send buffers at all.  On the receive side, `gather`/`scatter*` only *read*
//! the incoming values through the borrowed [`mpsim::Placed`] view (placing them by
//! permutation into the array), so their decode scratch is recycled and the steady-state
//! loop allocates nothing in either direction; `scatter_append` is the one primitive that
//! keeps each payload (the appended items outlive the call) and takes ownership with
//! `Placed::into_vec` (see the buffer-pool notes in [`mpsim::exchange`]).

use mpsim::{alltoallv_with, Element, ExchangeStats, PackBuf, Placed, Rank};

use crate::darray::DistArray;
use crate::schedule::{CommSchedule, LightweightSchedule};

/// Gather off-processor elements into the ghost region of `array`.
///
/// After the call, `array[r]` is valid for every [`crate::darray::LocalRef`] `r` produced
/// by the inspector for the indirection arrays covered by `sched`.  Returns the message
/// and byte counts of the transfer.
pub fn gather<T: Element + Default>(
    rank: &mut Rank,
    sched: &CommSchedule,
    array: &mut DistArray<T>,
) -> ExchangeStats {
    assert_eq!(
        sched.nprocs(),
        rank.nprocs(),
        "schedule/machine size mismatch"
    );
    array.ensure_ghost(sched.ghost_len());
    let me = rank.rank();
    let plan = sched.gather_plan(me);
    // Pack the elements each destination asked for straight into the outgoing message;
    // place incoming copies according to the permutation list of their source.
    let (owned, ghost) = array.owned_and_ghost_mut();
    alltoallv_with(
        rank,
        &plan,
        |p, buf: &mut PackBuf<'_, T>| {
            for &off in &sched.send_lists[p] {
                buf.push(owned[off as usize]);
            }
        },
        |src, values: Placed<'_, T>| {
            for (slot, &v) in sched.perm_lists[src].iter().zip(values.iter()) {
                debug_assert!((*slot as usize) < ghost.len());
                ghost[*slot as usize] = v;
            }
        },
    )
}

/// Scatter ghost-region values back to their owners, overwriting the owners' copies.
pub fn scatter<T: Element + Default>(
    rank: &mut Rank,
    sched: &CommSchedule,
    array: &mut DistArray<T>,
) -> ExchangeStats {
    scatter_impl(rank, sched, array, |owner, incoming| *owner = incoming)
}

/// Scatter ghost-region values back to their owners, adding them to the owners' copies.
/// This is the executor half of an irregular reduction loop.
pub fn scatter_add<T>(
    rank: &mut Rank,
    sched: &CommSchedule,
    array: &mut DistArray<T>,
) -> ExchangeStats
where
    T: Element + Default + std::ops::AddAssign,
{
    scatter_impl(rank, sched, array, |owner, incoming| *owner += incoming)
}

/// Scatter ghost-region values back to their owners, combining with an arbitrary operator
/// (`op(&mut owner_value, incoming_value)`).
pub fn scatter_op<T, F>(
    rank: &mut Rank,
    sched: &CommSchedule,
    array: &mut DistArray<T>,
    op: F,
) -> ExchangeStats
where
    T: Element + Default,
    F: Fn(&mut T, T),
{
    scatter_impl(rank, sched, array, op)
}

fn scatter_impl<T, F>(
    rank: &mut Rank,
    sched: &CommSchedule,
    array: &mut DistArray<T>,
    op: F,
) -> ExchangeStats
where
    T: Element + Default,
    F: Fn(&mut T, T),
{
    assert_eq!(
        sched.nprocs(),
        rank.nprocs(),
        "schedule/machine size mismatch"
    );
    assert!(
        array.ghost_len() >= sched.ghost_len(),
        "array ghost region smaller than the schedule requires"
    );
    let me = rank.rank();
    // The transfer is the mirror image of `gather`: this rank sends the ghost slots it
    // filled for processor p back to p, and p applies them to the owned offsets it
    // originally listed in its send list.
    let plan = sched.scatter_plan(me);
    let (ghost, owned) = array.ghost_and_owned_mut();
    alltoallv_with(
        rank,
        &plan,
        |p, buf: &mut PackBuf<'_, T>| {
            for &slot in &sched.perm_lists[p] {
                buf.push(ghost[slot as usize]);
            }
        },
        |src, values: Placed<'_, T>| {
            for (&off, &v) in sched.send_lists[src].iter().zip(values.iter()) {
                op(&mut owned[off as usize], v);
            }
        },
    )
}

/// Move whole items to new owners using a light-weight schedule and return this rank's new
/// item list: the items it kept followed by the items appended by other ranks (in source
/// rank order; within one source, in that source's packing order).
///
/// Because no placement order is promised, no permutation list is needed and nothing has to
/// be index-translated — this is why the DSMC MOVE phase is so much cheaper with
/// light-weight schedules (Table 4 of the paper).
pub fn scatter_append<T: Element>(
    rank: &mut Rank,
    sched: &LightweightSchedule,
    items: &[T],
) -> Vec<T> {
    assert_eq!(
        sched.nprocs(),
        rank.nprocs(),
        "schedule/machine size mismatch"
    );
    assert_eq!(
        sched.my_rank(),
        rank.rank(),
        "light-weight schedule belongs to a different rank"
    );
    let me = rank.rank();
    let nprocs = sched.nprocs();
    let plan = sched.append_plan();
    // Items are packed straight into each destination's message (kept items are copied
    // from `items` below, bypassing the plan).  The engine delivers in arrival order;
    // buffer per source so the documented kept-first, then-source-rank-order layout is
    // deterministic.  The appended items outlive the call, so this is the one executor
    // primitive that takes ownership of its payloads (`Placed::into_vec`).
    let mut by_src: Vec<Vec<T>> = (0..nprocs).map(|_| Vec::new()).collect();
    alltoallv_with(
        rank,
        &plan,
        |p, buf: &mut PackBuf<'_, T>| {
            for &i in &sched.send_item_lists[p] {
                buf.push(items[i as usize]);
            }
        },
        |src, values| by_src[src] = values.into_vec(),
    );
    let mut result: Vec<T> = Vec::with_capacity(sched.result_count());
    result.extend(sched.send_item_lists[me].iter().map(|&i| items[i as usize]));
    for (p, mut values) in by_src.into_iter().enumerate() {
        if p != me {
            debug_assert_eq!(
                values.len(),
                sched.recv_counts[p],
                "scatter_append: receive count mismatch from processor {p}"
            );
            result.append(&mut values);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{BlockDist, RegularDist};
    use crate::index_hash::{Stamp, StampQuery};
    use crate::inspector::Inspector;
    use crate::translation::TranslationTable;
    use mpsim::{run, MachineConfig};

    /// Build the schedule for a given access pattern (same on all ranks) over an
    /// n-element block-distributed array, returning (schedule, local refs, owned range).
    fn setup(
        rank: &mut Rank,
        n: usize,
        pattern: &[usize],
    ) -> (
        CommSchedule,
        Vec<crate::darray::LocalRef>,
        std::ops::Range<usize>,
    ) {
        let dist = BlockDist::new(n, rank.nprocs());
        let ttable = TranslationTable::from_regular(&dist);
        let mut insp = Inspector::new(&ttable, rank.rank());
        let refs = insp.hash_indices(rank, pattern, Stamp::new(0));
        let sched = insp.build_schedule(rank, StampQuery::single(Stamp::new(0)));
        (sched, refs, dist.local_range(rank.rank()))
    }

    #[test]
    fn gather_brings_in_correct_values() {
        let n = 16;
        let out = run(MachineConfig::new(4), move |rank| {
            // Every rank reads every element; x[g] = g as f64 globally.
            let pattern: Vec<usize> = (0..n).collect();
            let (sched, refs, range) = setup(rank, n, &pattern);
            let owned: Vec<f64> = range.clone().map(|g| g as f64).collect();
            let mut x = DistArray::new(owned, sched.ghost_len());
            gather(rank, &sched, &mut x);
            refs.iter().map(|&r| x[r]).collect::<Vec<f64>>()
        });
        for vals in &out.results {
            let expected: Vec<f64> = (0..n).map(|g| g as f64).collect();
            assert_eq!(vals, &expected);
        }
    }

    #[test]
    fn gather_reports_schedule_message_counts() {
        let n = 32;
        let out = run(MachineConfig::new(4), move |rank| {
            let pattern: Vec<usize> = (0..n).map(|i| (i * 3 + 1) % n).collect();
            let (sched, _refs, range) = setup(rank, n, &pattern);
            let mut x = DistArray::new(vec![0.0f64; range.len()], sched.ghost_len());
            let stats = gather(rank, &sched, &mut x);
            (
                stats,
                sched.send_message_count(),
                sched.total_send(),
                sched.total_fetch(),
            )
        });
        for (stats, msg_count, total_send, total_fetch) in &out.results {
            assert_eq!(stats.msgs_sent as usize, *msg_count);
            assert_eq!(stats.bytes_sent as usize, total_send * 8);
            assert_eq!(stats.bytes_received as usize, total_fetch * 8);
        }
    }

    #[test]
    fn gather_scatter_round_trip_preserves_values() {
        let n = 24;
        let out = run(MachineConfig::new(3), move |rank| {
            let pattern: Vec<usize> = (0..n).map(|i| (i * 5 + 2) % n).collect();
            let (sched, _refs, range) = setup(rank, n, &pattern);
            let owned: Vec<f64> = range.clone().map(|g| (g * g) as f64).collect();
            let mut x = DistArray::new(owned.clone(), sched.ghost_len());
            gather(rank, &sched, &mut x);
            // Scatter straight back without modification: owned values must be unchanged.
            scatter(rank, &sched, &mut x);
            (x.owned().to_vec(), owned)
        });
        for (after, before) in &out.results {
            assert_eq!(after, before);
        }
    }

    #[test]
    fn scatter_add_accumulates_remote_contributions() {
        // Global reduction x[g] += 1 executed once per rank for every g:
        // final x[g] = initial + nprocs.
        let n = 12;
        let nprocs = 4;
        let out = run(MachineConfig::new(nprocs), move |rank| {
            let pattern: Vec<usize> = (0..n).collect();
            let (sched, refs, range) = setup(rank, n, &pattern);
            let owned: Vec<f64> = vec![10.0; range.len()];
            let mut x = DistArray::new(owned, sched.ghost_len());
            // Each rank adds 1.0 to every element through its local reference (ghost for
            // off-processor elements), then scatter_add folds the ghosts back.
            for &r in &refs {
                x[r] += 1.0;
            }
            scatter_add(rank, &sched, &mut x);
            x.owned().to_vec()
        });
        for owned in &out.results {
            assert!(owned
                .iter()
                .all(|&v| (v - (10.0 + nprocs as f64)).abs() < 1e-12));
        }
    }

    #[test]
    fn scatter_op_with_max_combiner() {
        let n = 8;
        let out = run(MachineConfig::new(2), move |rank| {
            let pattern: Vec<usize> = (0..n).collect();
            let (sched, refs, range) = setup(rank, n, &pattern);
            let mut x = DistArray::new(vec![0.0f64; range.len()], sched.ghost_len());
            // Rank r proposes value (g + 100*r) for element g; the max should win.
            for (k, &r) in refs.iter().enumerate() {
                x[r] = k as f64 + 100.0 * rank.rank() as f64;
            }
            scatter_op(rank, &sched, &mut x, |owner, incoming: f64| {
                if incoming > *owner {
                    *owner = incoming;
                }
            });
            x.owned().to_vec()
        });
        // The max proposal for element g is g + 100 (from rank 1).
        for (p, owned) in out.results.iter().enumerate() {
            let dist = BlockDist::new(n, 2);
            for (l, v) in owned.iter().enumerate() {
                let g = dist.global_index(p, l);
                assert_eq!(*v, g as f64 + 100.0);
            }
        }
    }

    #[test]
    fn scatter_append_conserves_items_and_routes_them() {
        let out = run(MachineConfig::new(4), |rank| {
            let me = rank.rank();
            // 10 items per rank; item k is destined for processor k % 4 and carries the
            // value 1000*me + k.
            let items: Vec<u64> = (0..10).map(|k| (1000 * me + k) as u64).collect();
            let dests: Vec<usize> = (0..10).map(|k| k % 4).collect();
            let sched = LightweightSchedule::build(rank, &dests);

            scatter_append(rank, &sched, &items)
        });
        // Collect everything and check the multiset is conserved and routed correctly.
        let mut all: Vec<u64> = out.results.iter().flatten().copied().collect();
        all.sort_unstable();
        let mut expected: Vec<u64> = (0..4)
            .flat_map(|me| (0..10).map(move |k| (1000 * me + k) as u64))
            .collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
        for (p, items) in out.results.iter().enumerate() {
            // Every item k on processor p must satisfy k % 4 == p.
            assert!(items.iter().all(|&v| (v % 1000) as usize % 4 == p));
            // 4 ranks each send/keep either 2 or 3 items for p: total 10 or 12.
            assert_eq!(items.len(), out.results[p].len());
        }
    }

    #[test]
    fn scatter_append_orders_kept_items_first_then_sources_by_rank() {
        let out = run(MachineConfig::new(3), |rank| {
            let me = rank.rank();
            // Every rank sends one item to every rank (including itself).
            let items: Vec<u64> = (0..3).map(|k| (100 * me + k) as u64).collect();
            let dests: Vec<usize> = (0..3).collect();
            let sched = LightweightSchedule::build(rank, &dests);
            scatter_append(rank, &sched, &items)
        });
        for (p, got) in out.results.iter().enumerate() {
            // Kept item first, then contributions in source rank order.
            let mut expected: Vec<u64> = vec![(100 * p + p) as u64];
            expected.extend(
                (0..3usize)
                    .filter(|&src| src != p)
                    .map(|src| (100 * src + p) as u64),
            );
            assert_eq!(got, &expected, "deterministic order on rank {p}");
        }
    }

    #[test]
    fn lightweight_schedule_is_cheaper_to_build_than_a_regular_schedule() {
        // The mechanism behind Table 4: regenerating a light-weight schedule every time
        // step costs only an exchange of counts, whereas a regular schedule must ship one
        // index per off-processor reference (plus the hashing/translation work).
        let out = run(MachineConfig::new(4), |rank| {
            let me = rank.rank();
            // 64 references per rank, four-way spread — the same pattern for both paths.
            let dests: Vec<usize> = (0..64).map(|k| (k / 16 + me) % 4).collect();
            let before = rank.stats().bytes_sent;
            let lw = LightweightSchedule::build(rank, &dests);
            let lw_build_bytes = rank.stats().bytes_sent - before;

            let n = 256;
            let dist = BlockDist::new(n, rank.nprocs());
            let ttable = TranslationTable::from_regular(&dist);
            let mut insp = Inspector::new(&ttable, rank.rank());
            let pattern: Vec<usize> = (0..64).map(|k| (me * 64 + k + 16) % n).collect();
            let before = rank.stats().bytes_sent;
            insp.hash_indices(rank, &pattern, Stamp::new(0));
            let sched = insp.build_schedule(rank, StampQuery::single(Stamp::new(0)));
            let regular_build_bytes = rank.stats().bytes_sent - before;
            (
                lw_build_bytes,
                regular_build_bytes,
                lw.result_count(),
                sched.total_fetch(),
            )
        });
        for (lw, regular, result_count, fetch) in &out.results {
            assert!(
                lw * 2 <= *regular,
                "light-weight schedule build should be much cheaper ({lw} vs {regular} bytes)"
            );
            assert_eq!(*result_count, 64);
            assert!(*fetch > 0);
        }
    }

    #[test]
    fn empty_schedule_moves_nothing() {
        let out = run(MachineConfig::new(3), |rank| {
            let sched = CommSchedule::empty(rank.nprocs());
            let mut x: DistArray<f64> = DistArray::new(vec![1.0, 2.0], 0);
            let before = rank.stats().msgs_sent;
            let g = gather(rank, &sched, &mut x);
            let s = scatter_add(rank, &sched, &mut x);
            (
                rank.stats().msgs_sent - before,
                x.owned().to_vec(),
                g.merged(&s),
            )
        });
        for (msgs, owned, stats) in &out.results {
            assert_eq!(*msgs, 0);
            assert_eq!(owned, &vec![1.0, 2.0]);
            assert_eq!(*stats, ExchangeStats::default());
        }
    }
}
