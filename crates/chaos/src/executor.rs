//! The executor (Phase F): data-transportation primitives driven by communication
//! schedules.
//!
//! * [`gather`] — bring one copy of every off-processor element referenced by a schedule
//!   into the ghost region of a [`DistArray`] (software caching + communication
//!   vectorization: one message per processor pair, duplicates already removed by the
//!   inspector).
//! * [`scatter`] — the reverse transfer: push ghost-region values back to their owners,
//!   overwriting the owner's copy.
//! * [`scatter_add`] / [`scatter_op`] — reverse transfer combining with the owner's copy
//!   (the reduction form used by `x(ia(i)) = x(ia(i)) + …` loops).
//! * [`scatter_append`] — the light-weight-schedule primitive: move whole elements to new
//!   owners and append them in arbitrary order (the DSMC MOVE phase).
//!
//! Two executor-level optimisations compose with these primitives:
//!
//! * **Fused multi-array transfers** — [`gather_multi`] / [`scatter_add_multi`] move N
//!   same-schedule arrays as contiguous per-lane blocks through *one* message per
//!   processor pair (CHARMM's `x`/`y`/`z` per step: same bytes, 1/N the messages and
//!   latencies), via [`mpsim::alltoallv_multi`].
//! * **Split-phase transfers** — [`gather_start`] posts a (fused) gather's sends and
//!   returns a [`GatherHandle`]; [`gather_finish`] drains the receives into the ghost
//!   regions.  [`scatter_append_start`] / [`scatter_append_finish`] split the
//!   light-weight append the same way.  Between start and finish the caller computes
//!   (CHARMM's bonded loop runs while the non-bonded ghost exchange is in flight; DSMC
//!   re-bins its surviving molecules while the migrants travel).
//!
//! Every primitive takes `&CommSchedule` and never cares how the schedule was produced:
//! a schedule patched forward by [`crate::maintained::patch_schedule`] or served from a
//! [`crate::cache::ScheduleCache`] is byte-identical to a fresh
//! [`crate::inspector::build_schedule_from_table`] build (pinned by
//! `tests/schedule_delta.rs`), so fused and split-phase entry points work on maintained
//! schedules unchanged — pass a [`crate::maintained::MaintainedSchedule`] directly; it
//! dereferences to its schedule.
//!
//! All primitives are collective: every rank of the machine must call them with its own
//! schedule (built in the same collective inspector call), and split-phase *starts* must
//! appear in the same order on every rank (finishes may interleave — the engine's epoch
//! tags keep in-flight exchanges apart).  Each is a thin adapter over the unified
//! [`mpsim::exchange`] engine: the schedule provides the [`mpsim::ExchangePlan`], the
//! primitive packs from / places into the distributed array, and the engine moves the
//! bytes and charges the cost model.  The returned [`ExchangeStats`] reports exactly
//! what went on the wire.
//!
//! All four primitives use the engine's packing form ([`mpsim::alltoallv_with`]): elements
//! are encoded from the array straight into pooled message buffers, so a steady-state
//! executor loop — the shape of every time-stepped application in the paper — allocates
//! no fresh send buffers at all.  On the receive side, `gather`/`scatter*` only *read*
//! the incoming values through the borrowed [`mpsim::Placed`] view (placing them by
//! permutation into the array), so their decode scratch is recycled and the steady-state
//! loop allocates nothing in either direction; `scatter_append` is the one primitive that
//! keeps each payload (the appended items outlive the call) and takes ownership with
//! `Placed::into_vec` (see the buffer-pool notes in [`mpsim::exchange`]).

use mpsim::{
    alltoallv_multi, alltoallv_with, start_alltoallv_with, Element, ExchangeHandle, ExchangeStats,
    PackBuf, Placed, Rank,
};

use crate::darray::DistArray;
use crate::schedule::{CommSchedule, LightweightSchedule};

/// How many list positions ahead the indexed pack/place loops prefetch.
const PREFETCH_AHEAD: usize = 12;

/// Hint the CPU to pull `p` into cache; no-op on architectures without a stable
/// prefetch intrinsic.
#[inline(always)]
fn prefetch<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a pure cache hint — it never dereferences `p`, so any
    // pointer value (dangling or misaligned included) is sound to pass.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p as *const i8);
    };
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Gather off-processor elements into the ghost region of `array`.
///
/// After the call, `array[r]` is valid for every [`crate::darray::LocalRef`] `r` produced
/// by the inspector for the indirection arrays covered by `sched`.  Returns the message
/// and byte counts of the transfer.
pub fn gather<T: Element + Default>(
    rank: &mut Rank,
    sched: &CommSchedule,
    array: &mut DistArray<T>,
) -> ExchangeStats {
    assert_eq!(
        sched.nprocs(),
        rank.nprocs(),
        "schedule/machine size mismatch"
    );
    array.ensure_ghost(sched.ghost_len());
    let me = rank.rank();
    let plan = sched.gather_plan(me);
    // A gather is exactly the engine's permutation exchange: pack owned elements by the
    // send lists, place arrivals into the ghost region by the permutation lists.  Going
    // through the engine entry (rather than hand-rolled pack/place closures) lets the
    // shared-memory backend deliver POD gathers zero-copy, straight into the ghost
    // region.  Scatter cannot take this path — its destinations are *owned* offsets
    // that repeat across sources and combine with the owner's value, so the combining
    // operator must run on the owning rank (see [`scatter_impl`]).
    let (owned, ghost) = array.owned_and_ghost_mut();
    mpsim::alltoallv_permute(
        rank,
        &plan,
        owned,
        &sched.send_lists,
        ghost,
        &sched.perm_lists,
    )
}

/// Scatter ghost-region values back to their owners, overwriting the owners' copies.
pub fn scatter<T: Element + Default>(
    rank: &mut Rank,
    sched: &CommSchedule,
    array: &mut DistArray<T>,
) -> ExchangeStats {
    scatter_impl(rank, sched, array, |owner, incoming| *owner = incoming)
}

/// Scatter ghost-region values back to their owners, adding them to the owners' copies.
/// This is the executor half of an irregular reduction loop.
pub fn scatter_add<T>(
    rank: &mut Rank,
    sched: &CommSchedule,
    array: &mut DistArray<T>,
) -> ExchangeStats
where
    T: Element + Default + std::ops::AddAssign,
{
    scatter_impl(rank, sched, array, |owner, incoming| *owner += incoming)
}

/// Scatter ghost-region values back to their owners, combining with an arbitrary operator
/// (`op(&mut owner_value, incoming_value)`).
pub fn scatter_op<T, F>(
    rank: &mut Rank,
    sched: &CommSchedule,
    array: &mut DistArray<T>,
    op: F,
) -> ExchangeStats
where
    T: Element + Default,
    F: Fn(&mut T, T),
{
    scatter_impl(rank, sched, array, op)
}

fn scatter_impl<T, F>(
    rank: &mut Rank,
    sched: &CommSchedule,
    array: &mut DistArray<T>,
    op: F,
) -> ExchangeStats
where
    T: Element + Default,
    F: Fn(&mut T, T),
{
    assert_eq!(
        sched.nprocs(),
        rank.nprocs(),
        "schedule/machine size mismatch"
    );
    assert!(
        array.ghost_len() >= sched.ghost_len(),
        "array ghost region smaller than the schedule requires"
    );
    let me = rank.rank();
    // The transfer is the mirror image of `gather`: this rank sends the ghost slots it
    // filled for processor p back to p, and p applies them to the owned offsets it
    // originally listed in its send list.
    let plan = sched.scatter_plan(me);
    let (ghost, owned) = array.ghost_and_owned_mut();
    alltoallv_with(
        rank,
        &plan,
        |p, buf: &mut PackBuf<'_, T>| {
            let list = &sched.perm_lists[p];
            for (k, &slot) in list.iter().enumerate() {
                if let Some(&ahead) = list.get(k + PREFETCH_AHEAD) {
                    // SAFETY: prefetch never dereferences; `add` stays within the
                    // ghost allocation because every perm-list entry < ghost.len()
                    // (asserted against sched.ghost_len() above).
                    prefetch(unsafe { ghost.as_ptr().add(ahead as usize) });
                }
                // SAFETY: perm-list slots index the ghost region the schedule sized
                // (`ghost.len() >= sched.ghost_len()`, asserted above), so `slot` is
                // in bounds.
                buf.push(unsafe { *ghost.get_unchecked(slot as usize) });
            }
        },
        |src, values: Placed<'_, T>| {
            let list = &sched.send_lists[src];
            for (k, (&off, &v)) in list.iter().zip(values.iter()).enumerate() {
                if let Some(&ahead) = list.get(k + PREFETCH_AHEAD) {
                    // SAFETY: prefetch never dereferences; send-list offsets are owned
                    // offsets this rank produced for its own array, all < owned.len().
                    prefetch(unsafe { owned.as_ptr().add(ahead as usize) });
                }
                // SAFETY: send-list offsets are local owned offsets this rank handed to
                // the inspector (always < owned.len()), so `off` is in bounds.
                op(unsafe { owned.get_unchecked_mut(off as usize) }, v);
            }
        },
    )
}

/// Fused gather: bring the off-processor elements of `sched` into the ghost regions of
/// all `N` arrays with **one message per processor pair** instead of one per array.
///
/// The arrays must share the distribution and ghost layout the schedule was built for
/// (CHARMM's `px`/`py`/`pz`).  Each lane travels as one contiguous block on the wire
/// (all scheduled elements of `x`, then of `y`, then of `z`), so the bytes moved equal
/// `N` separate [`gather`] calls while messages and message latencies drop `N×`.
/// Blocked lanes keep pack and place simple per-lane sweeps with no per-element stride
/// arithmetic — the compiler can vectorise them — and the result is element-identical to
/// `N` separate gathers.
pub fn gather_multi<T, const N: usize>(
    rank: &mut Rank,
    sched: &CommSchedule,
    arrays: [&mut DistArray<T>; N],
) -> ExchangeStats
where
    T: Element + Default,
{
    const { assert!(N > 0, "a fused gather needs at least one array") };
    let mut refs: Vec<&mut DistArray<T>> = arrays.into_iter().collect();
    gather_multi_dyn(rank, sched, &mut refs)
}

/// [`gather_multi`] with a runtime lane count: the entry point for callers whose array
/// set is only known at run time (the Fortran-D interpreter executing an optimizer-fused
/// exchange).  The wire layout and element results are identical to the const-generic
/// version — which forwards here.
pub fn gather_multi_dyn<T>(
    rank: &mut Rank,
    sched: &CommSchedule,
    arrays: &mut [&mut DistArray<T>],
) -> ExchangeStats
where
    T: Element + Default,
{
    assert_eq!(
        sched.nprocs(),
        rank.nprocs(),
        "schedule/machine size mismatch"
    );
    assert!(
        !arrays.is_empty(),
        "a fused gather needs at least one array"
    );
    let n = arrays.len();
    let me = rank.rank();
    let plan = sched.gather_plan(me);
    let mut owneds: Vec<&[T]> = Vec::with_capacity(n);
    let mut ghosts: Vec<&mut [T]> = Vec::with_capacity(n);
    for a in arrays.iter_mut() {
        a.ensure_ghost(sched.ghost_len());
        let (o, g) = a.owned_and_ghost_mut();
        owneds.push(o);
        ghosts.push(g);
    }
    alltoallv_multi(
        rank,
        &plan,
        n,
        |p, buf: &mut PackBuf<'_, T>| {
            for owned in &owneds {
                for &off in &sched.send_lists[p] {
                    buf.push(owned[off as usize]);
                }
            }
        },
        |src, values: Placed<'_, T>| {
            let cnt = sched.perm_lists[src].len();
            for (lane, ghost) in ghosts.iter_mut().enumerate() {
                let block = &values[lane * cnt..(lane + 1) * cnt];
                for (&slot, &v) in sched.perm_lists[src].iter().zip(block) {
                    ghost[slot as usize] = v;
                }
            }
        },
    )
}

/// Fused scatter-add: push the ghost-region contributions of all `N` arrays back to
/// their owners in one message per processor pair, adding into the owners' copies.
/// The fused mirror image of [`gather_multi`]; element-identical to `N` separate
/// [`scatter_add`] calls.
pub fn scatter_add_multi<T, const N: usize>(
    rank: &mut Rank,
    sched: &CommSchedule,
    arrays: [&mut DistArray<T>; N],
) -> ExchangeStats
where
    T: Element + Default + std::ops::AddAssign,
{
    const { assert!(N > 0, "a fused scatter needs at least one array") };
    let mut refs: Vec<&mut DistArray<T>> = arrays.into_iter().collect();
    scatter_add_multi_dyn(rank, sched, &mut refs)
}

/// [`scatter_add_multi`] with a runtime lane count (see [`gather_multi_dyn`]); the
/// const-generic version forwards here.
pub fn scatter_add_multi_dyn<T>(
    rank: &mut Rank,
    sched: &CommSchedule,
    arrays: &mut [&mut DistArray<T>],
) -> ExchangeStats
where
    T: Element + Default + std::ops::AddAssign,
{
    assert_eq!(
        sched.nprocs(),
        rank.nprocs(),
        "schedule/machine size mismatch"
    );
    assert!(
        !arrays.is_empty(),
        "a fused scatter needs at least one array"
    );
    let n = arrays.len();
    let me = rank.rank();
    let plan = sched.scatter_plan(me);
    let mut ghosts: Vec<&[T]> = Vec::with_capacity(n);
    let mut owneds: Vec<&mut [T]> = Vec::with_capacity(n);
    for a in arrays.iter_mut() {
        assert!(
            a.ghost_len() >= sched.ghost_len(),
            "array ghost region smaller than the schedule requires"
        );
        let (g, o) = a.ghost_and_owned_mut();
        ghosts.push(g);
        owneds.push(o);
    }
    alltoallv_multi(
        rank,
        &plan,
        n,
        |p, buf: &mut PackBuf<'_, T>| {
            for ghost in &ghosts {
                for &slot in &sched.perm_lists[p] {
                    buf.push(ghost[slot as usize]);
                }
            }
        },
        |src, values: Placed<'_, T>| {
            let cnt = sched.send_lists[src].len();
            for (lane, owned) in owneds.iter_mut().enumerate() {
                let block = &values[lane * cnt..(lane + 1) * cnt];
                for (&off, &v) in sched.send_lists[src].iter().zip(block) {
                    owned[off as usize] += v;
                }
            }
        },
    )
}

/// A fused gather in flight: sends posted by [`gather_start`], ghost placement pending
/// until [`gather_finish`].  Nothing borrows the arrays while the exchange flies — the
/// caller is free to read them (and compute) in between.
#[must_use = "a split-phase gather must be finished with gather_finish"]
pub struct GatherHandle<T: Element> {
    inner: ExchangeHandle<T>,
    lanes: usize,
}

/// Start a (fused) gather: pack every scheduled owned element of the `N` arrays and post
/// the messages, returning a handle for [`gather_finish`].  The overlap primitive of the
/// executor — between start and finish the caller runs whatever computation does not
/// need the incoming ghosts (CHARMM's bonded force loop during the non-bonded gather).
///
/// Collective in start order; the matching `gather_finish` must pass the same schedule
/// and arrays.  The owned sections must not be modified while the gather is in flight
/// (the packed values were read at start — changing them afterwards is not observable by
/// the exchange, which would silently de-synchronise the ghosts from the owners).
pub fn gather_start<T, const N: usize>(
    rank: &mut Rank,
    sched: &CommSchedule,
    arrays: [&DistArray<T>; N],
) -> GatherHandle<T>
where
    T: Element + Default,
{
    const { assert!(N > 0, "a fused gather needs at least one array") };
    gather_start_dyn(rank, sched, &arrays)
}

/// [`gather_start`] with a runtime lane count (see [`gather_multi_dyn`]); the
/// const-generic version forwards here.
pub fn gather_start_dyn<T>(
    rank: &mut Rank,
    sched: &CommSchedule,
    arrays: &[&DistArray<T>],
) -> GatherHandle<T>
where
    T: Element + Default,
{
    assert_eq!(
        sched.nprocs(),
        rank.nprocs(),
        "schedule/machine size mismatch"
    );
    assert!(
        !arrays.is_empty(),
        "a fused gather needs at least one array"
    );
    let n = arrays.len();
    let me = rank.rank();
    let plan = sched.gather_plan(me).fused(n);
    let owneds: Vec<&[T]> = arrays.iter().map(|a| a.owned()).collect();
    let inner = start_alltoallv_with(rank, plan, |p, buf: &mut PackBuf<'_, T>| {
        for owned in &owneds {
            for &off in &sched.send_lists[p] {
                buf.push(owned[off as usize]);
            }
        }
    });
    GatherHandle { inner, lanes: n }
}

/// Finish a gather started with [`gather_start`]: drain the receives and place the
/// incoming copies into the ghost regions of the same `N` arrays (grown if needed).
///
/// # Panics
/// Panics if the lane count or schedule differs from the one `gather_start` packed for —
/// a mismatched schedule whose permutation lists disagree with the received element
/// counts would otherwise leave ghost slots silently stale.
pub fn gather_finish<T, const N: usize>(
    rank: &mut Rank,
    handle: GatherHandle<T>,
    sched: &CommSchedule,
    arrays: [&mut DistArray<T>; N],
) -> ExchangeStats
where
    T: Element + Default,
{
    let mut refs: Vec<&mut DistArray<T>> = arrays.into_iter().collect();
    gather_finish_dyn(rank, handle, sched, &mut refs)
}

/// [`gather_finish`] with a runtime lane count (see [`gather_multi_dyn`]); the
/// const-generic version forwards here.
///
/// # Panics
/// Panics if the lane count or schedule differs from the one `gather_start` packed for.
pub fn gather_finish_dyn<T>(
    rank: &mut Rank,
    handle: GatherHandle<T>,
    sched: &CommSchedule,
    arrays: &mut [&mut DistArray<T>],
) -> ExchangeStats
where
    T: Element + Default,
{
    assert_eq!(
        sched.nprocs(),
        rank.nprocs(),
        "schedule/machine size mismatch"
    );
    let n = arrays.len();
    assert_eq!(
        handle.lanes, n,
        "gather_finish must pass the same arrays gather_start packed"
    );
    let mut ghosts: Vec<&mut [T]> = Vec::with_capacity(n);
    for a in arrays.iter_mut() {
        a.ensure_ghost(sched.ghost_len());
        ghosts.push(a.ghost_mut());
    }
    handle.inner.finish(rank, |src, values: Placed<'_, T>| {
        assert_eq!(
            values.len(),
            sched.perm_lists[src].len() * n,
            "gather_finish: schedule does not match the one gather_start packed for \
             (message from rank {src} disagrees with the permutation list)"
        );
        let cnt = sched.perm_lists[src].len();
        for (lane, ghost) in ghosts.iter_mut().enumerate() {
            let block = &values[lane * cnt..(lane + 1) * cnt];
            for (&slot, &v) in sched.perm_lists[src].iter().zip(block) {
                ghost[slot as usize] = v;
            }
        }
    })
}

/// A light-weight append in flight: migrants posted by [`scatter_append_start`], arrivals
/// pending until [`scatter_append_finish`].  The kept items were copied out at start, so
/// the caller's item buffer is free immediately.
#[must_use = "a split-phase append must be finished with scatter_append_finish"]
pub struct AppendHandle<T: Element> {
    inner: ExchangeHandle<T>,
    kept: Vec<T>,
}

/// Start a light-weight append: post one message of whole items per destination
/// processor and copy the kept items aside, returning a handle for
/// [`scatter_append_finish`].  Between start and finish the caller computes — the DSMC
/// MOVE phase re-bins its surviving molecules while the migrants are in flight.
pub fn scatter_append_start<T: Element>(
    rank: &mut Rank,
    sched: &LightweightSchedule,
    items: &[T],
) -> AppendHandle<T> {
    assert_eq!(
        sched.nprocs(),
        rank.nprocs(),
        "schedule/machine size mismatch"
    );
    assert_eq!(
        sched.my_rank(),
        rank.rank(),
        "light-weight schedule belongs to a different rank"
    );
    let me = rank.rank();
    let plan = sched.append_plan();
    let inner = start_alltoallv_with(rank, plan, |p, buf: &mut PackBuf<'_, T>| {
        for &i in &sched.send_item_lists[p] {
            buf.push(items[i as usize]);
        }
    });
    let mut kept: Vec<T> = Vec::with_capacity(sched.result_count());
    kept.extend(sched.send_item_lists[me].iter().map(|&i| items[i as usize]));
    AppendHandle { inner, kept }
}

/// Finish an append started with [`scatter_append_start`], returning this rank's new
/// item list in the same deterministic order as [`scatter_append`]: kept items first,
/// then arrivals in source rank order (within one source, in that source's packing
/// order).
pub fn scatter_append_finish<T: Element>(
    rank: &mut Rank,
    sched: &LightweightSchedule,
    handle: AppendHandle<T>,
) -> Vec<T> {
    let me = sched.my_rank();
    let nprocs = sched.nprocs();
    // The engine delivers in arrival order; buffer per source so the documented layout
    // is deterministic.  The appended items outlive the call, so ownership is taken.
    let mut by_src: Vec<Vec<T>> = (0..nprocs).map(|_| Vec::new()).collect();
    handle.inner.finish(rank, |src, values| {
        by_src[src] = values.into_vec();
    });
    let mut result = handle.kept;
    for (p, mut values) in by_src.into_iter().enumerate() {
        if p != me {
            debug_assert_eq!(
                values.len(),
                sched.recv_counts[p],
                "scatter_append: receive count mismatch from processor {p}"
            );
            result.append(&mut values);
        }
    }
    result
}

/// Move whole items to new owners using a light-weight schedule and return this rank's new
/// item list: the items it kept followed by the items appended by other ranks (in source
/// rank order; within one source, in that source's packing order).
///
/// Because no placement order is promised, no permutation list is needed and nothing has to
/// be index-translated — this is why the DSMC MOVE phase is so much cheaper with
/// light-weight schedules (Table 4 of the paper).
pub fn scatter_append<T: Element>(
    rank: &mut Rank,
    sched: &LightweightSchedule,
    items: &[T],
) -> Vec<T> {
    // The blocking form is the split-phase form with nothing in between.  Items are
    // packed straight into each destination's message (kept items are copied from
    // `items` at start, bypassing the plan); this is the one executor primitive that
    // takes ownership of its payloads (`Placed::into_vec`) — the appended items outlive
    // the call.
    let handle = scatter_append_start(rank, sched, items);
    scatter_append_finish(rank, sched, handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{BlockDist, RegularDist};
    use crate::index_hash::{Stamp, StampQuery};
    use crate::inspector::Inspector;
    use crate::translation::TranslationTable;
    use mpsim::{run, MachineConfig};

    /// Build the schedule for a given access pattern (same on all ranks) over an
    /// n-element block-distributed array, returning (schedule, local refs, owned range).
    fn setup(
        rank: &mut Rank,
        n: usize,
        pattern: &[usize],
    ) -> (
        CommSchedule,
        Vec<crate::darray::LocalRef>,
        std::ops::Range<usize>,
    ) {
        let dist = BlockDist::new(n, rank.nprocs());
        let ttable = TranslationTable::from_regular(&dist);
        let mut insp = Inspector::new(&ttable, rank.rank());
        let refs = insp.hash_indices(rank, pattern, Stamp::new(0));
        let sched = insp.build_schedule(rank, StampQuery::single(Stamp::new(0)));
        (sched, refs, dist.local_range(rank.rank()))
    }

    #[test]
    fn gather_brings_in_correct_values() {
        let n = 16;
        let out = run(MachineConfig::new(4), move |rank| {
            // Every rank reads every element; x[g] = g as f64 globally.
            let pattern: Vec<usize> = (0..n).collect();
            let (sched, refs, range) = setup(rank, n, &pattern);
            let owned: Vec<f64> = range.clone().map(|g| g as f64).collect();
            let mut x = DistArray::new(owned, sched.ghost_len());
            gather(rank, &sched, &mut x);
            refs.iter().map(|&r| x[r]).collect::<Vec<f64>>()
        });
        for vals in &out.results {
            let expected: Vec<f64> = (0..n).map(|g| g as f64).collect();
            assert_eq!(vals, &expected);
        }
    }

    #[test]
    fn gather_reports_schedule_message_counts() {
        let n = 32;
        let out = run(MachineConfig::new(4), move |rank| {
            let pattern: Vec<usize> = (0..n).map(|i| (i * 3 + 1) % n).collect();
            let (sched, _refs, range) = setup(rank, n, &pattern);
            let mut x = DistArray::new(vec![0.0f64; range.len()], sched.ghost_len());
            let stats = gather(rank, &sched, &mut x);
            (
                stats,
                sched.send_message_count(),
                sched.total_send(),
                sched.total_fetch(),
            )
        });
        for (stats, msg_count, total_send, total_fetch) in &out.results {
            assert_eq!(stats.msgs_sent as usize, *msg_count);
            assert_eq!(stats.bytes_sent as usize, total_send * 8);
            assert_eq!(stats.bytes_received as usize, total_fetch * 8);
        }
    }

    #[test]
    fn gather_scatter_round_trip_preserves_values() {
        let n = 24;
        let out = run(MachineConfig::new(3), move |rank| {
            let pattern: Vec<usize> = (0..n).map(|i| (i * 5 + 2) % n).collect();
            let (sched, _refs, range) = setup(rank, n, &pattern);
            let owned: Vec<f64> = range.clone().map(|g| (g * g) as f64).collect();
            let mut x = DistArray::new(owned.clone(), sched.ghost_len());
            gather(rank, &sched, &mut x);
            // Scatter straight back without modification: owned values must be unchanged.
            scatter(rank, &sched, &mut x);
            (x.owned().to_vec(), owned)
        });
        for (after, before) in &out.results {
            assert_eq!(after, before);
        }
    }

    #[test]
    fn scatter_add_accumulates_remote_contributions() {
        // Global reduction x[g] += 1 executed once per rank for every g:
        // final x[g] = initial + nprocs.
        let n = 12;
        let nprocs = 4;
        let out = run(MachineConfig::new(nprocs), move |rank| {
            let pattern: Vec<usize> = (0..n).collect();
            let (sched, refs, range) = setup(rank, n, &pattern);
            let owned: Vec<f64> = vec![10.0; range.len()];
            let mut x = DistArray::new(owned, sched.ghost_len());
            // Each rank adds 1.0 to every element through its local reference (ghost for
            // off-processor elements), then scatter_add folds the ghosts back.
            for &r in &refs {
                x[r] += 1.0;
            }
            scatter_add(rank, &sched, &mut x);
            x.owned().to_vec()
        });
        for owned in &out.results {
            assert!(owned
                .iter()
                .all(|&v| (v - (10.0 + nprocs as f64)).abs() < 1e-12));
        }
    }

    #[test]
    fn scatter_op_with_max_combiner() {
        let n = 8;
        let out = run(MachineConfig::new(2), move |rank| {
            let pattern: Vec<usize> = (0..n).collect();
            let (sched, refs, range) = setup(rank, n, &pattern);
            let mut x = DistArray::new(vec![0.0f64; range.len()], sched.ghost_len());
            // Rank r proposes value (g + 100*r) for element g; the max should win.
            for (k, &r) in refs.iter().enumerate() {
                x[r] = k as f64 + 100.0 * rank.rank() as f64;
            }
            scatter_op(rank, &sched, &mut x, |owner, incoming: f64| {
                if incoming > *owner {
                    *owner = incoming;
                }
            });
            x.owned().to_vec()
        });
        // The max proposal for element g is g + 100 (from rank 1).
        for (p, owned) in out.results.iter().enumerate() {
            let dist = BlockDist::new(n, 2);
            for (l, v) in owned.iter().enumerate() {
                let g = dist.global_index(p, l);
                assert_eq!(*v, g as f64 + 100.0);
            }
        }
    }

    #[test]
    fn scatter_append_conserves_items_and_routes_them() {
        let out = run(MachineConfig::new(4), |rank| {
            let me = rank.rank();
            // 10 items per rank; item k is destined for processor k % 4 and carries the
            // value 1000*me + k.
            let items: Vec<u64> = (0..10).map(|k| (1000 * me + k) as u64).collect();
            let dests: Vec<usize> = (0..10).map(|k| k % 4).collect();
            let sched = LightweightSchedule::build(rank, &dests);

            scatter_append(rank, &sched, &items)
        });
        // Collect everything and check the multiset is conserved and routed correctly.
        let mut all: Vec<u64> = out.results.iter().flatten().copied().collect();
        all.sort_unstable();
        let mut expected: Vec<u64> = (0..4)
            .flat_map(|me| (0..10).map(move |k| (1000 * me + k) as u64))
            .collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
        for (p, items) in out.results.iter().enumerate() {
            // Every item k on processor p must satisfy k % 4 == p.
            assert!(items.iter().all(|&v| (v % 1000) as usize % 4 == p));
            // 4 ranks each send/keep either 2 or 3 items for p: total 10 or 12.
            assert_eq!(items.len(), out.results[p].len());
        }
    }

    #[test]
    fn scatter_append_orders_kept_items_first_then_sources_by_rank() {
        let out = run(MachineConfig::new(3), |rank| {
            let me = rank.rank();
            // Every rank sends one item to every rank (including itself).
            let items: Vec<u64> = (0..3).map(|k| (100 * me + k) as u64).collect();
            let dests: Vec<usize> = (0..3).collect();
            let sched = LightweightSchedule::build(rank, &dests);
            scatter_append(rank, &sched, &items)
        });
        for (p, got) in out.results.iter().enumerate() {
            // Kept item first, then contributions in source rank order.
            let mut expected: Vec<u64> = vec![(100 * p + p) as u64];
            expected.extend(
                (0..3usize)
                    .filter(|&src| src != p)
                    .map(|src| (100 * src + p) as u64),
            );
            assert_eq!(got, &expected, "deterministic order on rank {p}");
        }
    }

    #[test]
    fn lightweight_schedule_is_cheaper_to_build_than_a_regular_schedule() {
        // The mechanism behind Table 4: regenerating a light-weight schedule every time
        // step costs only an exchange of counts, whereas a regular schedule must ship one
        // index per off-processor reference (plus the hashing/translation work).
        let out = run(MachineConfig::new(4), |rank| {
            let me = rank.rank();
            // 64 references per rank, four-way spread — the same pattern for both paths.
            let dests: Vec<usize> = (0..64).map(|k| (k / 16 + me) % 4).collect();
            let before = rank.stats().bytes_sent;
            let lw = LightweightSchedule::build(rank, &dests);
            let lw_build_bytes = rank.stats().bytes_sent - before;

            let n = 256;
            let dist = BlockDist::new(n, rank.nprocs());
            let ttable = TranslationTable::from_regular(&dist);
            let mut insp = Inspector::new(&ttable, rank.rank());
            let pattern: Vec<usize> = (0..64).map(|k| (me * 64 + k + 16) % n).collect();
            let before = rank.stats().bytes_sent;
            insp.hash_indices(rank, &pattern, Stamp::new(0));
            let sched = insp.build_schedule(rank, StampQuery::single(Stamp::new(0)));
            let regular_build_bytes = rank.stats().bytes_sent - before;
            (
                lw_build_bytes,
                regular_build_bytes,
                lw.result_count(),
                sched.total_fetch(),
            )
        });
        for (lw, regular, result_count, fetch) in &out.results {
            assert!(
                lw * 2 <= *regular,
                "light-weight schedule build should be much cheaper ({lw} vs {regular} bytes)"
            );
            assert_eq!(*result_count, 64);
            assert!(*fetch > 0);
        }
    }

    #[test]
    fn gather_multi_matches_three_single_gathers_with_a_third_of_the_messages() {
        let n = 32;
        let out = run(MachineConfig::new(4), move |rank| {
            let pattern: Vec<usize> = (0..n).map(|i| (i * 3 + 1) % n).collect();
            let (sched, _refs, range) = setup(rank, n, &pattern);
            let make = |scale: f64| -> DistArray<f64> {
                let owned: Vec<f64> = range.clone().map(|g| g as f64 * scale).collect();
                DistArray::new(owned, sched.ghost_len())
            };
            // Reference: three blocking single-array gathers.
            let (mut x1, mut y1, mut z1) = (make(1.0), make(0.5), make(-2.0));
            let s = gather(rank, &sched, &mut x1)
                .merged(&gather(rank, &sched, &mut y1))
                .merged(&gather(rank, &sched, &mut z1));
            // Fused: one gather_multi over the same values.
            let (mut x2, mut y2, mut z2) = (make(1.0), make(0.5), make(-2.0));
            let m = gather_multi(rank, &sched, [&mut x2, &mut y2, &mut z2]);
            assert_eq!(x1.ghost(), x2.ghost());
            assert_eq!(y1.ghost(), y2.ghost());
            assert_eq!(z1.ghost(), z2.ghost());
            (s, m, sched.send_message_count())
        });
        for (single, multi, sched_msgs) in &out.results {
            assert_eq!(
                multi.bytes_sent, single.bytes_sent,
                "same bytes on the wire"
            );
            assert_eq!(multi.bytes_received, single.bytes_received);
            assert_eq!(
                multi.msgs_sent as usize, *sched_msgs,
                "one message per pair"
            );
            assert_eq!(single.msgs_sent, 3 * multi.msgs_sent, "3x message drop");
        }
    }

    #[test]
    fn scatter_add_multi_matches_three_single_scatters() {
        let n = 24;
        let out = run(MachineConfig::new(3), move |rank| {
            let pattern: Vec<usize> = (0..n).collect();
            let (sched, refs, range) = setup(rank, n, &pattern);
            let seed = |bias: f64| -> DistArray<f64> {
                let mut a = DistArray::new(vec![bias; range.len()], sched.ghost_len());
                for (k, &r) in refs.iter().enumerate() {
                    a[r] += k as f64 + bias;
                }
                a
            };
            let (mut x1, mut y1, mut z1) = (seed(1.0), seed(2.0), seed(3.0));
            let s = scatter_add(rank, &sched, &mut x1)
                .merged(&scatter_add(rank, &sched, &mut y1))
                .merged(&scatter_add(rank, &sched, &mut z1));
            let (mut x2, mut y2, mut z2) = (seed(1.0), seed(2.0), seed(3.0));
            let m = scatter_add_multi(rank, &sched, [&mut x2, &mut y2, &mut z2]);
            assert_eq!(x1.owned(), x2.owned());
            assert_eq!(y1.owned(), y2.owned());
            assert_eq!(z1.owned(), z2.owned());
            (s, m)
        });
        for (single, multi) in &out.results {
            assert_eq!(multi.bytes_sent, single.bytes_sent);
            assert_eq!(single.msgs_sent, 3 * multi.msgs_sent);
        }
    }

    #[test]
    fn split_phase_gather_matches_blocking_with_compute_in_flight() {
        let n = 30;
        let out = run(MachineConfig::new(3), move |rank| {
            let pattern: Vec<usize> = (0..n).map(|i| (i * 7 + 2) % n).collect();
            let (sched, _refs, range) = setup(rank, n, &pattern);
            let owned: Vec<f64> = range.clone().map(|g| (g * g) as f64).collect();
            let mut blocking = DistArray::new(owned.clone(), sched.ghost_len());
            let b = gather(rank, &sched, &mut blocking);
            let mut split = DistArray::new(owned, sched.ghost_len());
            let handle = gather_start(rank, &sched, [&split]);
            rank.charge_compute(42.0); // the force loop that overlaps the exchange
            let s = gather_finish(rank, handle, &sched, [&mut split]);
            assert_eq!(blocking.ghost(), split.ghost(), "byte-identical ghosts");
            (b, s)
        });
        for (blocking, split) in &out.results {
            assert_eq!(blocking, split, "identical exchange stats");
        }
    }

    #[test]
    fn split_phase_append_matches_blocking() {
        let out = run(MachineConfig::new(4), |rank| {
            let me = rank.rank();
            let items: Vec<u64> = (0..12).map(|k| (1000 * me + k) as u64).collect();
            let dests: Vec<usize> = (0..12).map(|k| (k + me) % 4).collect();
            let sched = LightweightSchedule::build(rank, &dests);
            let blocking = scatter_append(rank, &sched, &items);
            let handle = scatter_append_start(rank, &sched, &items);
            rank.charge_compute(5.0); // re-binning survivors while migrants fly
            let split = scatter_append_finish(rank, &sched, handle);
            assert_eq!(blocking, split, "deterministic order preserved");
            blocking
        });
        let mut all: Vec<u64> = out.results.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all.len(), 4 * 12, "items conserved");
    }

    #[test]
    fn empty_schedule_moves_nothing() {
        let out = run(MachineConfig::new(3), |rank| {
            let sched = CommSchedule::empty(rank.nprocs());
            let mut x: DistArray<f64> = DistArray::new(vec![1.0, 2.0], 0);
            let before = rank.stats().msgs_sent;
            let g = gather(rank, &sched, &mut x);
            let s = scatter_add(rank, &sched, &mut x);
            (
                rank.stats().msgs_sent - before,
                x.owned().to_vec(),
                g.merged(&s),
            )
        });
        for (msgs, owned, stats) in &out.results {
            assert_eq!(*msgs, 0);
            assert_eq!(owned, &vec![1.0, 2.0]);
            assert_eq!(*stats, ExchangeStats::default());
        }
    }
}
