//! Lowering: turn the parsed program into per-loop inspector/executor plans.
//!
//! This is the compile-time half of §5.3: for every `FORALL` the compiler decides
//!
//! * whether the loop is a general irregular reduction loop (lowered to the
//!   hash/schedule/gather/execute/scatter_add sequence) or a `REDUCE(APPEND, …)` data
//!   movement (lowered to light-weight-schedule `scatter_append` calls);
//! * which arrays must be gathered before the loop body runs and which reduction targets
//!   must be scattered back afterwards;
//! * which integer (indirection) arrays the loop's communication schedule depends on, so
//!   the generated code can reuse the schedule until one of them is modified (§5.3.1).

use std::collections::HashMap;

use crate::ast::{ArrayRef, Cond, DistSpec, Expr, Program, ReduceOp, Stmt};

/// What kind of code a `FORALL` lowers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoopKind {
    /// Inspector/executor irregular loop: gather, compute with local references,
    /// scatter-add the reduction targets.
    SumReduction,
    /// Unordered append: light-weight schedule + `scatter_append` into per-element
    /// buckets of the named target array.
    AppendReduction {
        /// The bucket array receiving appended values.
        target: String,
    },
    /// A FORALL whose body only assigns to replicated integer arrays (a DSMC-style
    /// indirection update such as `icell(i) = icell(i) + 1`).  Runs the full iteration
    /// range redundantly on every rank — no communication — and invalidates every
    /// schedule depending on the modified arrays.
    IntegerUpdate {
        /// Integer arrays written by the loop.
        modified: Vec<String>,
    },
}

/// The lowered form of one top-level `FORALL`.
#[derive(Debug, Clone)]
pub struct LoopPlan {
    /// Index of this loop among the program's executable steps.
    pub loop_id: usize,
    /// Loop classification.
    pub kind: LoopKind,
    /// The original loop statement (the interpreter evaluates its body directly; a real
    /// compiler would emit node code — the set of runtime calls is the same).
    pub forall: Stmt,
    /// Real arrays read inside the loop (must be gathered before execution).
    pub gathered_arrays: Vec<String>,
    /// Real arrays that are `REDUCE(SUM)` targets (scatter-added after execution).
    pub sum_targets: Vec<String>,
    /// Real arrays assigned directly (subscript = loop variable; always local writes).
    pub assigned_arrays: Vec<String>,
    /// Integer arrays appearing in subscripts or bounds: the loop's schedule is valid
    /// until one of these is modified or the decomposition is redistributed.
    pub indirection_arrays: Vec<String>,
    /// The decomposition the loop's iterations are aligned with (empty for
    /// [`LoopKind::IntegerUpdate`] loops, which touch no distributed data).
    pub decomp: String,
}

impl LoopPlan {
    /// 1-based source line of the loop's `FORALL` keyword.
    pub fn line(&self) -> usize {
        match &self.forall {
            Stmt::Forall { line, .. } | Stmt::Do { line, .. } => *line,
            _ => 0,
        }
    }
}

/// A group of [`LoopKind::SumReduction`] loops sharing one communication schedule —
/// the unit the optimizer's fusion analysis produces and the interpreter's fused
/// executor consumes.  Every member hashes its references into one index table under
/// its own stamp; the group's schedule covers the union and its gathers/scatters move
/// all member arrays in one fused exchange per direction.
#[derive(Debug, Clone)]
pub struct ScheduleGroup {
    /// Index of this group in [`LoweredProgram::groups`].
    pub id: usize,
    /// The shared decomposition (all members iterate over it).
    pub decomp: String,
    /// Member loops, in program order.  Each member's index in this list is also its
    /// stamp in the group's index table.
    pub loop_ids: Vec<usize>,
    /// Union of the members' gathered arrays, sorted (the fused gather's lane order).
    pub gathered: Vec<String>,
    /// Union of the members' `REDUCE(SUM)` targets, sorted (the fused scatter's lanes).
    pub targets: Vec<String>,
    /// Union of the members' directly-assigned real arrays (local writes; no lanes).
    pub assigned: Vec<String>,
    /// Per-member schedule dependence sets: `deps[m]` are the indirection arrays member
    /// `m`'s references are computed from.  A write to one of them invalidates only
    /// member `m`'s stamp (a patch), not the whole table.
    pub deps: Vec<Vec<String>>,
    /// Source line of the first member (for diagnostics).
    pub line: usize,
}

impl ScheduleGroup {
    /// Union of all members' dependence sets.
    pub fn all_deps(&self) -> Vec<String> {
        let mut v: Vec<String> = Vec::new();
        for d in &self.deps {
            for a in d {
                if !v.iter().any(|x| x == a) {
                    v.push(a.clone());
                }
            }
        }
        v
    }
}

/// One executable step of the lowered program, in source order.
#[derive(Debug, Clone)]
pub enum ExecStep {
    /// Apply a `DISTRIBUTE` directive (possibly an irregular remap through a map array).
    Distribute {
        /// Decomposition being (re)distributed.
        decomp: String,
        /// New distribution.
        spec: DistSpec,
    },
    /// Execute the `FORALL` with the given [`LoopPlan::loop_id`].
    Loop(usize),
    /// A statement-level `IF` block: execute `then_steps` when the condition holds,
    /// `else_steps` otherwise.
    If {
        /// The branch condition (may reference `MYRANK` / `NPROCS`).
        cond: Cond,
        /// Whether the condition mentions `MYRANK` — i.e. different ranks may take
        /// different branches.  Cached here so the collective-matching analysis
        /// ([`crate::analysis`]) and the interpreter agree on one definition.
        rank_dependent: bool,
        /// Steps of the THEN branch.
        then_steps: Vec<ExecStep>,
        /// Steps of the ELSE branch.
        else_steps: Vec<ExecStep>,
    },
    /// A sequential `DO` time loop: run `body` once per iteration, in order.  The loop
    /// variable is a pure step counter (the body cannot reference it), so the body is
    /// the same program every iteration — which is what makes hoisting sound.
    TimeLoop {
        /// Loop variable name (diagnostics only).
        var: String,
        /// Lower bound (inclusive).
        lo: Expr,
        /// Upper bound (inclusive).
        hi: Expr,
        /// Steps of one iteration.
        body: Vec<ExecStep>,
        /// Source line of the `DO` keyword.
        line: usize,
    },
    /// **Optimizer-emitted.** Build (or revalidate) the communication schedule of
    /// [`LoweredProgram::groups`]`[group]`: full inspector on first touch or after a
    /// redistribution, stamp-guarded per-member patches when only some dependence sets
    /// changed, a cache hit when nothing did.  Hoisted out of time loops when the
    /// dependence sets are loop-invariant.
    BuildSchedule {
        /// Index into [`LoweredProgram::groups`].
        group: usize,
    },
    /// **Optimizer-emitted.** Execute the member loops of a schedule group as one fused
    /// unit: one `gather_multi` over all gathered lanes, the member bodies in program
    /// order, one `scatter_add_multi` over all target lanes.  Requires the group's
    /// [`ExecStep::BuildSchedule`] to have executed since the last redistribution.
    FusedLoop {
        /// Index into [`LoweredProgram::groups`].
        group: usize,
        /// Independent steps the overlap analysis slid between the gather's start and
        /// finish (integer-update loops that touch none of the group's dependences).
        overlapped: Vec<ExecStep>,
        /// When set, the gather was already started by a preceding
        /// [`ExecStep::GatherStart`] — only finish it here.
        early_gather: bool,
    },
    /// **Optimizer-emitted.** Start the fused gather of a schedule group split-phase,
    /// so the exchange is in flight while the steps between here and the matching
    /// [`ExecStep::FusedLoop`] (`early_gather = true`) compute.
    GatherStart {
        /// Index into [`LoweredProgram::groups`].
        group: usize,
    },
}

/// Everything the runtime needs to execute the program.
#[derive(Debug, Clone)]
pub struct LoweredProgram {
    /// Real (distributed) arrays: name → (size, decomposition).
    pub real_arrays: HashMap<String, (usize, String)>,
    /// Integer (replicated) arrays: name → size.
    pub integer_arrays: HashMap<String, usize>,
    /// Decompositions: name → size.
    pub decomps: HashMap<String, usize>,
    /// Lowered loops, indexed by `loop_id`.
    pub loops: Vec<LoopPlan>,
    /// Executable steps in source order.
    pub steps: Vec<ExecStep>,
    /// Schedule groups created by the optimizer ([`crate::opt`]); empty in the naive
    /// lowering.
    pub groups: Vec<ScheduleGroup>,
}

impl LoweredProgram {
    /// Find a loop plan by id.
    pub fn loop_plan(&self, loop_id: usize) -> &LoopPlan {
        &self.loops[loop_id]
    }
}

/// Lower a parsed program.  Reports unsupported constructs as errors naming the construct.
pub fn lower(program: &Program) -> Result<LoweredProgram, String> {
    let mut real_arrays: HashMap<String, (usize, String)> = HashMap::new();
    let mut integer_arrays: HashMap<String, usize> = HashMap::new();
    let mut decomps: HashMap<String, usize> = HashMap::new();
    let mut pending_reals: HashMap<String, usize> = HashMap::new();
    let mut loops = Vec::new();
    let mut steps = Vec::new();

    for stmt in &program.stmts {
        match stmt {
            Stmt::RealDecl { arrays } => {
                for (name, size) in arrays {
                    pending_reals.insert(name.clone(), *size);
                }
            }
            Stmt::IntegerDecl { arrays } => {
                for (name, size) in arrays {
                    integer_arrays.insert(name.clone(), *size);
                }
            }
            Stmt::Decomposition { name, size } => {
                decomps.insert(name.clone(), *size);
            }
            Stmt::Align { arrays, decomp } => {
                let dsize = *decomps
                    .get(decomp)
                    .ok_or_else(|| format!("ALIGN references unknown decomposition {decomp}"))?;
                for a in arrays {
                    let size = pending_reals
                        .get(a)
                        .copied()
                        .or_else(|| real_arrays.get(a).map(|(s, _)| *s));
                    let size =
                        size.ok_or_else(|| format!("ALIGN references undeclared array {a}"))?;
                    if size != dsize {
                        return Err(format!(
                            "array {a} has {size} elements but decomposition {decomp} has {dsize}"
                        ));
                    }
                    real_arrays.insert(a.clone(), (size, decomp.clone()));
                }
            }
            Stmt::Distribute { decomp, spec } => {
                steps.push(lower_distribute(decomp, spec, &decomps, &integer_arrays)?);
            }
            Stmt::Forall { .. } => {
                let loop_id = loops.len();
                let plan = lower_forall(loop_id, stmt, &real_arrays, &integer_arrays, &decomps)?;
                loops.push(plan);
                steps.push(ExecStep::Loop(loop_id));
            }
            Stmt::If { .. } => {
                steps.push(lower_if(
                    stmt,
                    &real_arrays,
                    &integer_arrays,
                    &decomps,
                    &mut loops,
                )?);
            }
            Stmt::Do { .. } => {
                steps.push(lower_do(
                    stmt,
                    &real_arrays,
                    &integer_arrays,
                    &decomps,
                    &mut loops,
                )?);
            }
            Stmt::Reduce { .. } | Stmt::Assign { .. } => {
                return Err("REDUCE/assignment statements are only supported inside FORALL".into())
            }
        }
    }

    Ok(LoweredProgram {
        real_arrays,
        integer_arrays,
        decomps,
        loops,
        steps,
        groups: Vec::new(),
    })
}

/// Validate one `DISTRIBUTE` directive and lower it to a step.
fn lower_distribute(
    decomp: &str,
    spec: &DistSpec,
    decomps: &HashMap<String, usize>,
    integer_arrays: &HashMap<String, usize>,
) -> Result<ExecStep, String> {
    if !decomps.contains_key(decomp) {
        return Err(format!(
            "DISTRIBUTE references unknown decomposition {decomp}"
        ));
    }
    if let DistSpec::Map(map) = spec {
        if !integer_arrays.contains_key(map) {
            return Err(format!(
                "DISTRIBUTE({map}) references an undeclared map array"
            ));
        }
    }
    Ok(ExecStep::Distribute {
        decomp: decomp.to_string(),
        spec: spec.clone(),
    })
}

/// Lower an `IF` block.  Branches may hold only executable statements — DISTRIBUTE,
/// FORALL and nested IF — since declarations under a condition would leave the program's
/// shape rank-dependent.
fn lower_if(
    stmt: &Stmt,
    real_arrays: &HashMap<String, (usize, String)>,
    integer_arrays: &HashMap<String, usize>,
    decomps: &HashMap<String, usize>,
    loops: &mut Vec<LoopPlan>,
) -> Result<ExecStep, String> {
    let Stmt::If {
        cond,
        then_branch,
        else_branch,
    } = stmt
    else {
        unreachable!("lower_if called on a non-IF statement")
    };
    let then_steps = lower_branch(then_branch, real_arrays, integer_arrays, decomps, loops)?;
    let else_steps = lower_branch(else_branch, real_arrays, integer_arrays, decomps, loops)?;
    Ok(ExecStep::If {
        cond: cond.clone(),
        rank_dependent: cond.is_rank_dependent(),
        then_steps,
        else_steps,
    })
}

/// Lower the statements of one IF branch or DO body (executable statements only).
fn lower_branch(
    stmts: &[Stmt],
    real_arrays: &HashMap<String, (usize, String)>,
    integer_arrays: &HashMap<String, usize>,
    decomps: &HashMap<String, usize>,
    loops: &mut Vec<LoopPlan>,
) -> Result<Vec<ExecStep>, String> {
    let mut steps = Vec::new();
    for stmt in stmts {
        match stmt {
            Stmt::Distribute { decomp, spec } => {
                steps.push(lower_distribute(decomp, spec, decomps, integer_arrays)?);
            }
            Stmt::Forall { .. } => {
                let loop_id = loops.len();
                let plan = lower_forall(loop_id, stmt, real_arrays, integer_arrays, decomps)?;
                loops.push(plan);
                steps.push(ExecStep::Loop(loop_id));
            }
            Stmt::If { .. } => {
                steps.push(lower_if(stmt, real_arrays, integer_arrays, decomps, loops)?);
            }
            Stmt::Do { .. } => {
                steps.push(lower_do(stmt, real_arrays, integer_arrays, decomps, loops)?);
            }
            other => {
                return Err(format!(
                    "only DISTRIBUTE, FORALL, DO and nested IF are allowed inside IF branches \
                     and DO bodies, found {other:?}"
                ))
            }
        }
    }
    Ok(steps)
}

/// Lower a `DO` time loop to an [`ExecStep::TimeLoop`].
///
/// The loop variable must not be referenced in the body: the body is then the same
/// program on every iteration, which is the premise of the optimizer's hoisting
/// analysis (and of calling it a *time* loop at all).
fn lower_do(
    stmt: &Stmt,
    real_arrays: &HashMap<String, (usize, String)>,
    integer_arrays: &HashMap<String, usize>,
    decomps: &HashMap<String, usize>,
    loops: &mut Vec<LoopPlan>,
) -> Result<ExecStep, String> {
    let Stmt::Do {
        var,
        lo,
        hi,
        body,
        line,
    } = stmt
    else {
        unreachable!("lower_do called on a non-DO statement")
    };
    for s in body {
        if stmt_references_var(s, var) {
            return Err(format!(
                "DO variable {var} is referenced inside the loop body; the DO loop is a \
                 step counter only (use FORALL for data-parallel iteration)"
            ));
        }
    }
    for bound in [lo, hi] {
        let mut refs = Vec::new();
        bound.referenced_arrays(&mut refs);
        if refs.iter().any(|a| real_arrays.contains_key(a)) {
            return Err("DO bounds may not reference distributed arrays".to_string());
        }
    }
    let body_steps = lower_branch(body, real_arrays, integer_arrays, decomps, loops)?;
    Ok(ExecStep::TimeLoop {
        var: var.clone(),
        lo: lo.clone(),
        hi: hi.clone(),
        body: body_steps,
        line: *line,
    })
}

/// Whether `stmt` references the variable `var` anywhere, respecting rebinding: a
/// nested FORALL/DO introducing the same name shadows it.
fn stmt_references_var(stmt: &Stmt, var: &str) -> bool {
    fn expr_refs(e: &Expr, var: &str) -> bool {
        match e {
            Expr::Int(_) | Expr::Real(_) => false,
            Expr::Var(v) => v == var,
            Expr::Element(r) => expr_refs(&r.index, var),
            Expr::Binary(_, a, b) => expr_refs(a, var) || expr_refs(b, var),
        }
    }
    match stmt {
        Stmt::RealDecl { .. }
        | Stmt::IntegerDecl { .. }
        | Stmt::Decomposition { .. }
        | Stmt::Distribute { .. }
        | Stmt::Align { .. } => false,
        Stmt::Forall {
            var: v,
            lo,
            hi,
            body,
            ..
        }
        | Stmt::Do {
            var: v,
            lo,
            hi,
            body,
            ..
        } => {
            if expr_refs(lo, var) || expr_refs(hi, var) {
                return true;
            }
            // The inner loop rebinding the same name shadows the outer variable.
            v != var && body.iter().any(|s| stmt_references_var(s, var))
        }
        Stmt::Reduce { target, value, .. } => {
            expr_refs(&target.index, var) || expr_refs(value, var)
        }
        Stmt::Assign { target, value } => expr_refs(&target.index, var) || expr_refs(value, var),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            expr_refs(&cond.lhs, var)
                || expr_refs(&cond.rhs, var)
                || then_branch.iter().any(|s| stmt_references_var(s, var))
                || else_branch.iter().any(|s| stmt_references_var(s, var))
        }
    }
}

/// Classify one top-level FORALL and collect its array usage.
fn lower_forall(
    loop_id: usize,
    forall: &Stmt,
    real_arrays: &HashMap<String, (usize, String)>,
    integer_arrays: &HashMap<String, usize>,
    decomps: &HashMap<String, usize>,
) -> Result<LoopPlan, String> {
    let Stmt::Forall { lo, hi, body, .. } = forall else {
        unreachable!("lower_forall called on a non-FORALL statement")
    };

    // A body consisting solely of assignments to integer arrays is a replicated
    // indirection update (DSMC re-binning its cell map): no distributed data, no
    // communication, every rank runs the full range redundantly.
    if !body.is_empty()
        && body.iter().all(|s| {
            matches!(s, Stmt::Assign { target, .. } if integer_arrays.contains_key(&target.array))
        })
    {
        return lower_integer_update(loop_id, forall, real_arrays, integer_arrays);
    }

    let mut usage = Usage::default();
    collect_body(body, real_arrays, integer_arrays, &mut usage)?;

    // Which decomposition do the iterations align with?  If the loop extent matches a
    // referenced decomposition's size, iterate owner-computes over it; otherwise fall back
    // to the decomposition of the first referenced distributed array.
    let extent = const_extent(lo, hi);
    let mut decomp: Option<String> = None;
    if let Some(extent) = extent {
        for (name, size) in decomps {
            let referenced = usage
                .all_real()
                .iter()
                .any(|a| real_arrays.get(a).is_some_and(|(_, d)| d == name));
            if *size == extent && referenced {
                decomp = Some(name.clone());
                break;
            }
        }
    }
    let decomp = decomp
        .or_else(|| {
            usage
                .all_real()
                .first()
                .and_then(|a| real_arrays.get(a).map(|(_, d)| d.clone()))
        })
        .ok_or_else(|| format!("FORALL #{loop_id} references no distributed arrays"))?;

    // Classification: exactly one APPEND → append loop; any APPEND mixed with SUM → error.
    let kind = if usage.append_targets.is_empty() {
        LoopKind::SumReduction
    } else if usage.append_targets.len() == 1 && usage.sum_targets.is_empty() {
        LoopKind::AppendReduction {
            target: usage.append_targets[0].clone(),
        }
    } else {
        return Err(format!(
            "FORALL #{loop_id}: REDUCE(APPEND) cannot be mixed with other reductions"
        ));
    };

    // An array that is both gathered and a SUM target would need a private contribution
    // buffer; the subset forbids it (the paper's templates never need it).
    for t in &usage.sum_targets {
        if usage.gathered.contains(t) {
            return Err(format!(
                "FORALL #{loop_id}: array {t} is both read and a REDUCE(SUM) target; \
                 not supported by this prototype"
            ));
        }
    }

    Ok(LoopPlan {
        loop_id,
        kind,
        forall: forall.clone(),
        gathered_arrays: usage.gathered,
        sum_targets: usage.sum_targets,
        assigned_arrays: usage.assigned,
        indirection_arrays: usage.indirection,
        decomp,
    })
}

/// Lower a FORALL whose body only assigns to replicated integer arrays.
fn lower_integer_update(
    loop_id: usize,
    forall: &Stmt,
    real_arrays: &HashMap<String, (usize, String)>,
    integer_arrays: &HashMap<String, usize>,
) -> Result<LoopPlan, String> {
    let Stmt::Forall { lo, hi, body, .. } = forall else {
        unreachable!("lower_integer_update called on a non-FORALL statement")
    };
    let mut usage = Usage::default();
    collect_index_expr(lo, real_arrays, integer_arrays, &mut usage)?;
    collect_index_expr(hi, real_arrays, integer_arrays, &mut usage)?;
    let mut modified = Vec::new();
    for s in body {
        let Stmt::Assign { target, value } = s else {
            unreachable!("integer-update bodies contain only assignments")
        };
        if !matches!(target.index.as_ref(), Expr::Var(_)) {
            return Err(format!(
                "integer update to {}(non-loop-variable subscript) is not supported",
                target.array
            ));
        }
        push_unique(&mut modified, &target.array);
        // RHS of an integer update is an index-class expression: integer arrays, loop
        // variables and constants only — never distributed data.
        collect_index_expr(value, real_arrays, integer_arrays, &mut usage)?;
    }
    Ok(LoopPlan {
        loop_id,
        kind: LoopKind::IntegerUpdate { modified },
        forall: forall.clone(),
        gathered_arrays: Vec::new(),
        sum_targets: Vec::new(),
        assigned_arrays: Vec::new(),
        indirection_arrays: usage.indirection,
        decomp: String::new(),
    })
}

#[derive(Default)]
struct Usage {
    gathered: Vec<String>,
    sum_targets: Vec<String>,
    append_targets: Vec<String>,
    assigned: Vec<String>,
    indirection: Vec<String>,
}

impl Usage {
    fn all_real(&self) -> Vec<String> {
        let mut v = self.gathered.clone();
        v.extend(self.sum_targets.clone());
        v.extend(self.append_targets.clone());
        v.extend(self.assigned.clone());
        v
    }
}

fn push_unique(v: &mut Vec<String>, name: &str) {
    if !v.iter().any(|x| x == name) {
        v.push(name.to_string());
    }
}

fn collect_body(
    body: &[Stmt],
    real_arrays: &HashMap<String, (usize, String)>,
    integer_arrays: &HashMap<String, usize>,
    usage: &mut Usage,
) -> Result<(), String> {
    for stmt in body {
        match stmt {
            Stmt::Forall { lo, hi, body, .. } => {
                collect_index_expr(lo, real_arrays, integer_arrays, usage)?;
                collect_index_expr(hi, real_arrays, integer_arrays, usage)?;
                collect_body(body, real_arrays, integer_arrays, usage)?;
            }
            Stmt::Reduce { op, target, value } => {
                collect_index_expr(&target.index, real_arrays, integer_arrays, usage)?;
                collect_value_expr(value, real_arrays, integer_arrays, usage)?;
                match op {
                    ReduceOp::Sum => {
                        ensure_real(&target.array, real_arrays)?;
                        push_unique(&mut usage.sum_targets, &target.array);
                    }
                    ReduceOp::Append => {
                        ensure_real(&target.array, real_arrays)?;
                        push_unique(&mut usage.append_targets, &target.array);
                    }
                }
            }
            Stmt::Assign { target, value } => {
                ensure_real(&target.array, real_arrays)?;
                if !matches!(target.index.as_ref(), Expr::Var(_)) {
                    return Err(format!(
                        "assignment to {}(non-loop-variable subscript) is not supported; \
                         use REDUCE for indirect writes",
                        target.array
                    ));
                }
                push_unique(&mut usage.assigned, &target.array);
                collect_value_expr(value, real_arrays, integer_arrays, usage)?;
            }
            other => {
                return Err(format!(
                    "statement {other:?} is not allowed inside a FORALL body"
                ))
            }
        }
    }
    Ok(())
}

fn ensure_real(name: &str, real_arrays: &HashMap<String, (usize, String)>) -> Result<(), String> {
    if real_arrays.contains_key(name) {
        Ok(())
    } else {
        Err(format!(
            "array {name} is used like a distributed array but was never ALIGNed"
        ))
    }
}

/// Subscript/bound expressions may reference only integer arrays, loop variables and
/// constants (this is what lets the inspector evaluate the access pattern without touching
/// distributed data).
fn collect_index_expr(
    expr: &Expr,
    real_arrays: &HashMap<String, (usize, String)>,
    integer_arrays: &HashMap<String, usize>,
    usage: &mut Usage,
) -> Result<(), String> {
    match expr {
        Expr::Int(_) | Expr::Real(_) | Expr::Var(_) => Ok(()),
        Expr::Element(ArrayRef { array, index }) => {
            if real_arrays.contains_key(array) {
                return Err(format!(
                    "distributed array {array} cannot appear in a subscript or loop bound"
                ));
            }
            if !integer_arrays.contains_key(array) {
                return Err(format!("undeclared integer array {array} in subscript"));
            }
            push_unique(&mut usage.indirection, array);
            collect_index_expr(index, real_arrays, integer_arrays, usage)
        }
        Expr::Binary(_, a, b) => {
            collect_index_expr(a, real_arrays, integer_arrays, usage)?;
            collect_index_expr(b, real_arrays, integer_arrays, usage)
        }
    }
}

/// Value expressions may read real arrays (gathered), integer arrays and loop variables.
fn collect_value_expr(
    expr: &Expr,
    real_arrays: &HashMap<String, (usize, String)>,
    integer_arrays: &HashMap<String, usize>,
    usage: &mut Usage,
) -> Result<(), String> {
    match expr {
        Expr::Int(_) | Expr::Real(_) | Expr::Var(_) => Ok(()),
        Expr::Element(ArrayRef { array, index }) => {
            if real_arrays.contains_key(array) {
                push_unique(&mut usage.gathered, array);
            } else if integer_arrays.contains_key(array) {
                push_unique(&mut usage.indirection, array);
            } else {
                return Err(format!("undeclared array {array} in expression"));
            }
            collect_index_expr(index, real_arrays, integer_arrays, usage)
        }
        Expr::Binary(_, a, b) => {
            collect_value_expr(a, real_arrays, integer_arrays, usage)?;
            collect_value_expr(b, real_arrays, integer_arrays, usage)
        }
    }
}

/// The constant extent `hi - lo + 1` of a loop if both bounds are integer literals.
fn const_extent(lo: &Expr, hi: &Expr) -> Option<usize> {
    match (lo, hi) {
        (Expr::Int(a), Expr::Int(b)) if b >= a => Some((b - a + 1) as usize),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::parser::parse;

    fn lower_src(src: &str) -> Result<LoweredProgram, String> {
        lower(&parse(&tokenize(src).unwrap()).unwrap())
    }

    const FIG1_STYLE: &str = "REAL x(64), y(64)\n\
         INTEGER ia(64), ib(64)\n\
         C$ DECOMPOSITION reg(64)\n\
         C$ DISTRIBUTE reg(BLOCK)\n\
         C$ ALIGN x, y WITH reg\n\
         FORALL i = 1, 64\n\
         REDUCE(SUM, x(ia(i)), y(ib(i)))\n\
         END FORALL\n";

    #[test]
    fn lowers_the_figure1_reduction_loop() {
        let lowered = lower_src(FIG1_STYLE).unwrap();
        assert_eq!(lowered.loops.len(), 1);
        let plan = &lowered.loops[0];
        assert_eq!(plan.kind, LoopKind::SumReduction);
        assert_eq!(plan.gathered_arrays, vec!["Y".to_string()]);
        assert_eq!(plan.sum_targets, vec!["X".to_string()]);
        assert_eq!(plan.indirection_arrays, vec!["IA".to_string(), "IB".into()]);
        assert_eq!(plan.decomp, "REG");
        assert_eq!(lowered.steps.len(), 2); // DISTRIBUTE + loop
    }

    #[test]
    fn lowers_append_loops_to_lightweight_movement() {
        let lowered = lower_src(
            "REAL vel(128), newvel(32)\n\
             INTEGER icell(128)\n\
             C$ DECOMPOSITION parts(128)\n\
             C$ DECOMPOSITION cells(32)\n\
             C$ DISTRIBUTE parts(BLOCK)\n\
             C$ DISTRIBUTE cells(BLOCK)\n\
             C$ ALIGN vel WITH parts\n\
             C$ ALIGN newvel WITH cells\n\
             FORALL i = 1, 128\n\
             REDUCE(APPEND, newvel(icell(i)), vel(i))\n\
             END FORALL\n",
        )
        .unwrap();
        let plan = &lowered.loops[0];
        assert_eq!(
            plan.kind,
            LoopKind::AppendReduction {
                target: "NEWVEL".into()
            }
        );
        assert_eq!(plan.gathered_arrays, vec!["VEL".to_string()]);
        assert!(plan.sum_targets.is_empty());
        assert_eq!(plan.decomp, "PARTS");
    }

    #[test]
    fn irregular_distribute_is_recorded_as_a_step() {
        let lowered = lower_src(
            "REAL x(16)\n\
             INTEGER map(16)\n\
             C$ DECOMPOSITION reg(16)\n\
             C$ DISTRIBUTE reg(BLOCK)\n\
             C$ ALIGN x WITH reg\n\
             C$ DISTRIBUTE reg(map)\n",
        )
        .unwrap();
        assert_eq!(lowered.steps.len(), 2);
        assert!(matches!(
            &lowered.steps[1],
            ExecStep::Distribute {
                spec: DistSpec::Map(m),
                ..
            } if m == "MAP"
        ));
    }

    #[test]
    fn rejects_unsupported_shapes() {
        // Real array in a subscript.
        let err = lower_src(
            "REAL x(8), y(8)\nC$ DECOMPOSITION reg(8)\nC$ DISTRIBUTE reg(BLOCK)\nC$ ALIGN x, y WITH reg\n\
             FORALL i = 1, 8\nREDUCE(SUM, x(y(i)), 1.0)\nEND FORALL\n",
        )
        .unwrap_err();
        assert!(err.contains("subscript"), "{err}");
        // Array that is both read and SUM target.
        let err = lower_src(
            "REAL x(8)\nINTEGER ia(8)\nC$ DECOMPOSITION reg(8)\nC$ DISTRIBUTE reg(BLOCK)\nC$ ALIGN x WITH reg\n\
             FORALL i = 1, 8\nREDUCE(SUM, x(ia(i)), x(i))\nEND FORALL\n",
        )
        .unwrap_err();
        assert!(err.contains("both read"), "{err}");
        // Align to an unknown decomposition.
        let err = lower_src("REAL x(8)\nC$ ALIGN x WITH reg\n").unwrap_err();
        assert!(err.contains("unknown decomposition"), "{err}");
        // Size mismatch.
        let err =
            lower_src("REAL x(9)\nC$ DECOMPOSITION reg(8)\nC$ ALIGN x WITH reg\n").unwrap_err();
        assert!(err.contains("elements"), "{err}");
    }

    #[test]
    fn lowers_if_blocks_to_nested_steps() {
        let lowered = lower_src(
            "REAL x(16)\n\
             INTEGER ia(16)\n\
             C$ DECOMPOSITION reg(16)\n\
             C$ DISTRIBUTE reg(BLOCK)\n\
             C$ ALIGN x WITH reg\n\
             IF (MYRANK .EQ. 0) THEN\n\
             FORALL i = 1, 16\n\
             REDUCE(SUM, x(ia(i)), 1.0)\n\
             END FORALL\n\
             ELSE\n\
             FORALL i = 1, 16\n\
             REDUCE(SUM, x(ia(i)), 2.0)\n\
             END FORALL\n\
             END IF\n",
        )
        .unwrap();
        assert_eq!(lowered.loops.len(), 2);
        assert_eq!(lowered.steps.len(), 2); // DISTRIBUTE + IF
        match &lowered.steps[1] {
            ExecStep::If {
                rank_dependent,
                then_steps,
                else_steps,
                ..
            } => {
                assert!(*rank_dependent);
                assert!(matches!(then_steps[..], [ExecStep::Loop(0)]));
                assert!(matches!(else_steps[..], [ExecStep::Loop(1)]));
            }
            other => panic!("expected IF step, got {other:?}"),
        }
    }

    #[test]
    fn rejects_declarations_inside_if_branches() {
        let err = lower_src(
            "IF (NPROCS .GT. 1) THEN\n\
             REAL x(8)\n\
             END IF\n",
        )
        .unwrap_err();
        assert!(err.contains("inside IF branches"), "{err}");
    }

    #[test]
    fn compile_convenience_wrapper_works() {
        let lowered = crate::compile(FIG1_STYLE).unwrap();
        assert_eq!(lowered.loops.len(), 1);
        assert!(crate::compile("FORALL i = 1, 4\n").is_err());
    }
}
