//! `fortrand_check` — run the full compiler loop (lower, optimize, SPMD
//! collective-matching analysis) over Fortran-D sources.
//!
//! ```text
//! fortrand_check [--report] [--expect-clean | --expect-flagged]
//!                [--expect-opt RULE]... [--expect-blocked RULE]... FILE...
//! ```
//!
//! Every file is compiled, run through the optimizer (`fortrand::opt`), and the
//! collective-matching analysis is run over the *optimized* program — the gate proves
//! the optimizer neither hides a divergence nor introduces a split-phase imbalance.
//!
//! Without an expectation flag, exits nonzero iff any file fails to compile or has
//! findings.  With `--expect-clean`, findings are failures (the CI gate for example
//! programs); with `--expect-flagged`, a file with *no* findings is the failure (the CI
//! gate for seeded-divergent fixtures — it proves the analysis still catches them).
//!
//! `--report` prints the optimizer's diagnostics (applied and blocked, with source
//! lines).  `--expect-opt hoist|fuse|overlap` fails unless the named analysis fired on
//! every file; `--expect-blocked RULE` fails unless the named analysis reported a
//! blocked opportunity — the CI gates for the clean and deliberately-blocked fixtures.

use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq)]
enum Expectation {
    None,
    Clean,
    Flagged,
}

const USAGE: &str = "usage: fortrand_check [--report] [--expect-clean | --expect-flagged] \
     [--expect-opt RULE]... [--expect-blocked RULE]... FILE...";

fn valid_rule(rule: &str) -> bool {
    matches!(rule, "hoist" | "fuse" | "overlap")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut expect = Expectation::None;
    let mut report_mode = false;
    let mut expect_opt: Vec<String> = Vec::new();
    let mut expect_blocked: Vec<String> = Vec::new();
    let mut files = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--expect-clean" => expect = Expectation::Clean,
            "--expect-flagged" => expect = Expectation::Flagged,
            "--report" => report_mode = true,
            "--expect-opt" | "--expect-blocked" => {
                let flag = args[i].clone();
                i += 1;
                let Some(rule) = args.get(i) else {
                    eprintln!("fortrand_check: {flag} needs a rule name (hoist|fuse|overlap)");
                    return ExitCode::FAILURE;
                };
                if !valid_rule(rule) {
                    eprintln!(
                        "fortrand_check: unknown rule {rule:?} for {flag} (hoist|fuse|overlap)"
                    );
                    return ExitCode::FAILURE;
                }
                if flag == "--expect-opt" {
                    expect_opt.push(rule.clone());
                } else {
                    expect_blocked.push(rule.clone());
                }
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                eprintln!("fortrand_check: unknown option {other}");
                return ExitCode::FAILURE;
            }
            file => files.push(file.to_string()),
        }
        i += 1;
    }
    if files.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    for file in &files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{file}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        let (optimized, opt_report) = match fortrand::compile_optimized(&source) {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("{file}: compile error: {e}");
                failed = true;
                continue;
            }
        };
        if report_mode {
            let rendered = opt_report.render();
            if rendered.is_empty() {
                println!("{file}: no optimization opportunities");
            } else {
                println!("{file}:");
                for line in rendered.lines() {
                    println!("  {line}");
                }
            }
        }
        for rule in &expect_opt {
            if !opt_report.has_applied(rule, "") {
                eprintln!("{file}: FAIL — expected the {rule} analysis to fire, it did not");
                failed = true;
            }
        }
        for rule in &expect_blocked {
            if !opt_report.has_blocked(rule, "") {
                eprintln!("{file}: FAIL — expected a blocked {rule} diagnostic, found none");
                failed = true;
            }
        }
        let findings = fortrand::analysis::analyze(&fortrand::analysis::op_tree(&optimized));
        match (expect, findings.is_empty()) {
            (Expectation::Flagged, true) => {
                eprintln!(
                    "{file}: FAIL — expected the analysis to flag this fixture, found nothing"
                );
                failed = true;
            }
            (Expectation::Flagged, false) => {
                println!(
                    "{file}: flagged as expected ({} finding(s))",
                    findings.len()
                );
                for f in &findings {
                    println!("  - {}", f.message);
                }
            }
            (_, true) => println!("{file}: clean"),
            (Expectation::Clean | Expectation::None, false) => {
                eprintln!("{file}: FAIL — {} finding(s)", findings.len());
                for f in &findings {
                    eprintln!("  - {}", f.message);
                }
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
