//! `fortrand_check` — run the SPMD collective-matching analysis over Fortran-D sources.
//!
//! ```text
//! fortrand_check [--expect-clean | --expect-flagged] FILE...
//! ```
//!
//! Without an expectation flag, exits nonzero iff any file fails to compile or has
//! findings.  With `--expect-clean`, findings are failures (the CI gate for example
//! programs); with `--expect-flagged`, a file with *no* findings is the failure (the CI
//! gate for seeded-divergent fixtures — it proves the analysis still catches them).

use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq)]
enum Expectation {
    None,
    Clean,
    Flagged,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut expect = Expectation::None;
    let mut files = Vec::new();
    for arg in &args {
        match arg.as_str() {
            "--expect-clean" => expect = Expectation::Clean,
            "--expect-flagged" => expect = Expectation::Flagged,
            "--help" | "-h" => {
                eprintln!("usage: fortrand_check [--expect-clean | --expect-flagged] FILE...");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                eprintln!("fortrand_check: unknown option {other}");
                return ExitCode::FAILURE;
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("usage: fortrand_check [--expect-clean | --expect-flagged] FILE...");
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    for file in &files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{file}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        let findings = match fortrand::check_source(&source) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("{file}: compile error: {e}");
                failed = true;
                continue;
            }
        };
        match (expect, findings.is_empty()) {
            (Expectation::Flagged, true) => {
                eprintln!(
                    "{file}: FAIL — expected the analysis to flag this fixture, found nothing"
                );
                failed = true;
            }
            (Expectation::Flagged, false) => {
                println!(
                    "{file}: flagged as expected ({} finding(s))",
                    findings.len()
                );
                for f in &findings {
                    println!("  - {}", f.message);
                }
            }
            (_, true) => println!("{file}: clean"),
            (Expectation::Clean | Expectation::None, false) => {
                eprintln!("{file}: FAIL — {} finding(s)", findings.len());
                for f in &findings {
                    eprintln!("  - {}", f.message);
                }
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
