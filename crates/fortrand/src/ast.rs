//! Abstract syntax for the Fortran-D subset.

/// A whole program: declarations, distribution directives and executable statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
}

/// How a decomposition is distributed over processors.
#[derive(Debug, Clone, PartialEq)]
pub enum DistSpec {
    /// HPF BLOCK.
    Block,
    /// HPF CYCLIC.
    Cyclic,
    /// Irregular distribution through a map array (Figure 7): element `i` lives on the
    /// processor named by `map(i)`.
    Map(String),
}

/// The reduction operations of the `REDUCE` intrinsic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// `REDUCE(SUM, target, value)` — accumulate into the target element.
    Sum,
    /// `REDUCE(APPEND, target, value)` — append to the target's unordered list
    /// (the new intrinsic proposed in §5.2.1).
    Append,
}

/// Comparison operators of `IF` conditions (`.EQ.`, `.NE.`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `.EQ.`
    Eq,
    /// `.NE.`
    Ne,
    /// `.LT.`
    Lt,
    /// `.LE.`
    Le,
    /// `.GT.`
    Gt,
    /// `.GE.`
    Ge,
}

/// An `IF` condition: `lhs op rhs` over integer expressions.
///
/// The intrinsics `MYRANK` (this processor's id, `0..NPROCS`) and `NPROCS` may appear
/// as variables; a condition mentioning `MYRANK` is *rank-dependent*, which the
/// collective-matching analysis (`crate::analysis`) treats as the SPMD danger zone.
#[derive(Debug, Clone, PartialEq)]
pub struct Cond {
    /// Left-hand side.
    pub lhs: Expr,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand side.
    pub rhs: Expr,
}

impl Cond {
    /// Whether the condition mentions the `MYRANK` intrinsic (directly in either
    /// side), making its value differ across ranks.
    pub fn is_rank_dependent(&self) -> bool {
        fn mentions_myrank(e: &Expr) -> bool {
            match e {
                Expr::Int(_) | Expr::Real(_) => false,
                Expr::Var(v) => v == "MYRANK",
                Expr::Element(r) => mentions_myrank(&r.index),
                Expr::Binary(_, a, b) => mentions_myrank(a) || mentions_myrank(b),
            }
        }
        mentions_myrank(&self.lhs) || mentions_myrank(&self.rhs)
    }
}

/// A reference to an array element: `array(index expression)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayRef {
    /// The array's (upper-cased) name.
    pub array: String,
    /// Subscript expression.
    pub index: Box<Expr>,
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// A loop variable (or named scalar constant supplied by the host).
    Var(String),
    /// An array element.
    Element(ArrayRef),
    /// `lhs op rhs`.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

/// Statements of the subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `REAL x(n), y(n)` — declare distributed real arrays.
    RealDecl {
        /// `(name, size)` pairs.
        arrays: Vec<(String, usize)>,
    },
    /// `INTEGER map(n), jnb(m)` — declare (replicated) integer arrays.
    IntegerDecl {
        /// `(name, size)` pairs.
        arrays: Vec<(String, usize)>,
    },
    /// `DECOMPOSITION reg(n)`.
    Decomposition {
        /// Template name.
        name: String,
        /// Template size.
        size: usize,
    },
    /// `DISTRIBUTE reg(BLOCK)` / `DISTRIBUTE reg(map)`.
    Distribute {
        /// The decomposition being distributed.
        decomp: String,
        /// The distribution specification.
        spec: DistSpec,
    },
    /// `ALIGN x, y WITH reg`.
    Align {
        /// Arrays being aligned.
        arrays: Vec<String>,
        /// Target decomposition.
        decomp: String,
    },
    /// `FORALL var = lo, hi … END FORALL` (possibly nested).
    Forall {
        /// Loop variable name.
        var: String,
        /// Lower bound (inclusive).
        lo: Expr,
        /// Upper bound (inclusive), Fortran style.
        hi: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// 1-based source line of the `FORALL` keyword (for optimizer diagnostics).
        line: usize,
    },
    /// `DO var = lo, hi … END DO` — a sequential *time* loop.  Unlike `FORALL` its
    /// iterations run in order on every rank, and its body holds whole executable
    /// statements (FORALLs, `DISTRIBUTE`s, `IF`s, nested `DO`s).  The loop variable is
    /// a step counter only — referencing it inside the body is a lowering error, which
    /// is what lets the optimizer treat the body as iteration-invariant code.
    Do {
        /// Loop variable name (a step counter; not referenceable in the body).
        var: String,
        /// Lower bound (inclusive).
        lo: Expr,
        /// Upper bound (inclusive), Fortran style.
        hi: Expr,
        /// Loop body (whole statements).
        body: Vec<Stmt>,
        /// 1-based source line of the `DO` keyword (for optimizer diagnostics).
        line: usize,
    },
    /// `REDUCE(op, target, value)`.
    Reduce {
        /// Reduction operator.
        op: ReduceOp,
        /// Target element (or bucket, for APPEND).
        target: ArrayRef,
        /// Contributed value.
        value: Expr,
    },
    /// `target = value` plain assignment inside a FORALL.
    Assign {
        /// Assigned element.
        target: ArrayRef,
        /// Right-hand side.
        value: Expr,
    },
    /// `IF (cond) THEN … [ELSE …] END IF` at statement level, guarding executable
    /// steps (loops, redistributions).
    If {
        /// The branch condition.
        cond: Cond,
        /// Statements of the THEN branch.
        then_branch: Vec<Stmt>,
        /// Statements of the ELSE branch (empty when absent).
        else_branch: Vec<Stmt>,
    },
}

impl Expr {
    /// Collect the names of every array referenced in the expression.
    pub fn referenced_arrays(&self, out: &mut Vec<String>) {
        match self {
            Expr::Int(_) | Expr::Real(_) | Expr::Var(_) => {}
            Expr::Element(r) => {
                out.push(r.array.clone());
                r.index.referenced_arrays(out);
            }
            Expr::Binary(_, a, b) => {
                a.referenced_arrays(out);
                b.referenced_arrays(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn referenced_arrays_walks_nested_subscripts() {
        // x(jnb(i)) + y(i) * 2
        let expr = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Element(ArrayRef {
                array: "X".into(),
                index: Box::new(Expr::Element(ArrayRef {
                    array: "JNB".into(),
                    index: Box::new(Expr::Var("I".into())),
                })),
            })),
            Box::new(Expr::Binary(
                BinOp::Mul,
                Box::new(Expr::Element(ArrayRef {
                    array: "Y".into(),
                    index: Box::new(Expr::Var("I".into())),
                })),
                Box::new(Expr::Int(2)),
            )),
        );
        let mut arrays = Vec::new();
        expr.referenced_arrays(&mut arrays);
        assert_eq!(arrays, vec!["X".to_string(), "JNB".into(), "Y".into()]);
    }
}
