//! Recursive-descent parser for the Fortran-D subset.

use crate::ast::{ArrayRef, BinOp, DistSpec, Expr, Program, ReduceOp, Stmt};
use crate::lexer::Token;

/// Parse a token stream into a [`Program`].
pub fn parse(tokens: &[Token]) -> Result<Program, String> {
    let mut p = Parser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    while !p.at_end() {
        p.skip_newlines();
        if p.at_end() {
            break;
        }
        stmts.push(p.statement()?);
    }
    Ok(Program { stmts })
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        self.pos += 1;
        t
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), Some(Token::Newline)) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, expected: &Token) -> Result<(), String> {
        match self.next() {
            Some(t) if t == expected => Ok(()),
            other => Err(format!("expected {expected:?}, found {other:?}")),
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s.clone()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    fn expect_usize(&mut self) -> Result<usize, String> {
        match self.next() {
            Some(Token::Int(n)) if *n >= 0 => Ok(*n as usize),
            other => Err(format!("expected a non-negative integer, found {other:?}")),
        }
    }

    fn end_of_statement(&mut self) -> Result<(), String> {
        match self.next() {
            None | Some(Token::Newline) => Ok(()),
            other => Err(format!("expected end of statement, found {other:?}")),
        }
    }

    fn statement(&mut self) -> Result<Stmt, String> {
        let keyword = self.expect_ident()?;
        match keyword.as_str() {
            "REAL" => self.decl(true),
            "INTEGER" => self.decl(false),
            "DECOMPOSITION" => {
                let name = self.expect_ident()?;
                self.expect(&Token::LParen)?;
                let size = self.expect_usize()?;
                self.expect(&Token::RParen)?;
                self.end_of_statement()?;
                Ok(Stmt::Decomposition { name, size })
            }
            "DISTRIBUTE" => {
                let decomp = self.expect_ident()?;
                self.expect(&Token::LParen)?;
                let which = self.expect_ident()?;
                self.expect(&Token::RParen)?;
                self.end_of_statement()?;
                let spec = match which.as_str() {
                    "BLOCK" => DistSpec::Block,
                    "CYCLIC" => DistSpec::Cyclic,
                    map => DistSpec::Map(map.to_string()),
                };
                Ok(Stmt::Distribute { decomp, spec })
            }
            "ALIGN" => {
                let mut arrays = vec![self.expect_ident()?];
                while matches!(self.peek(), Some(Token::Comma)) {
                    self.next();
                    arrays.push(self.expect_ident()?);
                }
                let with = self.expect_ident()?;
                if with != "WITH" {
                    return Err(format!("expected WITH in ALIGN, found {with}"));
                }
                let decomp = self.expect_ident()?;
                self.end_of_statement()?;
                Ok(Stmt::Align { arrays, decomp })
            }
            "FORALL" => self.forall(),
            "REDUCE" => {
                let stmt = self.reduce()?;
                self.end_of_statement()?;
                Ok(stmt)
            }
            ident => {
                // Plain assignment: ident(expr) = expr
                self.expect(&Token::LParen)?;
                let index = self.expr()?;
                self.expect(&Token::RParen)?;
                self.expect(&Token::Equals)?;
                let value = self.expr()?;
                self.end_of_statement()?;
                Ok(Stmt::Assign {
                    target: ArrayRef {
                        array: ident.to_string(),
                        index: Box::new(index),
                    },
                    value,
                })
            }
        }
    }

    fn decl(&mut self, real: bool) -> Result<Stmt, String> {
        let mut arrays = Vec::new();
        loop {
            let name = self.expect_ident()?;
            self.expect(&Token::LParen)?;
            let size = self.expect_usize()?;
            self.expect(&Token::RParen)?;
            arrays.push((name, size));
            match self.peek() {
                Some(Token::Comma) => {
                    self.next();
                }
                _ => break,
            }
        }
        self.end_of_statement()?;
        Ok(if real {
            Stmt::RealDecl { arrays }
        } else {
            Stmt::IntegerDecl { arrays }
        })
    }

    fn forall(&mut self) -> Result<Stmt, String> {
        let var = self.expect_ident()?;
        self.expect(&Token::Equals)?;
        let lo = self.expr()?;
        self.expect(&Token::Comma)?;
        let hi = self.expr()?;
        self.end_of_statement()?;
        let mut body = Vec::new();
        loop {
            self.skip_newlines();
            match self.peek() {
                Some(Token::Ident(s)) if s == "END" || s == "ENDFORALL" => {
                    let s = s.clone();
                    self.next();
                    if s == "END" {
                        // Optional FORALL / DO after END.
                        if matches!(self.peek(), Some(Token::Ident(k)) if k == "FORALL" || k == "DO")
                        {
                            self.next();
                        }
                    }
                    self.end_of_statement()?;
                    break;
                }
                None => return Err("FORALL without END FORALL".to_string()),
                _ => body.push(self.statement()?),
            }
        }
        Ok(Stmt::Forall { var, lo, hi, body })
    }

    fn reduce(&mut self) -> Result<Stmt, String> {
        self.expect(&Token::LParen)?;
        let op_name = self.expect_ident()?;
        let op = match op_name.as_str() {
            "SUM" => ReduceOp::Sum,
            "APPEND" => ReduceOp::Append,
            other => return Err(format!("unsupported reduction operation {other}")),
        };
        self.expect(&Token::Comma)?;
        let target_name = self.expect_ident()?;
        self.expect(&Token::LParen)?;
        let target_index = self.expr()?;
        self.expect(&Token::RParen)?;
        self.expect(&Token::Comma)?;
        let value = self.expr()?;
        self.expect(&Token::RParen)?;
        Ok(Stmt::Reduce {
            op,
            target: ArrayRef {
                array: target_name,
                index: Box::new(target_index),
            },
            value,
        })
    }

    /// expr := term (('+' | '-') term)*
    fn expr(&mut self) -> Result<Expr, String> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.next();
            let rhs = self.term()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// term := factor (('*' | '/') factor)*
    fn term(&mut self) -> Result<Expr, String> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.next();
            let rhs = self.factor()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// factor := number | ident | ident '(' expr ')' | '(' expr ')' | '-' factor
    fn factor(&mut self) -> Result<Expr, String> {
        match self.next().cloned() {
            Some(Token::Int(n)) => Ok(Expr::Int(n)),
            Some(Token::Real(x)) => Ok(Expr::Real(x)),
            Some(Token::Minus) => {
                let inner = self.factor()?;
                Ok(Expr::Binary(
                    BinOp::Sub,
                    Box::new(Expr::Int(0)),
                    Box::new(inner),
                ))
            }
            Some(Token::LParen) => {
                let inner = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Some(Token::Ident(name)) => {
                if matches!(self.peek(), Some(Token::LParen)) {
                    self.next();
                    let index = self.expr()?;
                    self.expect(&Token::RParen)?;
                    Ok(Expr::Element(ArrayRef {
                        array: name,
                        index: Box::new(index),
                    }))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(format!("unexpected token in expression: {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parse_src(src: &str) -> Program {
        parse(&tokenize(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_figure7_style_directives() {
        let program = parse_src(
            "REAL x(100), y(100)\n\
             INTEGER map(100)\n\
             C$ DECOMPOSITION reg(100)\n\
             C$ DISTRIBUTE reg(BLOCK)\n\
             C$ ALIGN x, y WITH reg\n\
             C$ DISTRIBUTE reg(map)\n",
        );
        assert_eq!(program.stmts.len(), 6);
        assert_eq!(
            program.stmts[3],
            Stmt::Distribute {
                decomp: "REG".into(),
                spec: DistSpec::Block
            }
        );
        assert_eq!(
            program.stmts[5],
            Stmt::Distribute {
                decomp: "REG".into(),
                spec: DistSpec::Map("MAP".into())
            }
        );
        match &program.stmts[4] {
            Stmt::Align { arrays, decomp } => {
                assert_eq!(arrays, &vec!["X".to_string(), "Y".into()]);
                assert_eq!(decomp, "REG");
            }
            other => panic!("expected ALIGN, got {other:?}"),
        }
    }

    #[test]
    fn parses_reduction_forall() {
        let program = parse_src(
            "FORALL i = 1, 50\n\
             REDUCE(SUM, x(ia(i)), y(ib(i)) * 2.0)\n\
             END FORALL\n",
        );
        match &program.stmts[0] {
            Stmt::Forall { var, body, .. } => {
                assert_eq!(var, "I");
                assert_eq!(body.len(), 1);
                match &body[0] {
                    Stmt::Reduce { op, target, .. } => {
                        assert_eq!(*op, ReduceOp::Sum);
                        assert_eq!(target.array, "X");
                    }
                    other => panic!("expected REDUCE, got {other:?}"),
                }
            }
            other => panic!("expected FORALL, got {other:?}"),
        }
    }

    #[test]
    fn parses_nested_forall_with_array_bounds() {
        let program = parse_src(
            "FORALL i = 1, 10\n\
             FORALL j = inblo(i), inblo(i+1) - 1\n\
             REDUCE(SUM, dx(jnb(j)), x(jnb(j)) - x(i))\n\
             END FORALL\n\
             END FORALL\n",
        );
        match &program.stmts[0] {
            Stmt::Forall { body, .. } => match &body[0] {
                Stmt::Forall { lo, hi, body, .. } => {
                    assert!(matches!(lo, Expr::Element(_)));
                    assert!(matches!(hi, Expr::Binary(BinOp::Sub, _, _)));
                    assert_eq!(body.len(), 1);
                }
                other => panic!("expected inner FORALL, got {other:?}"),
            },
            other => panic!("expected FORALL, got {other:?}"),
        }
    }

    #[test]
    fn parses_append_and_assignment() {
        let program = parse_src(
            "FORALL j = 1, 64\n\
             new_size(j) = 0\n\
             REDUCE(APPEND, newvel(icell(j)), vel(j))\n\
             END FORALL\n",
        );
        match &program.stmts[0] {
            Stmt::Forall { body, .. } => {
                assert!(matches!(body[0], Stmt::Assign { .. }));
                assert!(matches!(
                    body[1],
                    Stmt::Reduce {
                        op: ReduceOp::Append,
                        ..
                    }
                ));
            }
            other => panic!("expected FORALL, got {other:?}"),
        }
    }

    #[test]
    fn reports_errors_with_context() {
        let err = parse(&tokenize("DECOMPOSITION reg\n").unwrap()).unwrap_err();
        assert!(err.contains("expected"), "unhelpful error: {err}");
        let err =
            parse(&tokenize("FORALL i = 1, 10\nREDUCE(SUM, x(i), y(i))\n").unwrap()).unwrap_err();
        assert!(err.contains("END"), "unhelpful error: {err}");
        let err =
            parse(&tokenize("FORALL i = 1, 10\nREDUCE(MAX, x(i), y(i))\nEND FORALL\n").unwrap())
                .unwrap_err();
        assert!(
            err.contains("unsupported reduction"),
            "unhelpful error: {err}"
        );
    }
}
