//! Recursive-descent parser for the Fortran-D subset.
//!
//! Malformed programs never panic: every failure surfaces as a [`ParseError`] naming the
//! source line, what was found and what the parser expected.

use std::fmt;

use crate::ast::{ArrayRef, BinOp, CmpOp, Cond, DistSpec, Expr, Program, ReduceOp, Stmt};
use crate::lexer::Token;

/// A parse failure: where it happened and the found-versus-expected pair.
///
/// `line` is the 1-based *source* line — the lexer emits one [`Token::Newline`] per
/// source line (comment cards and blank lines included), so the parser can count
/// newlines consumed to recover the true position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line of the offending token (or of the end of input).
    pub line: usize,
    /// What the parser found (a rendered token, or `"end of input"`).
    pub got: String,
    /// What it expected instead.
    pub expected: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}: expected {}, found {}",
            self.line, self.expected, self.got
        )
    }
}

impl std::error::Error for ParseError {}

/// Let `?` propagate a `ParseError` through the string-typed `fortrand::compile`
/// pipeline (and keep every pre-existing `Result<_, String>` caller compiling).
impl From<ParseError> for String {
    fn from(e: ParseError) -> String {
        e.to_string()
    }
}

/// Parse a token stream into a [`Program`].
pub fn parse(tokens: &[Token]) -> Result<Program, ParseError> {
    let mut p = Parser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    while !p.at_end() {
        p.skip_newlines();
        if p.at_end() {
            break;
        }
        stmts.push(p.statement()?);
    }
    Ok(Program { stmts })
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

/// Render a token (or its absence) the way [`ParseError::got`] reports it.
fn describe(token: Option<&Token>) -> String {
    match token {
        None => "end of input".to_string(),
        Some(t) => format!("{t:?}"),
    }
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        self.pos += 1;
        t
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), Some(Token::Newline)) {
            self.pos += 1;
        }
    }

    /// 1-based source line of the token at `at` (every source line is one `Newline`).
    fn line_of(&self, at: usize) -> usize {
        1 + self.tokens[..at.min(self.tokens.len())]
            .iter()
            .filter(|t| matches!(t, Token::Newline))
            .count()
    }

    /// A [`ParseError`] at the token the parser just consumed (or tried to).
    fn error(&self, expected: impl Into<String>, got: Option<&Token>) -> ParseError {
        ParseError {
            line: self.line_of(self.pos.saturating_sub(1)),
            got: describe(got),
            expected: expected.into(),
        }
    }

    fn expect(&mut self, expected: &Token) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if t == expected => Ok(()),
            other => {
                let got = other.cloned();
                Err(self.error(format!("{expected:?}"), got.as_ref()))
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s.clone()),
            other => {
                let got = other.cloned();
                Err(self.error("an identifier", got.as_ref()))
            }
        }
    }

    fn expect_usize(&mut self) -> Result<usize, ParseError> {
        match self.next() {
            Some(Token::Int(n)) if *n >= 0 => Ok(*n as usize),
            other => {
                let got = other.cloned();
                Err(self.error("a non-negative integer", got.as_ref()))
            }
        }
    }

    fn end_of_statement(&mut self) -> Result<(), ParseError> {
        match self.next() {
            None | Some(Token::Newline) => Ok(()),
            other => {
                let got = other.cloned();
                Err(self.error("end of statement", got.as_ref()))
            }
        }
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        let keyword = self.expect_ident()?;
        match keyword.as_str() {
            "REAL" => self.decl(true),
            "INTEGER" => self.decl(false),
            "DECOMPOSITION" => {
                let name = self.expect_ident()?;
                self.expect(&Token::LParen)?;
                let size = self.expect_usize()?;
                self.expect(&Token::RParen)?;
                self.end_of_statement()?;
                Ok(Stmt::Decomposition { name, size })
            }
            "DISTRIBUTE" => {
                let decomp = self.expect_ident()?;
                self.expect(&Token::LParen)?;
                let which = self.expect_ident()?;
                self.expect(&Token::RParen)?;
                self.end_of_statement()?;
                let spec = match which.as_str() {
                    "BLOCK" => DistSpec::Block,
                    "CYCLIC" => DistSpec::Cyclic,
                    map => DistSpec::Map(map.to_string()),
                };
                Ok(Stmt::Distribute { decomp, spec })
            }
            "ALIGN" => {
                let mut arrays = vec![self.expect_ident()?];
                while matches!(self.peek(), Some(Token::Comma)) {
                    self.next();
                    arrays.push(self.expect_ident()?);
                }
                let with = self.expect_ident()?;
                if with != "WITH" {
                    let got = Token::Ident(with);
                    return Err(self.error("WITH in ALIGN", Some(&got)));
                }
                let decomp = self.expect_ident()?;
                self.end_of_statement()?;
                Ok(Stmt::Align { arrays, decomp })
            }
            "FORALL" => self.forall(),
            "DO" => self.do_stmt(),
            "IF" => self.if_stmt(),
            "REDUCE" => {
                let stmt = self.reduce()?;
                self.end_of_statement()?;
                Ok(stmt)
            }
            ident => {
                // Plain assignment: ident(expr) = expr
                self.expect(&Token::LParen)?;
                let index = self.expr()?;
                self.expect(&Token::RParen)?;
                self.expect(&Token::Equals)?;
                let value = self.expr()?;
                self.end_of_statement()?;
                Ok(Stmt::Assign {
                    target: ArrayRef {
                        array: ident.to_string(),
                        index: Box::new(index),
                    },
                    value,
                })
            }
        }
    }

    fn decl(&mut self, real: bool) -> Result<Stmt, ParseError> {
        let mut arrays = Vec::new();
        loop {
            let name = self.expect_ident()?;
            self.expect(&Token::LParen)?;
            let size = self.expect_usize()?;
            self.expect(&Token::RParen)?;
            arrays.push((name, size));
            match self.peek() {
                Some(Token::Comma) => {
                    self.next();
                }
                _ => break,
            }
        }
        self.end_of_statement()?;
        Ok(if real {
            Stmt::RealDecl { arrays }
        } else {
            Stmt::IntegerDecl { arrays }
        })
    }

    fn forall(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line_of(self.pos);
        let var = self.expect_ident()?;
        self.expect(&Token::Equals)?;
        let lo = self.expr()?;
        self.expect(&Token::Comma)?;
        let hi = self.expr()?;
        self.end_of_statement()?;
        let mut body = Vec::new();
        loop {
            self.skip_newlines();
            match self.peek() {
                Some(Token::Ident(s)) if s == "END" || s == "ENDFORALL" => {
                    let s = s.clone();
                    self.next();
                    if s == "END" {
                        // Optional FORALL / DO after END.
                        if matches!(self.peek(), Some(Token::Ident(k)) if k == "FORALL" || k == "DO")
                        {
                            self.next();
                        }
                    }
                    self.end_of_statement()?;
                    break;
                }
                None => {
                    return Err(ParseError {
                        line: self.line_of(self.tokens.len()),
                        got: "end of input".to_string(),
                        expected: "END FORALL".to_string(),
                    })
                }
                _ => body.push(self.statement()?),
            }
        }
        Ok(Stmt::Forall {
            var,
            lo,
            hi,
            body,
            line,
        })
    }

    /// `DO var = lo, hi … END DO` — the sequential time loop.  Same header shape as
    /// FORALL; the terminator is `END DO` / `ENDDO`.
    fn do_stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line_of(self.pos);
        let var = self.expect_ident()?;
        self.expect(&Token::Equals)?;
        let lo = self.expr()?;
        self.expect(&Token::Comma)?;
        let hi = self.expr()?;
        self.end_of_statement()?;
        let mut body = Vec::new();
        loop {
            self.skip_newlines();
            match self.peek() {
                Some(Token::Ident(s)) if s == "END" || s == "ENDDO" => {
                    let s = s.clone();
                    self.next();
                    if s == "END" {
                        // Optional DO after END.
                        if matches!(self.peek(), Some(Token::Ident(k)) if k == "DO") {
                            self.next();
                        }
                    }
                    self.end_of_statement()?;
                    break;
                }
                None => {
                    return Err(ParseError {
                        line: self.line_of(self.tokens.len()),
                        got: "end of input".to_string(),
                        expected: "END DO".to_string(),
                    })
                }
                _ => body.push(self.statement()?),
            }
        }
        Ok(Stmt::Do {
            var,
            lo,
            hi,
            body,
            line,
        })
    }

    /// `IF (cond) THEN … [ELSE …] END IF` — a statement-level block; the branches hold
    /// whole statements (FORALLs, directives), never expressions.
    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&Token::LParen)?;
        let cond = self.cond()?;
        self.expect(&Token::RParen)?;
        match self.next().cloned() {
            Some(Token::Ident(kw)) if kw == "THEN" => {}
            other => return Err(self.error("THEN after IF condition", other.as_ref())),
        }
        self.end_of_statement()?;
        let mut then_branch = Vec::new();
        let mut else_branch = Vec::new();
        let mut in_else = false;
        loop {
            self.skip_newlines();
            match self.peek() {
                Some(Token::Ident(s)) if s == "ELSE" => {
                    let s = s.clone();
                    self.next();
                    if in_else {
                        let got = Token::Ident(s);
                        return Err(self.error("END IF (ELSE already seen)", Some(&got)));
                    }
                    self.end_of_statement()?;
                    in_else = true;
                }
                Some(Token::Ident(s)) if s == "END" || s == "ENDIF" => {
                    let s = s.clone();
                    self.next();
                    if s == "END" {
                        // Optional IF after END.
                        if matches!(self.peek(), Some(Token::Ident(k)) if k == "IF") {
                            self.next();
                        }
                    }
                    self.end_of_statement()?;
                    break;
                }
                None => {
                    return Err(ParseError {
                        line: self.line_of(self.tokens.len()),
                        got: "end of input".to_string(),
                        expected: "END IF".to_string(),
                    })
                }
                _ => {
                    let stmt = self.statement()?;
                    if in_else {
                        else_branch.push(stmt);
                    } else {
                        then_branch.push(stmt);
                    }
                }
            }
        }
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
        })
    }

    /// cond := expr dotop expr
    fn cond(&mut self) -> Result<Cond, ParseError> {
        let lhs = self.expr()?;
        let op = match self.next().cloned() {
            Some(Token::DotOp(name)) => match name.as_str() {
                "EQ" => CmpOp::Eq,
                "NE" => CmpOp::Ne,
                "LT" => CmpOp::Lt,
                "LE" => CmpOp::Le,
                "GT" => CmpOp::Gt,
                "GE" => CmpOp::Ge,
                other => unreachable!("lexer only emits known dot-operators, got .{other}."),
            },
            other => {
                return Err(self.error("a comparison operator (.EQ., .NE., …)", other.as_ref()))
            }
        };
        let rhs = self.expr()?;
        Ok(Cond { lhs, op, rhs })
    }

    fn reduce(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&Token::LParen)?;
        let op_name = self.expect_ident()?;
        let op = match op_name.as_str() {
            "SUM" => ReduceOp::Sum,
            "APPEND" => ReduceOp::Append,
            other => {
                let got = Token::Ident(other.to_string());
                return Err(self.error(
                    "a supported reduction operation (SUM or APPEND)",
                    Some(&got),
                ));
            }
        };
        self.expect(&Token::Comma)?;
        let target_name = self.expect_ident()?;
        self.expect(&Token::LParen)?;
        let target_index = self.expr()?;
        self.expect(&Token::RParen)?;
        self.expect(&Token::Comma)?;
        let value = self.expr()?;
        self.expect(&Token::RParen)?;
        Ok(Stmt::Reduce {
            op,
            target: ArrayRef {
                array: target_name,
                index: Box::new(target_index),
            },
            value,
        })
    }

    /// expr := term (('+' | '-') term)*
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.next();
            let rhs = self.term()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// term := factor (('*' | '/') factor)*
    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.next();
            let rhs = self.factor()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// factor := number | ident | ident '(' expr ')' | '(' expr ')' | '-' factor
    fn factor(&mut self) -> Result<Expr, ParseError> {
        match self.next().cloned() {
            Some(Token::Int(n)) => Ok(Expr::Int(n)),
            Some(Token::Real(x)) => Ok(Expr::Real(x)),
            Some(Token::Minus) => {
                let inner = self.factor()?;
                Ok(Expr::Binary(
                    BinOp::Sub,
                    Box::new(Expr::Int(0)),
                    Box::new(inner),
                ))
            }
            Some(Token::LParen) => {
                let inner = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Some(Token::Ident(name)) => {
                if matches!(self.peek(), Some(Token::LParen)) {
                    self.next();
                    let index = self.expr()?;
                    self.expect(&Token::RParen)?;
                    Ok(Expr::Element(ArrayRef {
                        array: name,
                        index: Box::new(index),
                    }))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.error("an expression", other.as_ref())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parse_src(src: &str) -> Program {
        parse(&tokenize(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_figure7_style_directives() {
        let program = parse_src(
            "REAL x(100), y(100)\n\
             INTEGER map(100)\n\
             C$ DECOMPOSITION reg(100)\n\
             C$ DISTRIBUTE reg(BLOCK)\n\
             C$ ALIGN x, y WITH reg\n\
             C$ DISTRIBUTE reg(map)\n",
        );
        assert_eq!(program.stmts.len(), 6);
        assert_eq!(
            program.stmts[3],
            Stmt::Distribute {
                decomp: "REG".into(),
                spec: DistSpec::Block
            }
        );
        assert_eq!(
            program.stmts[5],
            Stmt::Distribute {
                decomp: "REG".into(),
                spec: DistSpec::Map("MAP".into())
            }
        );
        match &program.stmts[4] {
            Stmt::Align { arrays, decomp } => {
                assert_eq!(arrays, &vec!["X".to_string(), "Y".into()]);
                assert_eq!(decomp, "REG");
            }
            other => panic!("expected ALIGN, got {other:?}"),
        }
    }

    #[test]
    fn parses_reduction_forall() {
        let program = parse_src(
            "FORALL i = 1, 50\n\
             REDUCE(SUM, x(ia(i)), y(ib(i)) * 2.0)\n\
             END FORALL\n",
        );
        match &program.stmts[0] {
            Stmt::Forall { var, body, .. } => {
                assert_eq!(var, "I");
                assert_eq!(body.len(), 1);
                match &body[0] {
                    Stmt::Reduce { op, target, .. } => {
                        assert_eq!(*op, ReduceOp::Sum);
                        assert_eq!(target.array, "X");
                    }
                    other => panic!("expected REDUCE, got {other:?}"),
                }
            }
            other => panic!("expected FORALL, got {other:?}"),
        }
    }

    #[test]
    fn parses_nested_forall_with_array_bounds() {
        let program = parse_src(
            "FORALL i = 1, 10\n\
             FORALL j = inblo(i), inblo(i+1) - 1\n\
             REDUCE(SUM, dx(jnb(j)), x(jnb(j)) - x(i))\n\
             END FORALL\n\
             END FORALL\n",
        );
        match &program.stmts[0] {
            Stmt::Forall { body, .. } => match &body[0] {
                Stmt::Forall { lo, hi, body, .. } => {
                    assert!(matches!(lo, Expr::Element(_)));
                    assert!(matches!(hi, Expr::Binary(BinOp::Sub, _, _)));
                    assert_eq!(body.len(), 1);
                }
                other => panic!("expected inner FORALL, got {other:?}"),
            },
            other => panic!("expected FORALL, got {other:?}"),
        }
    }

    #[test]
    fn parses_append_and_assignment() {
        let program = parse_src(
            "FORALL j = 1, 64\n\
             new_size(j) = 0\n\
             REDUCE(APPEND, newvel(icell(j)), vel(j))\n\
             END FORALL\n",
        );
        match &program.stmts[0] {
            Stmt::Forall { body, .. } => {
                assert!(matches!(body[0], Stmt::Assign { .. }));
                assert!(matches!(
                    body[1],
                    Stmt::Reduce {
                        op: ReduceOp::Append,
                        ..
                    }
                ));
            }
            other => panic!("expected FORALL, got {other:?}"),
        }
    }

    #[test]
    fn parses_if_then_else_blocks() {
        let program = parse_src(
            "REAL x(8)\n\
             IF (MYRANK .EQ. 0) THEN\n\
             FORALL i = 1, 8\n\
             x(i) = 1.0\n\
             END FORALL\n\
             ELSE\n\
             FORALL i = 1, 8\n\
             x(i) = 2.0\n\
             END FORALL\n\
             END IF\n",
        );
        match &program.stmts[1] {
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                assert_eq!(cond.op, CmpOp::Eq);
                assert_eq!(cond.lhs, Expr::Var("MYRANK".into()));
                assert_eq!(cond.rhs, Expr::Int(0));
                assert!(cond.is_rank_dependent());
                assert_eq!(then_branch.len(), 1);
                assert_eq!(else_branch.len(), 1);
                assert!(matches!(then_branch[0], Stmt::Forall { .. }));
            }
            other => panic!("expected IF, got {other:?}"),
        }
    }

    #[test]
    fn endif_spelling_and_rank_independent_conditions() {
        let program = parse_src(
            "INTEGER steps(1)\n\
             IF (steps(1) .GT. 10) THEN\n\
             C$ DISTRIBUTE reg(BLOCK)\n\
             ENDIF\n",
        );
        match &program.stmts[1] {
            Stmt::If {
                cond, else_branch, ..
            } => {
                assert_eq!(cond.op, CmpOp::Gt);
                assert!(!cond.is_rank_dependent());
                assert!(else_branch.is_empty());
            }
            other => panic!("expected IF, got {other:?}"),
        }
    }

    #[test]
    fn if_parse_errors_are_reported() {
        // Missing THEN.
        let err = parse_err("IF (MYRANK .EQ. 0)\nEND IF\n");
        assert_eq!(err.line, 1);
        assert_eq!(err.expected, "THEN after IF condition");

        // Missing comparison operator.
        let err = parse_err("IF (MYRANK) THEN\nEND IF\n");
        assert!(err.expected.contains("comparison operator"), "{err}");

        // Unterminated block.
        let err = parse_err("IF (MYRANK .NE. 0) THEN\n");
        assert_eq!(err.expected, "END IF");
        assert_eq!(err.got, "end of input");

        // Two ELSE branches.
        let err = parse_err("IF (MYRANK .LT. 2) THEN\nELSE\nELSE\nEND IF\n");
        assert!(err.expected.contains("ELSE already seen"), "{err}");
    }

    fn parse_err(src: &str) -> ParseError {
        parse(&tokenize(src).unwrap()).unwrap_err()
    }

    #[test]
    fn reports_errors_with_context() {
        let err = parse_err("DECOMPOSITION reg\n");
        assert_eq!(err.line, 1);
        assert_eq!(err.expected, "LParen");
        assert_eq!(err.got, "Newline");
        assert!(err.to_string().contains("expected"), "unhelpful: {err}");

        let err = parse_err("FORALL i = 1, 10\nREDUCE(SUM, x(i), y(i))\n");
        assert_eq!(err.expected, "END FORALL");
        assert_eq!(err.got, "end of input");
        assert_eq!(
            err.line, 3,
            "errors at end of input point past the last line"
        );

        let err = parse_err("FORALL i = 1, 10\nREDUCE(MAX, x(i), y(i))\nEND FORALL\n");
        assert_eq!(err.line, 2);
        assert!(err.expected.contains("SUM or APPEND"));
        assert!(err.got.contains("MAX"));
    }

    #[test]
    fn malformed_programs_return_errors_with_true_source_lines() {
        // Comment cards and blank lines still count: the error below is on source line 4.
        let err = parse_err("C a comment card\n\n! another\nREAL x(\n");
        assert_eq!(err.line, 4);
        assert_eq!(err.expected, "a non-negative integer");
        assert_eq!(err.got, "Newline");

        // Mid-program failure after valid statements.
        let err = parse_err("REAL x(8)\nFORALL i = 1, 8\nx(i = 2\nEND FORALL\n");
        assert_eq!(err.line, 3);
        assert_eq!(err.expected, "RParen");

        // ALIGN without WITH.
        let err = parse_err("ALIGN x y\n");
        assert_eq!(err.line, 1);
        assert_eq!(err.expected, "WITH in ALIGN");
        assert!(err.got.contains('Y'), "got {:?}", err.got);

        // A bare operator where an expression factor must start.
        let err = parse_err("REAL x(4)\nx(1) = * 2\n");
        assert_eq!(err.line, 2);
        assert_eq!(err.expected, "an expression");
        assert_eq!(err.got, "Star");

        // Truncated statement: the dangling `+` finds the line ending instead of a term.
        let err = parse_err("x(1) = 2 +");
        assert_eq!(err.line, 1);
        assert_eq!(err.got, "Newline");
        assert_eq!(err.expected, "an expression");
    }

    #[test]
    fn parse_errors_flow_through_compile_as_strings() {
        // The thin `From<ParseError> for String` shim keeps the string-typed pipeline
        // (and its `?` operators) compiling while callers that want structure use
        // `parse` directly.
        let err = crate::compile("DECOMPOSITION reg\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "lost position: {err}");
        assert!(err.contains("expected LParen"), "lost context: {err}");
    }
}
