//! The compiler loop: static dataflow analyses and transformations over the lowered
//! [`ExecStep`] program, between lowering ([`crate::lower`]) and execution
//! ([`crate::interp`]).
//!
//! Three analyses run, in order; each produces both a program transformation and a
//! lint-style diagnostic ([`OptDiag`]) explaining why it fired or what blocked it:
//!
//! 1. **Fusion** ([`OptRule::Fuse`]) — adjacent exchange-bearing sum-reduction loops
//!    over the same decomposition and iteration space, with no flow dependence or
//!    ghost-region conflict between them, are rewritten into one [`ScheduleGroup`]:
//!    a single merged schedule moves all member arrays with one `gather_multi` /
//!    `scatter_add_multi` pair instead of one exchange per loop per array.  A loop
//!    that cannot join its neighbours still becomes a singleton group (multi-lane if
//!    it moves several arrays), so the next analysis applies uniformly.
//! 2. **Schedule reuse** ([`OptRule::Hoist`]) — a modification-dataflow pass over
//!    each `DO` time loop's body: if no iteration may write an indirection array a
//!    group's schedule depends on (and nothing redistributes), the group's
//!    [`ExecStep::BuildSchedule`] is *hoisted* out of the loop and the inspector runs
//!    once instead of once per step.  Otherwise the build stays put, stamp-guarded:
//!    at run time only members whose dependence sets actually changed are re-hashed,
//!    and the resulting schedules are served through `chaos::cache::ScheduleCache`.
//! 3. **Overlap** ([`OptRule::Overlap`]) — a read/write dependence check that slides
//!    independent work between a fused gather's split-phase start and finish: a later
//!    loop's gather is started before an earlier loop computes
//!    ([`ExecStep::GatherStart`]), and independent integer updates migrate into the
//!    window between a fused loop's own start and finish.  The rewrite is then
//!    *proved* safe by re-running the collective-matching analysis
//!    ([`crate::analysis`]) on the transformed tree — every `Start` must meet its
//!    `Finish` on every path, including through [`ExecStep::If`] branches and around
//!    time-loop back edges; if the proof fails, every overlap rewrite is reverted.
//!
//! The optimized program is executed by the same interpreter; its fingerprints are
//! byte-identical to the naive schedule (fused exchanges are element-identical to the
//! unfused sequence, and reordered work was proved independent).

use crate::analysis;
use crate::ast::{Expr, Stmt};
use crate::lower::{ExecStep, LoopKind, LoopPlan, LoweredProgram, ScheduleGroup};

/// Most member loops one schedule group may hold (each member occupies one stamp bit
/// of the merged index table; the runtime supports 64, we stop well before).
const MAX_FUSED_MEMBERS: usize = 8;

/// Which analysis a diagnostic came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptRule {
    /// Schedule-reuse analysis (inspector hoisting out of time loops).
    Hoist,
    /// Exchange fusion (merged schedules, multi-array gathers/scatters).
    Fuse,
    /// Split-phase overlap (communication/computation pipelining).
    Overlap,
}

impl OptRule {
    /// Stable lower-case name, used by `fortrand_check --expect-opt/--expect-blocked`.
    pub fn name(self) -> &'static str {
        match self {
            OptRule::Hoist => "hoist",
            OptRule::Fuse => "fuse",
            OptRule::Overlap => "overlap",
        }
    }
}

/// One lint-style diagnostic: an optimization that fired (`applied`), or the reason
/// the analysis declined it.
#[derive(Debug, Clone)]
pub struct OptDiag {
    /// The analysis that produced this diagnostic.
    pub rule: OptRule,
    /// Whether the transformation was applied (`true`) or blocked (`false`).
    pub applied: bool,
    /// 1-based source line the diagnostic anchors to.
    pub line: usize,
    /// Why the optimization fired, or what blocked it.
    pub message: String,
}

/// Everything the optimizer did — and declined to do — to one program.
#[derive(Debug, Clone, Default)]
pub struct OptReport {
    /// All diagnostics, in the order the analyses emitted them.
    pub diags: Vec<OptDiag>,
}

impl OptReport {
    fn push(&mut self, rule: OptRule, applied: bool, line: usize, message: String) {
        self.diags.push(OptDiag {
            rule,
            applied,
            line,
            message,
        });
    }

    /// Diagnostics of transformations that fired.
    pub fn applied(&self) -> impl Iterator<Item = &OptDiag> {
        self.diags.iter().filter(|d| d.applied)
    }

    /// Diagnostics of transformations the analyses declined.
    pub fn blocked(&self) -> impl Iterator<Item = &OptDiag> {
        self.diags.iter().filter(|d| !d.applied)
    }

    /// Whether any diagnostic of the rule fired (`applied = true`) and mentions
    /// `needle` (empty `needle` matches any message).
    pub fn has_applied(&self, rule: &str, needle: &str) -> bool {
        self.applied()
            .any(|d| d.rule.name() == rule && d.message.contains(needle))
    }

    /// Whether any diagnostic of the rule was blocked and mentions `needle`.
    pub fn has_blocked(&self, rule: &str, needle: &str) -> bool {
        self.blocked()
            .any(|d| d.rule.name() == rule && d.message.contains(needle))
    }

    /// Render the report as the `fortrand_check --report` listing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            let status = if d.applied { "applied" } else { "blocked" };
            out.push_str(&format!(
                "{status} {:<7} line {:>3}: {}\n",
                d.rule.name(),
                d.line,
                d.message
            ));
        }
        out
    }
}

/// Run all three analyses over a lowered program, returning the transformed program
/// and the diagnostic report.  The input is untouched; executing either program
/// produces byte-identical array contents.
pub fn optimize(program: &LoweredProgram) -> (LoweredProgram, OptReport) {
    let mut report = OptReport::default();
    let mut out = program.clone();
    let mut steps = std::mem::take(&mut out.steps);
    let mut groups = Vec::new();

    // Fusion + hoisting, innermost loops first so hoisted builds bubble outward.
    optimize_body(&mut steps, &out.loops, &mut groups, &mut report);

    // Overlap, then prove the split-phase rewrites balanced with the
    // collective-matching analysis; revert all of them if the proof fails.
    let pre_overlap = steps.clone();
    let diag_mark = report.diags.len();
    overlap_pass(&mut steps, &out.loops, &groups, &mut report, false);
    out.steps = steps;
    out.groups = groups;
    let unbalanced: Vec<String> = analysis::analyze(&analysis::op_tree(&out))
        .into_iter()
        .filter(|f| f.message.contains("split-phase"))
        .map(|f| f.message)
        .collect();
    if !unbalanced.is_empty() {
        out.steps = pre_overlap;
        for d in &mut report.diags[diag_mark..] {
            if d.applied && d.rule == OptRule::Overlap {
                d.applied = false;
                d.message = format!(
                    "reverted — the collective-matching self-check found the \
                     split-phase rewrite unbalanced ({}): {}",
                    unbalanced[0], d.message
                );
            }
        }
    }
    (out, report)
}

/// Fuse and hoist within one step sequence: recurse into `IF` branches and `DO`
/// bodies first, hoist invariant schedule builds out of each `DO`, then fuse
/// adjacent loops at this level.
fn optimize_body(
    steps: &mut Vec<ExecStep>,
    loops: &[LoopPlan],
    groups: &mut Vec<ScheduleGroup>,
    report: &mut OptReport,
) {
    let mut out: Vec<ExecStep> = Vec::with_capacity(steps.len());
    for mut step in steps.drain(..) {
        match &mut step {
            ExecStep::If {
                then_steps,
                else_steps,
                ..
            } => {
                optimize_body(then_steps, loops, groups, report);
                optimize_body(else_steps, loops, groups, report);
                out.push(step);
            }
            ExecStep::TimeLoop { body, line, .. } => {
                optimize_body(body, loops, groups, report);
                let hoisted = hoist_from_body(body, *line, loops, groups, report);
                out.extend(hoisted);
                out.push(step);
            }
            _ => out.push(step),
        }
    }
    fusion_pass(&mut out, loops, groups, report);
    *steps = out;
}

// ------------------------------------------------------------------ fusion analysis --

/// Whether a loop is an exchange-bearing sum-reduction (the only kind a schedule
/// group can hold).
fn fusable(plan: &LoopPlan) -> bool {
    plan.kind == LoopKind::SumReduction
        && (!plan.gathered_arrays.is_empty() || !plan.sum_targets.is_empty())
}

/// The loop bounds of a FORALL plan (for the identical-iteration-space test).
fn loop_bounds(plan: &LoopPlan) -> (&Expr, &Expr) {
    match &plan.forall {
        Stmt::Forall { lo, hi, .. } => (lo, hi),
        _ => unreachable!("sum-reduction plans hold FORALL statements"),
    }
}

/// Why `next` cannot join a group currently holding `members` — `None` if it can.
fn fuse_conflict(members: &[usize], next: usize, loops: &[LoopPlan]) -> Option<String> {
    let first = &loops[members[0]];
    let next_plan = &loops[next];
    if next_plan.decomp != first.decomp {
        return Some(format!(
            "loop at line {} iterates over decomposition {} but the group uses {}",
            next_plan.line(),
            next_plan.decomp,
            first.decomp
        ));
    }
    let (flo, fhi) = loop_bounds(first);
    let (nlo, nhi) = loop_bounds(next_plan);
    if flo != nlo || fhi != nhi {
        return Some(format!(
            "loop at line {} has a different iteration space than the loop at line {}",
            next_plan.line(),
            first.line()
        ));
    }
    for &m in members {
        let mp = &loops[m];
        // Flow dependence: the candidate gathers values an earlier member produces;
        // a fused gather would run before that member and read stale copies.
        if let Some(arr) = next_plan
            .gathered_arrays
            .iter()
            .find(|a| mp.sum_targets.contains(a) || mp.assigned_arrays.contains(a))
        {
            return Some(format!(
                "loop at line {} reads {arr} which the loop at line {} writes \
                 (flow dependence through the exchange)",
                next_plan.line(),
                mp.line()
            ));
        }
        // Ghost-region conflict: one member gathers an array another reduces into —
        // the same ghost slots cannot hold gathered copies and partial sums at once.
        if let Some(arr) = next_plan
            .sum_targets
            .iter()
            .find(|a| mp.gathered_arrays.contains(a))
        {
            return Some(format!(
                "{arr} is gathered by the loop at line {} and reduced by the loop at \
                 line {} (ghost-region conflict)",
                mp.line(),
                next_plan.line()
            ));
        }
    }
    None
}

/// Sorted, deduplicated union of string lists.
fn sorted_union(lists: &[&[String]]) -> Vec<String> {
    let mut v: Vec<String> = Vec::new();
    for list in lists {
        for a in *list {
            if !v.iter().any(|x| x == a) {
                v.push(a.clone());
            }
        }
    }
    v.sort_unstable();
    v
}

/// Replace maximal runs of fusable adjacent `Loop` steps with
/// `BuildSchedule` + `FusedLoop` pairs over freshly minted schedule groups.
fn fusion_pass(
    steps: &mut Vec<ExecStep>,
    loops: &[LoopPlan],
    groups: &mut Vec<ScheduleGroup>,
    report: &mut OptReport,
) {
    let mut out: Vec<ExecStep> = Vec::with_capacity(steps.len());
    let mut i = 0;
    while i < steps.len() {
        let lid = match &steps[i] {
            ExecStep::Loop(lid) if fusable(&loops[*lid]) => *lid,
            other => {
                out.push(other.clone());
                i += 1;
                continue;
            }
        };
        let mut members = vec![lid];
        let mut j = i + 1;
        while j < steps.len() && members.len() < MAX_FUSED_MEMBERS {
            let ExecStep::Loop(next) = &steps[j] else {
                break;
            };
            if !fusable(&loops[*next]) {
                break;
            }
            match fuse_conflict(&members, *next, loops) {
                None => {
                    members.push(*next);
                    j += 1;
                }
                Some(reason) => {
                    report.push(OptRule::Fuse, false, loops[*next].line(), reason);
                    break;
                }
            }
        }
        let gid = groups.len();
        let gathered = sorted_union(
            &members
                .iter()
                .map(|&m| loops[m].gathered_arrays.as_slice())
                .collect::<Vec<_>>(),
        );
        let targets = sorted_union(
            &members
                .iter()
                .map(|&m| loops[m].sum_targets.as_slice())
                .collect::<Vec<_>>(),
        );
        let assigned = sorted_union(
            &members
                .iter()
                .map(|&m| loops[m].assigned_arrays.as_slice())
                .collect::<Vec<_>>(),
        );
        let group = ScheduleGroup {
            id: gid,
            decomp: loops[members[0]].decomp.clone(),
            loop_ids: members.clone(),
            deps: members
                .iter()
                .map(|&m| loops[m].indirection_arrays.clone())
                .collect(),
            line: loops[members[0]].line(),
            gathered,
            targets,
            assigned,
        };
        if members.len() > 1 {
            let lines: Vec<usize> = members.iter().map(|&m| loops[m].line()).collect();
            report.push(
                OptRule::Fuse,
                true,
                group.line,
                format!(
                    "fused {} loops (lines {lines:?}) into one schedule: gathers {:?} \
                     and scatter-adds {:?} each move in a single exchange",
                    members.len(),
                    group.gathered,
                    group.targets
                ),
            );
        } else if group.gathered.len() > 1 || group.targets.len() > 1 {
            report.push(
                OptRule::Fuse,
                true,
                group.line,
                format!(
                    "fused the loop's {} gathers and {} scatter-adds into one \
                     multi-array exchange per direction",
                    group.gathered.len(),
                    group.targets.len()
                ),
            );
        }
        groups.push(group);
        out.push(ExecStep::BuildSchedule { group: gid });
        out.push(ExecStep::FusedLoop {
            group: gid,
            overlapped: Vec::new(),
            early_gather: false,
        });
        i = j;
    }
    *steps = out;
}

// ---------------------------------------------------------- schedule-reuse analysis --

/// May-write sets of one time-loop iteration: integer arrays some path may modify,
/// and whether any path redistributes a decomposition.
#[derive(Default)]
struct BodyWrites {
    integers: Vec<String>,
    redistributed: Vec<String>,
}

fn collect_writes(steps: &[ExecStep], loops: &[LoopPlan], writes: &mut BodyWrites) {
    for step in steps {
        match step {
            ExecStep::Distribute { decomp, .. } => {
                if !writes.redistributed.iter().any(|d| d == decomp) {
                    writes.redistributed.push(decomp.clone());
                }
            }
            ExecStep::Loop(lid) => {
                if let LoopKind::IntegerUpdate { modified } = &loops[*lid].kind {
                    for a in modified {
                        if !writes.integers.iter().any(|x| x == a) {
                            writes.integers.push(a.clone());
                        }
                    }
                }
            }
            ExecStep::If {
                then_steps,
                else_steps,
                ..
            } => {
                collect_writes(then_steps, loops, writes);
                collect_writes(else_steps, loops, writes);
            }
            ExecStep::TimeLoop { body, .. } => collect_writes(body, loops, writes),
            ExecStep::FusedLoop { overlapped, .. } => collect_writes(overlapped, loops, writes),
            ExecStep::BuildSchedule { .. } | ExecStep::GatherStart { .. } => {}
        }
    }
}

/// Modification dataflow over one `DO` body: every top-level `BuildSchedule` whose
/// dependence sets no iteration may write — and whose world no iteration may
/// redistribute — is removed from the body and returned for insertion before the
/// loop.  The rest stay put, stamp-guarded, with a diagnostic naming the blocker.
fn hoist_from_body(
    body: &mut Vec<ExecStep>,
    loop_line: usize,
    loops: &[LoopPlan],
    groups: &[ScheduleGroup],
    report: &mut OptReport,
) -> Vec<ExecStep> {
    let mut writes = BodyWrites::default();
    collect_writes(body, loops, &mut writes);
    let mut hoisted = Vec::new();
    let mut kept = Vec::with_capacity(body.len());
    for step in body.drain(..) {
        let ExecStep::BuildSchedule { group } = &step else {
            kept.push(step);
            continue;
        };
        let g = &groups[*group];
        let deps = g.all_deps();
        let dirty: Vec<&String> = deps
            .iter()
            .filter(|d| writes.integers.iter().any(|w| w == *d))
            .collect();
        if !writes.redistributed.is_empty() {
            report.push(
                OptRule::Hoist,
                false,
                g.line,
                format!(
                    "the time loop at line {loop_line} may redistribute {:?}, which \
                     invalidates every schedule; the build for the loop at line {} \
                     stays inside, stamp-guarded",
                    writes.redistributed, g.line
                ),
            );
            kept.push(step);
        } else if !dirty.is_empty() {
            report.push(
                OptRule::Hoist,
                false,
                g.line,
                format!(
                    "indirection array(s) {dirty:?} may be written inside the time \
                     loop at line {loop_line}; the build for the loop at line {} stays \
                     inside and rebuilds stamp-guarded through the schedule cache",
                    g.line
                ),
            );
            kept.push(step);
        } else {
            report.push(
                OptRule::Hoist,
                true,
                g.line,
                format!(
                    "schedule build for the loop at line {} hoisted out of the time \
                     loop at line {loop_line}: its dependences {deps:?} are \
                     loop-invariant",
                    g.line
                ),
            );
            hoisted.push(step);
        }
    }
    *body = kept;
    hoisted
}

// ----------------------------------------------------------------- overlap analysis --

/// Slide independent work into split-phase exchange windows, recursing into `IF`
/// branches and `DO` bodies.  Two rewrites:
///
/// * **prefetch** — for two adjacent plain fused loops with no dependence from the
///   first to the second's gather, start the second gather before the first loop:
///   `[Fused(a), Fused(b)]` → `[GatherStart(b), Fused(a), Fused(b, early)]`;
/// * **slide-in** — an integer-update loop directly after a fused loop, touching
///   none of the group's dependences, moves between the fused gather's start and
///   finish.
fn overlap_pass(
    steps: &mut Vec<ExecStep>,
    loops: &[LoopPlan],
    groups: &[ScheduleGroup],
    report: &mut OptReport,
    in_time_loop: bool,
) {
    for step in steps.iter_mut() {
        match step {
            ExecStep::TimeLoop { body, .. } => overlap_pass(body, loops, groups, report, true),
            ExecStep::If {
                then_steps,
                else_steps,
                ..
            } => {
                overlap_pass(then_steps, loops, groups, report, in_time_loop);
                overlap_pass(else_steps, loops, groups, report, in_time_loop);
            }
            _ => {}
        }
    }

    // Prefetch: scan adjacent fused-loop pairs.
    let mut i = 0;
    while i + 1 < steps.len() {
        let rewrite = match (&steps[i], &steps[i + 1]) {
            (
                ExecStep::FusedLoop {
                    group: g1,
                    overlapped: o1,
                    early_gather: false,
                },
                ExecStep::FusedLoop {
                    group: g2,
                    overlapped: o2,
                    early_gather: false,
                },
            ) if o1.is_empty() && o2.is_empty() => {
                let ga = &groups[*g1];
                let gb = &groups[*g2];
                if gb.gathered.is_empty() {
                    None
                } else if let Some(arr) = gb
                    .gathered
                    .iter()
                    .find(|a| ga.targets.contains(a) || ga.assigned.contains(a))
                {
                    report.push(
                        OptRule::Overlap,
                        false,
                        gb.line,
                        format!(
                            "the loop at line {} gathers {arr}, which the loop at \
                             line {} writes; its gather cannot start early",
                            gb.line, ga.line
                        ),
                    );
                    None
                } else {
                    report.push(
                        OptRule::Overlap,
                        true,
                        gb.line,
                        format!(
                            "gather for the loop at line {} starts split-phase before \
                             the loop at line {}: the exchange flies while that loop \
                             computes",
                            gb.line, ga.line
                        ),
                    );
                    Some(*g2)
                }
            }
            // A guarded (un-hoisted) schedule build between two fused loops keeps
            // the second gather from starting early.
            (ExecStep::FusedLoop { .. }, ExecStep::BuildSchedule { group })
                if in_time_loop && matches!(steps.get(i + 2), Some(ExecStep::FusedLoop { .. })) =>
            {
                let g = &groups[*group];
                report.push(
                    OptRule::Overlap,
                    false,
                    g.line,
                    format!(
                        "the schedule build for the loop at line {} was not hoisted \
                         (its dependences change between iterations), so its gather \
                         cannot start before the preceding loop",
                        g.line
                    ),
                );
                None
            }
            _ => None,
        };
        if let Some(g2) = rewrite {
            steps[i + 1] = ExecStep::FusedLoop {
                group: g2,
                overlapped: Vec::new(),
                early_gather: true,
            };
            steps.insert(i, ExecStep::GatherStart { group: g2 });
            i += 3;
        } else {
            i += 1;
        }
    }

    // Slide-in: integer updates directly after a fused loop move into its window.
    let mut i = 0;
    while i < steps.len() {
        let ExecStep::FusedLoop { group, .. } = &steps[i] else {
            i += 1;
            continue;
        };
        let g = groups[*group].clone();
        if g.gathered.is_empty() {
            i += 1;
            continue;
        }
        while let Some(ExecStep::Loop(lid)) = steps.get(i + 1) {
            let plan = &loops[*lid];
            let LoopKind::IntegerUpdate { modified } = &plan.kind else {
                break;
            };
            let deps = g.all_deps();
            if let Some(arr) = modified.iter().find(|a| deps.iter().any(|d| d == *a)) {
                report.push(
                    OptRule::Overlap,
                    false,
                    plan.line(),
                    format!(
                        "the integer update at line {} writes {arr}, which the loop \
                         at line {} depends on; it cannot overlap that loop's exchange",
                        plan.line(),
                        g.line
                    ),
                );
                break;
            }
            report.push(
                OptRule::Overlap,
                true,
                plan.line(),
                format!(
                    "integer update at line {} slides between the gather start and \
                     finish of the loop at line {} (independent of its dependences \
                     {deps:?})",
                    plan.line(),
                    g.line
                ),
            );
            let moved = steps.remove(i + 1);
            let ExecStep::FusedLoop { overlapped, .. } = &mut steps[i] else {
                unreachable!("checked above");
            };
            overlapped.push(moved);
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    fn opt(src: &str) -> (LoweredProgram, OptReport) {
        optimize(&compile(src).unwrap())
    }

    /// Two adjacent reduction loops over the same space fuse into one group; the
    /// build hoists out of the time loop; the second gather starts early.
    const TWO_LOOP_STEP: &str = "REAL x(32), y(32), f(32), g(32)\n\
         INTEGER ia(32), ib(32)\n\
         C$ DECOMPOSITION reg(32)\n\
         C$ DISTRIBUTE reg(BLOCK)\n\
         C$ ALIGN x, y, f, g WITH reg\n\
         DO istep = 1, 10\n\
         FORALL i = 1, 32\n\
         REDUCE(SUM, f(ia(i)), x(ib(i)))\n\
         END FORALL\n\
         FORALL i = 1, 32\n\
         REDUCE(SUM, g(ia(i)), y(ib(i)))\n\
         END FORALL\n\
         END DO\n";

    #[test]
    fn adjacent_independent_loops_fuse_and_hoist() {
        let (optimized, report) = opt(TWO_LOOP_STEP);
        assert_eq!(optimized.groups.len(), 1, "{report:?}");
        assert_eq!(optimized.groups[0].loop_ids, vec![0, 1]);
        assert!(
            report.has_applied("fuse", "fused 2 loops"),
            "{}",
            report.render()
        );
        assert!(
            report.has_applied("hoist", "hoisted out"),
            "{}",
            report.render()
        );
        // Steps: DISTRIBUTE, hoisted BuildSchedule, TimeLoop(FusedLoop).
        assert!(matches!(
            optimized.steps[1],
            ExecStep::BuildSchedule { group: 0 }
        ));
        let ExecStep::TimeLoop { body, .. } = &optimized.steps[2] else {
            panic!("expected TimeLoop, got {:?}", optimized.steps[2]);
        };
        assert!(
            matches!(
                body[..],
                [ExecStep::FusedLoop {
                    group: 0,
                    early_gather: false,
                    ..
                }]
            ),
            "{body:?}"
        );
    }

    #[test]
    fn flow_dependent_loops_do_not_fuse() {
        // The second loop gathers F, which the first produces.
        let src = "REAL x(32), f(32), g(32)\n\
             INTEGER ia(32)\n\
             C$ DECOMPOSITION reg(32)\n\
             C$ DISTRIBUTE reg(BLOCK)\n\
             C$ ALIGN x, f, g WITH reg\n\
             FORALL i = 1, 32\n\
             REDUCE(SUM, f(ia(i)), x(i))\n\
             END FORALL\n\
             FORALL i = 1, 32\n\
             REDUCE(SUM, g(ia(i)), f(i))\n\
             END FORALL\n";
        let (optimized, report) = opt(src);
        assert_eq!(optimized.groups.len(), 2);
        assert!(
            report.has_blocked("fuse", "flow dependence"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn mid_loop_indirection_write_blocks_hoisting() {
        let src = "REAL x(32), f(32)\n\
             INTEGER ia(32)\n\
             C$ DECOMPOSITION reg(32)\n\
             C$ DISTRIBUTE reg(BLOCK)\n\
             C$ ALIGN x, f WITH reg\n\
             DO istep = 1, 5\n\
             FORALL i = 1, 32\n\
             REDUCE(SUM, f(ia(i)), x(i))\n\
             END FORALL\n\
             FORALL i = 1, 32\n\
             ia(i) = ia(i) + 1\n\
             END FORALL\n\
             END DO\n";
        let (optimized, report) = opt(src);
        assert!(report.has_blocked("hoist", "IA"), "{}", report.render());
        // The build stays inside the time loop.
        let ExecStep::TimeLoop { body, .. } = &optimized.steps[1] else {
            panic!("expected TimeLoop, got {:?}", optimized.steps[1]);
        };
        assert!(
            body.iter()
                .any(|s| matches!(s, ExecStep::BuildSchedule { .. })),
            "{body:?}"
        );
        // And the integer update must NOT slide into the gather window (it writes IA).
        assert!(report.has_blocked("overlap", "IA"), "{}", report.render());
    }

    #[test]
    fn independent_integer_update_slides_into_the_gather_window() {
        let src = "REAL x(32), f(32)\n\
             INTEGER ia(32), ic(32)\n\
             C$ DECOMPOSITION reg(32)\n\
             C$ DISTRIBUTE reg(BLOCK)\n\
             C$ ALIGN x, f WITH reg\n\
             FORALL i = 1, 32\n\
             REDUCE(SUM, f(ia(i)), x(i))\n\
             END FORALL\n\
             FORALL i = 1, 32\n\
             ic(i) = ic(i) + 1\n\
             END FORALL\n";
        let (optimized, report) = opt(src);
        assert!(
            report.has_applied("overlap", "slides"),
            "{}",
            report.render()
        );
        let fused = optimized
            .steps
            .iter()
            .find_map(|s| match s {
                ExecStep::FusedLoop { overlapped, .. } => Some(overlapped),
                _ => None,
            })
            .expect("fused loop exists");
        assert!(
            matches!(fused[..], [ExecStep::Loop(_)]),
            "integer update should have moved into the window: {fused:?}"
        );
    }

    #[test]
    fn adjacent_hoisted_loops_get_split_phase_prefetch() {
        let (optimized, report) = opt("REAL x(32), y(32), f(32)\n\
             INTEGER ia(32), ib(32)\n\
             C$ DECOMPOSITION reg(32)\n\
             C$ DISTRIBUTE reg(BLOCK)\n\
             C$ ALIGN x, y, f WITH reg\n\
             DO istep = 1, 10\n\
             FORALL i = 1, 32\n\
             REDUCE(SUM, f(ia(i)), x(ib(i)))\n\
             END FORALL\n\
             FORALL i = 1, 32\n\
             REDUCE(SUM, x(ia(i)), y(ib(i)))\n\
             END FORALL\n\
             END DO\n");
        // The loops cannot fuse — the second reduces into X, which the first gathers
        // (ghost-region conflict) — but both builds hoist, and the second loop's
        // gather of Y is independent of the first loop's writes (F), so it prefetches.
        assert!(
            report.has_blocked("fuse", "ghost-region conflict"),
            "{}",
            report.render()
        );
        assert!(
            report.has_applied("overlap", "split-phase"),
            "{}",
            report.render()
        );
        let kind = |s: &ExecStep| match s {
            ExecStep::Distribute { .. } => "dist",
            ExecStep::BuildSchedule { .. } => "build",
            ExecStep::GatherStart { .. } => "start",
            ExecStep::FusedLoop {
                early_gather: true, ..
            } => "fused-early",
            ExecStep::FusedLoop { .. } => "fused",
            _ => "other",
        };
        let kinds: Vec<&'static str> = optimized.steps.iter().map(kind).collect();
        assert_eq!(
            kinds,
            vec!["dist", "build", "build", "other"],
            "{:?}",
            optimized.steps
        );
        let ExecStep::TimeLoop { body, .. } = &optimized.steps[3] else {
            panic!("expected TimeLoop, got {:?}", optimized.steps[3]);
        };
        let body_kinds: Vec<&'static str> = body.iter().map(kind).collect();
        assert_eq!(
            body_kinds,
            vec!["start", "fused", "fused-early"],
            "{body:?}"
        );
    }

    #[test]
    fn optimizer_keeps_divergence_findings_and_adds_no_imbalance() {
        // A rank-divergent branch around a collective must still be flagged on the
        // optimized program (regression for the PR 9 divergence checker).
        let src = "REAL x(16)\n\
             INTEGER ia(16)\n\
             C$ DECOMPOSITION reg(16)\n\
             C$ DISTRIBUTE reg(BLOCK)\n\
             C$ ALIGN x WITH reg\n\
             IF (MYRANK .EQ. 0) THEN\n\
             FORALL i = 1, 16\n\
             REDUCE(SUM, x(ia(i)), 1.0)\n\
             END FORALL\n\
             END IF\n";
        let (optimized, _report) = opt(src);
        let findings = analysis::analyze(&analysis::op_tree(&optimized));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("rank-dependent IF"));
        // And the clean two-loop program stays clean after all three passes.
        let (optimized, _report) = opt(TWO_LOOP_STEP);
        assert!(analysis::analyze(&analysis::op_tree(&optimized)).is_empty());
    }
}
