//! The SPMD executor for lowered Fortran-D programs.
//!
//! Running a lowered program through this executor is the stand-in for running the node
//! code a real Fortran 90D/HPF compiler would have generated: the sequence of CHAOS
//! runtime calls (translation-table construction, remapping, index hashing, schedule
//! generation, gathers, scatter-adds, light-weight appends) is the same, only the loop
//! bodies are interpreted rather than compiled.  Tables 6 and 7 compare programs executed
//! this way against the hand-parallelised applications.

use std::collections::HashMap;

use chaos::inspector::build_schedule_from_table;
use chaos::prelude::*;
use mpsim::{ExchangeStats, Rank, TimeSnapshot};

use crate::ast::{ArrayRef, BinOp, CmpOp, Cond, DistSpec, Expr, ReduceOp, Stmt};
use crate::lower::{ExecStep, LoopKind, LoopPlan, LoweredProgram};

/// Modeled time the executor spent in each phase (the columns of Table 6).
#[derive(Debug, Clone, Copy, Default)]
pub struct FortranDPhases {
    /// Remapping data arrays when a `DISTRIBUTE` directive is applied.
    pub remap: TimeSnapshot,
    /// Index analysis and schedule generation (the inspector).
    pub inspector: TimeSnapshot,
    /// Gather / loop execution / scatter (the executor).
    pub executor: TimeSnapshot,
}

impl FortranDPhases {
    /// Total modeled time across phases.
    pub fn total(&self) -> TimeSnapshot {
        self.remap + self.inspector + self.executor
    }
}

struct DecompState {
    ttable: TranslationTable,
    owned_globals: Vec<usize>,
}

struct RealState {
    decomp: String,
    data: DistArray<f64>,
}

struct BucketState {
    decomp: String,
    buckets: HashMap<usize, Vec<f64>>,
}

#[derive(Default)]
struct LoopRuntime {
    hash: Option<IndexHashTable>,
    schedule: Option<CommSchedule>,
    deps_seen: HashMap<String, u64>,
    epoch_seen: u64,
    /// How many times the schedule was rebuilt / reused (exposed for tests and reports).
    rebuilds: u64,
    reuses: u64,
}

/// Runtime state of one optimizer-formed schedule group: a merged hash table with one
/// stamp per member loop, served through the software schedule cache so guarded
/// rebuilds after an indirection-array change can re-serve earlier schedules.
struct GroupRuntime {
    hash: Option<IndexHashTable>,
    cache: ScheduleCache,
    schedule: Option<CommSchedule>,
    /// Per-member snapshot of the modification counters of the arrays the member's
    /// subscripts depend on, from the last build (member index == stamp bit).
    member_deps_seen: Vec<HashMap<String, u64>>,
    epoch_seen: u64,
    rebuilds: u64,
    patches: u64,
    reuses: u64,
}

impl GroupRuntime {
    fn new(n_members: usize) -> Self {
        Self {
            hash: None,
            cache: ScheduleCache::new(4),
            schedule: None,
            member_deps_seen: vec![HashMap::new(); n_members],
            epoch_seen: 0,
            rebuilds: 0,
            patches: 0,
            reuses: 0,
        }
    }
}

/// The per-rank execution engine for one lowered program.
///
/// All methods that move data or build schedules are collective — every rank of the
/// machine must call them in the same order (the usual SPMD contract).
pub struct Executor<'p> {
    program: &'p LoweredProgram,
    my_rank: usize,
    nprocs: usize,
    decomps: HashMap<String, DecompState>,
    reals: HashMap<String, RealState>,
    buckets: HashMap<String, BucketState>,
    integers: HashMap<String, Vec<i64>>,
    mod_counter: HashMap<String, u64>,
    epoch: u64,
    loop_runtime: HashMap<usize, LoopRuntime>,
    group_runtime: HashMap<usize, GroupRuntime>,
    pending_gathers: HashMap<usize, GatherHandle<f64>>,
    exchange: ExchangeStats,
    phases: FortranDPhases,
}

impl<'p> Executor<'p> {
    /// Create an executor; every decomposition starts out BLOCK-distributed (as the
    /// paper's examples do before the irregular `DISTRIBUTE(map)` is applied).
    pub fn new(rank: &mut Rank, program: &'p LoweredProgram) -> Self {
        let mut decomps = HashMap::new();
        for (name, &size) in &program.decomps {
            let dist = BlockDist::new(size, rank.nprocs());
            let ttable = TranslationTable::from_regular(&dist);
            let owned_globals: Vec<usize> = dist.local_globals(rank.rank()).collect();
            decomps.insert(
                name.clone(),
                DecompState {
                    ttable,
                    owned_globals,
                },
            );
        }
        let mut reals = HashMap::new();
        let mut buckets = HashMap::new();
        // Arrays that are append targets become bucket arrays; everything else is a flat
        // distributed array.
        let append_targets: Vec<String> = program
            .loops
            .iter()
            .filter_map(|l| match &l.kind {
                LoopKind::AppendReduction { target } => Some(target.clone()),
                _ => None,
            })
            .collect();
        for (name, (_size, decomp)) in &program.real_arrays {
            if append_targets.contains(name) {
                buckets.insert(
                    name.clone(),
                    BucketState {
                        decomp: decomp.clone(),
                        buckets: HashMap::new(),
                    },
                );
            } else {
                let owned = decomps[decomp].owned_globals.len();
                reals.insert(
                    name.clone(),
                    RealState {
                        decomp: decomp.clone(),
                        data: DistArray::zeroed(owned, 0),
                    },
                );
            }
        }
        let integers = program
            .integer_arrays
            .iter()
            .map(|(name, &size)| (name.clone(), vec![0i64; size]))
            .collect();
        Self {
            program,
            my_rank: rank.rank(),
            nprocs: rank.nprocs(),
            decomps,
            reals,
            buckets,
            integers,
            mod_counter: HashMap::new(),
            epoch: 0,
            loop_runtime: HashMap::new(),
            group_runtime: HashMap::new(),
            pending_gathers: HashMap::new(),
            exchange: ExchangeStats::default(),
            phases: FortranDPhases::default(),
        }
    }

    /// Phase times accumulated so far.
    pub fn phases(&self) -> FortranDPhases {
        self.phases
    }

    /// How many times the given loop's schedule has been rebuilt and reused.
    pub fn schedule_stats(&self, loop_id: usize) -> (u64, u64) {
        self.loop_runtime
            .get(&loop_id)
            .map_or((0, 0), |rt| (rt.rebuilds, rt.reuses))
    }

    /// Exchange traffic (messages and bytes) this rank has issued so far across every
    /// gather, scatter-add, fused multi-array exchange and light-weight append.
    pub fn exchange_stats(&self) -> ExchangeStats {
        self.exchange
    }

    /// How many times a schedule group's merged hash table was fully rebuilt,
    /// incrementally patched, and reused as-is.
    pub fn group_stats(&self, group: usize) -> (u64, u64, u64) {
        self.group_runtime
            .get(&group)
            .map_or((0, 0, 0), |rt| (rt.rebuilds, rt.patches, rt.reuses))
    }

    /// Software schedule-cache statistics of a schedule group.
    pub fn group_cache_stats(&self, group: usize) -> CacheStats {
        self.group_runtime
            .get(&group)
            .map_or_else(CacheStats::default, |rt| rt.cache.stats())
    }

    /// `(send, recv)` message counts of a schedule group's current merged schedule
    /// (one fused gather or scatter-add moves exactly this many messages).
    pub fn group_message_counts(&self, group: usize) -> (usize, usize) {
        self.group_runtime
            .get(&group)
            .and_then(|rt| rt.schedule.as_ref())
            .map_or((0, 0), |s| (s.send_message_count(), s.recv_message_count()))
    }

    /// Set a distributed real array from its global contents (each rank keeps the elements
    /// it owns).  Not collective.
    pub fn set_real_array(&mut self, name: &str, global: &[f64]) {
        let state = self
            .reals
            .get_mut(name)
            .unwrap_or_else(|| panic!("unknown or non-flat real array {name}"));
        let decomp = &self.decomps[&state.decomp];
        assert_eq!(
            global.len(),
            self.program.real_arrays[name].0,
            "array {name} initialised with the wrong length"
        );
        let owned: Vec<f64> = decomp.owned_globals.iter().map(|&g| global[g]).collect();
        state.data = DistArray::new(owned, state.data.ghost_len());
    }

    /// Set a replicated integer array (1-based Fortran values are stored as given).
    /// Marks the array as modified so dependent schedules are regenerated.
    pub fn set_integer_array(&mut self, name: &str, values: &[i64]) {
        let slot = self
            .integers
            .get_mut(name)
            .unwrap_or_else(|| panic!("unknown integer array {name}"));
        assert_eq!(
            values.len(),
            slot.len(),
            "array {name} has the wrong length"
        );
        slot.copy_from_slice(values);
        *self.mod_counter.entry(name.to_string()).or_insert(0) += 1;
    }

    /// Record that the host modified an integer array in place (statement S of Figure 2):
    /// schedules depending on it will be regenerated at their next execution.
    pub fn mark_modified(&mut self, name: &str) {
        assert!(
            self.integers.contains_key(name),
            "unknown integer array {name}"
        );
        *self.mod_counter.entry(name.to_string()).or_insert(0) += 1;
    }

    /// Gather a distributed real array back to its global form (collective).
    pub fn get_real_array(&mut self, rank: &mut Rank, name: &str) -> Vec<f64> {
        let state = &self.reals[name];
        let decomp = &self.decomps[&state.decomp];
        let packed: Vec<(u64, f64)> = decomp
            .owned_globals
            .iter()
            .zip(state.data.owned())
            .map(|(&g, &v)| (g as u64, v))
            .collect();
        let gathered = rank.all_gather(&packed);
        let mut global = vec![0.0; self.program.real_arrays[name].0];
        for part in gathered {
            for (g, v) in part {
                global[g as usize] = v;
            }
        }
        global
    }

    /// Global bucket sizes of an append target (collective).
    pub fn bucket_sizes(&mut self, rank: &mut Rank, name: &str) -> Vec<usize> {
        let state = &self.buckets[name];
        let size = self.program.real_arrays[name].0;
        let mut counts = vec![0.0f64; size];
        for (&cell, values) in &state.buckets {
            counts[cell] += values.len() as f64;
        }
        rank.all_reduce_sum_vec(&counts)
            .into_iter()
            .map(|c| c as usize)
            .collect()
    }

    /// The locally held buckets of an append target, sorted by bucket index, values in
    /// append order.
    pub fn local_buckets(&self, name: &str) -> Vec<(usize, Vec<f64>)> {
        let mut out: Vec<(usize, Vec<f64>)> = self.buckets[name]
            .buckets
            .iter()
            .map(|(&c, v)| (c, v.clone()))
            .collect();
        out.sort_unstable_by_key(|(c, _)| *c);
        out
    }

    /// Empty every bucket of an append target (the host does this between time steps).
    pub fn clear_buckets(&mut self, name: &str) {
        self.buckets
            .get_mut(name)
            .unwrap_or_else(|| panic!("unknown bucket array {name}"))
            .buckets
            .clear();
    }

    /// Run every executable step of the program in source order (collective).
    pub fn run_all(&mut self, rank: &mut Rank) {
        for step in 0..self.program.steps.len() {
            self.run_step(rank, step);
        }
    }

    /// Run one executable step (collective).
    pub fn run_step(&mut self, rank: &mut Rank, step: usize) {
        let step = self.program.steps[step].clone();
        self.exec_step(rank, &step);
    }

    fn exec_step(&mut self, rank: &mut Rank, step: &ExecStep) {
        match step {
            ExecStep::Distribute { decomp, spec } => self.apply_distribute(rank, decomp, spec),
            ExecStep::Loop(loop_id) => self.run_loop(rank, *loop_id),
            ExecStep::If {
                cond,
                then_steps,
                else_steps,
                ..
            } => {
                // Note: the steps inside the branches are collective, so a
                // rank-dependent condition here is exactly the bug class the
                // collective-matching analysis (`crate::analysis`) flags — the
                // interpreter executes what the program says regardless.
                let branch = if self.eval_cond(cond) {
                    then_steps
                } else {
                    else_steps
                };
                for s in branch {
                    self.exec_step(rank, s);
                }
            }
            ExecStep::TimeLoop { lo, hi, body, .. } => {
                let env = HashMap::new();
                let lo = eval_int(lo, &env, &self.integers);
                let hi = eval_int(hi, &env, &self.integers);
                for _ in lo..=hi {
                    for s in body {
                        self.exec_step(rank, s);
                    }
                }
            }
            ExecStep::BuildSchedule { group } => self.build_group_schedule(rank, *group),
            ExecStep::GatherStart { group } => self.start_group_gather(rank, *group),
            ExecStep::FusedLoop {
                group,
                overlapped,
                early_gather,
            } => self.run_fused_loop(rank, *group, overlapped, *early_gather),
        }
    }

    /// Evaluate an IF condition on this rank.  `MYRANK` and `NPROCS` resolve to the
    /// rank's coordinates; integer arrays are readable as usual.
    fn eval_cond(&self, cond: &Cond) -> bool {
        let mut env = HashMap::new();
        env.insert("MYRANK".to_string(), self.my_rank as i64);
        env.insert("NPROCS".to_string(), self.nprocs as i64);
        let l = eval_int(&cond.lhs, &env, &self.integers);
        let r = eval_int(&cond.rhs, &env, &self.integers);
        match cond.op {
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
        }
    }

    /// Apply a `DISTRIBUTE` directive: build the new translation table and remap every
    /// flat real array aligned with the decomposition (collective).
    pub fn apply_distribute(&mut self, rank: &mut Rank, decomp: &str, spec: &DistSpec) {
        let t0 = rank.modeled();
        let size = self.program.decomps[decomp];
        let block = BlockDist::new(size, self.nprocs);
        let my_block: Vec<usize> = block.local_globals(self.my_rank).collect();
        let mut new_ttable = match spec {
            DistSpec::Block => TranslationTable::from_regular(&block),
            DistSpec::Cyclic => TranslationTable::from_regular(&CyclicDist::new(size, self.nprocs)),
            DistSpec::Map(map_name) => {
                let map = &self.integers[map_name];
                let local_map: Vec<usize> = my_block.iter().map(|&g| map[g] as usize).collect();
                TranslationTable::replicated_from_map(rank, &local_map, &block)
                    .expect("map array assigns an element to a non-existent processor")
            }
        };
        // Remap every flat array aligned with this decomposition from its current
        // distribution to the new one, reusing one plan for all of them.  The arrays are
        // visited in name order so that every rank issues the transfers in the same
        // sequence (the remap messages of different arrays share a tag).
        let old_state = &self.decomps[decomp];
        let plan = build_remap(rank, &old_state.owned_globals, &mut new_ttable);
        let mut aligned: Vec<String> = self
            .reals
            .iter()
            .filter(|(_, s)| s.decomp == decomp)
            .map(|(n, _)| n.clone())
            .collect();
        aligned.sort_unstable();
        for name in aligned {
            let state = self.reals.get_mut(&name).expect("array exists");
            let new_owned = remap_values(rank, &plan, state.data.owned(), 0.0);
            state.data = DistArray::new(new_owned, 0);
        }
        let owned_globals = new_ttable.owned_globals(rank);
        self.decomps.insert(
            decomp.to_string(),
            DecompState {
                ttable: new_ttable,
                owned_globals,
            },
        );
        self.epoch += 1;
        self.phases.remap += rank.modeled().since(&t0);
    }

    /// Execute one `FORALL` loop (collective).
    pub fn run_loop(&mut self, rank: &mut Rank, loop_id: usize) {
        let plan = self.program.loop_plan(loop_id).clone();
        match plan.kind.clone() {
            LoopKind::SumReduction => self.run_sum_loop(rank, loop_id),
            LoopKind::AppendReduction { target } => self.run_append_loop(rank, loop_id, &target),
            LoopKind::IntegerUpdate { modified } => {
                self.run_integer_update(rank, loop_id, &modified);
            }
        }
    }

    /// The iterations this rank executes of a sum-reduction loop: owner-computes over
    /// the loop's decomposition when the loop ranges over exactly that index space (the
    /// common case in the paper's templates); otherwise a BLOCK partition of the range.
    fn sum_loop_iterations(&self, plan: &LoopPlan) -> Vec<i64> {
        let Stmt::Forall { lo, hi, .. } = &plan.forall else {
            unreachable!()
        };
        let empty_env = HashMap::new();
        let lo_val = eval_int(lo, &empty_env, &self.integers);
        let hi_val = eval_int(hi, &empty_env, &self.integers);
        let extent = (hi_val - lo_val + 1).max(0) as usize;
        let decomp_state = &self.decomps[&plan.decomp];
        let decomp_size = self.program.decomps[&plan.decomp];
        if extent == decomp_size {
            decomp_state
                .owned_globals
                .iter()
                .filter(|&&g| g < extent)
                .map(|&g| lo_val + g as i64)
                .collect()
        } else {
            BlockDist::new(extent, self.nprocs)
                .local_globals(self.my_rank)
                .map(|g| lo_val + g as i64)
                .collect()
        }
    }

    // --------------------------------------------------------- integer-update loops --

    /// Execute a replicated integer-update FORALL: every rank runs the full iteration
    /// range over its replicated copy (no communication), and the modified arrays'
    /// counters are bumped so dependent schedules rebuild or patch at their next use.
    fn run_integer_update(&mut self, rank: &mut Rank, loop_id: usize, modified: &[String]) {
        let plan = self.program.loop_plan(loop_id).clone();
        let (var, lo, hi, body) = match &plan.forall {
            Stmt::Forall {
                var, lo, hi, body, ..
            } => (var.clone(), lo.clone(), hi.clone(), body.clone()),
            _ => unreachable!(),
        };
        let empty_env = HashMap::new();
        let lo_val = eval_int(&lo, &empty_env, &self.integers);
        let hi_val = eval_int(&hi, &empty_env, &self.integers);
        let mut work = 0usize;
        for i in lo_val..=hi_val {
            let mut env = HashMap::new();
            env.insert(var.clone(), i);
            for stmt in &body {
                let Stmt::Assign { target, value } = stmt else {
                    unreachable!("integer-update bodies hold only assignments");
                };
                let v = eval_int(value, &env, &self.integers);
                let idx = (eval_int(&target.index, &env, &self.integers) - 1) as usize;
                self.integers
                    .get_mut(&target.array)
                    .expect("integer array exists")[idx] = v;
                work += 1;
            }
        }
        rank.charge_compute(work as f64 * 0.2);
        for name in modified {
            *self.mod_counter.entry(name.clone()).or_insert(0) += 1;
        }
    }

    // ----------------------------------------------------------- sum-reduction loops --

    fn run_sum_loop(&mut self, rank: &mut Rank, loop_id: usize) {
        let plan = self.program.loop_plan(loop_id).clone();
        let (var, body) = match &plan.forall {
            Stmt::Forall { var, body, .. } => (var.clone(), body.clone()),
            _ => unreachable!(),
        };
        let iterations = self.sum_loop_iterations(&plan);
        let decomp_state = &self.decomps[&plan.decomp];
        let owned_len = decomp_state.owned_globals.len();

        // All real arrays of the loop must share the decomposition (one hash table / one
        // schedule per loop — the merged schedule a compiler would emit).
        for a in plan
            .gathered_arrays
            .iter()
            .chain(&plan.sum_targets)
            .chain(&plan.assigned_arrays)
        {
            assert_eq!(
                self.reals[a].decomp, plan.decomp,
                "loop {loop_id}: array {a} is aligned with a different decomposition"
            );
        }

        // ---- inspector (with schedule reuse) -------------------------------------------
        let t0 = rank.modeled();
        let mut rt = self.loop_runtime.remove(&loop_id).unwrap_or_default();
        let deps_now: HashMap<String, u64> = plan
            .indirection_arrays
            .iter()
            .map(|a| (a.clone(), self.mod_counter.get(a).copied().unwrap_or(0)))
            .collect();
        let valid =
            rt.schedule.is_some() && rt.epoch_seen == self.epoch && rt.deps_seen == deps_now;
        if !valid {
            let mut hash = IndexHashTable::new(self.my_rank, owned_len);
            let stamp = Stamp::new(0);
            // Collect every distributed-array reference the loop body makes, for every
            // local iteration, and hash the subscripts.
            let mut referenced: Vec<usize> = Vec::new();
            for &i in &iterations {
                let mut env = HashMap::new();
                env.insert(var.clone(), i);
                collect_refs(&body, &env, &self.integers, &self.reals, &mut referenced);
            }
            hash.hash_in_replicated(rank, &decomp_state.ttable, &referenced, stamp);
            let schedule = build_schedule_from_table(rank, &hash, StampQuery::single(stamp));
            rt.hash = Some(hash);
            rt.schedule = Some(schedule);
            rt.deps_seen = deps_now;
            rt.epoch_seen = self.epoch;
            rt.rebuilds += 1;
        } else {
            rt.reuses += 1;
        }
        self.phases.inspector += rank.modeled().since(&t0);

        // ---- executor -------------------------------------------------------------------
        let t0 = rank.modeled();
        let hash = rt.hash.as_ref().expect("hash table built above");
        let schedule = rt.schedule.as_ref().expect("schedule built above");
        let ghost = schedule.ghost_len();
        let mut stats = ExchangeStats::default();
        // Gather read arrays; clear ghosts of reduction targets.
        for name in &plan.gathered_arrays {
            let state = self.reals.get_mut(name).expect("gathered array exists");
            state.data.ensure_ghost(ghost);
            stats = stats.merged(&gather(rank, schedule, &mut state.data));
        }
        for name in &plan.sum_targets {
            let state = self.reals.get_mut(name).expect("target array exists");
            state.data.ensure_ghost(ghost);
            state.data.clear_ghost();
        }

        // Interpret the loop body.
        let mut work = 0usize;
        for &i in &iterations {
            let mut env = HashMap::new();
            env.insert(var.clone(), i);
            work += exec_body(
                &body,
                &mut env,
                &self.integers,
                &mut self.reals,
                &decomp_state.ttable,
                hash,
                owned_len,
                self.my_rank,
            );
        }
        rank.charge_compute(work as f64);

        // Fold off-processor contributions back and drop the ghost accumulations.
        for name in &plan.sum_targets {
            let state = self.reals.get_mut(name).expect("target array exists");
            stats = stats.merged(&scatter_add(rank, schedule, &mut state.data));
            state.data.clear_ghost();
        }
        self.exchange = self.exchange.merged(&stats);
        self.phases.executor += rank.modeled().since(&t0);
        self.loop_runtime.insert(loop_id, rt);
    }

    // ------------------------------------------------------------------- append loops --

    fn run_append_loop(&mut self, rank: &mut Rank, loop_id: usize, target: &str) {
        let plan = self.program.loop_plan(loop_id).clone();
        let (var, lo, hi, body) = match &plan.forall {
            Stmt::Forall {
                var, lo, hi, body, ..
            } => (var.clone(), lo.clone(), hi.clone(), body.clone()),
            _ => unreachable!(),
        };
        let (reduce_target, value_expr) = find_append(&body)
            .unwrap_or_else(|| panic!("append loop {loop_id} has no REDUCE(APPEND) statement"));

        let empty_env = HashMap::new();
        let lo_val = eval_int(&lo, &empty_env, &self.integers);
        let hi_val = eval_int(&hi, &empty_env, &self.integers);
        let extent = (hi_val - lo_val + 1).max(0) as usize;

        let source_decomp = &self.decomps[&plan.decomp];
        let iterations: Vec<i64> = source_decomp
            .owned_globals
            .iter()
            .filter(|&&g| g < extent)
            .map(|&g| lo_val + g as i64)
            .collect();
        let bucket_decomp_name = self.buckets[target].decomp.clone();
        let bucket_ttable = &self.decomps[&bucket_decomp_name].ttable;

        // ---- inspector: destination processors + light-weight schedule -----------------
        let t0 = rank.modeled();
        let mut dests: Vec<ProcId> = Vec::with_capacity(iterations.len());
        let mut payload: Vec<(u64, f64)> = Vec::with_capacity(iterations.len());
        for &i in &iterations {
            let mut env = HashMap::new();
            env.insert(var.clone(), i);
            let bucket = (eval_int(&reduce_target.index, &env, &self.integers) - 1) as usize;
            let value = eval_owned_value(
                &value_expr,
                &env,
                &self.integers,
                &self.reals,
                &self.decomps,
                self.my_rank,
            );
            let loc = bucket_ttable
                .lookup_local(bucket)
                .expect("bucket arrays use replicated translation tables");
            dests.push(loc.owner as usize);
            payload.push((bucket as u64, value));
        }
        let sched = LightweightSchedule::build(rank, &dests);
        self.phases.inspector += rank.modeled().since(&t0);

        // ---- executor: move and append ---------------------------------------------------
        let t0 = rank.modeled();
        self.exchange = self
            .exchange
            .merged(&lightweight_stats(&sched, self.my_rank));
        let arrivals = scatter_append(rank, &sched, &payload);
        let bucket_state = self.buckets.get_mut(target).expect("bucket array exists");
        for (bucket, value) in arrivals {
            bucket_state
                .buckets
                .entry(bucket as usize)
                .or_default()
                .push(value);
        }
        rank.charge_compute(iterations.len() as f64 * 0.3);
        self.phases.executor += rank.modeled().since(&t0);
    }

    // ------------------------------------------------------ optimized schedule groups --

    /// Reference-collection for one member loop of a schedule group: every
    /// distributed-array element its body touches, over this rank's iterations.
    fn member_refs(&self, loop_id: usize) -> Vec<usize> {
        let plan = self.program.loop_plan(loop_id);
        let Stmt::Forall { var, body, .. } = &plan.forall else {
            unreachable!()
        };
        let iterations = self.sum_loop_iterations(plan);
        let mut refs = Vec::new();
        for &i in &iterations {
            let mut env = HashMap::new();
            env.insert(var.clone(), i);
            collect_refs(body, &env, &self.integers, &self.reals, &mut refs);
        }
        refs
    }

    /// `BuildSchedule` step: (re)build or incrementally patch the group's merged hash
    /// table — one stamp per member loop — then fetch the merged schedule through the
    /// software schedule cache (collective).
    fn build_group_schedule(&mut self, rank: &mut Rank, group_id: usize) {
        let group = self.program.groups[group_id].clone();
        let t0 = rank.modeled();
        let owned_len = self.decomps[&group.decomp].owned_globals.len();
        let mut rt = self
            .group_runtime
            .remove(&group_id)
            .unwrap_or_else(|| GroupRuntime::new(group.loop_ids.len()));
        // Current modification counters of each member's subscript dependencies; every
        // rank bumps the counters identically, so the patch decisions below are SPMD.
        let deps_now: Vec<HashMap<String, u64>> = group
            .deps
            .iter()
            .map(|deps| {
                deps.iter()
                    .map(|a| (a.clone(), self.mod_counter.get(a).copied().unwrap_or(0)))
                    .collect()
            })
            .collect();
        let epoch_ok = rt.epoch_seen == self.epoch;
        if let Some(hash) = rt.hash.as_mut().filter(|_| epoch_ok) {
            // Patch only the members whose indirection arrays changed since the last
            // build — incremental maintenance instead of a full inspector rerun.
            let mut patched = false;
            for (m, &lid) in group.loop_ids.iter().enumerate() {
                if rt.member_deps_seen[m] == deps_now[m] {
                    continue;
                }
                let stamp = Stamp::new(m as u8);
                let refs = self.member_refs(lid);
                let ttable = &self.decomps[&group.decomp].ttable;
                hash.clear_stamp(stamp);
                hash.hash_in_replicated(rank, ttable, &refs, stamp);
                rt.patches += 1;
                patched = true;
            }
            if !patched {
                rt.reuses += 1;
            }
        } else {
            // First build, or the decomposition changed: retire cached schedules tied
            // to the old table and hash every member from scratch.
            if let Some(old) = rt.hash.take() {
                rt.cache.retire_table(&old);
            }
            let mut hash = IndexHashTable::new(self.my_rank, owned_len);
            for (m, &lid) in group.loop_ids.iter().enumerate() {
                let refs = self.member_refs(lid);
                let ttable = &self.decomps[&group.decomp].ttable;
                hash.hash_in_replicated(rank, ttable, &refs, Stamp::new(m as u8));
            }
            rt.hash = Some(hash);
            rt.rebuilds += 1;
        }
        let stamps: Vec<Stamp> = (0..group.loop_ids.len())
            .map(|m| Stamp::new(m as u8))
            .collect();
        let hash = rt.hash.as_ref().expect("hash table built above");
        let (sched, _outcome) = rt.cache.schedule(rank, hash, StampQuery::any_of(&stamps));
        rt.schedule = Some(sched.clone());
        rt.member_deps_seen = deps_now;
        rt.epoch_seen = self.epoch;
        self.group_runtime.insert(group_id, rt);
        self.phases.inspector += rank.modeled().since(&t0);
    }

    /// `GatherStart` step: post the fused gather's sends for the group's read arrays,
    /// leaving the handle pending so independent work overlaps the exchange
    /// (collective).
    fn start_group_gather(&mut self, rank: &mut Rank, group_id: usize) {
        let group = self.program.groups[group_id].clone();
        assert!(
            !group.gathered.is_empty(),
            "GatherStart is only emitted for groups with gathered arrays"
        );
        let t0 = rank.modeled();
        let rt = self
            .group_runtime
            .get(&group_id)
            .expect("a BuildSchedule step precedes every GatherStart");
        assert_eq!(
            rt.epoch_seen, self.epoch,
            "stale schedule: the optimizer must not start a gather across a DISTRIBUTE"
        );
        let sched = rt
            .schedule
            .as_ref()
            .expect("schedule built by BuildSchedule");
        let arrays: Vec<&DistArray<f64>> =
            group.gathered.iter().map(|n| &self.reals[n].data).collect();
        let handle = gather_start_dyn(rank, sched, &arrays);
        self.pending_gathers.insert(group_id, handle);
        self.phases.executor += rank.modeled().since(&t0);
    }

    /// `FusedLoop` step: one fused gather for all the group's read arrays, the member
    /// loop bodies in program order against the merged schedule, then one fused
    /// scatter-add for all the reduction targets (collective).
    ///
    /// `early_gather` finishes a gather posted by a preceding `GatherStart`;
    /// `overlapped` steps (proved independent by the optimizer) execute between this
    /// loop's gather start and finish.
    fn run_fused_loop(
        &mut self,
        rank: &mut Rank,
        group_id: usize,
        overlapped: &[ExecStep],
        early_gather: bool,
    ) {
        let group = self.program.groups[group_id].clone();
        let rt = self
            .group_runtime
            .remove(&group_id)
            .expect("a BuildSchedule step precedes every FusedLoop");
        assert_eq!(
            rt.epoch_seen, self.epoch,
            "stale schedule: the optimizer must not hoist across a DISTRIBUTE"
        );
        let sched = rt
            .schedule
            .clone()
            .expect("schedule built by BuildSchedule");
        let ghost = sched.ghost_len();
        let t0 = rank.modeled();
        for a in group
            .gathered
            .iter()
            .chain(&group.targets)
            .chain(&group.assigned)
        {
            assert_eq!(
                self.reals[a].decomp, group.decomp,
                "group {group_id}: array {a} is aligned with a different decomposition"
            );
        }

        // ---- fused gather (plain, finishing an early start, or overlapping) ----------
        let mut stats = ExchangeStats::default();
        if group.gathered.is_empty() {
            assert!(
                !early_gather,
                "GatherStart is only emitted for groups with gathered arrays"
            );
            for s in overlapped {
                self.exec_step(rank, s);
            }
        } else {
            // Move the gathered arrays out of the map so the fused exchange can hold
            // simultaneous borrows of all of them (overlapped steps touch only
            // replicated integer state, which stays behind in `self`).
            let mut gathered: Vec<(String, RealState)> = group
                .gathered
                .iter()
                .map(|n| {
                    (
                        n.clone(),
                        self.reals.remove(n).expect("gathered array exists"),
                    )
                })
                .collect();
            for (_, s) in &mut gathered {
                s.data.ensure_ghost(ghost);
            }
            if early_gather {
                let handle = self
                    .pending_gathers
                    .remove(&group_id)
                    .expect("a GatherStart step precedes an early-gather FusedLoop");
                for s in overlapped {
                    self.exec_step(rank, s);
                }
                let mut refs: Vec<&mut DistArray<f64>> =
                    gathered.iter_mut().map(|(_, s)| &mut s.data).collect();
                stats = stats.merged(&gather_finish_dyn(rank, handle, &sched, &mut refs));
            } else if overlapped.is_empty() {
                let mut refs: Vec<&mut DistArray<f64>> =
                    gathered.iter_mut().map(|(_, s)| &mut s.data).collect();
                stats = stats.merged(&gather_multi_dyn(rank, &sched, &mut refs));
            } else {
                let handle = {
                    let refs: Vec<&DistArray<f64>> =
                        gathered.iter().map(|(_, s)| &s.data).collect();
                    gather_start_dyn(rank, &sched, &refs)
                };
                for s in overlapped {
                    self.exec_step(rank, s);
                }
                let mut refs: Vec<&mut DistArray<f64>> =
                    gathered.iter_mut().map(|(_, s)| &mut s.data).collect();
                stats = stats.merged(&gather_finish_dyn(rank, handle, &sched, &mut refs));
            }
            for (n, s) in gathered {
                self.reals.insert(n, s);
            }
        }
        for name in &group.targets {
            let state = self.reals.get_mut(name).expect("target array exists");
            state.data.ensure_ghost(ghost);
            state.data.clear_ghost();
        }

        // ---- member bodies, in program order ------------------------------------------
        let hash = rt.hash.as_ref().expect("hash table built by BuildSchedule");
        let owned_len = self.decomps[&group.decomp].owned_globals.len();
        let mut work = 0usize;
        for &lid in &group.loop_ids {
            let plan = self.program.loop_plan(lid);
            let (var, body) = match &plan.forall {
                Stmt::Forall { var, body, .. } => (var.clone(), body.clone()),
                _ => unreachable!(),
            };
            let iterations = self.sum_loop_iterations(plan);
            let decomp_state = &self.decomps[&group.decomp];
            for &i in &iterations {
                let mut env = HashMap::new();
                env.insert(var.clone(), i);
                work += exec_body(
                    &body,
                    &mut env,
                    &self.integers,
                    &mut self.reals,
                    &decomp_state.ttable,
                    hash,
                    owned_len,
                    self.my_rank,
                );
            }
        }
        rank.charge_compute(work as f64);

        // ---- fused scatter-add ---------------------------------------------------------
        if !group.targets.is_empty() {
            let mut targets: Vec<(String, RealState)> = group
                .targets
                .iter()
                .map(|n| {
                    (
                        n.clone(),
                        self.reals.remove(n).expect("target array exists"),
                    )
                })
                .collect();
            let mut refs: Vec<&mut DistArray<f64>> =
                targets.iter_mut().map(|(_, s)| &mut s.data).collect();
            stats = stats.merged(&scatter_add_multi_dyn(rank, &sched, &mut refs));
            for (_, s) in &mut targets {
                s.data.clear_ghost();
            }
            for (n, s) in targets {
                self.reals.insert(n, s);
            }
        }
        self.exchange = self.exchange.merged(&stats);
        self.phases.executor += rank.modeled().since(&t0);
        self.group_runtime.insert(group_id, rt);
    }
}

/// Message/byte accounting of a light-weight append exchange, derived from its
/// schedule (the payload items are `(bucket, value)` pairs).
fn lightweight_stats(sched: &LightweightSchedule, my_rank: usize) -> ExchangeStats {
    let item_bytes = std::mem::size_of::<(u64, f64)>() as u64;
    let mut stats = ExchangeStats::default();
    for (p, list) in sched.send_item_lists.iter().enumerate() {
        if p != my_rank && !list.is_empty() {
            stats.msgs_sent += 1;
            stats.bytes_sent += list.len() as u64 * item_bytes;
        }
    }
    for (p, &cnt) in sched.recv_counts.iter().enumerate() {
        if p != my_rank && cnt > 0 {
            stats.msgs_received += 1;
            stats.bytes_received += cnt as u64 * item_bytes;
        }
    }
    stats
}

// ------------------------------------------------------------------ expression helpers --

fn eval_int(expr: &Expr, env: &HashMap<String, i64>, integers: &HashMap<String, Vec<i64>>) -> i64 {
    match expr {
        Expr::Int(n) => *n,
        Expr::Real(x) => *x as i64,
        Expr::Var(v) => *env
            .get(v)
            .unwrap_or_else(|| panic!("unknown loop variable or scalar {v}")),
        Expr::Element(ArrayRef { array, index }) => {
            let idx = eval_int(index, env, integers) - 1;
            let values = integers
                .get(array)
                .unwrap_or_else(|| panic!("array {array} cannot be used in an index expression"));
            values[idx as usize]
        }
        Expr::Binary(op, a, b) => {
            let x = eval_int(a, env, integers);
            let y = eval_int(b, env, integers);
            match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
            }
        }
    }
}

/// Resolve the local reference of a global element of the loop's decomposition, using the
/// hash table for off-processor elements (exactly what compiler-generated executor code
/// does with PARTI/CHAOS local indices).
fn local_ref(
    hash: &IndexHashTable,
    ttable: &TranslationTable,
    owned_len: usize,
    my_rank: usize,
    global: usize,
) -> LocalRef {
    let loc = ttable
        .lookup_local(global)
        .expect("the interpreter's decompositions use replicated translation tables");
    if loc.owner as usize == my_rank {
        LocalRef(loc.offset as usize)
    } else {
        let entry = hash
            .get(global)
            .unwrap_or_else(|| panic!("element {global} was not hashed by the inspector"));
        LocalRef(
            owned_len
                + entry
                    .ghost_slot
                    .expect("off-processor entry has a ghost slot") as usize,
        )
    }
}

/// Evaluate a real-valued expression inside a loop iteration.
#[allow(clippy::too_many_arguments)]
fn eval_real(
    expr: &Expr,
    env: &HashMap<String, i64>,
    integers: &HashMap<String, Vec<i64>>,
    reals: &HashMap<String, RealState>,
    ttable: &TranslationTable,
    hash: &IndexHashTable,
    owned_len: usize,
    my_rank: usize,
) -> f64 {
    match expr {
        Expr::Int(n) => *n as f64,
        Expr::Real(x) => *x,
        Expr::Var(v) => {
            *env.get(v)
                .unwrap_or_else(|| panic!("unknown loop variable or scalar {v}")) as f64
        }
        Expr::Element(ArrayRef { array, index }) => {
            if let Some(values) = integers.get(array) {
                let idx = eval_int(index, env, integers) - 1;
                values[idx as usize] as f64
            } else {
                let state = reals
                    .get(array)
                    .unwrap_or_else(|| panic!("unknown array {array}"));
                let g = (eval_int(index, env, integers) - 1) as usize;
                let r = local_ref(hash, ttable, owned_len, my_rank, g);
                state.data[r]
            }
        }
        Expr::Binary(op, a, b) => {
            let x = eval_real(a, env, integers, reals, ttable, hash, owned_len, my_rank);
            let y = eval_real(b, env, integers, reals, ttable, hash, owned_len, my_rank);
            match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
            }
        }
    }
}

/// Evaluate a value expression whose distributed-array references must be owned directly
/// (subscript = loop variable) — the append-loop case, where nothing has been gathered.
fn eval_owned_value(
    expr: &Expr,
    env: &HashMap<String, i64>,
    integers: &HashMap<String, Vec<i64>>,
    reals: &HashMap<String, RealState>,
    decomps: &HashMap<String, DecompState>,
    my_rank: usize,
) -> f64 {
    match expr {
        Expr::Int(n) => *n as f64,
        Expr::Real(x) => *x,
        Expr::Var(v) => {
            *env.get(v)
                .unwrap_or_else(|| panic!("unknown loop variable or scalar {v}")) as f64
        }
        Expr::Element(ArrayRef { array, index }) => {
            if let Some(values) = integers.get(array) {
                let idx = eval_int(index, env, integers) - 1;
                values[idx as usize] as f64
            } else {
                let state = reals
                    .get(array)
                    .unwrap_or_else(|| panic!("unknown array {array}"));
                let g = (eval_int(index, env, integers) - 1) as usize;
                let loc = decomps[&state.decomp]
                    .ttable
                    .lookup_local(g)
                    .expect("the interpreter's decompositions use replicated translation tables");
                assert_eq!(
                    loc.owner as usize, my_rank,
                    "append-loop values must reference locally owned elements"
                );
                state.data.owned()[loc.offset as usize]
            }
        }
        Expr::Binary(op, a, b) => {
            let x = eval_owned_value(a, env, integers, reals, decomps, my_rank);
            let y = eval_owned_value(b, env, integers, reals, decomps, my_rank);
            match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
            }
        }
    }
}

/// Reference-collection pass of the inspector: record every distributed-array element the
/// body touches for the given iteration environment.
fn collect_refs(
    body: &[Stmt],
    env: &HashMap<String, i64>,
    integers: &HashMap<String, Vec<i64>>,
    reals: &HashMap<String, RealState>,
    out: &mut Vec<usize>,
) {
    for stmt in body {
        match stmt {
            Stmt::Forall {
                var, lo, hi, body, ..
            } => {
                let lo = eval_int(lo, env, integers);
                let hi = eval_int(hi, env, integers);
                for j in lo..=hi {
                    let mut inner = env.clone();
                    inner.insert(var.clone(), j);
                    collect_refs(body, &inner, integers, reals, out);
                }
            }
            Stmt::Reduce { target, value, .. } => {
                collect_expr_refs(&Expr::Element(target.clone()), env, integers, reals, out);
                collect_expr_refs(value, env, integers, reals, out);
            }
            Stmt::Assign { target, value } => {
                collect_expr_refs(&Expr::Element(target.clone()), env, integers, reals, out);
                collect_expr_refs(value, env, integers, reals, out);
            }
            _ => {}
        }
    }
}

fn collect_expr_refs(
    expr: &Expr,
    env: &HashMap<String, i64>,
    integers: &HashMap<String, Vec<i64>>,
    reals: &HashMap<String, RealState>,
    out: &mut Vec<usize>,
) {
    match expr {
        Expr::Element(ArrayRef { array, index }) => {
            if reals.contains_key(array) {
                out.push((eval_int(index, env, integers) - 1) as usize);
            }
            collect_expr_refs(index, env, integers, reals, out);
        }
        Expr::Binary(_, a, b) => {
            collect_expr_refs(a, env, integers, reals, out);
            collect_expr_refs(b, env, integers, reals, out);
        }
        _ => {}
    }
}

/// Execute the body for one iteration; returns the number of reduce/assign statements
/// evaluated (the work measure).
#[allow(clippy::too_many_arguments)]
fn exec_body(
    body: &[Stmt],
    env: &mut HashMap<String, i64>,
    integers: &HashMap<String, Vec<i64>>,
    reals: &mut HashMap<String, RealState>,
    ttable: &TranslationTable,
    hash: &IndexHashTable,
    owned_len: usize,
    my_rank: usize,
) -> usize {
    let mut work = 0usize;
    for stmt in body {
        match stmt {
            Stmt::Forall {
                var, lo, hi, body, ..
            } => {
                let lo = eval_int(lo, env, integers);
                let hi = eval_int(hi, env, integers);
                for j in lo..=hi {
                    env.insert(var.clone(), j);
                    work += exec_body(body, env, integers, reals, ttable, hash, owned_len, my_rank);
                }
                env.remove(var);
            }
            Stmt::Reduce { op, target, value } => {
                debug_assert_eq!(*op, ReduceOp::Sum, "append handled by run_append_loop");
                let v = eval_real(
                    value, env, integers, reals, ttable, hash, owned_len, my_rank,
                );
                let g = (eval_int(&target.index, env, integers) - 1) as usize;
                let r = local_ref(hash, ttable, owned_len, my_rank, g);
                let state = reals.get_mut(&target.array).expect("target array exists");
                state.data[r] += v;
                work += 1;
            }
            Stmt::Assign { target, value } => {
                let v = eval_real(
                    value, env, integers, reals, ttable, hash, owned_len, my_rank,
                );
                let g = (eval_int(&target.index, env, integers) - 1) as usize;
                let loc = ttable
                    .lookup_local(g)
                    .expect("the interpreter's decompositions use replicated translation tables");
                debug_assert_eq!(
                    loc.owner as usize, my_rank,
                    "direct assignments must be to owned elements under owner-computes"
                );
                let state = reals.get_mut(&target.array).expect("target array exists");
                state.data.owned_mut()[loc.offset as usize] = v;
                work += 1;
            }
            _ => {}
        }
    }
    work
}

fn find_append(body: &[Stmt]) -> Option<(ArrayRef, Expr)> {
    for stmt in body {
        match stmt {
            Stmt::Reduce {
                op: ReduceOp::Append,
                target,
                value,
            } => return Some((target.clone(), value.clone())),
            Stmt::Forall { body, .. } => {
                if let Some(found) = find_append(body) {
                    return Some(found);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use mpsim::{run, MachineConfig};

    /// The Figure 1 loop: x(ia(i)) += y(ib(i)), checked against a sequential evaluation.
    #[test]
    fn figure1_loop_matches_sequential_evaluation() {
        let n = 48;
        let src = format!(
            "REAL x({n}), y({n})\n\
             INTEGER ia({n}), ib({n})\n\
             C$ DECOMPOSITION reg({n})\n\
             C$ DISTRIBUTE reg(BLOCK)\n\
             C$ ALIGN x, y WITH reg\n\
             FORALL i = 1, {n}\n\
             REDUCE(SUM, x(ia(i)), y(ib(i)))\n\
             END FORALL\n"
        );
        let ia: Vec<i64> = (0..n).map(|i| ((i * 7) % n + 1) as i64).collect();
        let ib: Vec<i64> = (0..n).map(|i| ((i * 13 + 5) % n + 1) as i64).collect();
        let x0: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y0: Vec<f64> = (0..n).map(|i| (i * i) as f64 * 0.5).collect();
        // Sequential reference.
        let mut expected = x0.clone();
        for i in 0..n {
            expected[(ia[i] - 1) as usize] += y0[(ib[i] - 1) as usize];
        }

        let out = run(MachineConfig::new(4), move |rank| {
            let lowered = compile(&src).unwrap();
            let mut exec = Executor::new(rank, &lowered);
            exec.set_integer_array("IA", &ia);
            exec.set_integer_array("IB", &ib);
            exec.set_real_array("X", &x0);
            exec.set_real_array("Y", &y0);
            exec.run_all(rank);
            exec.get_real_array(rank, "X")
        });
        for got in &out.results {
            for (a, b) in got.iter().zip(&expected) {
                assert!((a - b).abs() < 1e-9, "mismatch: {a} vs {b}");
            }
        }
    }

    /// The Figure 10 pattern: nested FORALL over a CSR non-bonded list with four
    /// REDUCE(SUM) statements, plus an irregular redistribution through a map array.
    #[test]
    fn figure10_style_loop_with_irregular_distribution() {
        let n = 30usize;
        // CSR list: atom i interacts with (i+1) mod n and (i+5) mod n.
        let mut inblo = Vec::with_capacity(n + 1);
        let mut jnb: Vec<i64> = Vec::new();
        inblo.push(1i64);
        for i in 0..n {
            jnb.push(((i + 1) % n + 1) as i64);
            jnb.push(((i + 5) % n + 1) as i64);
            inblo.push(1 + jnb.len() as i64);
        }
        let jnb_len = jnb.len();
        let src = format!(
            "REAL x({n}), dx({n})\n\
             INTEGER map({n}), inblo({m}), jnb({k})\n\
             C$ DECOMPOSITION reg({n})\n\
             C$ DISTRIBUTE reg(BLOCK)\n\
             C$ ALIGN x, dx WITH reg\n\
             C$ DISTRIBUTE reg(map)\n\
             FORALL i = 1, {n}\n\
             FORALL j = inblo(i), inblo(i+1) - 1\n\
             REDUCE(SUM, dx(jnb(j)), x(jnb(j)) - x(i))\n\
             REDUCE(SUM, dx(i), x(i) - x(jnb(j)))\n\
             END FORALL\n\
             END FORALL\n",
            n = n,
            m = n + 1,
            k = jnb_len
        );
        let map: Vec<i64> = (0..n).map(|g| ((g * 3 + 1) % 3) as i64).collect();
        let x0: Vec<f64> = (0..n).map(|i| (i as f64).sin() * 10.0).collect();
        // Sequential reference.
        let mut expected = vec![0.0f64; n];
        for i in 0..n {
            for j in (inblo[i] - 1)..(inblo[i + 1] - 1) {
                let partner = (jnb[j as usize] - 1) as usize;
                expected[partner] += x0[partner] - x0[i];
                expected[i] += x0[i] - x0[partner];
            }
        }

        let inblo2 = inblo.clone();
        let jnb2 = jnb.clone();
        let out = run(MachineConfig::new(3), move |rank| {
            let lowered = compile(&src).unwrap();
            let mut exec = Executor::new(rank, &lowered);
            exec.set_integer_array("MAP", &map);
            exec.set_integer_array("INBLO", &inblo2);
            exec.set_integer_array("JNB", &jnb2);
            exec.set_real_array("X", &x0);
            exec.set_real_array("DX", &vec![0.0; n]);
            exec.run_all(rank);
            exec.get_real_array(rank, "DX")
        });
        for got in &out.results {
            for (a, b) in got.iter().zip(&expected) {
                assert!((a - b).abs() < 1e-9, "mismatch: {a} vs {b}");
            }
        }
    }

    /// The Figure 11 pattern: REDUCE(APPEND) moves particle values to their new cells
    /// with a light-weight schedule; a second loop recomputes the per-cell counts.
    #[test]
    fn figure11_append_loop_routes_values_to_cells() {
        let nparticles = 60usize;
        let ncells = 12usize;
        let src = format!(
            "REAL vel({np}), newvel({nc})\n\
             INTEGER icell({np})\n\
             C$ DECOMPOSITION parts({np})\n\
             C$ DECOMPOSITION cells({nc})\n\
             C$ DISTRIBUTE parts(BLOCK)\n\
             C$ DISTRIBUTE cells(BLOCK)\n\
             C$ ALIGN vel WITH parts\n\
             C$ ALIGN newvel WITH cells\n\
             FORALL i = 1, {np}\n\
             REDUCE(APPEND, newvel(icell(i)), vel(i))\n\
             END FORALL\n",
            np = nparticles,
            nc = ncells
        );
        let icell: Vec<i64> = (0..nparticles)
            .map(|i| ((i * 5) % ncells + 1) as i64)
            .collect();
        let vel: Vec<f64> = (0..nparticles).map(|i| i as f64 + 0.25).collect();
        // Sequential reference: per-cell value multisets and counts.
        let mut expected: Vec<Vec<u64>> = vec![Vec::new(); ncells];
        for i in 0..nparticles {
            expected[(icell[i] - 1) as usize].push(vel[i].to_bits());
        }
        for cell in &mut expected {
            cell.sort_unstable();
        }

        let out = run(MachineConfig::new(4), move |rank| {
            let lowered = compile(&src).unwrap();
            let mut exec = Executor::new(rank, &lowered);
            exec.set_integer_array("ICELL", &icell);
            exec.set_real_array("VEL", &vel);
            exec.run_all(rank);
            let sizes = exec.bucket_sizes(rank, "NEWVEL");
            (sizes, exec.local_buckets("NEWVEL"))
        });
        // Every rank agrees on the global sizes.
        for (sizes, _) in &out.results {
            for (c, s) in sizes.iter().enumerate() {
                assert_eq!(*s, expected[c].len(), "cell {c} count mismatch");
            }
        }
        // The union of local buckets matches the expected multisets.
        let mut got: Vec<Vec<u64>> = vec![Vec::new(); ncells];
        for (_, local) in &out.results {
            for (cell, values) in local {
                got[*cell].extend(values.iter().map(|v| v.to_bits()));
            }
        }
        for cell in &mut got {
            cell.sort_unstable();
        }
        assert_eq!(got, expected);
    }

    /// Schedule reuse: re-running a loop without touching its indirection arrays must not
    /// rebuild the schedule; modifying one must.
    #[test]
    fn schedules_are_reused_until_an_indirection_array_changes() {
        let n = 40usize;
        let src = format!(
            "REAL x({n}), y({n})\n\
             INTEGER ia({n})\n\
             C$ DECOMPOSITION reg({n})\n\
             C$ DISTRIBUTE reg(BLOCK)\n\
             C$ ALIGN x, y WITH reg\n\
             FORALL i = 1, {n}\n\
             REDUCE(SUM, x(ia(i)), y(ia(i)))\n\
             END FORALL\n"
        );
        let out = run(MachineConfig::new(2), move |rank| {
            let lowered = compile(&src).unwrap();
            let loop_id = 0;
            let mut exec = Executor::new(rank, &lowered);
            let ia: Vec<i64> = (0..n).map(|i| ((i * 3) % n + 1) as i64).collect();
            exec.set_integer_array("IA", &ia);
            exec.set_real_array("X", &vec![0.0; n]);
            exec.set_real_array("Y", &vec![1.0; n]);
            // Run the loop four times: the first builds the schedule, the next two reuse
            // it, then a modification forces a rebuild.
            exec.run_loop(rank, loop_id);
            exec.run_loop(rank, loop_id);
            exec.run_loop(rank, loop_id);
            let before = exec.schedule_stats(loop_id);
            let mut ia2 = ia.clone();
            ia2[0] = ((7 % n) + 1) as i64;
            exec.set_integer_array("IA", &ia2);
            exec.run_loop(rank, loop_id);
            let after = exec.schedule_stats(loop_id);
            (before, after, exec.phases().inspector.total_us() > 0.0)
        });
        for ((rebuilds0, reuses0), (rebuilds1, reuses1), inspector_nonzero) in &out.results {
            assert_eq!(*rebuilds0, 1);
            assert_eq!(*reuses0, 2);
            assert_eq!(*rebuilds1, 2);
            assert_eq!(*reuses1, 2);
            assert!(inspector_nonzero);
        }
    }

    /// IF blocks take the branch their condition selects; `NPROCS`/`MYRANK` resolve per
    /// rank.  (Both conditions here evaluate identically on every rank — genuinely
    /// divergent branches around collectives are the bug class `crate::analysis` and the
    /// mpsim collective ledger exist to flag.)
    #[test]
    fn if_blocks_execute_the_taken_branch() {
        let n = 16usize;
        let src = format!(
            "REAL x({n})\n\
             INTEGER ia({n})\n\
             C$ DECOMPOSITION reg({n})\n\
             C$ DISTRIBUTE reg(BLOCK)\n\
             C$ ALIGN x WITH reg\n\
             IF (NPROCS .GT. 1) THEN\n\
             FORALL i = 1, {n}\n\
             REDUCE(SUM, x(ia(i)), 1.0)\n\
             END FORALL\n\
             ELSE\n\
             FORALL i = 1, {n}\n\
             REDUCE(SUM, x(ia(i)), 100.0)\n\
             END FORALL\n\
             END IF\n\
             IF (MYRANK .GE. 0) THEN\n\
             FORALL i = 1, {n}\n\
             REDUCE(SUM, x(ia(i)), 10.0)\n\
             END FORALL\n\
             END IF\n"
        );
        let out = run(MachineConfig::new(2), move |rank| {
            let lowered = compile(&src).unwrap();
            let mut exec = Executor::new(rank, &lowered);
            let ia: Vec<i64> = (1..=n as i64).collect();
            exec.set_integer_array("IA", &ia);
            exec.set_real_array("X", &vec![0.0; n]);
            exec.run_all(rank);
            exec.get_real_array(rank, "X")
        });
        // With two procs the first IF takes its THEN branch (+1.0), the second always
        // runs (+10.0); the ELSE (+100.0) must not have executed.
        for x in &out.results {
            assert!(x.iter().all(|&v| (v - 11.0).abs() < 1e-9), "{x:?}");
        }
    }

    #[test]
    fn phases_accumulate_and_redistribution_counts_as_remap() {
        let n = 24usize;
        let src = format!(
            "REAL x({n})\n\
             INTEGER map({n})\n\
             C$ DECOMPOSITION reg({n})\n\
             C$ DISTRIBUTE reg(BLOCK)\n\
             C$ ALIGN x WITH reg\n\
             C$ DISTRIBUTE reg(map)\n"
        );
        let out = run(MachineConfig::new(3), move |rank| {
            let lowered = compile(&src).unwrap();
            let mut exec = Executor::new(rank, &lowered);
            exec.set_integer_array("MAP", &(0..n).map(|g| (g % 3) as i64).collect::<Vec<_>>());
            exec.set_real_array("X", &(0..n).map(|g| g as f64).collect::<Vec<_>>());
            exec.run_all(rank);
            let x = exec.get_real_array(rank, "X");
            (exec.phases().remap.total_us(), x)
        });
        for (remap_us, x) in &out.results {
            assert!(*remap_us > 0.0, "DISTRIBUTE should be billed as remap time");
            // Values survive the two redistributions.
            for (g, v) in x.iter().enumerate() {
                assert_eq!(*v, g as f64);
            }
        }
    }
}
