//! SPMD collective-matching analysis.
//!
//! Every step a lowered Fortran-D program executes — redistribution, inspector/executor
//! loops — is *collective*: all ranks must reach it, in the same order, with the same
//! shape.  A collective under rank-dependent control flow breaks that contract, and the
//! failure is rarely local: the program deadlocks (one rank waits in a gather the others
//! never join) or silently mismatches payloads several steps later.  The mpsim
//! collective ledger catches this class at *runtime*; this module is the *static* half —
//! it flags the divergence from the lowered IR alone, before anything runs.
//!
//! The analysis works on a tree of [`OpNode`]s:
//!
//! * [`op_tree`] builds the tree from a [`LoweredProgram`], giving every step a
//!   *footprint* — a canonical string two steps share iff they issue a compatible
//!   collective call sequence (same kind, decomposition and array shape);
//! * [`analyze`] walks any tree and reports [`Finding`]s:
//!   1. a rank-dependent branch whose two paths have different collective footprints —
//!      different ranks would issue different collective sequences;
//!   2. split-phase imbalance — a [`OpNode::Start`] not matched by a [`OpNode::Finish`]
//!      on every path (or a finish with no start).  The Fortran-D front end never emits
//!      split-phase nodes itself; runtimes that lower to split-phase exchange handles
//!      (mpsim's `start_exchange`/`finish`) can hand-build trees to check their
//!      schedules with the same walker.
//!
//! `fortrand_check` (`src/bin/fortrand_check.rs`) wraps [`check_source`] as a CLI so CI
//! can gate example programs clean and seeded-divergent fixtures flagged.

use crate::lower::{ExecStep, LoopKind, LoweredProgram};

/// One node of the collective-operation tree the analysis walks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpNode {
    /// A collective operation every rank must join.
    Collective {
        /// Operation kind (`"distribute"`, `"forall.sum"`, …).
        kind: String,
        /// Canonical shape: decomposition, arrays moved — two collectives match iff
        /// their kind and detail agree.
        detail: String,
    },
    /// Start of a split-phase operation with the given handle id.
    Start(u32),
    /// Finish of the split-phase operation with the given handle id.
    Finish(u32),
    /// A two-way branch.
    Branch {
        /// Whether the condition can differ across ranks (mentions `MYRANK`).
        rank_dependent: bool,
        /// Operations of the THEN path.
        then_ops: Vec<OpNode>,
        /// Operations of the ELSE path.
        else_ops: Vec<OpNode>,
    },
    /// A sequential loop whose body repeats some rank-invariant number of times (a `DO`
    /// time loop).  Split-phase handles opened in the body must be finished in the same
    /// iteration — otherwise the second iteration's start would nest under the first's
    /// unfinished handle.
    Loop(Vec<OpNode>),
}

/// One reported problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Human-readable description naming the operation and why it is unsafe.
    pub message: String,
}

/// Build the collective-operation tree of a lowered program.
pub fn op_tree(program: &LoweredProgram) -> Vec<OpNode> {
    steps_to_ops(program, &program.steps)
}

fn steps_to_ops(program: &LoweredProgram, steps: &[ExecStep]) -> Vec<OpNode> {
    let mut ops = Vec::new();
    for step in steps {
        match step {
            ExecStep::Distribute { decomp, spec } => ops.push(OpNode::Collective {
                kind: "distribute".to_string(),
                detail: format!("{decomp}:{spec:?}"),
            }),
            ExecStep::Loop(loop_id) => {
                let plan = program.loop_plan(*loop_id);
                let (kind, moved) = match &plan.kind {
                    LoopKind::SumReduction => (
                        "forall.sum",
                        format!(
                            "gather={:?},scatter_add={:?}",
                            plan.gathered_arrays, plan.sum_targets
                        ),
                    ),
                    LoopKind::AppendReduction { target } => {
                        ("forall.append", format!("scatter_append={target}"))
                    }
                    // Replicated integer updates move no data, but every rank must run
                    // them identically or the replicated indirection state diverges —
                    // model them as a collective so rank-dependent guards are flagged.
                    LoopKind::IntegerUpdate { modified } => {
                        ("forall.intupdate", format!("modified={modified:?}"))
                    }
                };
                ops.push(OpNode::Collective {
                    kind: kind.to_string(),
                    detail: format!("{}:{moved}", plan.decomp),
                });
            }
            ExecStep::If {
                rank_dependent,
                then_steps,
                else_steps,
                ..
            } => ops.push(OpNode::Branch {
                rank_dependent: *rank_dependent,
                then_ops: steps_to_ops(program, then_steps),
                else_ops: steps_to_ops(program, else_steps),
            }),
            ExecStep::TimeLoop { body, .. } => {
                ops.push(OpNode::Loop(steps_to_ops(program, body)));
            }
            ExecStep::BuildSchedule { group } => {
                let g = &program.groups[*group];
                // Identify the collective by its structure (decomposition, member
                // count, dependence set), never by group or loop ids — symmetric IF
                // branches get distinct ids for identical collective footprints.
                ops.push(OpNode::Collective {
                    kind: "schedule.build".to_string(),
                    detail: format!(
                        "{}:members={},deps={:?}",
                        g.decomp,
                        g.loop_ids.len(),
                        g.all_deps()
                    ),
                });
            }
            ExecStep::GatherStart { group } => ops.push(OpNode::Start(*group as u32)),
            ExecStep::FusedLoop {
                group,
                overlapped,
                early_gather,
            } => {
                let g = &program.groups[*group];
                let gather_detail = format!("{}:gather={:?}", g.decomp, g.gathered);
                if *early_gather {
                    // The gather was started by a preceding GatherStart node.
                    ops.push(OpNode::Finish(*group as u32));
                } else if !overlapped.is_empty() {
                    ops.push(OpNode::Start(*group as u32));
                    ops.extend(steps_to_ops(program, overlapped));
                    ops.push(OpNode::Finish(*group as u32));
                } else if !g.gathered.is_empty() {
                    ops.push(OpNode::Collective {
                        kind: "fused.gather".to_string(),
                        detail: gather_detail,
                    });
                }
                ops.push(OpNode::Collective {
                    kind: "fused.loop".to_string(),
                    detail: format!(
                        "{}:members={},scatter_add={:?}",
                        g.decomp,
                        g.loop_ids.len(),
                        g.targets
                    ),
                });
            }
        }
    }
    ops
}

/// Analyze an operation tree; an empty result means the program's collective structure
/// is rank-invariant and split-phase balanced.
pub fn analyze(ops: &[OpNode]) -> Vec<Finding> {
    let mut findings = Vec::new();
    check_branches(ops, &mut findings);
    let mut open: Vec<u32> = Vec::new();
    check_handles(ops, &mut open, &mut findings);
    for h in open {
        findings.push(Finding {
            message: format!("split-phase handle #{h} is started but never finished"),
        });
    }
    findings
}

/// Compile Fortran-D source and analyze it in one call (what `fortrand_check` runs).
pub fn check_source(source: &str) -> Result<Vec<Finding>, String> {
    let lowered = crate::compile(source)?;
    Ok(analyze(&op_tree(&lowered)))
}

// ------------------------------------------------------- rank-dependent branch check --

/// Canonical footprint of a subtree: equal strings ⇔ the subtrees issue matching
/// collective sequences on every rank that executes them.
fn footprint(ops: &[OpNode]) -> String {
    let mut parts = Vec::new();
    for op in ops {
        match op {
            OpNode::Collective { kind, detail } => parts.push(format!("{kind}({detail})")),
            OpNode::Start(h) => parts.push(format!("start#{h}")),
            OpNode::Finish(h) => parts.push(format!("finish#{h}")),
            OpNode::Branch {
                then_ops, else_ops, ..
            } => parts.push(format!(
                "if[{}|{}]",
                footprint(then_ops),
                footprint(else_ops)
            )),
            OpNode::Loop(body) => parts.push(format!("do[{}]", footprint(body))),
        }
    }
    parts.join(";")
}

/// The first collective (rendered) on which two paths differ, for the report.
fn first_difference(then_ops: &[OpNode], else_ops: &[OpNode]) -> String {
    let t: Vec<String> = then_ops
        .iter()
        .map(|o| footprint(std::slice::from_ref(o)))
        .collect();
    let e: Vec<String> = else_ops
        .iter()
        .map(|o| footprint(std::slice::from_ref(o)))
        .collect();
    let k = t.iter().zip(e.iter()).take_while(|(a, b)| a == b).count();
    let render = |v: &[String]| match v.get(k) {
        Some(op) => op.clone(),
        None => format!("<end of path after {} ops>", v.len()),
    };
    format!(
        "op #{k}: THEN path runs {}, ELSE path runs {}",
        render(&t),
        render(&e)
    )
}

fn check_branches(ops: &[OpNode], findings: &mut Vec<Finding>) {
    for op in ops {
        if let OpNode::Branch {
            rank_dependent,
            then_ops,
            else_ops,
        } = op
        {
            if *rank_dependent && footprint(then_ops) != footprint(else_ops) {
                findings.push(Finding {
                    message: format!(
                        "collective sequence diverges under a rank-dependent IF \
                         (different ranks take different branches) — {}",
                        first_difference(then_ops, else_ops)
                    ),
                });
            }
            check_branches(then_ops, findings);
            check_branches(else_ops, findings);
        } else if let OpNode::Loop(body) = op {
            check_branches(body, findings);
        }
    }
}

// ------------------------------------------------------------ split-phase balancing --

/// Walk a path, tracking open split-phase handles.  At a branch, both paths are walked
/// from the same open set; the paths must agree on the resulting set, otherwise a handle
/// is open on one path and not the other, and the walk continues with the THEN result.
fn check_handles(ops: &[OpNode], open: &mut Vec<u32>, findings: &mut Vec<Finding>) {
    for op in ops {
        match op {
            OpNode::Collective { .. } => {}
            OpNode::Start(h) => open.push(*h),
            OpNode::Finish(h) => match open.iter().rposition(|x| x == h) {
                Some(at) => {
                    open.remove(at);
                }
                None => findings.push(Finding {
                    message: format!(
                        "split-phase handle #{h} is finished but was never started on this path"
                    ),
                }),
            },
            OpNode::Branch {
                then_ops, else_ops, ..
            } => {
                let mut open_then = open.clone();
                let mut open_else = open.clone();
                check_handles(then_ops, &mut open_then, findings);
                check_handles(else_ops, &mut open_else, findings);
                let mut sorted_then = open_then.clone();
                let mut sorted_else = open_else.clone();
                sorted_then.sort_unstable();
                sorted_else.sort_unstable();
                if sorted_then != sorted_else {
                    findings.push(Finding {
                        message: format!(
                            "split-phase handles open after an IF differ by path: \
                             THEN leaves {sorted_then:?} open, ELSE leaves {sorted_else:?} open \
                             — some handle is not finished on all paths"
                        ),
                    });
                }
                *open = open_then;
            }
            OpNode::Loop(body) => {
                // The body repeats: whatever handles it opens it must also finish, or
                // the second iteration starts under the first's unfinished handle.
                let mut open_body = open.clone();
                check_handles(body, &mut open_body, findings);
                let mut sorted_before = open.clone();
                let mut sorted_after = open_body.clone();
                sorted_before.sort_unstable();
                sorted_after.sort_unstable();
                if sorted_before != sorted_after {
                    findings.push(Finding {
                        message: format!(
                            "split-phase handles opened inside a DO body must be finished \
                             in the same iteration: one pass changes the open set from \
                             {sorted_before:?} to {sorted_after:?}"
                        ),
                    });
                }
                *open = open_body;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coll(kind: &str, detail: &str) -> OpNode {
        OpNode::Collective {
            kind: kind.to_string(),
            detail: detail.to_string(),
        }
    }

    // ---------------------------------------------------------------- hand-built trees

    #[test]
    fn straight_line_collectives_are_clean() {
        let ops = vec![coll("distribute", "REG:Block"), coll("forall.sum", "REG:x")];
        assert!(analyze(&ops).is_empty());
    }

    #[test]
    fn rank_dependent_branch_with_matching_paths_is_clean() {
        // Both branches issue the same collective footprint, so every rank joins the
        // same sequence no matter which path it takes.
        let ops = vec![OpNode::Branch {
            rank_dependent: true,
            then_ops: vec![coll("forall.sum", "REG:x")],
            else_ops: vec![coll("forall.sum", "REG:x")],
        }];
        assert!(analyze(&ops).is_empty());
    }

    #[test]
    fn rank_dependent_branch_with_one_sided_collective_is_flagged() {
        let ops = vec![OpNode::Branch {
            rank_dependent: true,
            then_ops: vec![coll("forall.sum", "REG:x")],
            else_ops: vec![],
        }];
        let findings = analyze(&ops);
        assert_eq!(findings.len(), 1);
        assert!(
            findings[0].message.contains("rank-dependent IF"),
            "{}",
            findings[0].message
        );
        assert!(
            findings[0].message.contains("forall.sum"),
            "{}",
            findings[0].message
        );
    }

    #[test]
    fn rank_independent_branch_with_different_paths_is_clean() {
        // Same condition on every rank → all ranks take the same path; differing paths
        // are fine.
        let ops = vec![OpNode::Branch {
            rank_dependent: false,
            then_ops: vec![coll("forall.sum", "REG:x")],
            else_ops: vec![coll("forall.append", "CELLS:v")],
        }];
        assert!(analyze(&ops).is_empty());
    }

    #[test]
    fn nested_rank_dependent_branch_is_found() {
        let ops = vec![OpNode::Branch {
            rank_dependent: false,
            then_ops: vec![OpNode::Branch {
                rank_dependent: true,
                then_ops: vec![coll("distribute", "REG:Map")],
                else_ops: vec![],
            }],
            else_ops: vec![],
        }];
        assert_eq!(analyze(&ops).len(), 1);
    }

    #[test]
    fn balanced_split_phase_is_clean() {
        let ops = vec![
            OpNode::Start(1),
            OpNode::Start(2),
            coll("compute", "overlap"),
            OpNode::Finish(2),
            OpNode::Finish(1),
        ];
        assert!(analyze(&ops).is_empty());
    }

    #[test]
    fn unfinished_handle_is_flagged() {
        let ops = vec![OpNode::Start(3), coll("forall.sum", "REG:x")];
        let findings = analyze(&ops);
        assert_eq!(findings.len(), 1);
        assert!(
            findings[0].message.contains("never finished"),
            "{}",
            findings[0].message
        );
    }

    #[test]
    fn finish_without_start_is_flagged() {
        let findings = analyze(&[OpNode::Finish(9)]);
        assert_eq!(findings.len(), 1);
        assert!(
            findings[0].message.contains("never started"),
            "{}",
            findings[0].message
        );
    }

    #[test]
    fn handle_finished_on_one_path_only_is_flagged() {
        let ops = vec![
            OpNode::Start(4),
            OpNode::Branch {
                rank_dependent: false,
                then_ops: vec![OpNode::Finish(4)],
                else_ops: vec![],
            },
        ];
        let findings = analyze(&ops);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("not finished on all paths")),
            "{findings:?}"
        );
    }

    // ------------------------------------------------------------- end-to-end source

    const CLEAN_GUARDED: &str = "REAL x(16)\n\
         INTEGER ia(16)\n\
         C$ DECOMPOSITION reg(16)\n\
         C$ DISTRIBUTE reg(BLOCK)\n\
         C$ ALIGN x WITH reg\n\
         IF (NPROCS .GT. 1) THEN\n\
         FORALL i = 1, 16\n\
         REDUCE(SUM, x(ia(i)), 1.0)\n\
         END FORALL\n\
         END IF\n";

    const ROOT_ONLY_LOOP: &str = "REAL x(16)\n\
         INTEGER ia(16)\n\
         C$ DECOMPOSITION reg(16)\n\
         C$ DISTRIBUTE reg(BLOCK)\n\
         C$ ALIGN x WITH reg\n\
         IF (MYRANK .EQ. 0) THEN\n\
         FORALL i = 1, 16\n\
         REDUCE(SUM, x(ia(i)), 1.0)\n\
         END FORALL\n\
         END IF\n";

    #[test]
    fn guarded_but_rank_independent_source_is_clean() {
        assert!(check_source(CLEAN_GUARDED).unwrap().is_empty());
    }

    #[test]
    fn root_only_collective_source_is_flagged() {
        let findings = check_source(ROOT_ONLY_LOOP).unwrap();
        assert_eq!(findings.len(), 1);
        assert!(
            findings[0].message.contains("rank-dependent IF"),
            "{}",
            findings[0].message
        );
    }

    #[test]
    fn rank_dependent_source_with_identical_branches_is_clean() {
        // Structurally identical loops on both paths (distinct loop ids, same
        // footprint): every rank issues the same collective calls.
        let src = "REAL x(16)\n\
             INTEGER ia(16)\n\
             C$ DECOMPOSITION reg(16)\n\
             C$ DISTRIBUTE reg(BLOCK)\n\
             C$ ALIGN x WITH reg\n\
             IF (MYRANK .EQ. 0) THEN\n\
             FORALL i = 1, 16\n\
             REDUCE(SUM, x(ia(i)), 1.0)\n\
             END FORALL\n\
             ELSE\n\
             FORALL i = 1, 16\n\
             REDUCE(SUM, x(ia(i)), 2.0)\n\
             END FORALL\n\
             END IF\n";
        assert!(check_source(src).unwrap().is_empty());
    }

    #[test]
    fn rank_dependent_redistribution_is_flagged() {
        let src = "REAL x(16)\n\
             INTEGER map(16)\n\
             C$ DECOMPOSITION reg(16)\n\
             C$ DISTRIBUTE reg(BLOCK)\n\
             C$ ALIGN x WITH reg\n\
             IF (MYRANK .GE. 2) THEN\n\
             C$ DISTRIBUTE reg(map)\n\
             ELSE\n\
             C$ DISTRIBUTE reg(CYCLIC)\n\
             END IF\n";
        let findings = check_source(src).unwrap();
        assert_eq!(findings.len(), 1);
        assert!(
            findings[0].message.contains("distribute"),
            "{}",
            findings[0].message
        );
    }
}
