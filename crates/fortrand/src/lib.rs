//! # fortrand — compile-time support for adaptive irregular problems
//!
//! Section 5 of the paper proposes Fortran D / HPF language extensions for adaptive
//! irregular problems — irregular `DISTRIBUTE(map)` distributions, `FORALL` loops with
//! `REDUCE(SUM, …)` reductions, and a new `REDUCE(APPEND, …)` intrinsic that tells the
//! compiler a data movement is an unordered append so it can generate light-weight-schedule
//! code — and evaluates a prototype implementation in the Syracuse Fortran 90D compiler.
//!
//! This crate is that prototype's analogue: a small front end for the language subset used
//! in Figures 7–11, a lowering pass that turns each `FORALL` into an inspector/executor
//! plan over the CHAOS runtime, and an SPMD interpreter that executes the lowered program
//! on the [`mpsim`] machine — the moral equivalent of running the compiler-generated node
//! program.  Tables 6 and 7 compare programs executed this way against the hand-written
//! parallelisations in the `charmm` and `dsmc` crates.
//!
//! ## Pipeline
//!
//! ```text
//!  source text ── lexer ──> tokens ── parser ──> ast::Program
//!       ── lower ──> lower::LoweredProgram (per-FORALL inspector/executor plans)
//!       ── interp::Executor ──> runs on mpsim + chaos (SPMD)
//!       └─ analysis ──> static collective-matching check (rank-dependent IFs,
//!          split-phase balance); CLI wrapper in `src/bin/fortrand_check.rs`
//! ```
//!
//! ## Simplifications relative to a full HPF compiler (documented in DESIGN.md)
//!
//! * arrays are one-dimensional (the paper's loop templates are expressible this way);
//! * `INTEGER` arrays (indirection arrays, map arrays) are replicated on every processor,
//!   as the Fortran 90D prototype replicated its maparrays;
//! * the host program drives the outer time-step loop and tells the executor when an
//!   indirection array has been modified (statement S of Figure 2); the executor then
//!   regenerates schedules, otherwise it reuses them — the record-keeping described in
//!   §5.3.1.

pub mod analysis;
pub mod ast;
pub mod interp;
pub mod lexer;
pub mod lower;
pub mod opt;
pub mod parser;

pub use analysis::{check_source, Finding, OpNode};
pub use ast::{DistSpec, Program, ReduceOp};
pub use interp::Executor;
pub use lower::{LoopKind, LoweredProgram};
pub use opt::{optimize, OptDiag, OptReport, OptRule};

/// Convenience: parse and lower a source program in one call.
pub fn compile(source: &str) -> Result<LoweredProgram, String> {
    let tokens = lexer::tokenize(source)?;
    let program = parser::parse(&tokens)?;
    lower::lower(&program)
}

/// Parse, lower, and optimize: the full compiler loop.  Returns the transformed
/// program (hoisted schedule builds, fused exchanges, split-phase overlap) along with
/// the diagnostic report explaining every decision.
pub fn compile_optimized(source: &str) -> Result<(LoweredProgram, OptReport), String> {
    Ok(opt::optimize(&compile(source)?))
}
