//! Tokenizer for the Fortran-D subset of Figures 7–11.
//!
//! The syntax is line-oriented Fortran: `C$` / `!$` directive prefixes are stripped, `C` /
//! `!` comments are skipped, keywords are case-insensitive.

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (upper-cased).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Equals,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// A Fortran dot-operator: `.EQ.`, `.NE.`, `.LT.`, `.LE.`, `.GT.`, `.GE.`
    /// (upper-cased, without the dots).
    DotOp(String),
    /// End of a source line (statements are line-delimited in Fortran).
    Newline,
}

/// Tokenize a source string.  Returns an error naming the offending line and character.
///
/// Every source line — comment cards and blank lines included — contributes exactly one
/// [`Token::Newline`], so a token's 1-based source line is one plus the number of
/// `Newline` tokens before it.  The parser leans on this to report real source lines in
/// its [`crate::parser::ParseError`]s.
pub fn tokenize(source: &str) -> Result<Vec<Token>, String> {
    let mut tokens = Vec::new();
    for (line_no, raw_line) in source.lines().enumerate() {
        let mut line = raw_line.trim();
        // Strip directive prefixes; skip pure comment lines (keeping their newline so
        // line numbers stay true).
        if let Some(rest) = line.strip_prefix("C$").or_else(|| line.strip_prefix("c$")) {
            line = rest.trim();
        } else if let Some(rest) = line.strip_prefix("!$") {
            line = rest.trim();
        } else if line.starts_with('C') && line.len() > 1 && line.chars().nth(1) == Some(' ') {
            tokens.push(Token::Newline); // classic Fortran comment card
            continue;
        } else if line.starts_with('!') || line == "C" || line == "c" {
            tokens.push(Token::Newline);
            continue;
        }
        if line.is_empty() {
            tokens.push(Token::Newline);
            continue;
        }
        let mut chars = line.char_indices().peekable();
        while let Some(&(i, c)) = chars.peek() {
            match c {
                ' ' | '\t' => {
                    chars.next();
                }
                '(' => {
                    tokens.push(Token::LParen);
                    chars.next();
                }
                ')' => {
                    tokens.push(Token::RParen);
                    chars.next();
                }
                ',' => {
                    tokens.push(Token::Comma);
                    chars.next();
                }
                '=' => {
                    tokens.push(Token::Equals);
                    chars.next();
                }
                '+' => {
                    tokens.push(Token::Plus);
                    chars.next();
                }
                '-' => {
                    tokens.push(Token::Minus);
                    chars.next();
                }
                '*' => {
                    tokens.push(Token::Star);
                    chars.next();
                }
                '/' => {
                    tokens.push(Token::Slash);
                    chars.next();
                }
                '!' => break, // trailing comment
                // A `.` followed by a letter starts a dot-operator (`.EQ.`, `.LT.`, …),
                // not a real literal.
                '.' if matches!(
                    line[i + 1..].chars().next(),
                    Some(d) if d.is_ascii_alphabetic()
                ) =>
                {
                    chars.next(); // leading dot
                    let mut end = i + 1;
                    while let Some(&(j, d)) = chars.peek() {
                        if d.is_ascii_alphabetic() {
                            end = j + d.len_utf8();
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    let name = line[i + 1..end].to_ascii_uppercase();
                    match chars.peek() {
                        Some(&(_, '.')) => {
                            chars.next(); // closing dot
                        }
                        _ => {
                            return Err(format!(
                                "line {}: unterminated dot-operator '.{name}'",
                                line_no + 1
                            ))
                        }
                    }
                    if !matches!(name.as_str(), "EQ" | "NE" | "LT" | "LE" | "GT" | "GE") {
                        return Err(format!(
                            "line {}: unknown dot-operator '.{name}.'",
                            line_no + 1
                        ));
                    }
                    tokens.push(Token::DotOp(name));
                }
                c if c.is_ascii_digit() || c == '.' => {
                    let mut end = i;
                    let mut saw_dot = false;
                    while let Some(&(j, d)) = chars.peek() {
                        if d.is_ascii_digit() || (d == '.' && !saw_dot) {
                            saw_dot |= d == '.';
                            end = j + d.len_utf8();
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    let text = &line[i..end];
                    if saw_dot {
                        tokens.push(Token::Real(text.parse().map_err(|_| {
                            format!("line {}: bad real literal '{text}'", line_no + 1)
                        })?));
                    } else {
                        tokens.push(Token::Int(text.parse().map_err(|_| {
                            format!("line {}: bad integer literal '{text}'", line_no + 1)
                        })?));
                    }
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let mut end = i;
                    while let Some(&(j, d)) = chars.peek() {
                        if d.is_ascii_alphanumeric() || d == '_' {
                            end = j + d.len_utf8();
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    tokens.push(Token::Ident(line[i..end].to_ascii_uppercase()));
                }
                other => {
                    return Err(format!(
                        "line {}: unexpected character '{other}'",
                        line_no + 1
                    ))
                }
            }
        }
        tokens.push(Token::Newline);
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_declarations_and_directives() {
        let toks = tokenize("REAL x(100), y(100)\nC$ DISTRIBUTE reg(BLOCK)\n").unwrap();
        assert_eq!(toks[0], Token::Ident("REAL".into()));
        assert_eq!(toks[1], Token::Ident("X".into()));
        assert_eq!(toks[2], Token::LParen);
        assert_eq!(toks[3], Token::Int(100));
        assert!(toks.contains(&Token::Ident("DISTRIBUTE".into())));
        assert!(toks.contains(&Token::Ident("BLOCK".into())));
        // Two logical lines → two newline markers.
        assert_eq!(toks.iter().filter(|t| **t == Token::Newline).count(), 2);
    }

    #[test]
    fn skips_comments_and_blank_lines_but_keeps_their_newlines() {
        // Comment cards and blank lines produce no tokens of their own, yet still count
        // one Newline each — that is what keeps parse-error line numbers true to the
        // source.
        let toks = tokenize("C this is a comment card\n\n! another comment\nREAL x(4)\n").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Newline,
                Token::Newline,
                Token::Newline,
                Token::Ident("REAL".into()),
                Token::Ident("X".into()),
                Token::LParen,
                Token::Int(4),
                Token::RParen,
                Token::Newline
            ]
        );
    }

    #[test]
    fn numbers_and_operators() {
        let toks = tokenize("x(i) = x(i) + 2.5 * y(i) - 1\n").unwrap();
        assert!(toks.contains(&Token::Real(2.5)));
        assert!(toks.contains(&Token::Int(1)));
        assert!(toks.contains(&Token::Plus));
        assert!(toks.contains(&Token::Star));
        assert!(toks.contains(&Token::Minus));
    }

    #[test]
    fn case_is_folded_and_trailing_comments_dropped() {
        let toks = tokenize("forall i = 1, n   ! outer loop\n").unwrap();
        assert_eq!(toks[0], Token::Ident("FORALL".into()));
        assert_eq!(toks[1], Token::Ident("I".into()));
        assert!(!toks
            .iter()
            .any(|t| matches!(t, Token::Ident(s) if s == "OUTER")));
    }

    #[test]
    fn rejects_unexpected_characters() {
        assert!(tokenize("REAL x(10) @\n").is_err());
    }
}
