//! End-to-end tests of the compiler loop: the optimizer's rewrites (schedule hoisting,
//! exchange fusion, split-phase overlap) must change the communication *shape* of a
//! program without changing its *results* — and the shape changes must be the pinned
//! ones (one hoisted build, one fused gather and one fused scatter-add per step).
//!
//! Float results are compared bit-for-bit.  The fused scatter pre-combines
//! contributions per ghost slot before the wire, which reorders floating-point
//! additions relative to the unoptimized per-array scatters, so the test data is
//! integer-valued — every intermediate is exactly representable and any real
//! divergence shows up as a bit difference.

use fortrand::Executor;
use mpsim::{run, MachineConfig};

/// A CHARMM-style two-coordinate non-bonded sweep inside a time loop, with a ring
/// neighbour structure (atom `i` interacts with `i+1` and `i+2`, wrapping) so every
/// rank boundary carries traffic at any processor count that divides `n`.
fn charmm_style_source(n: usize, nsteps: usize) -> String {
    format!(
        "REAL x({n}), y({n}), dx({n}), dy({n})\n\
         INTEGER inblo({m}), jnb({k}), iage({n})\n\
         C$ DECOMPOSITION reg({n})\n\
         C$ DISTRIBUTE reg(BLOCK)\n\
         C$ ALIGN x, y, dx, dy WITH reg\n\
         DO istep = 1, {nsteps}\n\
         FORALL i = 1, {n}\n\
         FORALL j = inblo(i), inblo(i+1) - 1\n\
         REDUCE(SUM, dx(jnb(j)), x(jnb(j)) - x(i))\n\
         REDUCE(SUM, dx(i), x(i) - x(jnb(j)))\n\
         END FORALL\n\
         END FORALL\n\
         FORALL i = 1, {n}\n\
         FORALL j = inblo(i), inblo(i+1) - 1\n\
         REDUCE(SUM, dy(jnb(j)), y(jnb(j)) - y(i))\n\
         REDUCE(SUM, dy(i), y(i) - y(jnb(j)))\n\
         END FORALL\n\
         END FORALL\n\
         FORALL i = 1, {n}\n\
         iage(i) = iage(i) + 1\n\
         END FORALL\n\
         END DO\n",
        m = n + 1,
        k = 2 * n
    )
}

/// Ring neighbour list for `charmm_style_source`, in 1-based CSR form.
fn ring_csr(n: usize) -> (Vec<i64>, Vec<i64>) {
    let mut inblo = Vec::with_capacity(n + 1);
    let mut jnb = Vec::with_capacity(2 * n);
    for i in 0..n {
        inblo.push(jnb.len() as i64 + 1);
        jnb.push(((i + 1) % n) as i64 + 1);
        jnb.push(((i + 2) % n) as i64 + 1);
    }
    inblo.push(jnb.len() as i64 + 1);
    (inblo, jnb)
}

/// Run `source` (optimized or not) on `procs` ranks and return the bit patterns of the
/// accumulator arrays plus rank 0's exchange-stats tuple.
fn run_charmm_style(
    source: &str,
    n: usize,
    optimize: bool,
    procs: usize,
) -> (Vec<u64>, (u64, u64)) {
    let source = source.to_string();
    let out = run(MachineConfig::new(procs).with_ledger(), move |rank| {
        let program = if optimize {
            fortrand::compile_optimized(&source).expect("compiles").0
        } else {
            fortrand::compile(&source).expect("compiles")
        };
        let mut exec = Executor::new(rank, &program);
        let (inblo, jnb) = ring_csr(n);
        exec.set_integer_array("INBLO", &inblo);
        exec.set_integer_array("JNB", &jnb);
        // Integer-valued coordinates: all arithmetic stays exact.
        let x: Vec<f64> = (0..n).map(|i| ((i * 7) % 23) as f64).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i * 13) % 31) as f64).collect();
        exec.set_real_array("X", &x);
        exec.set_real_array("Y", &y);
        exec.set_real_array("DX", &vec![0.0; n]);
        exec.set_real_array("DY", &vec![0.0; n]);
        exec.run_all(rank);
        let mut bits: Vec<u64> = Vec::new();
        for name in ["DX", "DY"] {
            bits.extend(exec.get_real_array(rank, name).iter().map(|v| v.to_bits()));
        }
        let stats = exec.exchange_stats();
        (bits, (stats.msgs_sent, stats.bytes_sent))
    });
    let (bits, stats) = out.results[0].clone();
    for (r, (other, _)) in out.results.iter().enumerate() {
        assert_eq!(*other, bits, "rank {r} disagrees with rank 0");
    }
    (bits, stats)
}

#[test]
fn optimized_results_bit_identical_to_unoptimized_at_all_proc_counts() {
    let n = 48;
    let source = charmm_style_source(n, 4);
    for procs in [1usize, 2, 8] {
        let (plain, _) = run_charmm_style(&source, n, false, procs);
        let (opt, _) = run_charmm_style(&source, n, true, procs);
        assert_eq!(
            plain, opt,
            "results diverge under optimization at P = {procs}"
        );
        assert!(
            plain.iter().any(|&b| b != 0),
            "degenerate test: accumulators stayed zero"
        );
    }
}

#[test]
fn optimization_changes_traffic_shape_but_not_results() {
    let n = 48;
    let source = charmm_style_source(n, 4);
    let (_, (plain_msgs, _)) = run_charmm_style(&source, n, false, 4);
    let (_, (opt_msgs, opt_bytes)) = run_charmm_style(&source, n, true, 4);
    // Fusion merges the DX and DY exchanges into one schedule's multi-array
    // gather/scatter: strictly fewer messages, and some traffic at all.
    assert!(opt_msgs > 0 && opt_bytes > 0);
    assert!(
        opt_msgs < plain_msgs,
        "fusion should cut messages: optimized {opt_msgs} vs plain {plain_msgs}"
    );
}

#[test]
fn hoisted_build_runs_once_and_message_counts_are_pinned() {
    let n = 48;
    let nsteps = 5;
    let source = charmm_style_source(n, nsteps);
    let out = run(MachineConfig::new(4).with_ledger(), move |rank| {
        let (program, report) = fortrand::compile_optimized(&source).expect("compiles");
        assert!(report.has_applied("hoist", ""));
        assert!(report.has_applied("fuse", ""));
        let mut exec = Executor::new(rank, &program);
        let (inblo, jnb) = ring_csr(n);
        exec.set_integer_array("INBLO", &inblo);
        exec.set_integer_array("JNB", &jnb);
        for a in ["X", "Y", "DX", "DY"] {
            exec.set_real_array(a, &vec![1.0; n]);
        }
        exec.run_all(rank);
        let (send, recv) = exec.group_message_counts(0);
        (
            exec.group_stats(0),
            exec.exchange_stats().msgs_sent,
            send + recv,
        )
    });
    for (rank, &((rebuilds, patches, _reuses), msgs_sent, per_step)) in
        out.results.iter().enumerate()
    {
        // The inspector was hoisted out of the time loop: exactly one build for the
        // whole run, nothing to patch.
        assert_eq!(
            (rebuilds, patches),
            (1, 0),
            "rank {rank}: schedule built more than once"
        );
        // One fused gather (one message per destination) and one fused scatter-add
        // (one per source) per step — and nothing else on the wire.
        assert_eq!(
            msgs_sent,
            (nsteps * per_step) as u64,
            "rank {rank}: executor traffic is not one fused exchange per step"
        );
        assert!(
            per_step > 0,
            "rank {rank}: no cross-rank traffic in the fixture"
        );
    }
}

#[test]
fn blocked_hoist_falls_back_to_guarded_rebuilds() {
    // The indirection array drifts every step, so the build must stay inside the
    // time loop and actually re-run (rebuild or patch) each time it goes stale.
    let n = 32;
    let nsteps = 5;
    let source = format!(
        "REAL x({n}), f({n})\n\
         INTEGER ia({n})\n\
         C$ DECOMPOSITION reg({n})\n\
         C$ DISTRIBUTE reg(BLOCK)\n\
         C$ ALIGN x, f WITH reg\n\
         DO istep = 1, {nsteps}\n\
         FORALL i = 1, {n}\n\
         REDUCE(SUM, f(ia(i)), x(i))\n\
         END FORALL\n\
         FORALL i = 1, {n}\n\
         ia(i) = ia(i) - (ia(i) / {n}) * {n} + 1\n\
         END FORALL\n\
         END DO\n"
    );
    let out = run(MachineConfig::new(2).with_ledger(), move |rank| {
        let (program, report) = fortrand::compile_optimized(&source).expect("compiles");
        assert!(report.has_blocked("hoist", "IA"));
        let mut exec = Executor::new(rank, &program);
        exec.set_integer_array(
            "IA",
            &(0..n).map(|i| (i as i64 % 8) + 1).collect::<Vec<_>>(),
        );
        exec.set_real_array("X", &vec![2.0; n]);
        exec.set_real_array("F", &vec![0.0; n]);
        exec.run_all(rank);
        exec.group_stats(0)
    });
    for (rank, &(rebuilds, patches, reuses)) in out.results.iter().enumerate() {
        assert_eq!(
            rebuilds + patches + reuses,
            nsteps as u64,
            "rank {rank}: the stamp guard must run once per step"
        );
        assert!(rebuilds >= 1, "rank {rank}: first step must build");
        assert_eq!(
            reuses, 0,
            "rank {rank}: IA drifts every step, nothing should be reused as-is"
        );
    }
}
