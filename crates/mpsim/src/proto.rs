//! Protocol kernels of the shared-memory transport, generic over the sync layer.
//!
//! The lock-free algorithms in [`crate::shared`] — the Lamport SPSC ring, the doorbell
//! missed-wakeup protocol, and the direct-delivery window — each hinge on a handful of
//! atomic operations whose *memory orderings* carry the whole correctness argument.
//! This module is the single home of those operations: every ordering-critical step is a
//! small free function generic over a cell trait, so the production transport (which
//! instantiates the traits with `std::sync::atomic` types) and the `verify` crate's
//! exhaustive model checker (which instantiates them with instrumented cells over a
//! release/acquire memory model) execute the *same* protocol logic.  A bug fixed here is
//! fixed in both worlds; an ordering weakened here is caught by the checker.
//!
//! The traits are deliberately minimal: a cell knows how to load, store, and (where the
//! protocol needs it) read-modify-write at a caller-chosen [`Ordering`].  Everything
//! else — what the values mean, which thread may call which step — is protocol structure
//! expressed by the step functions below and documented per function.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// A `usize`-valued atomic cell (ring indices, pending counters).
pub trait UsizeCell {
    /// Atomically load the value.
    fn load(&self, ord: Ordering) -> usize;
    /// Atomically store `v`.
    fn store(&self, v: usize, ord: Ordering);
    /// Atomically subtract `v`, returning the previous value.
    fn fetch_sub(&self, v: usize, ord: Ordering) -> usize;
}

/// A `u64`-valued atomic cell (exchange tags).
pub trait U64Cell {
    /// Atomically load the value.
    fn load(&self, ord: Ordering) -> u64;
    /// Atomically store `v`.
    fn store(&self, v: u64, ord: Ordering);
}

/// A `bool`-valued atomic cell (sleep announcements).
pub trait BoolCell {
    /// Atomically load the value.
    fn load(&self, ord: Ordering) -> bool;
    /// Atomically store `v`.
    fn store(&self, v: bool, ord: Ordering);
}

impl UsizeCell for AtomicUsize {
    fn load(&self, ord: Ordering) -> usize {
        AtomicUsize::load(self, ord)
    }
    fn store(&self, v: usize, ord: Ordering) {
        AtomicUsize::store(self, v, ord);
    }
    fn fetch_sub(&self, v: usize, ord: Ordering) -> usize {
        AtomicUsize::fetch_sub(self, v, ord)
    }
}

impl U64Cell for AtomicU64 {
    fn load(&self, ord: Ordering) -> u64 {
        AtomicU64::load(self, ord)
    }
    fn store(&self, v: u64, ord: Ordering) {
        AtomicU64::store(self, v, ord);
    }
}

impl BoolCell for AtomicBool {
    fn load(&self, ord: Ordering) -> bool {
        AtomicBool::load(self, ord)
    }
    fn store(&self, v: bool, ord: Ordering) {
        AtomicBool::store(self, v, ord);
    }
}

// ---------------------------------------------------------------------------
// SPSC ring
// ---------------------------------------------------------------------------

/// The sync-layer view of one bounded single-producer single-consumer ring.
///
/// `head`/`tail` are monotonically increasing logical indices (slot = index %
/// capacity); `tail - head` is the occupancy.  Only the consumer writes `head`, only
/// the producer writes `tail`.  `slot_write`/`slot_read` are the *data* accesses the
/// counters publish: in production they are the unsafe `MaybeUninit` slot accesses, in
/// the model checker they are relaxed accesses to checker-owned locations — so the
/// checker observes exactly which counter orderings make the data visible.
pub trait RingOps {
    /// The element type moved through the ring.
    type Item;
    /// The atomic counter type used for `head` and `tail`.
    type Ctr: UsizeCell;
    /// Number of slots.
    fn capacity(&self) -> usize;
    /// Next logical index the consumer will pop.
    fn head(&self) -> &Self::Ctr;
    /// Next logical index the producer will push.
    fn tail(&self) -> &Self::Ctr;
    /// Write `item` into `slot` (producer only; the slot is empty by protocol).
    fn slot_write(&self, slot: usize, item: Self::Item);
    /// Move the item out of `slot` (consumer only; the slot is full by protocol).
    fn slot_read(&self, slot: usize) -> Self::Item;
}

/// Producer step: publish one item, or hand it back when the ring is full.
///
/// The `Acquire` load of `head` synchronises with the consumer's `Release` store in
/// [`ring_try_pop`], so reusing a slot the consumer has vacated cannot overtake the
/// consumer's read of it.  The `Release` store of `tail` publishes the slot write to
/// the consumer's `Acquire` load of `tail`.
pub fn ring_try_push<R: RingOps>(ring: &R, item: R::Item) -> Result<(), R::Item> {
    let t = ring.tail().load(Ordering::Relaxed);
    let h = ring.head().load(Ordering::Acquire);
    if t - h >= ring.capacity() {
        return Err(item);
    }
    ring.slot_write(t % ring.capacity(), item);
    ring.tail().store(t + 1, Ordering::Release);
    Ok(())
}

/// Consumer step: pop the oldest item, if any.
///
/// The `Acquire` load of `tail` synchronises with the producer's `Release` store in
/// [`ring_try_push`], making the slot contents visible before they are read; the
/// `Release` store of `head` returns the vacated slot to the producer.
pub fn ring_try_pop<R: RingOps>(ring: &R) -> Option<R::Item> {
    let h = ring.head().load(Ordering::Relaxed);
    let t = ring.tail().load(Ordering::Acquire);
    if t == h {
        return None;
    }
    let item = ring.slot_read(h % ring.capacity());
    ring.head().store(h + 1, Ordering::Release);
    Some(item)
}

// ---------------------------------------------------------------------------
// Doorbell
// ---------------------------------------------------------------------------

/// The sync-layer view of one consumer's doorbell flag.
///
/// The mutex/condvar half of the doorbell lives with the caller (production uses
/// `std::sync::Condvar`, the model checker a modeled monitor); this trait captures only
/// the lock-free half the missed-wakeup argument depends on: the `sleeping`
/// announcement flag and the producer-side `SeqCst` fence.
pub trait BellOps {
    /// The atomic flag type used for the sleep announcement.
    type Flag: BoolCell;
    /// The consumer's "about to park" announcement.
    fn sleeping(&self) -> &Self::Flag;
    /// A `SeqCst` fence (the producer's publish-then-check pivot).
    fn fence_seq_cst(&self);
}

/// Producer step after publishing work: decide whether the bell must be rung.
///
/// The `SeqCst` fence orders the producer's ring publication before the `sleeping`
/// load in the `SeqCst` total order.  Combined with the consumer side
/// ([`bell_announce`] *before* its rescan), either this load observes `sleeping ==
/// true` (and the caller rings the bell: locks the doorbell mutex — serialising behind
/// the consumer, which holds it from announce until it waits — and notifies), or the
/// consumer's rescan is ordered after the publication and finds the work.  Either way
/// no wakeup is lost.  Returns `true` when the caller must ring.
pub fn bell_check<B: BellOps>(bell: &B) -> bool {
    bell.fence_seq_cst();
    bell.sleeping().load(Ordering::SeqCst)
}

/// Consumer step, holding the doorbell mutex: announce intent to park.
///
/// Must happen *before* the final rescan — the announce/rescan order is exactly what
/// the producer's fence-then-check pivots on.  (The model checker's seeded-bug test
/// swaps this with the rescan and observes the resulting lost wakeup.)
pub fn bell_announce<B: BellOps>(bell: &B) {
    bell.sleeping().store(true, Ordering::SeqCst);
}

/// Consumer step: retract the announcement (work found, or woken up).
pub fn bell_retract<B: BellOps>(bell: &B) {
    bell.sleeping().store(false, Ordering::SeqCst);
}

// ---------------------------------------------------------------------------
// Direct-delivery window
// ---------------------------------------------------------------------------

/// The sync-layer view of one rank's direct-delivery window control words.
///
/// The window's *payload* fields (destination pointer, element type, permutation
/// lists) are opaque to the protocol: they are written by the closure passed to
/// [`window_publish`] while the window is retired, and read by senders only after
/// [`window_try_claim`] observes a matching tag.  The control words captured here are
/// the published-tag word (0 = retired) and the outstanding-contribution counter whose
/// decrement chain pins the window against ABA and use-after-free.
pub trait WindowOps {
    /// The atomic tag type (0 means retired).
    type Tag: U64Cell;
    /// The atomic pending-contribution counter type.
    type Ctr: UsizeCell;
    /// The exchange tag this window serves.
    fn tag(&self) -> &Self::Tag;
    /// Contributions still outstanding.
    fn pending(&self) -> &Self::Ctr;
}

/// Receiver step: publish the window for exchange `tag` with `pending` outstanding
/// contributions, after `write_fields` has written every payload field.
///
/// `write_fields` runs while `tag == 0`, when no sender reads the fields; the
/// `Release` store of `tag` is the publication edge every sender's `Acquire` claim
/// synchronises with.  `pending` may be stored `Relaxed` because it is published by the
/// same `Release` tag store.
pub fn window_publish<W: WindowOps>(w: &W, tag: u64, pending: usize, write_fields: impl FnOnce()) {
    debug_assert!(tag != 0 && pending > 0, "empty windows are never published");
    debug_assert_eq!(
        w.tag().load(Ordering::Relaxed),
        0,
        "a rank publishes at most one window at a time"
    );
    write_fields();
    w.pending().store(pending, Ordering::Relaxed);
    w.tag().store(tag, Ordering::Release);
}

/// Sender step: claim the window for exchange `tag`.
///
/// Returns `true` when the window is published for exactly this tag; the `Acquire`
/// load orders every payload-field read after the receiver's publication.  After a
/// successful claim the window cannot retire or be republished underneath the sender,
/// because the sender's own undelivered contribution keeps `pending >= 1` until it
/// calls [`window_contribution_delivered`].
pub fn window_try_claim<W: WindowOps>(w: &W, tag: u64) -> bool {
    w.tag().load(Ordering::Acquire) == tag
}

/// Contribution step: count one contribution as delivered.
///
/// Must be called *after* the contribution's writes through the window.  The `AcqRel`
/// `fetch_sub` releases those writes into the decrement chain (so the receiver's
/// `Acquire` read of zero in [`window_is_drained`] sees every byte) and keeps the
/// chain a release sequence.  Returns `true` when this was the last outstanding
/// contribution — the caller must then ring the receiver's doorbell
/// (fence-then-check, exactly [`bell_check`]).
pub fn window_contribution_delivered<W: WindowOps>(w: &W) -> bool {
    w.pending().fetch_sub(1, Ordering::AcqRel) == 1
}

/// Receiver step: has every contribution landed?
///
/// The `Acquire` load is the receiver's synchronisation point with every sender's
/// release in [`window_contribution_delivered`].
pub fn window_is_drained<W: WindowOps>(w: &W) -> bool {
    w.pending().load(Ordering::Acquire) == 0
}

/// Receiver step: retire a drained window, making the slot publishable again.
///
/// Only legal once [`window_is_drained`] has returned `true`: a sender between its
/// successful claim and its decrement holds `pending >= 1`, so retirement (and any
/// subsequent republication or freeing of the destination) cannot race its writes.
pub fn window_retire<W: WindowOps>(w: &W) {
    debug_assert!(window_is_drained(w), "retiring a live window");
    w.tag().store(0, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    /// A toy ring over plain atomics, checking the step functions' index arithmetic.
    struct ToyRing {
        head: AtomicUsize,
        tail: AtomicUsize,
        slots: Vec<AtomicU32>,
    }

    impl RingOps for ToyRing {
        type Item = u32;
        type Ctr = AtomicUsize;
        fn capacity(&self) -> usize {
            self.slots.len()
        }
        fn head(&self) -> &AtomicUsize {
            &self.head
        }
        fn tail(&self) -> &AtomicUsize {
            &self.tail
        }
        fn slot_write(&self, slot: usize, item: u32) {
            self.slots[slot].store(item, Ordering::Relaxed);
        }
        fn slot_read(&self, slot: usize) -> u32 {
            self.slots[slot].load(Ordering::Relaxed)
        }
    }

    #[test]
    fn ring_steps_wrap_and_report_full_and_empty() {
        let ring = ToyRing {
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            slots: (0..2).map(|_| AtomicU32::new(0)).collect(),
        };
        assert!(ring_try_pop(&ring).is_none(), "empty ring pops nothing");
        assert!(ring_try_push(&ring, 10).is_ok());
        assert!(ring_try_push(&ring, 11).is_ok());
        assert_eq!(ring_try_push(&ring, 12), Err(12), "full ring refuses");
        assert_eq!(ring_try_pop(&ring), Some(10));
        assert!(ring_try_push(&ring, 12).is_ok(), "slot reuse after pop");
        assert_eq!(ring_try_pop(&ring), Some(11));
        assert_eq!(ring_try_pop(&ring), Some(12));
        assert!(ring_try_pop(&ring).is_none());
    }

    struct ToyWindow {
        tag: AtomicU64,
        pending: AtomicUsize,
    }

    impl WindowOps for ToyWindow {
        type Tag = AtomicU64;
        type Ctr = AtomicUsize;
        fn tag(&self) -> &AtomicU64 {
            &self.tag
        }
        fn pending(&self) -> &AtomicUsize {
            &self.pending
        }
    }

    #[test]
    fn window_lifecycle_publish_claim_drain_retire() {
        let w = ToyWindow {
            tag: AtomicU64::new(0),
            pending: AtomicUsize::new(0),
        };
        let mut fields_written = false;
        window_publish(&w, 7, 2, || fields_written = true);
        assert!(fields_written);
        assert!(window_try_claim(&w, 7));
        assert!(!window_try_claim(&w, 8), "wrong tag misses");
        assert!(!window_contribution_delivered(&w), "first of two");
        assert!(!window_is_drained(&w));
        assert!(window_contribution_delivered(&w), "last contribution");
        assert!(window_is_drained(&w));
        window_retire(&w);
        assert!(!window_try_claim(&w, 7), "retired windows accept nothing");
    }
}
