//! The collective ledger: a feature-gated runtime cross-check that every rank runs the
//! same collective sequence.
//!
//! SPMD collectives (and exchange-engine epochs) must be started by every rank, in the
//! same order, with the same element type.  Violations — a collective under
//! rank-dependent control flow, mismatched element types of the same byte size, an
//! extra root-only broadcast — often complete *physically* (receives are tag-selective,
//! equal-sized payloads reinterpret silently) and surface later as corrupted data or a
//! deadlock several collectives downstream.
//!
//! With the ledger enabled ([`crate::MachineConfig::with_ledger`] or `MPSIM_LEDGER=1`),
//! each rank records one [`LedgerEntry`] per operation it starts (op kind, epoch,
//! element type).  The traces are cross-checked machine-wide at every
//! [`crate::machine::Rank::barrier`] — *before* the barrier's messages move, so a
//! divergence that would deadlock is diagnosed instead — and once more at shutdown.
//! The report names the first divergent pair of ranks and shows both op traces around
//! the first differing entry.

use std::fmt;
use std::sync::{Arc, Mutex};

use crate::barrier::Barrier;

/// One recorded collective/exchange start.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LedgerEntry {
    /// Operation kind: `"exchange"`, `"barrier"`, `"all_gather"`, ….
    pub op: &'static str,
    /// The operation's epoch: the exchange-engine epoch for engine executions, the
    /// barrier sequence number for barriers, and the engine epoch at which the
    /// collective began for the higher-level collectives.
    pub epoch: u64,
    /// The element type moved (`std::any::type_name`), or `""` for untyped operations.
    pub elem: &'static str,
}

impl fmt::Display for LedgerEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.elem.is_empty() {
            write!(f, "{}@{}", self.op, self.epoch)
        } else {
            write!(f, "{}@{}<{}>", self.op, self.epoch, self.elem)
        }
    }
}

/// The per-rank side of the ledger: the rank's own trace plus the shared hub it is
/// cross-checked through.
pub(crate) struct LedgerRank {
    pub(crate) hub: Arc<LedgerHub>,
    pub(crate) trace: Vec<LedgerEntry>,
}

/// The machine-wide rendezvous point: one deposit slot per rank plus a reusable gate.
pub(crate) struct LedgerHub {
    slots: Mutex<Vec<Vec<LedgerEntry>>>,
    gate: Barrier,
}

impl LedgerHub {
    pub(crate) fn new(nprocs: usize) -> Arc<LedgerHub> {
        Arc::new(LedgerHub {
            slots: Mutex::new(vec![Vec::new(); nprocs]),
            gate: Barrier::new(nprocs),
        })
    }

    /// Publish `trace` as rank `rank`'s current sequence.
    pub(crate) fn deposit(&self, rank: usize, trace: &[LedgerEntry]) {
        self.slots.lock().expect("ledger mutex poisoned")[rank] = trace.to_vec();
    }

    /// Cross-check at a barrier: deposit, rendezvous so every rank's deposit is in,
    /// compare, rendezvous again so no rank re-deposits before everyone has read.
    ///
    /// Every rank reads the same slots between the two gates, so either *all* ranks
    /// panic with the same divergence report or none do — the failure is deterministic
    /// and [`crate::machine::Machine::run`] surfaces rank 0's copy.
    pub(crate) fn check_at_barrier(&self, rank: usize, trace: &[LedgerEntry]) {
        self.deposit(rank, trace);
        self.gate.wait();
        let verdict = self.divergence();
        if let Some(report) = verdict {
            panic!("{report}");
        }
        self.gate.wait();
    }

    /// Compare all deposited traces; `None` when they agree.  Equality is transitive,
    /// so comparing every rank against rank 0 finds a divergence iff one exists, and
    /// the first differing rank/entry is the canonical "first divergent pair".
    pub(crate) fn divergence(&self) -> Option<String> {
        let slots = self.slots.lock().expect("ledger mutex poisoned");
        let baseline = &slots[0];
        for (r, trace) in slots.iter().enumerate().skip(1) {
            if trace == baseline {
                continue;
            }
            let k = baseline
                .iter()
                .zip(trace.iter())
                .take_while(|(a, b)| a == b)
                .count();
            return Some(divergence_report(0, baseline, r, trace, k));
        }
        None
    }
}

/// Render one side's entry at the divergence point.
fn entry_at(trace: &[LedgerEntry], k: usize) -> String {
    match trace.get(k) {
        Some(e) => format!("{e}"),
        None => format!("<end of trace after {} entries>", trace.len()),
    }
}

/// Render a trace for the report: the whole thing when short, else a window around the
/// divergence point (with elision markers carrying the dropped counts).
fn render_trace(trace: &[LedgerEntry], k: usize) -> String {
    const BEFORE: usize = 4;
    const AFTER: usize = 2;
    let lo = k.saturating_sub(BEFORE);
    let hi = (k + AFTER + 1).min(trace.len());
    let mut parts = Vec::new();
    if lo > 0 {
        parts.push(format!("... {lo} earlier"));
    }
    parts.extend(trace[lo..hi].iter().map(|e| e.to_string()));
    if hi < trace.len() {
        parts.push(format!("... {} later", trace.len() - hi));
    }
    format!("[{}]", parts.join(", "))
}

fn divergence_report(
    a: usize,
    ta: &[LedgerEntry],
    b: usize,
    tb: &[LedgerEntry],
    k: usize,
) -> String {
    format!(
        "collective ledger divergence: rank {a} and rank {b} diverge at collective #{k}:\n  \
         rank {a} recorded {}\n  rank {b} recorded {}\n  rank {a} trace: {}\n  rank {b} trace: {}",
        entry_at(ta, k),
        entry_at(tb, k),
        render_trace(ta, k),
        render_trace(tb, k),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::ExchangeBackend;
    use crate::topology::MachineConfig;

    fn e(op: &'static str, epoch: u64, elem: &'static str) -> LedgerEntry {
        LedgerEntry { op, epoch, elem }
    }

    #[test]
    fn matched_collective_sequences_verify_clean() {
        let out = crate::run(MachineConfig::new(4).with_ledger(), |rank| {
            let me = rank.rank();
            rank.all_gather(&[me as u32]);
            rank.all_reduce_sum(me as f64);
            rank.barrier();
            rank.all_to_all(&vec![vec![me as u64]; rank.nprocs()]);
            rank.broadcast(1, &[7.0f64]);
            rank.barrier();
            rank.ledger_trace().expect("ledger is on").len()
        });
        // Identical sequence everywhere, and every op was recorded (two barriers,
        // four collectives, plus their engine epochs).
        assert!(out.results.iter().all(|&len| len == out.results[0]));
        assert!(out.results[0] > 6);
    }

    /// A classic silent SPMD bug: two ranks disagree on the element type of the same
    /// collective.  `u64` and `f64` have the same byte size, so the exchange completes
    /// physically and the payloads reinterpret silently — without the ledger this run
    /// would "succeed" with corrupted data.  No barrier follows, so the divergence is
    /// caught by the shutdown cross-check.
    #[test]
    #[should_panic(expected = "collective ledger divergence")]
    fn element_type_divergence_is_caught_at_shutdown() {
        let cfg = MachineConfig::new(3)
            .with_ledger()
            .with_backend(ExchangeBackend::Modeled);
        let _ = crate::run(cfg, |rank| {
            let n = rank.nprocs();
            if rank.rank() == 0 {
                rank.all_to_all(&vec![vec![1u64]; n]);
            } else {
                rank.all_to_all(&vec![vec![1.0f64]; n]);
            }
        });
    }

    /// A rank-dependent extra collective: rank 0 runs a root-only broadcast the others
    /// never start.  The broadcast itself completes (the root only sends), but rank 0's
    /// engine epochs now run ahead, so the *next* collective would deadlock on
    /// mismatched epoch tags.  The barrier's ledger check fires first and names the
    /// divergence instead.
    #[test]
    #[should_panic(expected = "collective ledger divergence")]
    fn rank_dependent_extra_collective_is_caught_at_the_barrier() {
        let _ = crate::run(MachineConfig::new(4).with_ledger(), |rank| {
            rank.all_gather_one(rank.rank() as u64);
            if rank.rank() == 0 {
                rank.broadcast(0, &[1.0f64, 2.0]);
            }
            rank.barrier();
        });
    }

    #[test]
    fn identical_traces_have_no_divergence() {
        let hub = LedgerHub::new(3);
        let t = vec![e("exchange", 0, "f64"), e("barrier", 0, "")];
        for r in 0..3 {
            hub.deposit(r, &t);
        }
        assert!(hub.divergence().is_none());
    }

    #[test]
    fn first_divergent_pair_and_entry_are_reported() {
        let hub = LedgerHub::new(3);
        hub.deposit(0, &[e("exchange", 0, "u64"), e("barrier", 0, "")]);
        hub.deposit(1, &[e("exchange", 0, "u64"), e("barrier", 0, "")]);
        hub.deposit(2, &[e("exchange", 0, "f64"), e("barrier", 0, "")]);
        let report = hub.divergence().expect("divergence must be detected");
        assert!(report.contains("rank 0 and rank 2"), "{report}");
        assert!(report.contains("collective #0"), "{report}");
        assert!(report.contains("exchange@0<u64>"), "{report}");
        assert!(report.contains("exchange@0<f64>"), "{report}");
    }

    #[test]
    fn trace_length_skew_is_reported_as_end_of_trace() {
        let hub = LedgerHub::new(2);
        hub.deposit(0, &[e("barrier", 0, ""), e("broadcast", 1, "u64")]);
        hub.deposit(1, &[e("barrier", 0, "")]);
        let report = hub.divergence().expect("divergence must be detected");
        assert!(report.contains("broadcast@1<u64>"), "{report}");
        assert!(
            report.contains("<end of trace after 1 entries>"),
            "{report}"
        );
    }

    #[test]
    fn long_traces_are_windowed_around_the_divergence() {
        let hub = LedgerHub::new(2);
        let common: Vec<LedgerEntry> = (0..20).map(|i| e("exchange", i, "f64")).collect();
        let mut a = common.clone();
        a.push(e("all_gather", 20, "f64"));
        let mut b = common;
        b.push(e("all_to_all", 20, "f64"));
        hub.deposit(0, &a);
        hub.deposit(1, &b);
        let report = hub.divergence().expect("divergence must be detected");
        assert!(report.contains("collective #20"), "{report}");
        assert!(report.contains("... 16 earlier"), "{report}");
        assert!(report.contains("all_gather@20<f64>"), "{report}");
        assert!(report.contains("all_to_all@20<f64>"), "{report}");
    }
}
