//! The shared-memory message fabric behind [`ExchangeBackend::SharedMem`].
//!
//! The modeled transport moves every message through `std::sync::mpsc` channels — one
//! multi-producer channel per rank — which is simple and correct but pays an allocation,
//! a lock handoff, and an encode/decode round-trip per message.  This module replaces the
//! wire with what the paper's runtime would use on a shared-memory node: one bounded
//! **lock-free SPSC ring per ordered rank pair**, so a producer and a consumer touch only
//! cache lines they own, plus a per-consumer *doorbell* (mutex + condvar) so a rank with
//! nothing to receive parks instead of burning the core.
//!
//! [`ExchangeBackend`] selects the transport per [`crate::MachineConfig`].  The two
//! backends are observationally identical everywhere except host wall-clock: the same
//! modeled cost, the same [`crate::RankStats`] counters, the same delivered bytes.  The
//! entire test suite runs under either backend (`MPSIM_BACKEND=shared cargo test`).
//!
//! ## Why SPSC rings are enough
//!
//! Every message stream in the machine is point-to-point between a fixed (sender,
//! receiver) pair, and the exchange engine's collective start-order discipline bounds how
//! far any rank can run ahead: one exchange puts at most one message per pair in flight,
//! so ring occupancy is bounded by the number of simultaneously unfinished exchanges — in
//! practice low single digits against a capacity of [`RING_CAPACITY`].  A full ring
//! (pathological lookahead) simply makes the producer spin-yield until the consumer
//! drains; it cannot deadlock, because a consumer always eventually reaches the receive
//! that drains its side of the pair.
//!
//! ## Progress and the missed-wakeup race
//!
//! The consumer scans its inbound rings a bounded number of times (yielding between
//! sweeps), then publishes `sleeping = true` under its doorbell mutex, **rescans**, and
//! only then waits on the condvar.  Producers push with a `SeqCst` fence before loading
//! `sleeping`, and notify under the same mutex.  In the `SeqCst` total order either the
//! producer sees `sleeping == true` (and its notify, serialized behind the mutex the
//! consumer holds until it waits, is guaranteed to wake it) or the consumer's rescan
//! happens after the push and finds the message.  Either way no message is lost to a
//! sleeping consumer.

use std::any::TypeId;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::message::{Envelope, Payload};
use crate::proto::{self, BellOps, RingOps, WindowOps};

/// Which transport a machine's ranks communicate through.
///
/// The backend changes **only** host wall-clock behaviour: modeled time, statistics,
/// results, and pool accounting are identical across backends (pinned by
/// `tests/backend_equivalence.rs`).  Selected per machine via
/// [`crate::MachineConfig::with_backend`], with the process-wide default taken from the
/// `MPSIM_BACKEND` environment variable (`modeled` | `shared`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeBackend {
    /// Messages travel through per-rank mpsc channels and every payload is encoded to
    /// little-endian bytes — the historical transport, byte-for-byte unchanged.
    Modeled,
    /// Messages travel through per-pair lock-free SPSC rings, and payloads whose element
    /// type satisfies [`crate::message::Element::is_pod_le`] move as typed buffers
    /// without touching the codec (a `Vec` pointer handoff instead of an encode +
    /// decode + copy).
    SharedMem,
}

impl ExchangeBackend {
    /// The process-wide default backend: `MPSIM_BACKEND=shared` selects
    /// [`ExchangeBackend::SharedMem`], anything else (or unset) the modeled transport.
    /// Read once and cached — a test harness toggles backends per machine, not per call.
    pub fn from_env() -> ExchangeBackend {
        static DEFAULT: std::sync::OnceLock<ExchangeBackend> = std::sync::OnceLock::new();
        *DEFAULT.get_or_init(|| match std::env::var("MPSIM_BACKEND").as_deref() {
            Ok("shared") | Ok("sharedmem") | Ok("shared_mem") => ExchangeBackend::SharedMem,
            _ => ExchangeBackend::Modeled,
        })
    }

    /// Stable lowercase name used in benchmark records (`modeled` / `shared`).
    pub fn name(&self) -> &'static str {
        match self {
            ExchangeBackend::Modeled => "modeled",
            ExchangeBackend::SharedMem => "shared",
        }
    }
}

/// Slots per SPSC ring.  Exchange collectivity bounds steady-state occupancy to the
/// number of simultaneously in-flight exchanges per pair (single digits); the slack
/// absorbs split-phase lookahead without letting P² preallocation grow huge.
pub const RING_CAPACITY: usize = 32;

/// Largest machine the shared-memory fabric will build.  The fabric preallocates P²
/// rings; beyond this the modeled transport is the right tool (its P = 1024 collective
/// sweeps are about modeled scaling, not host wall-clock).
pub const MAX_SHARED_RANKS: usize = 128;

/// Ring sweeps the consumer performs (yielding between sweeps) before parking on its
/// doorbell, when every rank thread can have its own core.  Exchanges that are already
/// in flight complete within a few sweeps, so spinning wins: the doorbell's futex
/// round-trip costs more than the wait.
const SPIN_SWEEPS: usize = 64;

/// Sweeps before parking when the machine is *oversubscribed* (more rank threads than
/// host cores).  Spinning then actively hurts — every sweep is a scheduler round-trip
/// that delays the very producer the consumer is waiting for — so park almost
/// immediately and let the doorbell wake us; the modeled backend's blocking channel
/// recv gets this behaviour for free, and the shared transport must not be worse.
const SPIN_SWEEPS_OVERSUBSCRIBED: usize = 4;

/// One bounded single-producer single-consumer ring of envelopes.
///
/// `head`/`tail` are monotonically increasing logical indices (slot = index %
/// capacity); `tail - head` is the occupancy.  Only the producer writes `tail`, only the
/// consumer writes `head`, and each slot is written before the `Release` store of `tail`
/// that publishes it — the classic Lamport queue.
struct Spsc {
    slots: Box<[UnsafeCell<MaybeUninit<Envelope>>]>,
    /// Next logical index the consumer will pop.
    head: AtomicUsize,
    /// Next logical index the producer will push.
    tail: AtomicUsize,
}

// SAFETY: the fabric hands each ring to exactly one producer rank and one consumer rank;
// the head/tail protocol ensures they never touch the same slot concurrently.
unsafe impl Sync for Spsc {}

/// The ring's protocol steps live in [`crate::proto`] (shared with the `verify`
/// model checker); this impl binds them to the real atomics and the unsafe slot
/// storage.  The slot accesses are safe *because of* the protocol: `slot_write` is
/// called only by [`proto::ring_try_push`] on a slot with `tail - head <
/// capacity` (empty), `slot_read` only by [`proto::ring_try_pop`] on a slot with
/// `head < tail` (full), and the Release/Acquire counter hand-off orders the
/// accesses across threads.
impl RingOps for Spsc {
    type Item = Envelope;
    type Ctr = AtomicUsize;

    fn capacity(&self) -> usize {
        RING_CAPACITY
    }
    fn head(&self) -> &AtomicUsize {
        &self.head
    }
    fn tail(&self) -> &AtomicUsize {
        &self.tail
    }
    fn slot_write(&self, slot: usize, item: Envelope) {
        // SAFETY: the push protocol guarantees this slot is vacant (the consumer's
        // Release of `head` ordered its last read of the slot before we observed the
        // vacancy), and only the single producer writes slots.
        unsafe { (*self.slots[slot].get()).write(item) };
    }
    fn slot_read(&self, slot: usize) -> Envelope {
        // SAFETY: the pop protocol guarantees this slot was initialised by the
        // producer (its Release of `tail` published the write we synchronised with),
        // and each initialised slot is read out exactly once before `head` moves past
        // it.
        unsafe { (*self.slots[slot].get()).assume_init_read() }
    }
}

impl Spsc {
    fn new() -> Self {
        Spsc {
            slots: (0..RING_CAPACITY)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Producer side: publish one envelope, or return it when the ring is full.
    fn try_push(&self, env: Envelope) -> Result<(), Envelope> {
        proto::ring_try_push(self, env)
    }

    /// Consumer side: pop the oldest envelope, if any.
    fn try_pop(&self) -> Option<Envelope> {
        proto::ring_try_pop(self)
    }
}

impl Drop for Spsc {
    fn drop(&mut self) {
        // Drain whatever a panicking or terminating machine left behind so payload
        // buffers are not leaked.
        let h = *self.head.get_mut();
        let t = *self.tail.get_mut();
        for i in h..t {
            // SAFETY: slots in `head..tail` were initialised by the producer and not
            // yet consumed; `&mut self` proves no concurrent access remains.
            unsafe { (*self.slots[i % RING_CAPACITY].get()).assume_init_drop() };
        }
    }
}

/// Per-consumer parking spot: producers ring it after pushing when the consumer has
/// announced it is about to sleep.
struct Doorbell {
    sleeping: AtomicBool,
    mutex: Mutex<()>,
    condvar: Condvar,
}

/// Binds the doorbell's lock-free half (the announcement flag and the producer-side
/// fence) to the shared protocol steps in [`crate::proto`]; the mutex/condvar half
/// stays here with the callers.
impl BellOps for Doorbell {
    type Flag = AtomicBool;

    fn sleeping(&self) -> &AtomicBool {
        &self.sleeping
    }
    fn fence_seq_cst(&self) {
        fence(Ordering::SeqCst);
    }
}

impl Doorbell {
    /// Producer side after publishing work: fence, check the announcement, and notify
    /// under the mutex if the consumer may be parked (see [`proto::bell_check`] for
    /// the missed-wakeup argument).
    fn ring(&self) {
        if proto::bell_check(self) {
            let _guard = self.mutex.lock().unwrap();
            self.condvar.notify_one();
        }
    }
}

/// One source rank's contribution descriptor in a published [`DirectWindow`]: the
/// receiver's permutation list for that source, as `(perm.as_ptr() as usize, len)`.
/// A zero pointer means the receiver expects nothing from the source.
struct SourceSlot {
    perm_ptr: AtomicUsize,
    perm_len: AtomicUsize,
}

/// One rank's **zero-copy delivery window**.
///
/// While a direct-capable exchange (gather-shaped, POD elements, size-negotiated plan)
/// is in flight, the receiving rank publishes the raw destination region and its
/// per-source permutation lists here.  A sender that finds the window published for its
/// exchange tag writes its contribution straight into place — `dst[perm[k]] = value`,
/// one copy, no message, no intermediate buffer.  A sender that arrives before the
/// window is up falls back to a classic ring message, which the receiver places itself.
///
/// The protocol has one publication edge and one completion edge:
///
/// * **Publish**: every field is written while `tag == 0` (no sender reads then), and
///   `tag` is stored `Release` last; senders load `tag` with `Acquire`, so a match
///   orders every field after the publish.  Tags are unique per exchange episode
///   (per-rank epoch counters advanced in collective start order), so a match can never
///   be stale.
/// * **Complete**: each contribution ends with a `Release` `fetch_sub` of `pending`;
///   the receiver's `Acquire` read of 0 therefore sees every byte written through the
///   window.  The window cannot retire (and its fields cannot be rewritten) while any
///   sender is between its tag check and its decrement, because that sender's own
///   contribution keeps `pending >= 1`.
struct DirectWindow {
    /// Exchange tag the window serves; 0 = retired (real exchange tags are offset far
    /// above zero).
    tag: AtomicU64,
    /// Contributions still outstanding — direct writes or classic fallback messages.
    pending: AtomicUsize,
    /// Destination region base, `*mut T as usize`.
    dst_ptr: AtomicUsize,
    /// Destination region length in elements (bounds checks only).
    dst_len: AtomicUsize,
    /// Element type of the destination; senders assert against it — a mismatch is a
    /// crossed exchange sequence, the direct analogue of the typed-payload downcast
    /// panic.
    elem: UnsafeCell<Option<TypeId>>,
    /// One slot per source rank.
    sources: Box<[SourceSlot]>,
}

// SAFETY: `elem` is written only while `tag == 0` (when no sender reads it) and read
// only after an `Acquire` load of a matching nonzero tag, which orders the read after
// the write; every other field is atomic.
unsafe impl Sync for DirectWindow {}

/// Binds the window's control words to the shared protocol steps in [`crate::proto`];
/// the payload fields (`dst_ptr`, `elem`, the permutation slots) are the
/// `write_fields`/post-claim accesses those steps order.
impl WindowOps for DirectWindow {
    type Tag = AtomicU64;
    type Ctr = AtomicUsize;

    fn tag(&self) -> &AtomicU64 {
        &self.tag
    }
    fn pending(&self) -> &AtomicUsize {
        &self.pending
    }
}

/// The machine-wide shared-memory wire: P² SPSC rings plus one doorbell and one
/// direct-delivery window per rank.
pub(crate) struct SharedFabric {
    nprocs: usize,
    /// `rings[from * nprocs + to]`.
    rings: Vec<Spsc>,
    doorbells: Vec<Doorbell>,
    windows: Vec<DirectWindow>,
    terminated: Vec<AtomicBool>,
    /// Sweeps before parking, chosen at construction: [`SPIN_SWEEPS`] when every rank
    /// thread can have a core, [`SPIN_SWEEPS_OVERSUBSCRIBED`] otherwise.
    spin_sweeps: usize,
}

impl SharedFabric {
    /// Build the fabric for `nprocs` ranks.
    ///
    /// # Panics
    /// Panics if `nprocs` exceeds [`MAX_SHARED_RANKS`].
    pub(crate) fn new(nprocs: usize) -> Arc<SharedFabric> {
        assert!(
            nprocs <= MAX_SHARED_RANKS,
            "the SharedMem backend preallocates P^2 rings and supports at most \
             {MAX_SHARED_RANKS} ranks (got {nprocs}); use ExchangeBackend::Modeled for \
             larger machines"
        );
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        Arc::new(SharedFabric {
            nprocs,
            rings: (0..nprocs * nprocs).map(|_| Spsc::new()).collect(),
            doorbells: (0..nprocs)
                .map(|_| Doorbell {
                    sleeping: AtomicBool::new(false),
                    mutex: Mutex::new(()),
                    condvar: Condvar::new(),
                })
                .collect(),
            windows: (0..nprocs)
                .map(|_| DirectWindow {
                    tag: AtomicU64::new(0),
                    pending: AtomicUsize::new(0),
                    dst_ptr: AtomicUsize::new(0),
                    dst_len: AtomicUsize::new(0),
                    elem: UnsafeCell::new(None),
                    sources: (0..nprocs)
                        .map(|_| SourceSlot {
                            perm_ptr: AtomicUsize::new(0),
                            perm_len: AtomicUsize::new(0),
                        })
                        .collect(),
                })
                .collect(),
            terminated: (0..nprocs).map(|_| AtomicBool::new(false)).collect(),
            spin_sweeps: if nprocs <= cores {
                SPIN_SWEEPS
            } else {
                SPIN_SWEEPS_OVERSUBSCRIBED
            },
        })
    }

    pub(crate) fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Deliver one message from `from` to `to`, blocking (spin-yield) while the pair's
    /// ring is full.
    ///
    /// # Panics
    /// Panics if the destination rank has already terminated.
    pub(crate) fn send(&self, from: usize, to: usize, tag: u64, payload: Payload) {
        let mut env = Envelope { from, tag, payload };
        let ring = &self.rings[from * self.nprocs + to];
        loop {
            assert!(
                !self.terminated[to].load(Ordering::Acquire),
                "destination rank has terminated"
            );
            match ring.try_push(env) {
                Ok(()) => break,
                Err(back) => {
                    env = back;
                    std::thread::yield_now();
                }
            }
        }
        // Publish-then-check: the fence inside `ring` orders the ring publication
        // before the `sleeping` load, so a consumer that announced sleep before this
        // load will be notified, and one that announces after will rescan and find
        // the message.
        self.doorbells[to].ring();
    }

    /// Pop the next available inbound envelope for rank `me` (any source), parking on
    /// the doorbell when every ring is empty.
    ///
    /// # Panics
    /// Panics if all other ranks have terminated while nothing is in flight — the
    /// shared-memory analogue of every channel sender having been dropped.
    pub(crate) fn recv_next(&self, me: usize) -> Envelope {
        let mut sweeps = 0usize;
        loop {
            if let Some(env) = self.sweep(me) {
                return env;
            }
            if self.all_peers_terminated(me) {
                // One final sweep: a peer may have pushed right before terminating.
                if let Some(env) = self.sweep(me) {
                    return env;
                }
                panic!("all senders dropped while a receive was outstanding");
            }
            sweeps += 1;
            if sweeps < self.spin_sweeps {
                std::hint::spin_loop();
                std::thread::yield_now();
                continue;
            }
            // Park: announce, rescan (see module docs for the race argument), wait.
            let bell = &self.doorbells[me];
            let guard = bell.mutex.lock().unwrap();
            proto::bell_announce(bell);
            if let Some(env) = self.sweep(me) {
                proto::bell_retract(bell);
                return env;
            }
            if self.all_peers_terminated(me) {
                proto::bell_retract(bell);
                continue;
            }
            let guard = bell
                .condvar
                .wait_timeout(guard, std::time::Duration::from_millis(10))
                .unwrap()
                .0;
            proto::bell_retract(bell);
            drop(guard);
            sweeps = 0;
        }
    }

    /// One pass over rank `me`'s inbound rings, in sender order (self first, so local
    /// traffic is never starved by peers).
    fn sweep(&self, me: usize) -> Option<Envelope> {
        if let Some(env) = self.rings[me * self.nprocs + me].try_pop() {
            return Some(env);
        }
        for from in 0..self.nprocs {
            if from == me {
                continue;
            }
            if let Some(env) = self.rings[from * self.nprocs + me].try_pop() {
                return Some(env);
            }
        }
        None
    }

    /// Whether rank `p` has already shut down.  Senders waiting for `p`'s direct window
    /// use this to stop waiting for a window that can no longer appear.
    pub(crate) fn peer_terminated(&self, p: usize) -> bool {
        self.terminated[p].load(Ordering::Acquire)
    }

    fn all_peers_terminated(&self, me: usize) -> bool {
        self.nprocs > 1
            && (0..self.nprocs)
                .filter(|&p| p != me)
                .all(|p| self.terminated[p].load(Ordering::Acquire))
    }

    /// Mark rank `me` as shut down: subsequent sends to it panic, and receivers waiting
    /// only on it stop waiting.
    pub(crate) fn mark_terminated(&self, me: usize) {
        self.terminated[me].store(true, Ordering::Release);
        // Wake every parked rank so it can re-evaluate the termination condition.
        for bell in &self.doorbells {
            bell.ring();
        }
    }

    /// Publish rank `me`'s direct-delivery window for exchange `tag`: the destination
    /// region, its element type, one permutation list per expected source
    /// (`perm_of(p)`, `None` where the plan expects nothing), and the number of
    /// outstanding contributions.  Allocation-free — every slot is preallocated at
    /// fabric construction.
    ///
    /// The caller owns the window lifecycle: it must keep `dst` and the permutation
    /// lists alive and unmoved until [`SharedFabric::retire_window`] (normally after
    /// [`SharedFabric::window_recv_or_drained`] returns `None`), and must not touch the
    /// destination through any path other than the published pointer while the window
    /// is live.
    pub(crate) fn publish_window<T: 'static>(
        &self,
        me: usize,
        tag: u64,
        dst: *mut T,
        dst_len: usize,
        pending: usize,
        perm_of: impl Fn(usize) -> Option<(*const u32, usize)>,
    ) {
        let w = &self.windows[me];
        proto::window_publish(w, tag, pending, || {
            w.dst_ptr.store(dst as usize, Ordering::Relaxed);
            w.dst_len.store(dst_len, Ordering::Relaxed);
            // SAFETY: `window_publish` runs this closure while `tag == 0`, when no
            // sender dereferences `elem`; the Release tag store that follows orders
            // this write before any claiming sender's read.
            unsafe { *w.elem.get() = Some(TypeId::of::<T>()) };
            for p in 0..self.nprocs {
                let (ptr, len) = perm_of(p).map_or((0, 0), |(q, l)| (q as usize, l));
                w.sources[p].perm_ptr.store(ptr, Ordering::Relaxed);
                w.sources[p].perm_len.store(len, Ordering::Relaxed);
            }
        });
    }

    /// Attempt zero-copy delivery of rank `from`'s contribution to exchange `tag` on
    /// rank `to`.  Returns `false` when `to` has not (yet) published a window for this
    /// tag — the caller then falls back to a classic message.  On `true`, `copy` was
    /// called with `(dst, dst_len, perm)` — the destination region and `to`'s
    /// permutation list for `from` — the contribution is accounted delivered, and
    /// `to`'s doorbell was rung if it was the last one outstanding.
    ///
    /// # Panics
    /// Panics if the published window's element type differs from `T` or the receiver
    /// expects nothing from `from` — both are crossed/inconsistent exchange sequences.
    pub(crate) fn try_direct_deliver<T: 'static>(
        &self,
        from: usize,
        to: usize,
        tag: u64,
        copy: impl FnOnce(*mut T, usize, &[u32]),
    ) -> bool {
        let w = &self.windows[to];
        if !proto::window_try_claim(w, tag) {
            return false;
        }
        // The claim's Acquire ordered every field after the publish; the window cannot
        // retire or be republished underneath us because our own undelivered
        // contribution keeps `pending >= 1`.
        assert_eq!(
            // SAFETY: a successful claim orders this read after the publisher's
            // write of `elem` (which happened while `tag == 0`), and `elem` is not
            // rewritten while the window is live.
            unsafe { *w.elem.get() },
            Some(TypeId::of::<T>()),
            "direct window element type mismatch: crossed exchange sequence"
        );
        let perm_ptr = w.sources[from].perm_ptr.load(Ordering::Relaxed);
        let perm_len = w.sources[from].perm_len.load(Ordering::Relaxed);
        assert!(
            perm_ptr != 0,
            "rank {to}'s window expects nothing from rank {from}"
        );
        // SAFETY: the publisher guarantees the permutation list outlives the window
        // (it is retired only after every contribution lands), and our undelivered
        // contribution pins the window live for the duration of this call.
        let perm = unsafe { std::slice::from_raw_parts(perm_ptr as *const u32, perm_len) };
        copy(
            w.dst_ptr.load(Ordering::Relaxed) as *mut T,
            w.dst_len.load(Ordering::Relaxed),
            perm,
        );
        self.contribution_delivered(to);
        true
    }

    /// Count one contribution of rank `me`'s published window as delivered, waking `me`
    /// if it was the last.  Called by direct senders after their copy, and by the
    /// receiver itself after placing a classic fallback message.
    pub(crate) fn contribution_delivered(&self, me: usize) {
        // The AcqRel decrement releases this contribution's writes to the receiver's
        // Acquire read of zero and keeps the whole decrement chain a release sequence.
        if proto::window_contribution_delivered(&self.windows[me]) {
            // Last contribution: same publish-then-check protocol as `send` — either
            // the receiver's sleep announcement is visible here (the notify wakes it)
            // or its rescan happens after the decrement and observes the drain.
            self.doorbells[me].ring();
        }
    }

    /// Whether rank `me`'s published window has drained (every contribution delivered).
    /// The `Acquire` load is the receiver's synchronisation point with every direct
    /// sender's writes.
    pub(crate) fn window_drained(&self, me: usize) -> bool {
        proto::window_is_drained(&self.windows[me])
    }

    /// Retire rank `me`'s drained window, making the slot publishable again.
    pub(crate) fn retire_window(&self, me: usize) {
        proto::window_retire(&self.windows[me]);
    }

    /// Wait on rank `me`'s published window: returns the next classic envelope carrying
    /// `tag` (a fallback contribution the caller places and then reports through
    /// [`SharedFabric::contribution_delivered`]), stashing other-tag arrivals into
    /// `stash`, or `None` once every contribution has landed.  Parks on the doorbell
    /// exactly like [`SharedFabric::recv_next`]; fallback producers ring it on push and
    /// direct senders ring it on the last contribution.
    ///
    /// # Panics
    /// Panics if every peer terminates while contributions are still outstanding.
    pub(crate) fn window_recv_or_drained(
        &self,
        me: usize,
        tag: u64,
        stash: &mut Vec<Envelope>,
    ) -> Option<Envelope> {
        let mut sweeps = 0usize;
        loop {
            if self.window_drained(me) {
                return None;
            }
            if let Some(env) = self.sweep(me) {
                if env.tag == tag {
                    return Some(env);
                }
                stash.push(env);
                sweeps = 0;
                continue;
            }
            if self.all_peers_terminated(me) {
                // Final rescan: the last contribution may have landed right before
                // the peers shut down.
                if self.window_drained(me) {
                    return None;
                }
                if let Some(env) = self.sweep(me) {
                    if env.tag == tag {
                        return Some(env);
                    }
                    stash.push(env);
                    continue;
                }
                panic!("all senders dropped while a direct exchange was outstanding");
            }
            sweeps += 1;
            if sweeps < self.spin_sweeps {
                std::hint::spin_loop();
                std::thread::yield_now();
                continue;
            }
            // Park: announce, rescan both wake conditions, wait (see module docs).
            let bell = &self.doorbells[me];
            let guard = bell.mutex.lock().unwrap();
            proto::bell_announce(bell);
            if self.window_drained(me) {
                proto::bell_retract(bell);
                return None;
            }
            if let Some(env) = self.sweep(me) {
                proto::bell_retract(bell);
                if env.tag == tag {
                    return Some(env);
                }
                stash.push(env);
                sweeps = 0;
                continue;
            }
            let guard = bell
                .condvar
                .wait_timeout(guard, std::time::Duration::from_millis(10))
                .unwrap()
                .0;
            proto::bell_retract(bell);
            drop(guard);
            sweeps = 0;
        }
    }

    /// Emergency drain of rank `me`'s window during unwinding: absorb every outstanding
    /// contribution — so no sender can write through the window after the destination
    /// region is freed — then retire it.  Fallback envelopes for `tag` count as their
    /// contribution and are dropped unplaced; other arrivals are dropped too, since the
    /// machine is already coming down.
    pub(crate) fn abort_window(&self, me: usize, tag: u64) {
        loop {
            if self.window_drained(me) {
                break;
            }
            if let Some(env) = self.sweep(me) {
                if env.tag == tag {
                    self.contribution_delivered(me);
                }
                continue;
            }
            if self.all_peers_terminated(me) {
                // Terminated peers can never deliver; nothing more will arrive.
                break;
            }
            std::thread::yield_now();
        }
        // Not `proto::window_retire`: when every peer terminated mid-exchange the
        // window retires with `pending > 0` — the stragglers can never arrive, and
        // the machine is already unwinding.
        self.windows[me].tag.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes(v: Vec<u8>) -> Payload {
        Payload::Bytes(v)
    }

    #[test]
    fn ring_round_trips_in_fifo_order() {
        let fabric = SharedFabric::new(2);
        fabric.send(1, 0, 7, bytes(vec![1, 2, 3]));
        fabric.send(1, 0, 8, bytes(vec![4]));
        let a = fabric.recv_next(0);
        let b = fabric.recv_next(0);
        assert_eq!((a.from, a.tag, a.payload.byte_len()), (1, 7, 3));
        assert_eq!((b.from, b.tag, b.payload.byte_len()), (1, 8, 1));
    }

    #[test]
    fn full_ring_blocks_producer_until_consumer_drains() {
        let fabric = SharedFabric::new(2);
        let f2 = Arc::clone(&fabric);
        let producer = std::thread::spawn(move || {
            for i in 0..(RING_CAPACITY * 3) {
                f2.send(1, 0, i as u64, bytes(Vec::new()));
            }
        });
        for i in 0..(RING_CAPACITY * 3) {
            let env = fabric.recv_next(0);
            assert_eq!(env.tag, i as u64, "FIFO order across wraparound");
        }
        producer.join().unwrap();
    }

    #[test]
    fn parked_consumer_is_woken_by_late_producer() {
        let fabric = SharedFabric::new(2);
        let f2 = Arc::clone(&fabric);
        let consumer = std::thread::spawn(move || f2.recv_next(0).tag);
        // Let the consumer reach the parked state before sending.
        std::thread::sleep(std::time::Duration::from_millis(30));
        fabric.send(1, 0, 99, bytes(vec![5]));
        assert_eq!(consumer.join().unwrap(), 99);
    }

    #[test]
    fn typed_payloads_cross_the_fabric_untouched() {
        let fabric = SharedFabric::new(2);
        let values = vec![1.0f64, 2.0, 3.0];
        let ptr = values.as_ptr();
        fabric.send(
            1,
            0,
            5,
            Payload::Typed(crate::message::TypedPayload::new(values)),
        );
        let env = fabric.recv_next(0);
        match env.payload {
            Payload::Typed(t) => {
                let got = t.into_values::<f64>();
                assert_eq!(got, vec![1.0, 2.0, 3.0]);
                assert_eq!(got.as_ptr(), ptr, "the buffer moved, not its contents");
            }
            Payload::Bytes(_) => panic!("typed payload decayed to bytes"),
        }
    }

    #[test]
    #[should_panic(expected = "destination rank has terminated")]
    fn send_to_terminated_rank_panics() {
        let fabric = SharedFabric::new(2);
        fabric.mark_terminated(0);
        fabric.send(1, 0, 1, bytes(Vec::new()));
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn fabric_rejects_oversized_machines() {
        let _ = SharedFabric::new(MAX_SHARED_RANKS + 1);
    }

    #[test]
    fn direct_window_round_trips_and_retires() {
        let fabric = SharedFabric::new(2);
        let mut dst = vec![0.0f64; 4];
        let perm: Vec<u32> = vec![3, 1];
        fabric.publish_window::<f64>(0, 7, dst.as_mut_ptr(), dst.len(), 1, |p| {
            (p == 1).then_some((perm.as_ptr(), perm.len()))
        });
        // A sender on a different exchange tag must miss the window.
        assert!(!fabric.try_direct_deliver::<f64>(1, 0, 8, |_, _, _| panic!("wrong tag")));
        assert!(fabric.try_direct_deliver::<f64>(1, 0, 7, |d, len, perm| {
            assert_eq!(len, 4);
            assert_eq!(perm, &[3, 1]);
            // SAFETY: `d` points at the published 4-element `dst`, which outlives the
            // window, and both perm slots were just asserted to be [3, 1].
            unsafe {
                *d.add(perm[0] as usize) = 5.0;
                *d.add(perm[1] as usize) = 6.0;
            }
        }));
        assert!(fabric.window_drained(0));
        fabric.retire_window(0);
        // Retired windows accept no further deliveries.
        assert!(!fabric.try_direct_deliver::<f64>(1, 0, 7, |_, _, _| panic!("retired")));
        assert_eq!(dst, vec![0.0, 6.0, 0.0, 5.0]);
    }

    #[test]
    fn window_wait_mixes_fallback_messages_direct_writes_and_stashing() {
        // pending = 2: rank 2 contributes by classic fallback message, rank 1 by a
        // late direct write that must wake the parked receiver.  An unrelated-tag
        // envelope arriving in between must be stashed, not consumed.
        let fabric = SharedFabric::new(3);
        let mut dst = vec![0.0f64; 2];
        let perm1: Vec<u32> = vec![0];
        let perm2: Vec<u32> = vec![1];
        fabric.publish_window::<f64>(0, 7, dst.as_mut_ptr(), dst.len(), 2, |p| match p {
            1 => Some((perm1.as_ptr(), perm1.len())),
            2 => Some((perm2.as_ptr(), perm2.len())),
            _ => None,
        });
        fabric.send(2, 0, 99, bytes(vec![42])); // unrelated tag: must be stashed
        fabric.send(
            2,
            0,
            7,
            Payload::Typed(crate::message::TypedPayload::new(vec![2.5f64])),
        );
        let mut stash = Vec::new();
        let env = fabric
            .window_recv_or_drained(0, 7, &mut stash)
            .expect("the fallback message must surface before the drain");
        assert_eq!((env.from, env.tag), (2, 7));
        match env.payload {
            Payload::Typed(t) => {
                let v = t.into_values::<f64>();
                // SAFETY: slot 1 of the live 2-element `dst` — rank 2's permutation
                // slot, disjoint from rank 1's in-flight direct write to slot 0.
                unsafe { *dst.as_mut_ptr().add(1) = v[0] };
            }
            Payload::Bytes(_) => panic!("typed payload decayed"),
        }
        fabric.contribution_delivered(0);
        let f2 = Arc::clone(&fabric);
        let sender = std::thread::spawn(move || {
            // Let the receiver reach the parked state, then deliver directly.
            std::thread::sleep(std::time::Duration::from_millis(30));
            assert!(f2.try_direct_deliver::<f64>(1, 0, 7, |d, _, perm| {
                // SAFETY: `d` is the published window over `dst`, alive until the
                // receiver retires it after the drain; perm[0] == 0 < dst.len().
                unsafe { *d.add(perm[0] as usize) = 1.5 };
            }));
        });
        assert!(
            fabric.window_recv_or_drained(0, 7, &mut stash).is_none(),
            "the wait must end when the last direct contribution lands"
        );
        sender.join().unwrap();
        fabric.retire_window(0);
        assert_eq!(dst, vec![1.5, 2.5]);
        assert_eq!(stash.len(), 1, "the unrelated envelope was stashed");
        assert_eq!((stash[0].from, stash[0].tag), (2, 99));
    }

    #[test]
    #[should_panic(expected = "element type mismatch")]
    fn direct_delivery_with_wrong_element_type_panics() {
        let fabric = SharedFabric::new(2);
        let mut dst = vec![0.0f64; 1];
        let perm: Vec<u32> = vec![0];
        fabric.publish_window::<f64>(0, 7, dst.as_mut_ptr(), dst.len(), 1, |p| {
            (p == 1).then_some((perm.as_ptr(), perm.len()))
        });
        let _ = fabric.try_direct_deliver::<u32>(1, 0, 7, |_, _, _| {});
    }

    #[test]
    fn abort_window_absorbs_outstanding_fallbacks() {
        let fabric = SharedFabric::new(2);
        let mut dst = vec![0.0f64; 1];
        let perm: Vec<u32> = vec![0];
        fabric.publish_window::<f64>(0, 7, dst.as_mut_ptr(), dst.len(), 1, |p| {
            (p == 1).then_some((perm.as_ptr(), perm.len()))
        });
        fabric.send(
            1,
            0,
            7,
            Payload::Typed(crate::message::TypedPayload::new(vec![9.0f64])),
        );
        fabric.abort_window(0, 7);
        assert!(fabric.window_drained(0));
        assert_eq!(dst, vec![0.0], "aborted contributions are dropped unplaced");
        // The slot is publishable again and serves the next exchange normally.
        fabric.publish_window::<f64>(0, 8, dst.as_mut_ptr(), dst.len(), 1, |p| {
            (p == 1).then_some((perm.as_ptr(), perm.len()))
        });
        assert!(fabric.try_direct_deliver::<f64>(1, 0, 8, |d, _, perm| {
            // SAFETY: `d` is the freshly republished window over the still-live
            // `dst`; perm[0] == 0 < dst.len().
            unsafe { *d.add(perm[0] as usize) = 3.0 };
        }));
        fabric.retire_window(0);
        assert_eq!(dst, vec![3.0]);
    }
}
