//! Point-to-point communication endpoints.
//!
//! Each rank owns a [`Mailbox`]: one unbounded incoming channel plus a sender handle to
//! every other rank's channel.  Receives are *selective* — a receive for `(from, tag)`
//! stashes any other message that arrives first and delivers it later — which gives the
//! deterministic, MPI-like matching semantics the CHAOS executor relies on.

use std::sync::mpsc::{channel, Receiver, Sender};

use crate::message::Envelope;

/// The per-rank communication endpoint.
pub struct Mailbox {
    rank: usize,
    senders: Vec<Sender<Envelope>>,
    receiver: Receiver<Envelope>,
    /// Messages that arrived but have not yet been asked for.
    pending: Vec<Envelope>,
}

impl Mailbox {
    /// Create the fully connected set of mailboxes for `nprocs` ranks.
    pub fn create_all(nprocs: usize) -> Vec<Mailbox> {
        let mut senders = Vec::with_capacity(nprocs);
        let mut receivers = Vec::with_capacity(nprocs);
        for _ in 0..nprocs {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| Mailbox {
                rank,
                senders: senders.clone(),
                receiver,
                pending: Vec::new(),
            })
            .collect()
    }

    /// The rank that owns this mailbox.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the machine.
    pub fn nprocs(&self) -> usize {
        self.senders.len()
    }

    /// Send `payload` to rank `to` with the given `tag`.
    ///
    /// Sends are buffered and never block.  Sending to oneself is allowed (the message is
    /// delivered through the same matching path as any other).
    ///
    /// # Panics
    /// Panics if `to` is out of range or the destination rank has already shut down.
    pub fn send(&self, to: usize, tag: u64, payload: Vec<u8>) {
        assert!(
            to < self.senders.len(),
            "send to rank {to} but machine has {} ranks",
            self.senders.len()
        );
        self.senders[to]
            .send(Envelope {
                from: self.rank,
                tag,
                payload,
            })
            .expect("destination rank has terminated");
    }

    /// Blocking receive of the next message from `from` with tag `tag`.
    ///
    /// Messages from other ranks or with other tags are stashed and delivered to later
    /// matching receives in arrival order.
    pub fn recv(&mut self, from: usize, tag: u64) -> Envelope {
        if let Some(idx) = self
            .pending
            .iter()
            .position(|m| m.from == from && m.tag == tag)
        {
            return self.pending.remove(idx);
        }
        loop {
            let msg = self
                .receiver
                .recv()
                .expect("all senders dropped while a receive was outstanding");
            if msg.from == from && msg.tag == tag {
                return msg;
            }
            self.pending.push(msg);
        }
    }

    /// Blocking receive of the next message carrying tag `tag` from *any* rank.
    pub fn recv_any(&mut self, tag: u64) -> Envelope {
        if let Some(idx) = self.pending.iter().position(|m| m.tag == tag) {
            return self.pending.remove(idx);
        }
        loop {
            let msg = self
                .receiver
                .recv()
                .expect("all senders dropped while a receive was outstanding");
            if msg.tag == tag {
                return msg;
            }
            self.pending.push(msg);
        }
    }

    /// Number of stashed (received but unmatched) messages.  Useful in tests to assert
    /// that a protocol consumed everything it sent.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn two_ranks_exchange_in_order() {
        let mut boxes = Mailbox::create_all(2);
        let mut b1 = boxes.pop().unwrap();
        let mut b0 = boxes.pop().unwrap();
        let t = thread::spawn(move || {
            b1.send(0, 7, vec![1, 2, 3]);
            b1.send(0, 7, vec![4, 5]);
            let m = b1.recv(0, 9);
            assert_eq!(m.payload, vec![9]);
        });
        let m1 = b0.recv(1, 7);
        let m2 = b0.recv(1, 7);
        assert_eq!(m1.payload, vec![1, 2, 3]);
        assert_eq!(m2.payload, vec![4, 5]);
        b0.send(1, 9, vec![9]);
        t.join().unwrap();
        assert_eq!(b0.pending_len(), 0);
    }

    #[test]
    fn selective_receive_reorders_tags() {
        let mut boxes = Mailbox::create_all(2);
        let b1 = boxes.pop().unwrap();
        let mut b0 = boxes.pop().unwrap();
        // Rank 1 sends tag 1 then tag 2; rank 0 asks for tag 2 first.
        b1.send(0, 1, vec![11]);
        b1.send(0, 2, vec![22]);
        let second = b0.recv(1, 2);
        assert_eq!(second.payload, vec![22]);
        let first = b0.recv(1, 1);
        assert_eq!(first.payload, vec![11]);
    }

    #[test]
    fn self_send_is_delivered() {
        let mut boxes = Mailbox::create_all(1);
        let mut b0 = boxes.pop().unwrap();
        b0.send(0, 3, vec![42]);
        assert_eq!(b0.recv(0, 3).payload, vec![42]);
    }

    #[test]
    fn recv_any_matches_any_source() {
        let mut boxes = Mailbox::create_all(3);
        let b2 = boxes.pop().unwrap();
        let b1 = boxes.pop().unwrap();
        let mut b0 = boxes.pop().unwrap();
        b1.send(0, 5, vec![1]);
        b2.send(0, 5, vec![2]);
        let mut froms = vec![b0.recv_any(5).from, b0.recv_any(5).from];
        froms.sort_unstable();
        assert_eq!(froms, vec![1, 2]);
    }
}
