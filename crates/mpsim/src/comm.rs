//! Point-to-point communication endpoints.
//!
//! Each rank owns a [`Mailbox`]: an incoming message stream plus the means to push into
//! every other rank's stream.  Receives are *selective* — a receive for `(from, tag)`
//! stashes any other message that arrives first and delivers it later — which gives the
//! deterministic, MPI-like matching semantics the CHAOS executor relies on.
//!
//! The physical wire under the mailbox is chosen by the machine's
//! [`crate::ExchangeBackend`]: one unbounded mpsc channel per rank (the modeled
//! transport) or the per-pair lock-free SPSC rings of [`crate::shared`].  Matching
//! semantics are identical either way; only host wall-clock behaviour differs.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

use crate::message::{Envelope, Payload};
use crate::shared::SharedFabric;

/// The physical transport behind one mailbox.
enum Transport {
    /// One unbounded mpsc channel per rank (modeled backend).
    Channel {
        senders: Vec<Sender<Envelope>>,
        receiver: Receiver<Envelope>,
    },
    /// Per-pair SPSC rings (shared-memory backend).
    Shared { fabric: Arc<SharedFabric> },
}

/// The per-rank communication endpoint.
pub struct Mailbox {
    rank: usize,
    transport: Transport,
    /// Messages that arrived but have not yet been asked for.
    pending: Vec<Envelope>,
}

impl Mailbox {
    /// Create the fully connected set of mailboxes for `nprocs` ranks over the modeled
    /// (mpsc channel) transport.
    pub fn create_all(nprocs: usize) -> Vec<Mailbox> {
        let mut senders = Vec::with_capacity(nprocs);
        let mut receivers = Vec::with_capacity(nprocs);
        for _ in 0..nprocs {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| Mailbox {
                rank,
                transport: Transport::Channel {
                    senders: senders.clone(),
                    receiver,
                },
                pending: Vec::new(),
            })
            .collect()
    }

    /// Create the fully connected set of mailboxes for `nprocs` ranks over the
    /// shared-memory SPSC fabric.
    ///
    /// # Panics
    /// Panics if `nprocs` exceeds [`crate::shared::MAX_SHARED_RANKS`].
    pub fn create_shared(nprocs: usize) -> Vec<Mailbox> {
        let fabric = SharedFabric::new(nprocs);
        (0..nprocs)
            .map(|rank| Mailbox {
                rank,
                transport: Transport::Shared {
                    fabric: Arc::clone(&fabric),
                },
                pending: Vec::new(),
            })
            .collect()
    }

    /// The rank that owns this mailbox.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the machine.
    pub fn nprocs(&self) -> usize {
        match &self.transport {
            Transport::Channel { senders, .. } => senders.len(),
            Transport::Shared { fabric } => fabric.nprocs(),
        }
    }

    /// Send `payload` to rank `to` with the given `tag`.
    ///
    /// Sends are buffered and never block on the modeled transport; the shared-memory
    /// transport blocks (yielding) only while the destination's ring is full.  Sending to
    /// oneself is allowed (the message is delivered through the same matching path as any
    /// other).
    ///
    /// # Panics
    /// Panics if `to` is out of range or the destination rank has already shut down.
    pub fn send(&self, to: usize, tag: u64, payload: Payload) {
        assert!(
            to < self.nprocs(),
            "send to rank {to} but machine has {} ranks",
            self.nprocs()
        );
        match &self.transport {
            Transport::Channel { senders, .. } => senders[to]
                .send(Envelope {
                    from: self.rank,
                    tag,
                    payload,
                })
                .expect("destination rank has terminated"),
            Transport::Shared { fabric } => fabric.send(self.rank, to, tag, payload),
        }
    }

    /// Pull the next message off the wire, whatever it is.
    fn recv_next(&mut self) -> Envelope {
        match &mut self.transport {
            Transport::Channel { receiver, .. } => receiver
                .recv()
                .expect("all senders dropped while a receive was outstanding"),
            Transport::Shared { fabric } => fabric.recv_next(self.rank),
        }
    }

    /// Blocking receive of the next message from `from` with tag `tag`.
    ///
    /// Messages from other ranks or with other tags are stashed and delivered to later
    /// matching receives in arrival order.
    pub fn recv(&mut self, from: usize, tag: u64) -> Envelope {
        if let Some(idx) = self
            .pending
            .iter()
            .position(|m| m.from == from && m.tag == tag)
        {
            return self.pending.remove(idx);
        }
        loop {
            let msg = self.recv_next();
            if msg.from == from && msg.tag == tag {
                return msg;
            }
            self.pending.push(msg);
        }
    }

    /// Blocking receive of the next message carrying tag `tag` from *any* rank.
    pub fn recv_any(&mut self, tag: u64) -> Envelope {
        if let Some(idx) = self.pending.iter().position(|m| m.tag == tag) {
            return self.pending.remove(idx);
        }
        loop {
            let msg = self.recv_next();
            if msg.tag == tag {
                return msg;
            }
            self.pending.push(msg);
        }
    }

    /// Number of stashed (received but unmatched) messages.  Useful in tests to assert
    /// that a protocol consumed everything it sent.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The shared fabric behind this mailbox, when the machine runs the SharedMem
    /// backend (`None` on the modeled transport).
    pub(crate) fn shared_fabric(&self) -> Option<Arc<SharedFabric>> {
        match &self.transport {
            Transport::Shared { fabric } => Some(Arc::clone(fabric)),
            Transport::Channel { .. } => None,
        }
    }

    /// Direct-exchange wait: the next message carrying `tag` (stash first — an earlier
    /// selective receive may already have pulled it off the wire), or `None` once this
    /// rank's published direct window has fully drained.  Shared transport only; see
    /// [`SharedFabric::window_recv_or_drained`].
    pub(crate) fn recv_tag_or_window_drained(&mut self, tag: u64) -> Option<Envelope> {
        if let Some(idx) = self.pending.iter().position(|m| m.tag == tag) {
            return Some(self.pending.remove(idx));
        }
        match &self.transport {
            Transport::Shared { fabric } => {
                fabric.window_recv_or_drained(self.rank, tag, &mut self.pending)
            }
            Transport::Channel { .. } => {
                unreachable!("direct windows exist only on the shared transport")
            }
        }
    }
}

impl Drop for Mailbox {
    fn drop(&mut self) {
        if let Transport::Shared { fabric } = &self.transport {
            fabric.mark_terminated(self.rank);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn bytes(v: Vec<u8>) -> Payload {
        Payload::Bytes(v)
    }

    fn payload_bytes(env: Envelope) -> Vec<u8> {
        env.payload.into_bytes()
    }

    /// Run the core matching tests over both transports — the semantics must not
    /// depend on the wire.
    fn both_transports(f: impl Fn(Vec<Mailbox>)) {
        f(Mailbox::create_all(3));
        f(Mailbox::create_shared(3));
    }

    #[test]
    fn two_ranks_exchange_in_order() {
        for make in [
            Mailbox::create_all as fn(usize) -> _,
            Mailbox::create_shared,
        ] {
            let mut boxes = make(2);
            let mut b1 = boxes.pop().unwrap();
            let mut b0 = boxes.pop().unwrap();
            let t = thread::spawn(move || {
                b1.send(0, 7, bytes(vec![1, 2, 3]));
                b1.send(0, 7, bytes(vec![4, 5]));
                let m = b1.recv(0, 9);
                assert_eq!(payload_bytes(m), vec![9]);
            });
            let m1 = b0.recv(1, 7);
            let m2 = b0.recv(1, 7);
            assert_eq!(payload_bytes(m1), vec![1, 2, 3]);
            assert_eq!(payload_bytes(m2), vec![4, 5]);
            b0.send(1, 9, bytes(vec![9]));
            t.join().unwrap();
            assert_eq!(b0.pending_len(), 0);
        }
    }

    #[test]
    fn selective_receive_reorders_tags() {
        both_transports(|mut boxes| {
            let _b2 = boxes.pop().unwrap();
            let b1 = boxes.pop().unwrap();
            let mut b0 = boxes.pop().unwrap();
            // Rank 1 sends tag 1 then tag 2; rank 0 asks for tag 2 first.
            b1.send(0, 1, bytes(vec![11]));
            b1.send(0, 2, bytes(vec![22]));
            let second = b0.recv(1, 2);
            assert_eq!(payload_bytes(second), vec![22]);
            let first = b0.recv(1, 1);
            assert_eq!(payload_bytes(first), vec![11]);
        });
    }

    #[test]
    fn self_send_is_delivered() {
        for make in [
            Mailbox::create_all as fn(usize) -> _,
            Mailbox::create_shared,
        ] {
            let mut boxes = make(1);
            let mut b0 = boxes.pop().unwrap();
            b0.send(0, 3, bytes(vec![42]));
            assert_eq!(payload_bytes(b0.recv(0, 3)), vec![42]);
        }
    }

    #[test]
    fn recv_any_matches_any_source() {
        both_transports(|mut boxes| {
            let b2 = boxes.pop().unwrap();
            let b1 = boxes.pop().unwrap();
            let mut b0 = boxes.pop().unwrap();
            b1.send(0, 5, bytes(vec![1]));
            b2.send(0, 5, bytes(vec![2]));
            let mut froms = vec![b0.recv_any(5).from, b0.recv_any(5).from];
            froms.sort_unstable();
            assert_eq!(froms, vec![1, 2]);
        });
    }
}
