//! Per-rank communication and computation counters.
//!
//! The paper's evaluation (§4) reports communication and computation *times*; those are
//! derived in [`crate::cost`], but the raw quantities they are derived from — message
//! counts, byte counts, work units, and the pack-buffer pool's allocation counters — are
//! accumulated here, where regression tests and the benchmark harnesses can pin them
//! exactly.

/// Raw counters accumulated by one rank over an SPMD run.
///
/// These are the quantities the CHAOS optimisations actually change — message counts drop
/// with communication vectorization, byte counts drop with software caching (duplicate
/// removal), work-unit counts shift between ranks with partitioning — and they feed the
/// modeled-time accounting in [`crate::cost`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankStats {
    /// Point-to-point messages sent.
    pub msgs_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Point-to-point messages received.
    pub msgs_received: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Synchronising collectives (barriers, reductions) participated in.
    pub collectives: u64,
    /// Application-reported work units executed.
    pub compute_units: f64,
}

impl RankStats {
    /// Record one outgoing message of `bytes` payload bytes.
    pub fn record_send(&mut self, bytes: usize) {
        self.msgs_sent += 1;
        self.bytes_sent += bytes as u64;
    }

    /// Record one incoming message of `bytes` payload bytes.
    pub fn record_recv(&mut self, bytes: usize) {
        self.msgs_received += 1;
        self.bytes_received += bytes as u64;
    }

    /// Record participation in one synchronising collective.
    pub fn record_collective(&mut self) {
        self.collectives += 1;
    }

    /// Record `units` of application work.
    pub fn record_compute(&mut self, units: f64) {
        self.compute_units += units;
    }

    /// Combine two rank-local stat blocks (used when aggregating a whole machine).
    pub fn merged(&self, other: &RankStats) -> RankStats {
        RankStats {
            msgs_sent: self.msgs_sent + other.msgs_sent,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            msgs_received: self.msgs_received + other.msgs_received,
            bytes_received: self.bytes_received + other.bytes_received,
            collectives: self.collectives + other.collectives,
            compute_units: self.compute_units + other.compute_units,
        }
    }
}

/// Counters of the per-rank buffer pools (see `Rank::pool_stats`).
///
/// Two pools keep the exchange engine's steady state allocation-free, one per direction:
///
/// * the **pack-buffer pool** (`allocations` / `reuses`) recycles the *byte* buffers
///   outgoing messages are encoded into — every consumed incoming message returns its
///   payload buffer to this free list;
/// * the **decode-scratch pool** (`decode_allocations` / `decode_reuses`) recycles the
///   *typed* `Vec<T>` buffers incoming payloads are decoded into before placement — a
///   placement closure that only borrows the values (the executor's gather/scatter,
///   remapping) hands its scratch straight back; only `Placed::into_vec` removes a buffer
///   from circulation.
///
/// In a steady-state exchange loop (the executor's gather/scatter, the DSMC append) each
/// iteration receives as many buffers as it sends, so after a warm-up iteration both pools
/// satisfy every request and the allocation counters stop growing — the property the
/// `exchange_microbench` harness and the pool smoke tests pin down, in both directions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PackPoolStats {
    /// Pack buffers created fresh because the free list was empty (send-side pool misses).
    pub allocations: u64,
    /// Pack buffers served from the free list (send-side pool hits).
    pub reuses: u64,
    /// Decode-scratch buffers created fresh because the typed free list was empty
    /// (receive-side pool misses).
    pub decode_allocations: u64,
    /// Decode-scratch buffers served from the typed free list (receive-side pool hits).
    pub decode_reuses: u64,
}

impl PackPoolStats {
    /// Total pack-buffer requests: what a pool-less engine would have allocated on the
    /// send side.
    pub fn requests(&self) -> u64 {
        self.allocations + self.reuses
    }

    /// Total decode-scratch requests: what a pool-less engine would have allocated on the
    /// receive side (one fresh `Vec<T>` per incoming message).
    pub fn decode_requests(&self) -> u64 {
        self.decode_allocations + self.decode_reuses
    }

    /// Counter deltas since an earlier snapshot.
    pub fn since(&self, earlier: &PackPoolStats) -> PackPoolStats {
        PackPoolStats {
            allocations: self.allocations - earlier.allocations,
            reuses: self.reuses - earlier.reuses,
            decode_allocations: self.decode_allocations - earlier.decode_allocations,
            decode_reuses: self.decode_reuses - earlier.decode_reuses,
        }
    }

    /// Combine the counters of two pools (used when aggregating a whole machine).
    pub fn merged(&self, other: &PackPoolStats) -> PackPoolStats {
        PackPoolStats {
            allocations: self.allocations + other.allocations,
            reuses: self.reuses + other.reuses,
            decode_allocations: self.decode_allocations + other.decode_allocations,
            decode_reuses: self.decode_reuses + other.decode_reuses,
        }
    }
}

/// Aggregate statistics over all ranks of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MachineStats {
    /// Sum of all per-rank counters.
    pub total: RankStats,
    /// Number of ranks aggregated.
    pub nprocs: usize,
}

impl MachineStats {
    /// Aggregate a slice of per-rank stats.
    pub fn from_ranks(ranks: &[RankStats]) -> Self {
        let mut total = RankStats::default();
        for r in ranks {
            total = total.merged(r);
        }
        MachineStats {
            total,
            nprocs: ranks.len(),
        }
    }

    /// Total message count across the machine.
    pub fn total_messages(&self) -> u64 {
        self.total.msgs_sent
    }

    /// Total communication volume in bytes across the machine.
    pub fn total_bytes(&self) -> u64 {
        self.total.bytes_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = RankStats::default();
        s.record_send(100);
        s.record_send(50);
        s.record_recv(25);
        s.record_collective();
        s.record_compute(3.5);
        assert_eq!(s.msgs_sent, 2);
        assert_eq!(s.bytes_sent, 150);
        assert_eq!(s.msgs_received, 1);
        assert_eq!(s.bytes_received, 25);
        assert_eq!(s.collectives, 1);
        assert_eq!(s.compute_units, 3.5);
    }

    #[test]
    fn merge_and_machine_aggregate() {
        let mut a = RankStats::default();
        a.record_send(10);
        a.record_compute(1.0);
        let mut b = RankStats::default();
        b.record_send(20);
        b.record_recv(10);
        b.record_compute(2.0);
        let m = MachineStats::from_ranks(&[a, b]);
        assert_eq!(m.nprocs, 2);
        assert_eq!(m.total_messages(), 2);
        assert_eq!(m.total_bytes(), 30);
        assert_eq!(m.total.compute_units, 3.0);
        assert_eq!(a.merged(&b), m.total);
    }
}
