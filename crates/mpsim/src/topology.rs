//! Machine description and virtual topologies over rank IDs.
//!
//! A [`MachineConfig`] is the simulated analogue of "how many iPSC/860 nodes the job
//! asked for": the paper's tables sweep this from 1 to 128 processors while holding the
//! [`crate::cost::CostModel`] fixed.
//!
//! The rest of this module is the *virtual topology* layer underneath the collectives:
//! pure rank-ID arithmetic describing who talks to whom in each round of a log-depth
//! collective, with no communication of its own.  Two shapes cover everything the
//! runtime needs, and both handle non-power-of-two machine sizes:
//!
//! * [`Dissemination`] — the symmetric schedule behind `all_gather`, the reductions,
//!   `barrier` and the count negotiation: in round `k` every rank sends to the rank
//!   `2^k` below it and receives from the rank `2^k` above it (mod P), so after
//!   `ceil(log2 P)` rounds every rank has heard, directly or transitively, from every
//!   other rank.
//! * [`BinomialTree`] — the rooted schedule behind `broadcast` and the group
//!   gather/broadcast of hierarchical monitoring: the root's data reaches `2^k` ranks
//!   after round `k`, and the mirrored low-bit-first pairing gathers contiguous blocks
//!   to the root in the same number of rounds.
//!
//! [`GroupMap`] partitions the machine into contiguous leader groups for the
//! hierarchical (group-leader) monitoring mode of `chaos::adapt`.

use crate::cost::CostModel;
use crate::shared::ExchangeBackend;

/// Description of the simulated machine used for one SPMD run.
///
/// The configuration is intentionally small: the number of ranks, a [`CostModel`], and
/// the [`ExchangeBackend`] the ranks communicate through.  The paper's experiments sweep
/// the processor count from 1 to 128; construct one `MachineConfig` per point of the
/// sweep.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of SPMD ranks (processors) to simulate.
    pub nprocs: usize,
    /// Cost model used to accumulate modeled communication and computation time.
    pub cost: CostModel,
    /// Stack size (bytes) for each rank's thread.  Irregular applications with large
    /// per-rank buffers occasionally need more than the platform default.
    pub stack_size: usize,
    /// Transport the ranks exchange through.  Modeled time, statistics and results are
    /// identical across backends; only host wall-clock differs.  Defaults to
    /// [`ExchangeBackend::from_env`] (the `MPSIM_BACKEND` variable), so a whole test run
    /// can be flipped to the shared-memory wire without touching code.
    pub backend: ExchangeBackend,
    /// Enable the collective ledger (see [`crate::ledger`]): every rank records the
    /// sequence of collectives/exchanges it starts, cross-checked machine-wide at each
    /// barrier and at shutdown.  Defaults to the `MPSIM_LEDGER` environment variable
    /// (`1`/`true`), so a whole test run can be put under verification without touching
    /// code.
    pub ledger: bool,
}

impl MachineConfig {
    /// A machine with `nprocs` ranks, the default (iPSC/860-class) cost model, and the
    /// environment-selected backend.
    pub fn new(nprocs: usize) -> Self {
        Self {
            nprocs,
            cost: CostModel::ipsc860(),
            stack_size: 8 * 1024 * 1024,
            backend: ExchangeBackend::from_env(),
            ledger: std::env::var("MPSIM_LEDGER")
                .is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true")),
        }
    }

    /// Replace the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Replace the per-thread stack size.
    pub fn with_stack_size(mut self, bytes: usize) -> Self {
        self.stack_size = bytes;
        self
    }

    /// Pin the exchange backend, overriding the `MPSIM_BACKEND` default.  Sweeps that
    /// scale past [`crate::shared::MAX_SHARED_RANKS`] pin [`ExchangeBackend::Modeled`];
    /// wall-clock benchmarks pin each backend explicitly to compare them.
    pub fn with_backend(mut self, backend: ExchangeBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Enable the collective ledger, overriding the `MPSIM_LEDGER` default.
    pub fn with_ledger(mut self) -> Self {
        self.ledger = true;
        self
    }
}

/// `ceil(log2(nprocs))`: the number of rounds of every log-depth collective on
/// `nprocs` ranks, and the depth factor of [`CostModel::sync_cost_us`].  Zero for a
/// single-rank machine.
///
/// # Panics
/// Panics if `nprocs` is zero.
pub fn tree_rounds(nprocs: usize) -> usize {
    assert!(nprocs > 0, "a machine has at least one rank");
    (usize::BITS - (nprocs - 1).leading_zeros()) as usize
}

/// The dissemination (recursive-doubling) schedule over `nprocs` ranks.
///
/// Round `k` (with distance `d = 2^k`) moves data "downhill": rank `r` sends to
/// `(r - d) mod P` and receives from `(r + d) mod P`.  Used as an all-gather it
/// maintains the invariant that after round `k` rank `r` holds the *blocks* (per-rank
/// contributions) of ranks `r, r+1, …, r + min(2^(k+1), P) - 1` (mod P), so
/// [`Dissemination::rounds`] rounds suffice for any `P`, power of two or not; the final
/// round is partial ([`Dissemination::blocks_in_round`] < `2^k`) when `P` is not a
/// power of two.  Every rank sends exactly one message and receives exactly one message
/// per round — `ceil(log2 P)` messages each way in total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dissemination {
    nprocs: usize,
}

impl Dissemination {
    /// The dissemination schedule for a machine of `nprocs` ranks.
    ///
    /// # Panics
    /// Panics if `nprocs` is zero.
    pub fn new(nprocs: usize) -> Self {
        assert!(nprocs > 0, "a machine has at least one rank");
        Dissemination { nprocs }
    }

    /// Number of ranks the schedule spans.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Number of rounds: `ceil(log2 P)` (zero on a single rank).
    pub fn rounds(&self) -> usize {
        tree_rounds(self.nprocs)
    }

    /// The hop distance of round `k`: `2^k`.
    pub fn distance(&self, round: usize) -> usize {
        1 << round
    }

    /// Number of per-rank blocks exchanged in round `k`: `min(2^k, P - 2^k)`.
    /// Equal to `2^k` for every round except a partial final round of a
    /// non-power-of-two machine.
    pub fn blocks_in_round(&self, round: usize) -> usize {
        let d = self.distance(round);
        d.min(self.nprocs - d)
    }

    /// The rank `rank` sends to in round `k`: `(rank - 2^k) mod P`.
    pub fn send_peer(&self, rank: usize, round: usize) -> usize {
        let d = self.distance(round);
        (rank + self.nprocs - d) % self.nprocs
    }

    /// The rank `rank` receives from in round `k`: `(rank + 2^k) mod P`.
    pub fn recv_peer(&self, rank: usize, round: usize) -> usize {
        let d = self.distance(round);
        (rank + d) % self.nprocs
    }

    /// The blocks (owning ranks) `rank` ships in round `k`, in transmission order:
    /// `rank, rank+1, …` (mod P), [`Self::blocks_in_round`] of them.  These are always
    /// the oldest blocks the rank holds, so the invariant above guarantees it has them.
    pub fn send_blocks(&self, rank: usize, round: usize) -> impl Iterator<Item = usize> {
        let n = self.nprocs;
        (0..self.blocks_in_round(round)).map(move |i| (rank + i) % n)
    }

    /// The blocks (owning ranks) `rank` receives in round `k`, in transmission order:
    /// `rank + 2^k, rank + 2^k + 1, …` (mod P).
    pub fn recv_blocks(&self, rank: usize, round: usize) -> impl Iterator<Item = usize> {
        let n = self.nprocs;
        let d = self.distance(round);
        (0..self.blocks_in_round(round)).map(move |i| (rank + d + i) % n)
    }
}

/// A binomial tree over `0..nprocs`, rooted at `root`, in *relative* rank space
/// `rel = (rank - root) mod P`.
///
/// Two mirrored schedules share the shape:
///
/// * **Broadcast** (root → leaves, high-bit pairing): in round `k`, every rank with
///   `rel < 2^k` sends to `rel + 2^k` (when that rank exists), so the informed set
///   doubles each round and rank `rel` first hears from `rel` minus its highest set
///   bit — its [`BinomialTree::parent`].
/// * **Gather** (leaves → root, low-bit pairing): in round `k`, every rank whose
///   relative ID has bit `k` set and all lower bits clear sends its accumulated block to
///   `rel - 2^k`.  A rank entering round `k` with its low `k` bits clear holds the
///   contiguous block of ranks `rel .. min(rel + 2^k, P)`, so the root ends with all
///   blocks in rank order — which is what keeps hierarchical monitoring's assembled
///   sample vector byte-identical to a flat gather.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinomialTree {
    nprocs: usize,
    root: usize,
}

impl BinomialTree {
    /// The binomial tree over `nprocs` ranks rooted at `root`.
    ///
    /// # Panics
    /// Panics if `nprocs` is zero or `root` is outside the machine.
    pub fn new(nprocs: usize, root: usize) -> Self {
        assert!(nprocs > 0, "a machine has at least one rank");
        assert!(root < nprocs, "root outside the machine");
        BinomialTree { nprocs, root }
    }

    /// Number of ranks the tree spans.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The root rank.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Number of rounds: `ceil(log2 P)` (zero on a single rank).
    pub fn rounds(&self) -> usize {
        tree_rounds(self.nprocs)
    }

    /// Relative ID of `rank`: its distance above the root, mod P.
    pub fn rel(&self, rank: usize) -> usize {
        (rank + self.nprocs - self.root) % self.nprocs
    }

    /// Absolute rank of relative ID `rel`.
    pub fn abs(&self, rel: usize) -> usize {
        (rel + self.root) % self.nprocs
    }

    /// The broadcast parent of `rank`: the rank it first hears from (relative ID with
    /// the highest set bit cleared).  `None` for the root.
    pub fn parent(&self, rank: usize) -> Option<usize> {
        let rel = self.rel(rank);
        if rel == 0 {
            return None;
        }
        let high = usize::BITS - 1 - rel.leading_zeros();
        Some(self.abs(rel & !(1 << high)))
    }

    /// The broadcast children of `rank`, in the round order the rank forwards to them.
    pub fn children(&self, rank: usize) -> Vec<usize> {
        (0..self.rounds())
            .filter_map(|k| self.bcast_send_to(rank, k))
            .collect()
    }

    /// Broadcast schedule: the rank `rank` forwards to in round `k`, if any.
    pub fn bcast_send_to(&self, rank: usize, round: usize) -> Option<usize> {
        let rel = self.rel(rank);
        let d = 1usize << round;
        if rel < d && rel + d < self.nprocs {
            Some(self.abs(rel + d))
        } else {
            None
        }
    }

    /// Broadcast schedule: the rank `rank` hears from in round `k`, if any.  Each
    /// non-root rank receives in exactly one round (the index of its highest relative
    /// bit), from its [`BinomialTree::parent`].
    pub fn bcast_recv_from(&self, rank: usize, round: usize) -> Option<usize> {
        let rel = self.rel(rank);
        let d = 1usize << round;
        if rel >= d && rel < 2 * d {
            Some(self.abs(rel - d))
        } else {
            None
        }
    }

    /// Gather schedule: the rank `rank` sends its accumulated block to in round `k`, if
    /// any.  Each non-root rank sends in exactly one round (the index of its lowest
    /// relative bit) and is done.
    pub fn gather_send_to(&self, rank: usize, round: usize) -> Option<usize> {
        let rel = self.rel(rank);
        let d = 1usize << round;
        if rel != 0 && rel & (2 * d - 1) == d {
            Some(self.abs(rel - d))
        } else {
            None
        }
    }

    /// Gather schedule: the rank `rank` receives a block from in round `k`, if any (the
    /// sender may not exist near the ragged edge of a non-power-of-two machine).
    pub fn gather_recv_from(&self, rank: usize, round: usize) -> Option<usize> {
        let rel = self.rel(rank);
        let d = 1usize << round;
        if rel & (2 * d - 1) == 0 && rel + d < self.nprocs {
            Some(self.abs(rel + d))
        } else {
            None
        }
    }

    /// Size of the contiguous block rank `rank` holds entering gather round `k`
    /// (assuming it is still active): `min(2^k, P - rel)` relative ranks.
    pub fn gather_block_len(&self, rank: usize, round: usize) -> usize {
        let rel = self.rel(rank);
        (1usize << round).min(self.nprocs - rel)
    }
}

/// Contiguous leader groups for hierarchical collectives: ranks `[j·g, (j+1)·g)` form
/// group `j` (the last group may be short), and the lowest rank of each group is its
/// leader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupMap {
    nprocs: usize,
    group: usize,
}

impl GroupMap {
    /// Partition `nprocs` ranks into groups of (at most) `group` consecutive ranks.
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn new(nprocs: usize, group: usize) -> Self {
        assert!(nprocs > 0, "a machine has at least one rank");
        assert!(group > 0, "groups must have at least one member");
        GroupMap {
            nprocs,
            group: group.min(nprocs),
        }
    }

    /// A near-square split, `group ≈ sqrt(P)`: the group size that balances the
    /// leader's fan-in against the leader count, the conventional default for
    /// two-level hierarchical collectives.
    pub fn square(nprocs: usize) -> Self {
        assert!(nprocs > 0, "a machine has at least one rank");
        let g = (nprocs as f64).sqrt().ceil() as usize;
        Self::new(nprocs, g.max(1))
    }

    /// Number of ranks the map spans.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The (maximum) group size.
    pub fn group_size(&self) -> usize {
        self.group
    }

    /// Number of groups (= number of leaders): `ceil(P / g)`.
    pub fn ngroups(&self) -> usize {
        self.nprocs.div_ceil(self.group)
    }

    /// The group index of `rank`.
    pub fn group_of(&self, rank: usize) -> usize {
        rank / self.group
    }

    /// The first rank of `rank`'s group — its leader.
    pub fn leader_of(&self, rank: usize) -> usize {
        rank - rank % self.group
    }

    /// Whether `rank` leads its group.
    pub fn is_leader(&self, rank: usize) -> bool {
        rank.is_multiple_of(self.group)
    }

    /// Number of ranks in `rank`'s group (the last group may be short).
    pub fn members_of(&self, rank: usize) -> usize {
        let start = self.leader_of(rank);
        self.group.min(self.nprocs - start)
    }

    /// Number of ranks in group `j`.
    pub fn group_len(&self, j: usize) -> usize {
        let start = j * self.group;
        self.group.min(self.nprocs - start)
    }

    /// The leader rank of group `j`.
    pub fn leader(&self, j: usize) -> usize {
        j * self.group
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_has_positive_parameters() {
        let cfg = MachineConfig::new(16);
        assert_eq!(cfg.nprocs, 16);
        assert!(cfg.cost.message_latency_us > 0.0);
        assert!(cfg.cost.per_byte_us > 0.0);
        assert!(cfg.stack_size >= 1024 * 1024);
    }

    #[test]
    fn builder_overrides_apply() {
        let cfg = MachineConfig::new(4)
            .with_cost(CostModel::uniform(1.0, 0.5, 2.0))
            .with_stack_size(1 << 20);
        assert_eq!(cfg.cost.message_latency_us, 1.0);
        assert_eq!(cfg.cost.per_byte_us, 0.5);
        assert_eq!(cfg.cost.compute_unit_us, 2.0);
        assert_eq!(cfg.stack_size, 1 << 20);
    }

    #[test]
    fn tree_rounds_is_ceil_log2() {
        for (p, r) in [
            (1, 0),
            (2, 1),
            (3, 2),
            (4, 2),
            (5, 3),
            (12, 4),
            (48, 6),
            (1023, 10),
            (1024, 10),
            (1025, 11),
        ] {
            assert_eq!(tree_rounds(p), r, "P = {p}");
        }
    }

    /// Simulate the dissemination all-gather block bookkeeping and check that every
    /// rank ends with every block, in `rounds()` rounds, at awkward machine sizes.
    #[test]
    fn dissemination_gathers_every_block_at_any_p() {
        for p in [1usize, 2, 3, 5, 7, 12, 48, 100, 1024] {
            let d = Dissemination::new(p);
            // held[r] = set of blocks rank r holds, as a sorted Vec.
            let mut held: Vec<Vec<usize>> = (0..p).map(|r| vec![r]).collect();
            for k in 0..d.rounds() {
                let mut incoming: Vec<Vec<usize>> = vec![Vec::new(); p];
                for (r, held_r) in held.iter().enumerate() {
                    let to = d.send_peer(r, k);
                    assert_eq!(d.recv_peer(to, k), r, "send/recv peers must mirror");
                    for b in d.send_blocks(r, k) {
                        assert!(
                            held_r.contains(&b),
                            "P={p} round {k}: rank {r} ships block {b} it does not hold"
                        );
                        incoming[to].push(b);
                    }
                }
                for (r, inc) in incoming.into_iter().enumerate() {
                    let expect: Vec<usize> = d.recv_blocks(r, k).collect();
                    assert_eq!(inc, expect, "P={p} round {k}: rank {r} receive blocks");
                    held[r].extend(inc);
                }
            }
            for (r, mut blocks) in held.into_iter().enumerate() {
                blocks.sort_unstable();
                blocks.dedup();
                assert_eq!(blocks.len(), p, "P={p}: rank {r} is missing blocks");
            }
        }
    }

    #[test]
    fn dissemination_final_round_is_partial_for_non_pow2() {
        let d = Dissemination::new(5);
        assert_eq!(d.rounds(), 3);
        assert_eq!(d.blocks_in_round(0), 1);
        assert_eq!(d.blocks_in_round(1), 2);
        assert_eq!(d.blocks_in_round(2), 1); // min(4, 5 - 4)
        let d = Dissemination::new(8);
        assert_eq!(d.blocks_in_round(2), 4);
    }

    /// Simulate the broadcast schedule: every rank must be informed exactly once, by
    /// its parent, and the children lists must mirror the per-round sends.
    #[test]
    fn binomial_broadcast_informs_every_rank_once() {
        for p in [1usize, 2, 3, 5, 12, 48, 1024] {
            for root in [0, p - 1, p / 2] {
                let t = BinomialTree::new(p, root);
                let mut informed = vec![false; p];
                informed[root] = true;
                for k in 0..t.rounds() {
                    for r in 0..p {
                        if let Some(child) = t.bcast_send_to(r, k) {
                            assert!(
                                informed[r],
                                "P={p} root={root}: rank {r} forwards before hearing"
                            );
                            assert_eq!(t.bcast_recv_from(child, k), Some(r));
                            assert_eq!(t.parent(child), Some(r));
                            assert!(
                                !informed[child],
                                "P={p} root={root}: rank {child} informed twice"
                            );
                            informed[child] = true;
                        }
                    }
                }
                assert!(informed.iter().all(|&i| i), "P={p} root={root}");
                assert_eq!(t.parent(root), None);
                for r in 0..p {
                    for &c in &t.children(r) {
                        assert_eq!(t.parent(c), Some(r));
                    }
                }
            }
        }
    }

    /// Simulate the gather schedule: the root must end with the blocks of all ranks in
    /// relative-rank order, each block shipped exactly once.
    #[test]
    fn binomial_gather_assembles_blocks_in_order() {
        for p in [1usize, 2, 3, 5, 12, 48, 1024] {
            let t = BinomialTree::new(p, 0);
            let mut held: Vec<Vec<usize>> = (0..p).map(|r| vec![r]).collect();
            for k in 0..t.rounds() {
                for r in 0..p {
                    if let Some(to) = t.gather_send_to(r, k) {
                        assert_eq!(t.gather_recv_from(to, k), Some(r));
                        assert_eq!(
                            held[r].len(),
                            t.gather_block_len(r, k),
                            "P={p} round {k} rank {r}"
                        );
                        let block = std::mem::take(&mut held[r]);
                        held[to].extend(block);
                    }
                }
            }
            assert_eq!(held[0], (0..p).collect::<Vec<_>>(), "P={p}");
            for (r, held_r) in held.iter().enumerate().skip(1) {
                assert!(held_r.is_empty(), "P={p}: rank {r} kept a block");
            }
        }
    }

    #[test]
    fn group_map_partitions_contiguously() {
        let g = GroupMap::new(10, 4);
        assert_eq!(g.ngroups(), 3);
        assert_eq!(g.group_len(0), 4);
        assert_eq!(g.group_len(2), 2);
        assert_eq!(g.leader_of(0), 0);
        assert_eq!(g.leader_of(5), 4);
        assert_eq!(g.leader_of(9), 8);
        assert!(g.is_leader(8));
        assert!(!g.is_leader(9));
        assert_eq!(g.members_of(9), 2);
        assert_eq!(g.leader(1), 4);
        // Oversized groups clamp to one group spanning the machine.
        let whole = GroupMap::new(6, 99);
        assert_eq!(whole.ngroups(), 1);
        assert_eq!(whole.members_of(5), 6);
        // sqrt split.
        let sq = GroupMap::square(1024);
        assert_eq!(sq.group_size(), 32);
        assert_eq!(sq.ngroups(), 32);
    }
}
