//! Machine description: number of ranks and the communication/computation cost parameters.
//!
//! A [`MachineConfig`] is the simulated analogue of "how many iPSC/860 nodes the job
//! asked for": the paper's tables sweep this from 1 to 128 processors while holding the
//! [`crate::cost::CostModel`] fixed.

use crate::cost::CostModel;

/// Description of the simulated machine used for one SPMD run.
///
/// The configuration is intentionally small: the number of ranks and a [`CostModel`].  The
/// paper's experiments sweep the processor count from 1 to 128; construct one
/// `MachineConfig` per point of the sweep.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of SPMD ranks (processors) to simulate.
    pub nprocs: usize,
    /// Cost model used to accumulate modeled communication and computation time.
    pub cost: CostModel,
    /// Stack size (bytes) for each rank's thread.  Irregular applications with large
    /// per-rank buffers occasionally need more than the platform default.
    pub stack_size: usize,
}

impl MachineConfig {
    /// A machine with `nprocs` ranks and the default (iPSC/860-class) cost model.
    pub fn new(nprocs: usize) -> Self {
        Self {
            nprocs,
            cost: CostModel::ipsc860(),
            stack_size: 8 * 1024 * 1024,
        }
    }

    /// Replace the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Replace the per-thread stack size.
    pub fn with_stack_size(mut self, bytes: usize) -> Self {
        self.stack_size = bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_has_positive_parameters() {
        let cfg = MachineConfig::new(16);
        assert_eq!(cfg.nprocs, 16);
        assert!(cfg.cost.message_latency_us > 0.0);
        assert!(cfg.cost.per_byte_us > 0.0);
        assert!(cfg.stack_size >= 1024 * 1024);
    }

    #[test]
    fn builder_overrides_apply() {
        let cfg = MachineConfig::new(4)
            .with_cost(CostModel::uniform(1.0, 0.5, 2.0))
            .with_stack_size(1 << 20);
        assert_eq!(cfg.cost.message_latency_us, 1.0);
        assert_eq!(cfg.cost.per_byte_us, 0.5);
        assert_eq!(cfg.cost.compute_unit_us, 2.0);
        assert_eq!(cfg.stack_size, 1 << 20);
    }
}
