//! Collective operations built on top of the unified exchange engine.
//!
//! The CHAOS runtime needs only a handful of collectives: all-to-all (schedule and
//! translation-table construction), all-gather (replicated translation tables,
//! partitioner coordination), reductions (load statistics, convergence checks), broadcast,
//! and a sparse "exchange" in which every rank sends a possibly-empty buffer to a subset of
//! ranks.  Each collective is a thin wrapper that builds the appropriate
//! [`crate::exchange::ExchangePlan`] (dense for the classic collectives, sparse for the
//! schedule-driven exchange, rooted for broadcast/gather) and runs it through
//! [`crate::exchange::alltoallv`]; their cost is whatever the constituent messages cost
//! under the machine's [`crate::cost::CostModel`], plus one synchronisation charge for the
//! reductions that are semantically barriers.

use crate::cost::TimeSnapshot;
use crate::exchange::{alltoallv, alltoallv_replicated, ExchangePlan, Placed, RecvSpec};
use crate::machine::Rank;
use crate::message::Element;

/// Tags reserved for collectives and the exchange engine.  User code should use tags
/// below `RESERVED_TAG_BASE`.
pub const RESERVED_TAG_BASE: u64 = 1 << 60;

impl Rank {
    /// Every rank contributes a slice; every rank receives all contributions, indexed by
    /// contributing rank.
    pub fn all_gather<T: Element>(&mut self, local: &[T]) -> Vec<Vec<T>> {
        let me = self.rank();
        let n = self.nprocs();
        let plan = ExchangePlan::dense(me, vec![local.len(); n]);
        let mut out: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
        // out[me] is filled by the engine's local delivery (and stays empty when `local`
        // is empty, which is also correct).  The contributions are returned to the
        // application, so ownership is taken with `into_vec`.
        alltoallv_replicated(self, &plan, local, |src, v| out[src] = v.into_vec());
        out
    }

    /// Every rank contributes a single value; every rank receives the vector of all
    /// contributions indexed by rank.
    pub fn all_gather_one<T: Element>(&mut self, value: T) -> Vec<T> {
        self.all_gather(&[value])
            .into_iter()
            .map(|mut v| {
                debug_assert_eq!(v.len(), 1);
                v.pop().expect("all_gather_one contribution missing")
            })
            .collect()
    }

    /// Personalised all-to-all: `sends[p]` is delivered to rank `p`; the return value's
    /// entry `q` is what rank `q` sent to this rank.
    ///
    /// # Panics
    /// Panics if `sends.len() != nprocs`.
    pub fn all_to_all<T: Element>(&mut self, sends: &[Vec<T>]) -> Vec<Vec<T>> {
        let me = self.rank();
        let n = self.nprocs();
        assert_eq!(
            sends.len(),
            n,
            "all_to_all needs exactly one send buffer per rank"
        );
        let plan = ExchangePlan::dense(me, sends.iter().map(Vec::len).collect());
        let mut out: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
        alltoallv(self, &plan, sends, |src, v| out[src] = v.into_vec());
        out
    }

    /// Sparse exchange: send `data` to each `(destination, data)` pair, where most ranks
    /// are typically *not* destinations.  `expected_sources` lists the ranks this rank will
    /// receive from (with the element count it will receive, which may be zero and is then
    /// skipped).  Returns `(source, values)` pairs in `expected_sources` order.
    ///
    /// This is the message pattern of the CHAOS executor once a communication schedule is
    /// known: both sides of every transfer are pre-computed, so no size negotiation
    /// messages are needed.
    pub fn exchange<T: Element>(
        &mut self,
        sends: &[(usize, Vec<T>)],
        expected_sources: &[(usize, usize)],
    ) -> Vec<(usize, Vec<T>)> {
        let me = self.rank();
        let n = self.nprocs();
        let mut send_counts = vec![0usize; n];
        let mut bufs: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
        let mut claimed = vec![false; n];
        for (dest, data) in sends {
            if *dest == me {
                continue; // local portion handled by the caller
            }
            assert!(
                !claimed[*dest],
                "exchange: duplicate send entry for destination {dest}"
            );
            claimed[*dest] = true;
            send_counts[*dest] = data.len();
            bufs[*dest] = data.clone();
        }
        let mut recv_counts = vec![0usize; n];
        for &(src, count) in expected_sources {
            if src != me {
                recv_counts[src] = count;
            }
        }
        let plan = ExchangePlan::sparse(me, send_counts, recv_counts);
        let mut by_src: Vec<Option<Vec<T>>> = (0..n).map(|_| None).collect();
        alltoallv(self, &plan, &bufs, |src, v| {
            by_src[src] = Some(v.into_vec())
        });
        // Deliver in `expected_sources` order, as the hand-rolled loop always did.
        expected_sources
            .iter()
            .filter(|&&(src, count)| src != me && count != 0)
            .map(|&(src, _)| {
                (
                    src,
                    by_src[src]
                        .take()
                        .expect("exchange: planned message missing"),
                )
            })
            .collect()
    }

    /// All-reduce with an arbitrary associative combiner.  Every rank receives the
    /// reduction of all contributions.  Contributions are combined in rank order, so the
    /// result is deterministic even for non-associative floating-point addition.
    pub fn all_reduce<T, F>(&mut self, value: T, combine: F) -> T
    where
        T: Element,
        F: Fn(T, T) -> T,
    {
        let me = self.rank();
        let n = self.nprocs();
        self.charge_collective();
        let plan = ExchangePlan::dense(me, vec![1; n]);
        let mut contributions: Vec<Option<T>> = (0..n).map(|_| None).collect();
        // One element per message, read in place: the reduction never takes ownership of
        // a buffer, so the receive path of a reduction loop is allocation-free.
        alltoallv_replicated(self, &plan, &[value], |src, v: Placed<'_, T>| {
            contributions[src] = Some(v[0]);
        });
        // Contributions are combined in rank order, so the result is deterministic even
        // for non-associative floating-point addition.
        contributions
            .into_iter()
            .map(|c| c.expect("all_reduce contribution missing"))
            .reduce(&combine)
            .expect("all_reduce over at least one rank")
    }

    /// Sum-reduction of a single `f64` across all ranks.
    pub fn all_reduce_sum(&mut self, value: f64) -> f64 {
        self.all_reduce(value, |a, b| a + b)
    }

    /// Max-reduction of a single `f64` across all ranks.
    pub fn all_reduce_max(&mut self, value: f64) -> f64 {
        self.all_reduce(value, f64::max)
    }

    /// Min-reduction of a single `f64` across all ranks.
    pub fn all_reduce_min(&mut self, value: f64) -> f64 {
        self.all_reduce(value, f64::min)
    }

    /// Sum-reduction of a `usize` across all ranks.
    pub fn all_reduce_sum_usize(&mut self, value: usize) -> usize {
        self.all_reduce(value, |a, b| a + b)
    }

    /// Element-wise sum-reduction of equal-length vectors across all ranks.
    pub fn all_reduce_sum_vec(&mut self, values: &[f64]) -> Vec<f64> {
        let gathered = self.all_gather(values);
        let mut acc = vec![0.0; values.len()];
        for contribution in gathered {
            assert_eq!(
                contribution.len(),
                acc.len(),
                "all_reduce_sum_vec requires equal-length contributions"
            );
            for (a, v) in acc.iter_mut().zip(contribution) {
                *a += v;
            }
        }
        acc
    }

    /// Broadcast `value` from `root` to every rank; returns the broadcast values.
    pub fn broadcast<T: Element>(&mut self, root: usize, values: &[T]) -> Vec<T> {
        let me = self.rank();
        let n = self.nprocs();
        let mut send_specs: Vec<Option<usize>> = vec![None; n];
        let mut recvs = vec![RecvSpec::None; n];
        if me == root {
            for (p, spec) in send_specs.iter_mut().enumerate() {
                if p != me {
                    *spec = Some(values.len());
                }
            }
        } else {
            recvs[root] = RecvSpec::Any;
        }
        let plan = ExchangePlan::from_parts(me, send_specs, recvs);
        let mut out = if me == root {
            values.to_vec()
        } else {
            Vec::new()
        };
        alltoallv_replicated(self, &plan, values, |_src, v| out = v.into_vec());
        out
    }

    /// Gather each rank's slice at `root`.  Non-root ranks receive an empty vector.
    pub fn gather_to_root<T: Element>(&mut self, root: usize, local: &[T]) -> Vec<Vec<T>> {
        let me = self.rank();
        let n = self.nprocs();
        let mut send_specs: Vec<Option<usize>> = vec![None; n];
        let mut recvs = vec![RecvSpec::None; n];
        if me == root {
            for (p, r) in recvs.iter_mut().enumerate() {
                if p != me {
                    *r = RecvSpec::Any;
                }
            }
        } else {
            send_specs[root] = Some(local.len());
        }
        let plan = ExchangePlan::from_parts(me, send_specs, recvs);
        let mut out: Vec<Vec<T>> = if me == root {
            let mut out: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
            out[me] = local.to_vec();
            out
        } else {
            Vec::new()
        };
        alltoallv_replicated(self, &plan, local, |src, v| out[src] = v.into_vec());
        out
    }

    /// Exclusive prefix sum over one `usize` per rank: rank `i` receives the sum of the
    /// values contributed by ranks `0..i`.  Used to assign globally unique index ranges.
    pub fn exclusive_scan_sum(&mut self, value: usize) -> usize {
        let all = self.all_gather_one(value);
        all[..self.rank()].iter().sum()
    }

    /// All-gather one modeled-time sample: every rank contributes the *computation* time it
    /// has accumulated since its own `since` snapshot, and every rank receives the full
    /// per-rank vector (indexed by rank).  This is the measurement collective behind
    /// feedback-driven load balancing (`chaos::adapt`): the per-rank compute times are the
    /// `t_i` of the paper's load-balance index `max_i(t_i) * n / sum_i(t_i)`.  The sample
    /// is taken *before* the gather communicates, and the gather's own cost is dominated by
    /// communication time — the only compute it charges is the fixed pack/unpack cost of
    /// one `f64` per peer, identical on every rank, so sampling shifts but never skews the
    /// balance it measures.
    pub fn all_gather_compute_since(&mut self, since: &TimeSnapshot) -> Vec<f64> {
        let sample = self.modeled().since(since).compute_us;
        self.all_gather_one(sample)
    }
}

#[cfg(test)]
mod tests {
    use crate::topology::MachineConfig;
    use crate::{run, CostModel};

    #[test]
    fn all_gather_collects_every_contribution() {
        let out = run(MachineConfig::new(4), |rank| {
            let mine = vec![rank.rank() as u32; rank.rank() + 1];
            rank.all_gather(&mine)
        });
        for per_rank in &out.results {
            for (p, v) in per_rank.iter().enumerate() {
                assert_eq!(v.len(), p + 1);
                assert!(v.iter().all(|&x| x == p as u32));
            }
        }
    }

    #[test]
    fn all_to_all_transposes() {
        let out = run(MachineConfig::new(3), |rank| {
            let me = rank.rank();
            let sends: Vec<Vec<u64>> = (0..3).map(|p| vec![(me * 10 + p) as u64]).collect();
            rank.all_to_all(&sends)
        });
        for (me, recvd) in out.results.iter().enumerate() {
            for (p, v) in recvd.iter().enumerate() {
                assert_eq!(v, &vec![(p * 10 + me) as u64]);
            }
        }
    }

    #[test]
    fn reductions_agree_on_every_rank() {
        let out = run(MachineConfig::new(6), |rank| {
            let x = (rank.rank() + 1) as f64;
            (
                rank.all_reduce_sum(x),
                rank.all_reduce_max(x),
                rank.all_reduce_min(x),
                rank.all_reduce_sum_usize(rank.rank()),
            )
        });
        for (sum, max, min, usum) in &out.results {
            assert_eq!(*sum, 21.0);
            assert_eq!(*max, 6.0);
            assert_eq!(*min, 1.0);
            assert_eq!(*usum, 15);
        }
    }

    #[test]
    fn vector_reduction_sums_elementwise() {
        let out = run(MachineConfig::new(4), |rank| {
            let v = vec![rank.rank() as f64, 1.0];
            rank.all_reduce_sum_vec(&v)
        });
        for r in &out.results {
            assert_eq!(r, &vec![6.0, 4.0]);
        }
    }

    #[test]
    fn broadcast_reaches_all_ranks() {
        let out = run(MachineConfig::new(5), |rank| {
            rank.broadcast(2, &[7u64, 8u64])
        });
        for r in &out.results {
            assert_eq!(r, &vec![7u64, 8u64]);
        }
    }

    #[test]
    fn gather_to_root_only_fills_root() {
        let out = run(MachineConfig::new(4), |rank| {
            rank.gather_to_root(1, &[rank.rank() as u32])
        });
        assert!(out.results[0].is_empty());
        assert_eq!(out.results[1].len(), 4);
        for (p, v) in out.results[1].iter().enumerate() {
            assert_eq!(v, &vec![p as u32]);
        }
    }

    #[test]
    fn exclusive_scan_assigns_disjoint_ranges() {
        let out = run(MachineConfig::new(5), |rank| {
            let count = rank.rank() + 2;
            (rank.exclusive_scan_sum(count), count)
        });
        let mut expected_start = 0;
        for (start, count) in &out.results {
            assert_eq!(*start, expected_start);
            expected_start += count;
        }
    }

    #[test]
    fn exchange_moves_only_listed_pairs() {
        let out = run(MachineConfig::new(4), |rank| {
            let me = rank.rank();
            // Everyone sends a buffer of `me` repeated (me+1) times to rank (me+1)%4.
            let dest = (me + 1) % 4;
            let src = (me + 3) % 4;
            let sends = vec![(dest, vec![me as u32; me + 1])];
            let expected = vec![(src, src + 1)];
            rank.exchange(&sends, &expected)
        });
        for (me, recvd) in out.results.iter().enumerate() {
            let src = (me + 3) % 4;
            assert_eq!(recvd.len(), 1);
            assert_eq!(recvd[0].0, src);
            assert_eq!(recvd[0].1, vec![src as u32; src + 1]);
        }
    }

    #[test]
    fn exchange_skips_empty_transfers() {
        let cfg = MachineConfig::new(2).with_cost(CostModel::uniform(100.0, 0.0, 0.0));
        let out = run(cfg, |rank| {
            // No data moves at all: no messages should be charged.
            let r: Vec<(usize, Vec<f64>)> = rank.exchange(&[], &[]);
            (r.len(), rank.stats().msgs_sent)
        });
        for (n, sent) in &out.results {
            assert_eq!(*n, 0);
            assert_eq!(*sent, 0);
        }
    }

    #[test]
    fn compute_time_samples_are_gathered_everywhere() {
        let cfg = MachineConfig::new(4).with_cost(CostModel::uniform(1.0, 0.0, 1.0));
        let out = run(cfg, |rank| {
            let t0 = rank.modeled();
            // Rank r performs (r + 1) * 10 units of compute; with a unit compute cost the
            // gathered samples must be exactly those values on every rank.
            rank.charge_compute((rank.rank() + 1) as f64 * 10.0);
            rank.all_gather_compute_since(&t0)
        });
        for samples in &out.results {
            assert_eq!(samples, &vec![10.0, 20.0, 30.0, 40.0]);
        }
    }

    #[test]
    fn compute_time_sampling_is_uniform_noise() {
        let out = run(MachineConfig::new(3), |rank| {
            let t0 = rank.modeled();
            let first = rank.all_gather_compute_since(&t0);
            // A second sample over the same window sees only the first gather's own
            // pack/unpack cost — identical on every rank, so the measured *balance* is
            // undisturbed even though the absolute times shift.
            let second = rank.all_gather_compute_since(&t0);
            (first, second)
        });
        for (first, second) in &out.results {
            assert_eq!(first, &vec![0.0; 3], "sample is taken before the gather");
            assert!(second.windows(2).all(|w| w[0] == w[1]), "{second:?}");
        }
    }

    #[test]
    fn deterministic_reduction_order() {
        // Summation order is rank order, so repeated runs give bit-identical results.
        let a = run(MachineConfig::new(7), |rank| {
            rank.all_reduce_sum(0.1 * (rank.rank() as f64 + 1.0))
        });
        let b = run(MachineConfig::new(7), |rank| {
            rank.all_reduce_sum(0.1 * (rank.rank() as f64 + 1.0))
        });
        assert_eq!(a.results, b.results);
    }
}
