//! Collective operations built on top of tagged point-to-point messaging.
//!
//! The CHAOS runtime needs only a handful of collectives: all-to-all (schedule and
//! translation-table construction), all-gather (replicated translation tables,
//! partitioner coordination), reductions (load statistics, convergence checks), broadcast,
//! and a sparse "exchange" in which every rank sends a possibly-empty buffer to a subset of
//! ranks.  All of them are implemented with straightforward message patterns; their cost is
//! whatever the constituent messages cost under the machine's [`crate::cost::CostModel`],
//! plus one synchronisation charge for the reductions that are semantically barriers.

use crate::machine::Rank;
use crate::message::Element;

/// Tags reserved for collectives.  User code should use tags below `RESERVED_TAG_BASE`.
pub const RESERVED_TAG_BASE: u64 = 1 << 60;

const TAG_ALL_GATHER: u64 = RESERVED_TAG_BASE + 1;
const TAG_ALL_TO_ALL: u64 = RESERVED_TAG_BASE + 2;
const TAG_REDUCE: u64 = RESERVED_TAG_BASE + 3;
const TAG_BCAST: u64 = RESERVED_TAG_BASE + 4;
const TAG_EXCHANGE_DATA: u64 = RESERVED_TAG_BASE + 6;
const TAG_GATHER_ROOT: u64 = RESERVED_TAG_BASE + 7;

impl Rank {
    /// Every rank contributes a slice; every rank receives all contributions, indexed by
    /// contributing rank.
    pub fn all_gather<T: Element>(&mut self, local: &[T]) -> Vec<Vec<T>> {
        let me = self.rank();
        let n = self.nprocs();
        for p in 0..n {
            if p != me {
                self.send_slice(p, TAG_ALL_GATHER, local);
            }
        }
        let mut out: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
        out[me] = local.to_vec();
        for p in 0..n {
            if p != me {
                out[p] = self.recv_vec(p, TAG_ALL_GATHER);
            }
        }
        out
    }

    /// Every rank contributes a single value; every rank receives the vector of all
    /// contributions indexed by rank.
    pub fn all_gather_one<T: Element>(&mut self, value: T) -> Vec<T> {
        self.all_gather(&[value])
            .into_iter()
            .map(|mut v| {
                debug_assert_eq!(v.len(), 1);
                v.pop().expect("all_gather_one contribution missing")
            })
            .collect()
    }

    /// Personalised all-to-all: `sends[p]` is delivered to rank `p`; the return value's
    /// entry `q` is what rank `q` sent to this rank.
    ///
    /// # Panics
    /// Panics if `sends.len() != nprocs`.
    pub fn all_to_all<T: Element>(&mut self, sends: &[Vec<T>]) -> Vec<Vec<T>> {
        let me = self.rank();
        let n = self.nprocs();
        assert_eq!(
            sends.len(),
            n,
            "all_to_all needs exactly one send buffer per rank"
        );
        for p in 0..n {
            if p != me {
                self.send_slice(p, TAG_ALL_TO_ALL, &sends[p]);
            }
        }
        let mut out: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
        out[me] = sends[me].clone();
        for p in 0..n {
            if p != me {
                out[p] = self.recv_vec(p, TAG_ALL_TO_ALL);
            }
        }
        out
    }

    /// Sparse exchange: send `data` to each `(destination, data)` pair, where most ranks
    /// are typically *not* destinations.  `expected_sources` lists the ranks this rank will
    /// receive from (with the element count it will receive, which may be zero and is then
    /// skipped).  Returns `(source, values)` pairs in `expected_sources` order.
    ///
    /// This is the message pattern of the CHAOS executor once a communication schedule is
    /// known: both sides of every transfer are pre-computed, so no size negotiation
    /// messages are needed.
    pub fn exchange<T: Element>(
        &mut self,
        sends: &[(usize, Vec<T>)],
        expected_sources: &[(usize, usize)],
    ) -> Vec<(usize, Vec<T>)> {
        for (dest, data) in sends {
            if *dest == self.rank() {
                continue; // local portion handled by the caller
            }
            if !data.is_empty() {
                self.send_slice(*dest, TAG_EXCHANGE_DATA, data);
            }
        }
        let mut received = Vec::new();
        for &(src, count) in expected_sources {
            if src == self.rank() || count == 0 {
                continue;
            }
            let values: Vec<T> = self.recv_vec(src, TAG_EXCHANGE_DATA);
            debug_assert_eq!(
                values.len(),
                count,
                "exchange: rank {} expected {count} elements from {src}, got {}",
                self.rank(),
                values.len()
            );
            received.push((src, values));
        }
        received
    }

    /// All-reduce with an arbitrary associative combiner.  Every rank receives the
    /// reduction of all contributions.  Contributions are combined in rank order, so the
    /// result is deterministic even for non-associative floating-point addition.
    pub fn all_reduce<T, F>(&mut self, value: T, combine: F) -> T
    where
        T: Element,
        F: Fn(T, T) -> T,
    {
        let me = self.rank();
        let n = self.nprocs();
        self.charge_collective();
        for p in 0..n {
            if p != me {
                self.send_slice(p, TAG_REDUCE, &[value]);
            }
        }
        let mut acc: Option<T> = None;
        for p in 0..n {
            let v = if p == me {
                value
            } else {
                let got: Vec<T> = self.recv_vec(p, TAG_REDUCE);
                got[0]
            };
            acc = Some(match acc {
                None => v,
                Some(a) => combine(a, v),
            });
        }
        acc.expect("all_reduce over at least one rank")
    }

    /// Sum-reduction of a single `f64` across all ranks.
    pub fn all_reduce_sum(&mut self, value: f64) -> f64 {
        self.all_reduce(value, |a, b| a + b)
    }

    /// Max-reduction of a single `f64` across all ranks.
    pub fn all_reduce_max(&mut self, value: f64) -> f64 {
        self.all_reduce(value, f64::max)
    }

    /// Min-reduction of a single `f64` across all ranks.
    pub fn all_reduce_min(&mut self, value: f64) -> f64 {
        self.all_reduce(value, f64::min)
    }

    /// Sum-reduction of a `usize` across all ranks.
    pub fn all_reduce_sum_usize(&mut self, value: usize) -> usize {
        self.all_reduce(value, |a, b| a + b)
    }

    /// Element-wise sum-reduction of equal-length vectors across all ranks.
    pub fn all_reduce_sum_vec(&mut self, values: &[f64]) -> Vec<f64> {
        let gathered = self.all_gather(values);
        let mut acc = vec![0.0; values.len()];
        for contribution in gathered {
            assert_eq!(
                contribution.len(),
                acc.len(),
                "all_reduce_sum_vec requires equal-length contributions"
            );
            for (a, v) in acc.iter_mut().zip(contribution) {
                *a += v;
            }
        }
        acc
    }

    /// Broadcast `value` from `root` to every rank; returns the broadcast values.
    pub fn broadcast<T: Element>(&mut self, root: usize, values: &[T]) -> Vec<T> {
        let me = self.rank();
        let n = self.nprocs();
        if me == root {
            for p in 0..n {
                if p != me {
                    self.send_slice(p, TAG_BCAST, values);
                }
            }
            values.to_vec()
        } else {
            self.recv_vec(root, TAG_BCAST)
        }
    }

    /// Gather each rank's slice at `root`.  Non-root ranks receive an empty vector.
    pub fn gather_to_root<T: Element>(&mut self, root: usize, local: &[T]) -> Vec<Vec<T>> {
        let me = self.rank();
        let n = self.nprocs();
        if me == root {
            let mut out: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
            out[me] = local.to_vec();
            for p in 0..n {
                if p != me {
                    out[p] = self.recv_vec(p, TAG_GATHER_ROOT);
                }
            }
            out
        } else {
            self.send_slice(root, TAG_GATHER_ROOT, local);
            Vec::new()
        }
    }

    /// Exclusive prefix sum over one `usize` per rank: rank `i` receives the sum of the
    /// values contributed by ranks `0..i`.  Used to assign globally unique index ranges.
    pub fn exclusive_scan_sum(&mut self, value: usize) -> usize {
        let all = self.all_gather_one(value);
        all[..self.rank()].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::topology::MachineConfig;
    use crate::{run, CostModel};

    #[test]
    fn all_gather_collects_every_contribution() {
        let out = run(MachineConfig::new(4), |rank| {
            let mine = vec![rank.rank() as u32; rank.rank() + 1];
            rank.all_gather(&mine)
        });
        for per_rank in &out.results {
            for (p, v) in per_rank.iter().enumerate() {
                assert_eq!(v.len(), p + 1);
                assert!(v.iter().all(|&x| x == p as u32));
            }
        }
    }

    #[test]
    fn all_to_all_transposes() {
        let out = run(MachineConfig::new(3), |rank| {
            let me = rank.rank();
            let sends: Vec<Vec<u64>> = (0..3).map(|p| vec![(me * 10 + p) as u64]).collect();
            rank.all_to_all(&sends)
        });
        for (me, recvd) in out.results.iter().enumerate() {
            for (p, v) in recvd.iter().enumerate() {
                assert_eq!(v, &vec![(p * 10 + me) as u64]);
            }
        }
    }

    #[test]
    fn reductions_agree_on_every_rank() {
        let out = run(MachineConfig::new(6), |rank| {
            let x = (rank.rank() + 1) as f64;
            (
                rank.all_reduce_sum(x),
                rank.all_reduce_max(x),
                rank.all_reduce_min(x),
                rank.all_reduce_sum_usize(rank.rank()),
            )
        });
        for (sum, max, min, usum) in &out.results {
            assert_eq!(*sum, 21.0);
            assert_eq!(*max, 6.0);
            assert_eq!(*min, 1.0);
            assert_eq!(*usum, 15);
        }
    }

    #[test]
    fn vector_reduction_sums_elementwise() {
        let out = run(MachineConfig::new(4), |rank| {
            let v = vec![rank.rank() as f64, 1.0];
            rank.all_reduce_sum_vec(&v)
        });
        for r in &out.results {
            assert_eq!(r, &vec![6.0, 4.0]);
        }
    }

    #[test]
    fn broadcast_reaches_all_ranks() {
        let out = run(MachineConfig::new(5), |rank| rank.broadcast(2, &[7u64, 8u64]));
        for r in &out.results {
            assert_eq!(r, &vec![7u64, 8u64]);
        }
    }

    #[test]
    fn gather_to_root_only_fills_root() {
        let out = run(MachineConfig::new(4), |rank| {
            rank.gather_to_root(1, &[rank.rank() as u32])
        });
        assert!(out.results[0].is_empty());
        assert_eq!(out.results[1].len(), 4);
        for (p, v) in out.results[1].iter().enumerate() {
            assert_eq!(v, &vec![p as u32]);
        }
    }

    #[test]
    fn exclusive_scan_assigns_disjoint_ranges() {
        let out = run(MachineConfig::new(5), |rank| {
            let count = rank.rank() + 2;
            (rank.exclusive_scan_sum(count), count)
        });
        let mut expected_start = 0;
        for (start, count) in &out.results {
            assert_eq!(*start, expected_start);
            expected_start += count;
        }
    }

    #[test]
    fn exchange_moves_only_listed_pairs() {
        let out = run(MachineConfig::new(4), |rank| {
            let me = rank.rank();
            // Everyone sends a buffer of `me` repeated (me+1) times to rank (me+1)%4.
            let dest = (me + 1) % 4;
            let src = (me + 3) % 4;
            let sends = vec![(dest, vec![me as u32; me + 1])];
            let expected = vec![(src, src + 1)];
            rank.exchange(&sends, &expected)
        });
        for (me, recvd) in out.results.iter().enumerate() {
            let src = (me + 3) % 4;
            assert_eq!(recvd.len(), 1);
            assert_eq!(recvd[0].0, src);
            assert_eq!(recvd[0].1, vec![src as u32; src + 1]);
        }
    }

    #[test]
    fn exchange_skips_empty_transfers() {
        let cfg = MachineConfig::new(2).with_cost(CostModel::uniform(100.0, 0.0, 0.0));
        let out = run(cfg, |rank| {
            // No data moves at all: no messages should be charged.
            let r: Vec<(usize, Vec<f64>)> = rank.exchange(&[], &[]);
            (r.len(), rank.stats().msgs_sent)
        });
        for (n, sent) in &out.results {
            assert_eq!(*n, 0);
            assert_eq!(*sent, 0);
        }
    }

    #[test]
    fn deterministic_reduction_order() {
        // Summation order is rank order, so repeated runs give bit-identical results.
        let a = run(MachineConfig::new(7), |rank| {
            rank.all_reduce_sum(0.1 * (rank.rank() as f64 + 1.0))
        });
        let b = run(MachineConfig::new(7), |rank| {
            rank.all_reduce_sum(0.1 * (rank.rank() as f64 + 1.0))
        });
        assert_eq!(a.results, b.results);
    }
}
