//! Collective operations built on top of the unified exchange engine.
//!
//! The CHAOS runtime needs only a handful of collectives: all-to-all (schedule and
//! translation-table construction), all-gather (replicated translation tables,
//! partitioner coordination), reductions (load statistics, convergence checks), broadcast,
//! and a sparse "exchange" in which every rank sends a possibly-empty buffer to a subset of
//! ranks.  Each collective builds [`crate::exchange::ExchangePlan`]s and runs them through
//! the exchange engine; their cost is whatever the constituent messages cost under the
//! machine's [`crate::cost::CostModel`], plus one synchronisation charge for the
//! reductions that are semantically barriers.
//!
//! ## Log-depth rounds
//!
//! The gathers (`all_gather`, `all_gather_one`) run on the
//! [`crate::topology::Dissemination`] schedule, the scalar `all_reduce*` family on a
//! combining butterfly (recursive doubling with the non-power-of-two remainder folded
//! in and out of the power-of-two core), and `broadcast` on a
//! [`crate::topology::BinomialTree`]: `ceil(log2 P)` rounds, each round one small
//! epoch-tagged engine execution moving one message each way per rank (a sparse
//! one-peer plan; empty rounds skip their message outright).  Per rank that is
//! `O(log P)` messages instead of the `P - 1` of a flat fan, and for the scalar
//! reductions each round carries `O(1)` payload, which is what lets the machine scale
//! to P = 1024.  Every rank executes the same number of rounds in the same order, so
//! the engine's collective start-order invariant holds round by round, and all buffers
//! ride the pooled pack/decode machinery — steady-state collective loops stay
//! allocation-free on the message path.
//!
//! **Determinism.** Gathers deliver contributions indexed by source, so any fold over
//! them is rank order, exactly like a flat implementation.  The butterfly reductions
//! combine along a *fixed* tree bracketing (the lower block of each pair is always the
//! left operand), so every rank computes the identical expression and results are
//! byte-identical machine-wide for any combiner — including non-associative
//! floating-point sums, which may differ from a flat rank-order fold only in the last
//! ulps, and never across ranks.  That machine-wide replication is the property
//! `chaos::adapt`'s replicated controllers depend on, pinned by the equivalence suite
//! at power-of-two and non-power-of-two machine sizes.

use crate::cost::TimeSnapshot;
use crate::exchange::{
    alltoallv, alltoallv_replicated, alltoallv_with, ExchangePlan, PackBuf, Placed, RecvSpec,
};
use crate::machine::Rank;
use crate::message::Element;
use crate::topology::{tree_rounds, BinomialTree, Dissemination, GroupMap};

/// Tags reserved for collectives and the exchange engine.  User code should use tags
/// below `RESERVED_TAG_BASE`.
pub const RESERVED_TAG_BASE: u64 = 1 << 60;

/// A one-peer-each-way round plan: at most one send and one receive, every other pair
/// silent (`None`, so no message — not even an empty one — is exchanged with them).
fn round_plan(
    me: usize,
    n: usize,
    send: Option<(usize, usize)>,
    recv: Option<(usize, RecvSpec)>,
) -> ExchangePlan {
    let mut sends: Vec<Option<usize>> = vec![None; n];
    let mut recvs = vec![RecvSpec::None; n];
    if let Some((to, count)) = send {
        sends[to] = Some(count);
    }
    if let Some((from, spec)) = recv {
        recvs[from] = spec;
    }
    ExchangePlan::from_parts(me, sends, recvs)
}

impl Rank {
    /// Dissemination all-gather of exactly one element per rank: the shared core of
    /// [`Rank::all_gather_one`] and every reduction.  Returns the contributions indexed
    /// by source rank after `ceil(log2 P)` rounds, each round shipping this rank's
    /// oldest `min(2^k, P - 2^k)` blocks one hop down the ring.  Sizes are known on
    /// both sides (one element per block), so every receive is `Exact`.
    fn dissemination_gather_one<T: Element>(&mut self, value: T) -> Vec<T> {
        let me = self.rank();
        let n = self.nprocs();
        let mut vals: Vec<Option<T>> = vec![None; n];
        vals[me] = Some(value);
        let sched = Dissemination::new(n);
        // One receive buffer reused across rounds: the placement closure may not touch
        // `vals` while the pack closure reads it, so incoming blocks land here first.
        let mut incoming: Vec<T> = Vec::new();
        for k in 0..sched.rounds() {
            let m = sched.blocks_in_round(k);
            let to = sched.send_peer(me, k);
            let from = sched.recv_peer(me, k);
            let plan = round_plan(me, n, Some((to, m)), Some((from, RecvSpec::Exact(m))));
            incoming.clear();
            alltoallv_with(
                self,
                &plan,
                |_p, buf: &mut PackBuf<'_, T>| {
                    for b in sched.send_blocks(me, k) {
                        buf.push(vals[b].expect("dissemination invariant: block held"));
                    }
                },
                |_src, v: Placed<'_, T>| incoming.extend_from_slice(&v),
            );
            for (i, b) in sched.recv_blocks(me, k).enumerate() {
                vals[b] = Some(incoming[i]);
            }
        }
        vals.into_iter()
            .map(|v| v.expect("dissemination gather incomplete"))
            .collect()
    }

    /// Every rank contributes a slice; every rank receives all contributions, indexed by
    /// contributing rank.
    ///
    /// Two dissemination phases of `ceil(log2 P)` rounds each: a count phase (one
    /// element per rank, after which every rank knows every contribution length) and a
    /// data phase whose rounds ship concatenated blocks with exactly known sizes —
    /// rounds with nothing to move send no message at all.  `O(log P)` messages per
    /// rank; block contents and ordering are identical to a flat gather.
    pub fn all_gather<T: Element>(&mut self, local: &[T]) -> Vec<Vec<T>> {
        self.ledger_record(
            "all_gather",
            self.exchange_epochs_started(),
            std::any::type_name::<T>(),
        );
        let me = self.rank();
        let n = self.nprocs();
        if n == 1 {
            return vec![local.to_vec()];
        }
        let counts: Vec<u64> = self.dissemination_gather_one(local.len() as u64);
        let mut out: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
        out[me].extend_from_slice(local);
        let sched = Dissemination::new(n);
        let mut incoming: Vec<T> = Vec::new();
        for k in 0..sched.rounds() {
            let send_total: usize = sched.send_blocks(me, k).map(|b| counts[b] as usize).sum();
            let recv_total: usize = sched.recv_blocks(me, k).map(|b| counts[b] as usize).sum();
            let send = (send_total > 0).then_some((sched.send_peer(me, k), send_total));
            let recv =
                (recv_total > 0).then_some((sched.recv_peer(me, k), RecvSpec::Exact(recv_total)));
            let plan = round_plan(me, n, send, recv);
            incoming.clear();
            alltoallv_with(
                self,
                &plan,
                |_p, buf: &mut PackBuf<'_, T>| {
                    for b in sched.send_blocks(me, k) {
                        buf.extend_from_slice(&out[b]);
                    }
                },
                |_src, v: Placed<'_, T>| incoming.extend_from_slice(&v),
            );
            let mut off = 0;
            for b in sched.recv_blocks(me, k) {
                let c = counts[b] as usize;
                out[b].extend_from_slice(&incoming[off..off + c]);
                off += c;
            }
        }
        out
    }

    /// Every rank contributes a single value; every rank receives the vector of all
    /// contributions indexed by rank.  Single-phase dissemination (block sizes are known
    /// a priori): `ceil(log2 P)` messages per rank — the hot path of the adaptive
    /// load monitor.
    pub fn all_gather_one<T: Element>(&mut self, value: T) -> Vec<T> {
        self.ledger_record(
            "all_gather_one",
            self.exchange_epochs_started(),
            std::any::type_name::<T>(),
        );
        self.dissemination_gather_one(value)
    }

    /// Personalised all-to-all: `sends[p]` is delivered to rank `p`; the return value's
    /// entry `q` is what rank `q` sent to this rank.
    ///
    /// # Panics
    /// Panics if `sends.len() != nprocs`.
    pub fn all_to_all<T: Element>(&mut self, sends: &[Vec<T>]) -> Vec<Vec<T>> {
        self.ledger_record(
            "all_to_all",
            self.exchange_epochs_started(),
            std::any::type_name::<T>(),
        );
        let me = self.rank();
        let n = self.nprocs();
        assert_eq!(
            sends.len(),
            n,
            "all_to_all needs exactly one send buffer per rank"
        );
        let plan = ExchangePlan::dense(me, sends.iter().map(Vec::len).collect());
        let mut out: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
        alltoallv(self, &plan, sends, |src, v| out[src] = v.into_vec());
        out
    }

    /// Sparse exchange: send `data` to each `(destination, data)` pair, where most ranks
    /// are typically *not* destinations.  `expected_sources` lists the ranks this rank will
    /// receive from (with the element count it will receive, which may be zero and is then
    /// skipped).  Returns `(source, values)` pairs in `expected_sources` order.
    ///
    /// This is the message pattern of the CHAOS executor once a communication schedule is
    /// known: both sides of every transfer are pre-computed, so no size negotiation
    /// messages are needed.
    pub fn exchange<T: Element>(
        &mut self,
        sends: &[(usize, Vec<T>)],
        expected_sources: &[(usize, usize)],
    ) -> Vec<(usize, Vec<T>)> {
        self.ledger_record(
            "exchange.sparse",
            self.exchange_epochs_started(),
            std::any::type_name::<T>(),
        );
        let me = self.rank();
        let n = self.nprocs();
        let mut send_counts = vec![0usize; n];
        let mut bufs: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
        let mut claimed = vec![false; n];
        for (dest, data) in sends {
            if *dest == me {
                continue; // local portion handled by the caller
            }
            assert!(
                !claimed[*dest],
                "exchange: duplicate send entry for destination {dest}"
            );
            claimed[*dest] = true;
            send_counts[*dest] = data.len();
            bufs[*dest] = data.clone();
        }
        let mut recv_counts = vec![0usize; n];
        for &(src, count) in expected_sources {
            if src != me {
                recv_counts[src] = count;
            }
        }
        let plan = ExchangePlan::sparse(me, send_counts, recv_counts);
        let mut by_src: Vec<Option<Vec<T>>> = (0..n).map(|_| None).collect();
        alltoallv(self, &plan, &bufs, |src, v| {
            by_src[src] = Some(v.into_vec());
        });
        // Deliver in `expected_sources` order, as the hand-rolled loop always did.
        expected_sources
            .iter()
            .filter(|&&(src, count)| src != me && count != 0)
            .map(|&(src, _)| {
                (
                    src,
                    by_src[src]
                        .take()
                        .expect("exchange: planned message missing"),
                )
            })
            .collect()
    }

    /// All-reduce with an arbitrary combiner.  Every rank receives the same reduction of
    /// all contributions.
    ///
    /// Runs as a *combining butterfly* (recursive doubling) over the largest power-of-two
    /// core `m <= P`: the `P - m` extra ranks first fold their value into rank `r - m`,
    /// then the core runs `log2 m` exchange rounds in which rank `r` swaps partial
    /// results with `r ^ 2^k` and both ends combine, and finally the finished result fans
    /// back out to the extras.  Every round moves exactly one `T` each way, so the
    /// payload is `O(1)` per round and no rank sends more than `ceil(log2 P)` messages —
    /// unlike a gather-then-fold, whose later rounds carry `Theta(P)` elements.
    ///
    /// **Determinism.** Both partners bracket identically — the lower block of each pair
    /// is always the left operand of `combine` — so every rank applies the *same* fixed
    /// reduction tree and the result is byte-identical machine-wide for any combiner,
    /// including non-associative floating-point addition.  For combiners that are exact
    /// on the inputs (max, min, integer sums, integer-valued float sums) the result is
    /// also identical to a flat rank-order fold; an inexact float sum may differ from the
    /// flat fold in the last ulps (but never across ranks), which the replicated
    /// controllers in `chaos::adapt` tolerate by construction.
    ///
    /// Idle roles (extras during the butterfly, core ranks without an extra during the
    /// fold rounds) run empty plans, so every rank executes the same number of engine
    /// epochs and the collective start-order invariant holds round by round.
    pub fn all_reduce<T, F>(&mut self, value: T, combine: F) -> T
    where
        T: Element,
        F: Fn(T, T) -> T,
    {
        self.ledger_record(
            "all_reduce",
            self.exchange_epochs_started(),
            std::any::type_name::<T>(),
        );
        self.charge_collective();
        let me = self.rank();
        let n = self.nprocs();
        if n == 1 {
            return value;
        }
        // Largest power of two <= n: the butterfly core.
        let core = 1usize << (usize::BITS - 1 - n.leading_zeros());
        let mut acc = value;
        // One receive slot reused across rounds; every receive is exactly one element.
        let mut incoming: Vec<T> = Vec::with_capacity(1);
        let round = |rank: &mut Self,
                     acc: &T,
                     incoming: &mut Vec<T>,
                     send: Option<usize>,
                     recv: Option<usize>| {
            let plan = round_plan(
                me,
                n,
                send.map(|to| (to, 1)),
                recv.map(|from| (from, RecvSpec::Exact(1))),
            );
            incoming.clear();
            let payload = *acc;
            alltoallv_with(
                rank,
                &plan,
                |_p, buf: &mut PackBuf<'_, T>| buf.push(payload),
                |_src, v: Placed<'_, T>| incoming.extend_from_slice(&v),
            );
        };
        // Pre-fold: extras ship their contribution into the core (skipped at powers of
        // two, where `core == n`).
        if core < n {
            let (send, recv) = if me >= core {
                (Some(me - core), None)
            } else if me + core < n {
                (None, Some(me + core))
            } else {
                (None, None)
            };
            round(self, &acc, &mut incoming, send, recv);
            if let Some(&theirs) = incoming.first() {
                acc = combine(acc, theirs);
            }
        }
        // Combining butterfly over the core; extras idle through empty rounds.
        for k in 0..core.trailing_zeros() {
            let d = 1usize << k;
            let partner = (me < core).then_some(me ^ d);
            round(self, &acc, &mut incoming, partner, partner);
            if me < core {
                let theirs = incoming[0];
                // Lower block on the left on both ends: identical bracketing everywhere.
                acc = if me & d == 0 {
                    combine(acc, theirs)
                } else {
                    combine(theirs, acc)
                };
            }
        }
        // Post-fold: fan the finished result back out to the extras.
        if core < n {
            let (send, recv) = if me + core < n {
                (Some(me + core), None)
            } else if me >= core {
                (None, Some(me - core))
            } else {
                (None, None)
            };
            round(self, &acc, &mut incoming, send, recv);
            if me >= core {
                acc = incoming[0];
            }
        }
        acc
    }

    /// Sum-reduction of a single `f64` across all ranks.
    pub fn all_reduce_sum(&mut self, value: f64) -> f64 {
        self.all_reduce(value, |a, b| a + b)
    }

    /// Max-reduction of a single `f64` across all ranks.
    pub fn all_reduce_max(&mut self, value: f64) -> f64 {
        self.all_reduce(value, f64::max)
    }

    /// Min-reduction of a single `f64` across all ranks.
    pub fn all_reduce_min(&mut self, value: f64) -> f64 {
        self.all_reduce(value, f64::min)
    }

    /// Sum-reduction of a `usize` across all ranks.
    pub fn all_reduce_sum_usize(&mut self, value: usize) -> usize {
        self.all_reduce(value, |a, b| a + b)
    }

    /// Element-wise sum-reduction of equal-length vectors across all ranks.
    pub fn all_reduce_sum_vec(&mut self, values: &[f64]) -> Vec<f64> {
        let gathered = self.all_gather(values);
        let mut acc = vec![0.0; values.len()];
        for contribution in gathered {
            assert_eq!(
                contribution.len(),
                acc.len(),
                "all_reduce_sum_vec requires equal-length contributions"
            );
            for (a, v) in acc.iter_mut().zip(contribution) {
                *a += v;
            }
        }
        acc
    }

    /// Broadcast `values` from `root` to every rank; returns the broadcast values.
    ///
    /// Runs on a [`BinomialTree`] rooted at `root`: in round `k` every rank that already
    /// holds the data forwards it one subtree over, doubling the informed set, so the
    /// root sends `ceil(log2 P)` messages instead of `P - 1` and every other rank
    /// receives once and forwards at most `ceil(log2 P) - 1` times.
    pub fn broadcast<T: Element>(&mut self, root: usize, values: &[T]) -> Vec<T> {
        self.ledger_record(
            "broadcast",
            self.exchange_epochs_started(),
            std::any::type_name::<T>(),
        );
        let me = self.rank();
        let n = self.nprocs();
        let tree = BinomialTree::new(n, root);
        let mut out = if me == root {
            values.to_vec()
        } else {
            Vec::new()
        };
        for k in 0..tree.rounds() {
            if let Some(src) = tree.bcast_recv_from(me, k) {
                let plan = round_plan(me, n, None, Some((src, RecvSpec::Any)));
                alltoallv_with(
                    self,
                    &plan,
                    |_p, _buf: &mut PackBuf<'_, T>| {},
                    |_src, v: Placed<'_, T>| out = v.into_vec(),
                );
            } else {
                let send = tree.bcast_send_to(me, k).map(|child| (child, out.len()));
                let plan = round_plan(me, n, send, None);
                alltoallv_with(
                    self,
                    &plan,
                    |_p, buf: &mut PackBuf<'_, T>| buf.extend_from_slice(&out),
                    |_s, _v: Placed<'_, T>| {},
                );
            }
        }
        out
    }

    /// Gather each rank's slice at `root`.  Non-root ranks receive an empty vector.
    pub fn gather_to_root<T: Element>(&mut self, root: usize, local: &[T]) -> Vec<Vec<T>> {
        self.ledger_record(
            "gather_to_root",
            self.exchange_epochs_started(),
            std::any::type_name::<T>(),
        );
        let me = self.rank();
        let n = self.nprocs();
        let mut send_specs: Vec<Option<usize>> = vec![None; n];
        let mut recvs = vec![RecvSpec::None; n];
        if me == root {
            for (p, r) in recvs.iter_mut().enumerate() {
                if p != me {
                    *r = RecvSpec::Any;
                }
            }
        } else {
            send_specs[root] = Some(local.len());
        }
        let plan = ExchangePlan::from_parts(me, send_specs, recvs);
        let mut out: Vec<Vec<T>> = if me == root {
            let mut out: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
            out[me] = local.to_vec();
            out
        } else {
            Vec::new()
        };
        alltoallv_replicated(self, &plan, local, |src, v| out[src] = v.into_vec());
        out
    }

    /// Exclusive prefix sum over one `usize` per rank: rank `i` receives the sum of the
    /// values contributed by ranks `0..i`.  Used to assign globally unique index ranges.
    pub fn exclusive_scan_sum(&mut self, value: usize) -> usize {
        let all = self.all_gather_one(value);
        all[..self.rank()].iter().sum()
    }

    /// All-gather one modeled-time sample: every rank contributes the *computation* time it
    /// has accumulated since its own `since` snapshot, and every rank receives the full
    /// per-rank vector (indexed by rank).  This is the measurement collective behind
    /// feedback-driven load balancing (`chaos::adapt`): the per-rank compute times are the
    /// `t_i` of the paper's load-balance index `max_i(t_i) * n / sum_i(t_i)`.  The sample
    /// is taken *before* the gather communicates, and the gather's own cost is dominated by
    /// communication time — the only compute it charges is the fixed pack/unpack cost of
    /// one `f64` per peer, identical on every rank, so sampling shifts but never skews the
    /// balance it measures.
    pub fn all_gather_compute_since(&mut self, since: &TimeSnapshot) -> Vec<f64> {
        let sample = self.modeled().since(since).compute_us;
        self.all_gather_one(sample)
    }

    /// Two-level hierarchical sample-and-decide: the collective behind the hierarchical
    /// (group-leader) monitoring mode of `chaos::adapt`.
    ///
    /// Every rank contributes one `f64` sample; `decide` runs *only on group leaders*,
    /// over the full rank-indexed sample vector, and its `K`-value decision is broadcast
    /// back down so every rank returns the same array.  Three phases over the
    /// [`GroupMap`]:
    ///
    /// 1. binomial gather of samples to each group's leader (each member sends exactly
    ///    once);
    /// 2. dissemination all-gather of the per-group vectors across the leaders, after
    ///    which every leader holds the full sample vector *in rank order* — the same
    ///    bytes `all_gather_one` would have produced, which is why leaders running the
    ///    same pure `decide` agree bit-exactly;
    /// 3. binomial broadcast of the decision within each group.
    ///
    /// A member sends/receives `O(log g)` messages and a leader `O(log g + log(P/g))`;
    /// with the [`GroupMap::square`] split both are `O(log P)`.  Every rank executes the
    /// same engine rounds in the same order (idle ranks run empty plans), preserving the
    /// engine's collective start-order invariant.
    pub fn hierarchical_sample<const K: usize>(
        &mut self,
        groups: &GroupMap,
        sample: f64,
        decide: impl FnOnce(&[f64]) -> [f64; K],
    ) -> [f64; K] {
        self.ledger_record("hierarchical_sample", self.exchange_epochs_started(), "f64");
        let me = self.rank();
        let n = self.nprocs();
        assert_eq!(groups.nprocs(), n, "group map spans a different machine");
        let start = groups.leader_of(me);
        let len = groups.members_of(me);
        let rel = me - start;
        // The in-group tree is sized to *this* group; short final groups simply see
        // no-op rounds past their own depth, keeping the global round count uniform.
        let tree = BinomialTree::new(len, 0);
        let in_group_rounds = tree_rounds(groups.group_size());

        // Phase 1: binomial gather of samples to the leader.  A rank entering round k
        // with its low k bits clear holds the contiguous samples of group-local ranks
        // rel..rel+2^k, so the leader assembles the group vector in rank order.
        let mut acc: Vec<f64> = Vec::with_capacity(len);
        acc.push(sample);
        for k in 0..in_group_rounds {
            if let Some(to_rel) = tree.gather_send_to(rel, k) {
                let plan = round_plan(me, n, Some((start + to_rel, acc.len())), None);
                alltoallv_with(
                    self,
                    &plan,
                    |_p, buf: &mut PackBuf<'_, f64>| buf.extend_from_slice(&acc),
                    |_s, _v: Placed<'_, f64>| {},
                );
                acc.clear();
            } else if let Some(from_rel) = tree.gather_recv_from(rel, k) {
                let expect = tree.gather_block_len(from_rel, k);
                let plan = round_plan(
                    me,
                    n,
                    None,
                    Some((start + from_rel, RecvSpec::Exact(expect))),
                );
                alltoallv_with(
                    self,
                    &plan,
                    |_p, _buf: &mut PackBuf<'_, f64>| {},
                    |_src, v: Placed<'_, f64>| acc.extend_from_slice(&v),
                );
            } else {
                let plan = round_plan(me, n, None, None);
                alltoallv_with(
                    self,
                    &plan,
                    |_p, _buf: &mut PackBuf<'_, f64>| {},
                    |_s, _v: Placed<'_, f64>| {},
                );
            }
        }

        // Phase 2: leaders dissemination-all-gather the group vectors; members run the
        // same number of empty rounds.  Block sizes are known from the GroupMap, so
        // every receive is Exact.
        let nleaders = groups.ngroups();
        let lsched = Dissemination::new(nleaders);
        let is_leader = groups.is_leader(me);
        let mut full = vec![0.0f64; n];
        if is_leader {
            full[start..start + len].copy_from_slice(&acc);
        }
        let mut incoming: Vec<f64> = Vec::new();
        for k in 0..lsched.rounds() {
            if is_leader {
                let j = groups.group_of(me);
                let send_total: usize = lsched.send_blocks(j, k).map(|b| groups.group_len(b)).sum();
                let recv_total: usize = lsched.recv_blocks(j, k).map(|b| groups.group_len(b)).sum();
                let to = groups.leader(lsched.send_peer(j, k));
                let from = groups.leader(lsched.recv_peer(j, k));
                let plan = round_plan(
                    me,
                    n,
                    Some((to, send_total)),
                    Some((from, RecvSpec::Exact(recv_total))),
                );
                incoming.clear();
                alltoallv_with(
                    self,
                    &plan,
                    |_p, buf: &mut PackBuf<'_, f64>| {
                        for b in lsched.send_blocks(j, k) {
                            let s = groups.leader(b);
                            buf.extend_from_slice(&full[s..s + groups.group_len(b)]);
                        }
                    },
                    |_src, v: Placed<'_, f64>| incoming.extend_from_slice(&v),
                );
                let mut off = 0;
                for b in lsched.recv_blocks(j, k) {
                    let s = groups.leader(b);
                    let c = groups.group_len(b);
                    full[s..s + c].copy_from_slice(&incoming[off..off + c]);
                    off += c;
                }
            } else {
                let plan = round_plan(me, n, None, None);
                alltoallv_with(
                    self,
                    &plan,
                    |_p, _buf: &mut PackBuf<'_, f64>| {},
                    |_s, _v: Placed<'_, f64>| {},
                );
            }
        }

        // Phase 3: leaders decide; the decision rides a binomial broadcast down the
        // group.
        let mut decision = if is_leader { decide(&full) } else { [0.0; K] };
        for k in 0..in_group_rounds {
            if let Some(src_rel) = tree.bcast_recv_from(rel, k) {
                let plan = round_plan(me, n, None, Some((start + src_rel, RecvSpec::Exact(K))));
                alltoallv_with(
                    self,
                    &plan,
                    |_p, _buf: &mut PackBuf<'_, f64>| {},
                    |_src, v: Placed<'_, f64>| decision.copy_from_slice(&v),
                );
            } else if let Some(child_rel) = tree.bcast_send_to(rel, k) {
                let plan = round_plan(me, n, Some((start + child_rel, K)), None);
                alltoallv_with(
                    self,
                    &plan,
                    |_p, buf: &mut PackBuf<'_, f64>| buf.extend_from_slice(&decision),
                    |_s, _v: Placed<'_, f64>| {},
                );
            } else {
                let plan = round_plan(me, n, None, None);
                alltoallv_with(
                    self,
                    &plan,
                    |_p, _buf: &mut PackBuf<'_, f64>| {},
                    |_s, _v: Placed<'_, f64>| {},
                );
            }
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use crate::topology::{tree_rounds, GroupMap, MachineConfig};
    use crate::{run, CostModel};

    #[test]
    fn all_gather_collects_every_contribution() {
        let out = run(MachineConfig::new(4), |rank| {
            let mine = vec![rank.rank() as u32; rank.rank() + 1];
            rank.all_gather(&mine)
        });
        for per_rank in &out.results {
            for (p, v) in per_rank.iter().enumerate() {
                assert_eq!(v.len(), p + 1);
                assert!(v.iter().all(|&x| x == p as u32));
            }
        }
    }

    #[test]
    fn all_to_all_transposes() {
        let out = run(MachineConfig::new(3), |rank| {
            let me = rank.rank();
            let sends: Vec<Vec<u64>> = (0..3).map(|p| vec![(me * 10 + p) as u64]).collect();
            rank.all_to_all(&sends)
        });
        for (me, recvd) in out.results.iter().enumerate() {
            for (p, v) in recvd.iter().enumerate() {
                assert_eq!(v, &vec![(p * 10 + me) as u64]);
            }
        }
    }

    #[test]
    fn reductions_agree_on_every_rank() {
        let out = run(MachineConfig::new(6), |rank| {
            let x = (rank.rank() + 1) as f64;
            (
                rank.all_reduce_sum(x),
                rank.all_reduce_max(x),
                rank.all_reduce_min(x),
                rank.all_reduce_sum_usize(rank.rank()),
            )
        });
        for (sum, max, min, usum) in &out.results {
            assert_eq!(*sum, 21.0);
            assert_eq!(*max, 6.0);
            assert_eq!(*min, 1.0);
            assert_eq!(*usum, 15);
        }
    }

    #[test]
    fn vector_reduction_sums_elementwise() {
        let out = run(MachineConfig::new(4), |rank| {
            let v = vec![rank.rank() as f64, 1.0];
            rank.all_reduce_sum_vec(&v)
        });
        for r in &out.results {
            assert_eq!(r, &vec![6.0, 4.0]);
        }
    }

    #[test]
    fn broadcast_reaches_all_ranks() {
        let out = run(MachineConfig::new(5), |rank| {
            rank.broadcast(2, &[7u64, 8u64])
        });
        for r in &out.results {
            assert_eq!(r, &vec![7u64, 8u64]);
        }
    }

    #[test]
    fn gather_to_root_only_fills_root() {
        let out = run(MachineConfig::new(4), |rank| {
            rank.gather_to_root(1, &[rank.rank() as u32])
        });
        assert!(out.results[0].is_empty());
        assert_eq!(out.results[1].len(), 4);
        for (p, v) in out.results[1].iter().enumerate() {
            assert_eq!(v, &vec![p as u32]);
        }
    }

    #[test]
    fn exclusive_scan_assigns_disjoint_ranges() {
        let out = run(MachineConfig::new(5), |rank| {
            let count = rank.rank() + 2;
            (rank.exclusive_scan_sum(count), count)
        });
        let mut expected_start = 0;
        for (start, count) in &out.results {
            assert_eq!(*start, expected_start);
            expected_start += count;
        }
    }

    #[test]
    fn exchange_moves_only_listed_pairs() {
        let out = run(MachineConfig::new(4), |rank| {
            let me = rank.rank();
            // Everyone sends a buffer of `me` repeated (me+1) times to rank (me+1)%4.
            let dest = (me + 1) % 4;
            let src = (me + 3) % 4;
            let sends = vec![(dest, vec![me as u32; me + 1])];
            let expected = vec![(src, src + 1)];
            rank.exchange(&sends, &expected)
        });
        for (me, recvd) in out.results.iter().enumerate() {
            let src = (me + 3) % 4;
            assert_eq!(recvd.len(), 1);
            assert_eq!(recvd[0].0, src);
            assert_eq!(recvd[0].1, vec![src as u32; src + 1]);
        }
    }

    #[test]
    fn exchange_skips_empty_transfers() {
        let cfg = MachineConfig::new(2).with_cost(CostModel::uniform(100.0, 0.0, 0.0));
        let out = run(cfg, |rank| {
            // No data moves at all: no messages should be charged.
            let r: Vec<(usize, Vec<f64>)> = rank.exchange(&[], &[]);
            (r.len(), rank.stats().msgs_sent)
        });
        for (n, sent) in &out.results {
            assert_eq!(*n, 0);
            assert_eq!(*sent, 0);
        }
    }

    #[test]
    fn compute_time_samples_are_gathered_everywhere() {
        let cfg = MachineConfig::new(4).with_cost(CostModel::uniform(1.0, 0.0, 1.0));
        let out = run(cfg, |rank| {
            let t0 = rank.modeled();
            // Rank r performs (r + 1) * 10 units of compute; with a unit compute cost the
            // gathered samples must be exactly those values on every rank.
            rank.charge_compute((rank.rank() + 1) as f64 * 10.0);
            rank.all_gather_compute_since(&t0)
        });
        for samples in &out.results {
            assert_eq!(samples, &vec![10.0, 20.0, 30.0, 40.0]);
        }
    }

    #[test]
    fn compute_time_sampling_is_uniform_noise() {
        let out = run(MachineConfig::new(3), |rank| {
            let t0 = rank.modeled();
            let first = rank.all_gather_compute_since(&t0);
            // A second sample over the same window sees only the first gather's own
            // pack/unpack cost — identical on every rank, so the measured *balance* is
            // undisturbed even though the absolute times shift.
            let second = rank.all_gather_compute_since(&t0);
            (first, second)
        });
        for (first, second) in &out.results {
            assert_eq!(first, &vec![0.0; 3], "sample is taken before the gather");
            assert!(second.windows(2).all(|w| w[0] == w[1]), "{second:?}");
        }
    }

    #[test]
    fn deterministic_reduction_order() {
        // The butterfly bracketing is fixed, so repeated runs give bit-identical results.
        let a = run(MachineConfig::new(7), |rank| {
            rank.all_reduce_sum(0.1 * (rank.rank() as f64 + 1.0))
        });
        let b = run(MachineConfig::new(7), |rank| {
            rank.all_reduce_sum(0.1 * (rank.rank() as f64 + 1.0))
        });
        assert_eq!(a.results, b.results);
    }

    #[test]
    fn collectives_work_at_awkward_machine_sizes() {
        for p in [1usize, 3, 5, 12] {
            let out = run(MachineConfig::new(p), |rank| {
                let gathered = rank.all_gather(&vec![rank.rank() as u32; rank.rank() % 3]);
                let one = rank.all_gather_one(rank.rank() as u64);
                let sum = rank.all_reduce_sum((rank.rank() + 1) as f64);
                let bcast = rank.broadcast(rank.nprocs() - 1, &[42u16, 43u16]);
                (gathered, one, sum, bcast)
            });
            let expect_sum: f64 = (1..=p).map(|r| r as f64).sum();
            for (gathered, one, sum, bcast) in &out.results {
                for (q, v) in gathered.iter().enumerate() {
                    assert_eq!(v, &vec![q as u32; q % 3], "P={p}");
                }
                assert_eq!(one, &(0..p as u64).collect::<Vec<_>>(), "P={p}");
                assert_eq!(*sum, expect_sum, "P={p}");
                assert_eq!(bcast, &vec![42u16, 43u16], "P={p}");
            }
        }
    }

    #[test]
    fn log_depth_message_counts() {
        // The satellite pin: reductions and single-element gathers stay within
        // ceil(log2 P) messages per rank — the log-depth model, not the flat P - 1.
        // Gathers send exactly that on every rank; the butterfly reduction is
        // asymmetric off powers of two (extras send once, their core partners send
        // ceil(log2 P)), so the bound is a per-rank ceiling reached by the busiest rank.
        for p in [2usize, 3, 5, 8, 16] {
            let out = run(MachineConfig::new(p), |rank| {
                let s0 = rank.stats().msgs_sent;
                rank.all_reduce_sum(1.0);
                let s1 = rank.stats().msgs_sent;
                rank.all_gather_one(rank.rank() as u64);
                let s2 = rank.stats().msgs_sent;
                (s1 - s0, s2 - s1)
            });
            let bound = tree_rounds(p) as u64;
            let busiest = out.results.iter().map(|(r, _)| *r).max().unwrap();
            assert_eq!(busiest, bound, "P={p}");
            for (reduce_msgs, gather_msgs) in &out.results {
                assert!(*reduce_msgs <= bound, "P={p}: {reduce_msgs} > {bound}");
                assert_eq!(*gather_msgs, bound, "P={p}");
            }
        }
    }

    #[test]
    fn collective_cost_follows_log_depth_model() {
        // uniform(latency=10, per_byte=0, compute=0): each message costs exactly 10us
        // on each end.  all_gather_one at P=5 runs 3 dissemination rounds — one send
        // and one receive per rank per round — so modeled comm is exactly 60us.
        let cfg = MachineConfig::new(5).with_cost(CostModel::uniform(10.0, 0.0, 0.0));
        let out = run(cfg, |rank| {
            let t0 = rank.modeled();
            rank.all_gather_one(1u64);
            rank.modeled().since(&t0).comm_us
        });
        for c in &out.results {
            assert_eq!(*c, 60.0);
        }
    }

    #[test]
    fn hierarchical_sample_matches_flat_decision() {
        for p in [1usize, 3, 5, 12, 16] {
            for g in [1usize, 2, 4, 7] {
                let out = run(MachineConfig::new(p), move |rank| {
                    let groups = GroupMap::new(rank.nprocs(), g);
                    let sample = (rank.rank() as f64 + 1.0) * 1.5;
                    rank.hierarchical_sample::<3>(&groups, sample, |v| {
                        // Order-sensitive digest: leaders must see the full vector in
                        // rank order, exactly as all_gather_one would produce it.
                        [v.iter().sum(), v[0], v[v.len() - 1]]
                    })
                });
                let expect_sum: f64 = (0..p).map(|r| (r as f64 + 1.0) * 1.5).sum();
                for d in &out.results {
                    assert_eq!(d[0], expect_sum, "P={p} g={g}");
                    assert_eq!(d[1], 1.5, "P={p} g={g}");
                    assert_eq!(d[2], p as f64 * 1.5, "P={p} g={g}");
                }
            }
        }
    }

    #[test]
    fn hierarchical_sample_message_counts_stay_logarithmic() {
        // With the square split at P=16 (groups of 4): a member sends once (gather) and
        // receives once (broadcast) plus any forwarding; a leader pays the in-group
        // fan-in plus the leader exchange.  Nobody comes close to the flat P - 1.
        let out = run(MachineConfig::new(16), |rank| {
            let groups = GroupMap::square(rank.nprocs());
            let s0 = rank.stats().msgs_sent;
            rank.hierarchical_sample::<1>(&groups, rank.rank() as f64, |v| [v.iter().sum()]);
            rank.stats().msgs_sent - s0
        });
        for (r, sent) in out.results.iter().enumerate() {
            assert!(*sent <= 6, "rank {r} sent {sent} messages");
        }
        let total: u64 = out.results.iter().sum();
        // Flat monitoring at P=16 is 16*15 = 240 messages per step.
        assert!(total <= 60, "machine-wide {total} messages");
    }
}
