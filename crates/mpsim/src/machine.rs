//! SPMD driver: spawn one thread per rank and run the same closure on each.
//!
//! This is the stand-in for the node programs of the paper's iPSC/860: [`run`] plays the
//! role of loading the same program onto every node, [`Rank`] is the per-node handle
//! through which all communication, cost accounting and pack-buffer pooling happens, and
//! [`RunOutcome`] collects what the paper's tables report — per-rank results, raw
//! counters ([`RankStats`]), modeled times ([`TimeSnapshot`]) and pool counters
//! ([`PackPoolStats`]).

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread;

use crate::comm::Mailbox;
use crate::cost::{CostModel, TimeSnapshot};
use crate::ledger::{LedgerEntry, LedgerHub, LedgerRank};
use crate::message::{decode_vec, Element, Envelope, Payload, TypedPayload};
use crate::shared::{ExchangeBackend, SharedFabric};
use crate::stats::{MachineStats, PackPoolStats, RankStats};
use crate::topology::{Dissemination, MachineConfig};

/// The per-rank handle handed to the SPMD closure.
///
/// A `Rank` is the only way code running inside the machine can interact with the outside
/// world: it provides tagged point-to-point messaging, collectives (see
/// [`crate::collectives`]), barriers, and the modeled-time/statistics accounting.
pub struct Rank {
    mailbox: Mailbox,
    cost: CostModel,
    backend: ExchangeBackend,
    stats: RankStats,
    time: TimeSnapshot,
    /// Number of [`crate::exchange`] engine executions this rank has started; used to tag
    /// exchange messages so that consecutive exchanges can never be confused even though
    /// ranks run ahead of one another.
    exchange_seq: u64,
    /// Number of barriers this rank has entered; tags each barrier episode's
    /// dissemination rounds (see [`Rank::barrier`]).
    barrier_seq: u64,
    /// Free list of the pack-buffer pool: spent message payloads waiting to be reused as
    /// outgoing encode buffers.  See [`Rank::pool_stats`].
    pool: Vec<Vec<u8>>,
    /// Free lists of the decode-scratch pool, one per element type: typed `Vec<T>` buffers
    /// (stored as `Vec<Vec<T>>` behind `dyn Any`) that incoming payloads are decoded into
    /// before placement.  Bounded to [`SCRATCH_MAX_TYPES`] entries by least-recently-used
    /// eviction (see [`Rank::reattach_decode_scratch`]).  See [`Rank::pool_stats`].
    scratch: HashMap<TypeId, ScratchSlot>,
    /// Monotone counter stamping decode-scratch use, for the LRU eviction above.
    scratch_clock: u64,
    /// Allocation/reuse counters of both pools.
    pool_stats: PackPoolStats,
    /// The collective ledger, when this machine verifies collective matching (see
    /// [`crate::ledger`]): this rank's trace of started collectives plus the shared hub
    /// it is cross-checked through at barriers and shutdown.
    ledger: Option<Box<LedgerRank>>,
}

/// One element type's decode-scratch free list plus the recency stamp that orders
/// eviction when [`SCRATCH_MAX_TYPES`] distinct types have been seen.
struct ScratchSlot {
    list: Box<dyn Any + Send>,
    last_use: u64,
}

/// Maximum number of idle buffers a rank keeps, per pool (and, for the decode-scratch
/// pool, per element type).  Beyond this, recycled buffers are simply dropped; the cap
/// only bounds idle memory, it never causes an extra allocation while a pool is warm (a
/// steady-state loop holds at most its per-iteration message count).
const POOL_MAX_IDLE: usize = 1024;

/// Maximum number of distinct element types the decode-scratch pool keeps free lists
/// for.  A workload phase touches a handful of types; without a bound, a long-running
/// heterogeneous process (many struct types through `impl_element_struct!`) would grow
/// the `TypeId` map — and its idle buffers — forever.  When a new type would exceed the
/// bound, the least-recently-used type's free list is dropped (its buffers are plain
/// idle memory; the next exchange of that type re-warms in one iteration).
pub const SCRATCH_MAX_TYPES: usize = 32;

impl Rank {
    /// This rank's id in `0..nprocs`.
    pub fn rank(&self) -> usize {
        self.mailbox.rank()
    }

    /// Number of ranks in the machine.
    pub fn nprocs(&self) -> usize {
        self.mailbox.nprocs()
    }

    /// The cost model this machine was configured with.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The exchange backend this machine communicates through.
    pub fn backend(&self) -> ExchangeBackend {
        self.backend
    }

    /// Send a slice of elements to rank `to` with tag `tag`.
    ///
    /// The sender is charged one message (latency + bytes) of modeled communication time.
    /// The payload is encoded into a pooled buffer (see [`Rank::pool_stats`]), never a
    /// fresh allocation when the pool is warm.
    pub fn send_slice<T: Element>(&mut self, to: usize, tag: u64, values: &[T]) {
        let mut payload = self.take_pack_buffer(values.len() * T::SIZE);
        T::write_le_slice(values, &mut payload);
        self.send_packed(to, tag, payload);
    }

    /// Send an already-encoded payload, taking ownership of the buffer.  This and
    /// [`Rank::send_typed`] are the only points where outgoing messages are charged and
    /// counted; [`Rank::send_slice`] and the [`crate::exchange`] engine funnel through
    /// them.
    pub(crate) fn send_packed(&mut self, to: usize, tag: u64, payload: Vec<u8>) {
        let bytes = payload.len();
        self.stats.record_send(bytes);
        self.time.comm_us += self.cost.message_cost_us(bytes);
        self.mailbox.send(to, tag, Payload::Bytes(payload));
    }

    /// Send a typed buffer without encoding it — the POD fast path of the shared-memory
    /// backend.  Charged and counted exactly as if the buffer had been encoded
    /// (`values.len() * T::SIZE` bytes), so modeled time and statistics are independent
    /// of how the payload physically travels.
    pub(crate) fn send_typed<T: Element>(&mut self, to: usize, tag: u64, values: Vec<T>) {
        debug_assert!(
            self.backend == ExchangeBackend::SharedMem && T::is_pod_le(),
            "typed transport is the SharedMem POD fast path only"
        );
        let bytes = values.len() * T::SIZE;
        self.stats.record_send(bytes);
        self.time.comm_us += self.cost.message_cost_us(bytes);
        self.mailbox
            .send(to, tag, Payload::Typed(TypedPayload::new(values)));
    }

    /// Receive a vector of elements from rank `from` with tag `tag` (blocking, selective).
    ///
    /// The receiver is charged one message (latency + bytes) of modeled communication time.
    pub fn recv_vec<T: Element>(&mut self, from: usize, tag: u64) -> Vec<T> {
        let env = self.mailbox.recv(from, tag);
        self.stats.record_recv(env.payload.byte_len());
        self.time.comm_us += self.cost.message_cost_us(env.payload.byte_len());
        let payload = env.payload.into_bytes();
        let values = decode_vec(&payload);
        self.recycle_pack_buffer(payload);
        values
    }

    /// Receive a vector of elements with tag `tag` from any rank; returns `(from, values)`.
    pub fn recv_vec_any<T: Element>(&mut self, tag: u64) -> (usize, Vec<T>) {
        let (from, payload) = self.recv_payload_any(tag);
        let payload = payload.into_bytes();
        let values = decode_vec(&payload);
        self.recycle_pack_buffer(payload);
        (from, values)
    }

    /// Receive the raw payload of the next message carrying `tag`, charging stats and the
    /// cost model but leaving decoding to the caller.  The exchange engine uses this to
    /// decode byte payloads into a pooled scratch buffer (recycling the byte buffer
    /// afterwards) and to take typed fast-path payloads as they are, instead of
    /// materialising a fresh `Vec<T>` per message.
    pub(crate) fn recv_payload_any(&mut self, tag: u64) -> (usize, Payload) {
        let env = self.mailbox.recv_any(tag);
        self.stats.record_recv(env.payload.byte_len());
        self.time.comm_us += self.cost.message_cost_us(env.payload.byte_len());
        (env.from, env.payload)
    }

    /// Charge and count one outgoing message whose payload was delivered *directly*
    /// through a shared-memory window (no bytes physically travel).  Identical
    /// accounting to [`Rank::send_packed`] / [`Rank::send_typed`]: modeled time and
    /// statistics never depend on how a payload moves.
    pub(crate) fn charge_direct_send(&mut self, bytes: usize) {
        self.stats.record_send(bytes);
        self.time.comm_us += self.cost.message_cost_us(bytes);
    }

    /// Charge and count one incoming message of a direct exchange — the mirror of
    /// [`Rank::recv_payload_any`]'s accounting.  The byte count comes from the plan
    /// (direct exchanges require size-negotiated receives), so the charge is
    /// deterministic regardless of whether the data arrived by direct copy or as a
    /// fallback message.
    pub(crate) fn charge_direct_recv(&mut self, bytes: usize) {
        self.stats.record_recv(bytes);
        self.time.comm_us += self.cost.message_cost_us(bytes);
    }

    /// The shared-memory fabric, when this machine communicates through one.
    pub(crate) fn shared_fabric(&self) -> Option<Arc<SharedFabric>> {
        self.mailbox.shared_fabric()
    }

    /// See [`Mailbox::recv_tag_or_window_drained`].  Uncharged — the direct exchange
    /// charges its whole receive side deterministically from the plan.
    pub(crate) fn recv_tag_or_window_drained(&mut self, tag: u64) -> Option<Envelope> {
        self.mailbox.recv_tag_or_window_drained(tag)
    }

    /// Detach the decode-scratch free list for element type `T`, leaving an empty list
    /// behind.  The exchange engine holds the detached list across one execution so the
    /// per-message take/recycle is a plain `Vec` pop/push — the `TypeId` map is touched
    /// twice per *exchange*, not twice per *message*.  Must be handed back with
    /// [`Rank::reattach_decode_scratch`] before the execution returns.
    pub(crate) fn detach_decode_scratch<T: Element>(&mut self) -> Vec<Vec<T>> {
        self.scratch
            .get_mut(&TypeId::of::<T>())
            .map(|entry| {
                std::mem::take(
                    entry
                        .list
                        .downcast_mut::<Vec<Vec<T>>>()
                        .expect("decode-scratch free list holds the wrong type"),
                )
            })
            .unwrap_or_default()
    }

    /// Re-attach a free list detached with [`Rank::detach_decode_scratch`], capping the
    /// idle-buffer count.  Nothing else can have touched the map entry in between (the
    /// engine never nests executions), so the entry is simply replaced.
    ///
    /// This is also where the type map itself is bounded: re-attaching a type the map
    /// has no slot for when [`SCRATCH_MAX_TYPES`] types are already tracked evicts the
    /// least-recently-used type's free list first.
    pub(crate) fn reattach_decode_scratch<T: Element>(&mut self, mut list: Vec<Vec<T>>) {
        list.truncate(POOL_MAX_IDLE);
        self.scratch_clock += 1;
        let clock = self.scratch_clock;
        let key = TypeId::of::<T>();
        if !self.scratch.contains_key(&key) && self.scratch.len() >= SCRATCH_MAX_TYPES {
            if let Some(victim) = self
                .scratch
                .iter()
                .min_by_key(|(_, slot)| slot.last_use)
                .map(|(&k, _)| k)
            {
                self.scratch.remove(&victim);
            }
        }
        let entry = self.scratch.entry(key).or_insert_with(|| ScratchSlot {
            list: Box::new(Vec::<Vec<T>>::new()),
            last_use: clock,
        });
        entry.last_use = clock;
        *entry
            .list
            .downcast_mut::<Vec<Vec<T>>>()
            .expect("decode-scratch free list holds the wrong type") = list;
    }

    /// Number of distinct element types the decode-scratch pool currently tracks.
    /// Bounded by [`SCRATCH_MAX_TYPES`]; exposed for the pool regression tests.
    pub fn scratch_type_count(&self) -> usize {
        self.scratch.len()
    }

    /// Take a typed scratch buffer with room for `capacity` elements from a detached
    /// free list, allocating (and counting the miss) only when the list is empty.
    /// Zero-element requests (empty messages of dense plans) never touch the heap and
    /// bypass the pool and its counters, and selection is the same best-effort best-fit
    /// as [`Rank::take_pack_buffer`] — the most recently recycled buffer that already
    /// has the capacity is preferred, so mixed message sizes don't force `reserve`
    /// regrowth of a too-small buffer.
    pub(crate) fn take_decode_scratch<T: Element>(
        &mut self,
        list: &mut Vec<Vec<T>>,
        capacity: usize,
    ) -> Vec<T> {
        if capacity == 0 {
            return Vec::new();
        }
        if list.is_empty() {
            self.pool_stats.decode_allocations += 1;
            return Vec::with_capacity(capacity);
        }
        self.pool_stats.decode_reuses += 1;
        let idx = list
            .iter()
            .rposition(|b| b.capacity() >= capacity)
            .unwrap_or(list.len() - 1);
        let mut buf = list.swap_remove(idx);
        buf.reserve(capacity);
        buf
    }

    /// Return a spent scratch buffer to a detached free list.  The engine recycles every
    /// placement scratch whose ownership the placement closure did not take (via
    /// `Placed::into_vec`), which is what keeps steady-state receive paths
    /// allocation-free.
    pub(crate) fn recycle_decode_scratch<T: Element>(
        &mut self,
        list: &mut Vec<Vec<T>>,
        mut buf: Vec<T>,
    ) {
        if buf.capacity() == 0 {
            return;
        }
        buf.clear();
        if list.len() < POOL_MAX_IDLE {
            list.push(buf);
        }
    }

    /// Take a byte buffer of at least `capacity` spare bytes from the pack-buffer pool,
    /// allocating only when the free list is empty.  Zero-byte requests (empty messages
    /// of dense plans) never touch the heap, so they bypass the pool and its counters
    /// entirely — mirroring [`Rank::recycle_pack_buffer`], which drops capacity-0 buffers.
    ///
    /// Selection is best-effort best-fit: the most recently recycled buffer that already
    /// has `capacity` is preferred, so mixed message sizes (8-byte negotiation counts next
    /// to kilobyte data payloads) don't force `reserve` regrowth of a too-small buffer.
    /// When no pooled buffer is large enough, the newest one is grown — its capacity only
    /// ever increases, so a steady loop stops regrowing once every circulating buffer has
    /// reached the loop's maximum message size.  `reuses` therefore counts recycled
    /// *buffers*, not a promise that `reserve` never moved one during warm-up.
    pub(crate) fn take_pack_buffer(&mut self, capacity: usize) -> Vec<u8> {
        if capacity == 0 {
            return Vec::new();
        }
        if self.pool.is_empty() {
            self.pool_stats.allocations += 1;
            return Vec::with_capacity(capacity);
        }
        self.pool_stats.reuses += 1;
        let idx = self
            .pool
            .iter()
            .rposition(|b| b.capacity() >= capacity)
            .unwrap_or(self.pool.len() - 1);
        let mut buf = self.pool.swap_remove(idx);
        buf.clear();
        buf.reserve(capacity);
        buf
    }

    /// Return a spent buffer to the pack-buffer pool.  Consumed message payloads and the
    /// engine's self-delivery buffers come back through here, which is what keeps
    /// steady-state loops allocation-free: each iteration's receives replenish exactly
    /// what its sends drew.
    pub(crate) fn recycle_pack_buffer(&mut self, buf: Vec<u8>) {
        if self.pool.len() < POOL_MAX_IDLE && buf.capacity() > 0 {
            self.pool.push(buf);
        }
    }

    /// Counters of this rank's buffer pools: how many outgoing-message byte buffers
    /// (`allocations`/`reuses`) and incoming decode-scratch buffers
    /// (`decode_allocations`/`decode_reuses`) were allocated fresh versus served from a
    /// free list.  Neither allocation counter growing across a window is the
    /// machine-checkable statement "this loop's communication allocates nothing fresh, in
    /// either direction" (asserted by the pool smoke tests and reported by
    /// `exchange_microbench`).
    pub fn pool_stats(&self) -> PackPoolStats {
        self.pool_stats
    }

    /// Synchronise with every other rank.  Charged `sync_cost_us(P)` of communication time.
    ///
    /// Runs a dissemination barrier: `ceil(log2 P)` rounds of empty messages on the
    /// rank's own mailbox, each round one hop further around the ring, after which every
    /// rank has transitively heard from every other.  The empty messages ride the
    /// mailbox directly — below the charged send/receive paths — because their entire
    /// modeled cost is already the single `sync_cost_us(P)` charge (which is itself
    /// `sync_latency_us · ceil(log2 P)`, the same log-depth shape).  Each barrier
    /// episode gets its own tag, so ranks running ahead into the next barrier can never
    /// confuse rounds.
    pub fn barrier(&mut self) {
        self.stats.record_collective();
        self.time.comm_us += self.cost.sync_cost_us(self.nprocs());
        let n = self.nprocs();
        let tag = crate::barrier::BARRIER_TAG_BASE + self.barrier_seq;
        self.ledger_record("barrier", self.barrier_seq, "");
        self.barrier_seq += 1;
        // Cross-check the ledger *before* the barrier's messages move: a divergence
        // that would wedge the dissemination rounds (or a later collective) is
        // diagnosed here instead of deadlocking.
        if let Some(ledger) = &self.ledger {
            ledger
                .hub
                .check_at_barrier(self.mailbox.rank(), &ledger.trace);
        }
        if n == 1 {
            return;
        }
        let me = self.rank();
        let sched = Dissemination::new(n);
        for k in 0..sched.rounds() {
            self.mailbox
                .send(sched.send_peer(me, k), tag, Payload::Bytes(Vec::new()));
            let env = self.mailbox.recv(sched.recv_peer(me, k), tag);
            debug_assert!(env.payload.is_empty(), "barrier messages carry no payload");
        }
    }

    /// Report `units` of local computational work (for example, one unit per inner-loop
    /// interaction).  This is what makes load imbalance visible in the modeled timings.
    pub fn charge_compute(&mut self, units: f64) {
        self.stats.record_compute(units);
        self.time.compute_us += units * self.cost.compute_unit_us;
    }

    /// Snapshot of this rank's modeled time so far.
    pub fn modeled(&self) -> TimeSnapshot {
        self.time
    }

    /// Snapshot of this rank's raw communication/computation counters.
    pub fn stats(&self) -> RankStats {
        self.stats
    }

    /// Record a synchronising collective without going through the shared barrier.
    /// Used by collectives that synchronise implicitly through their message pattern.
    pub(crate) fn charge_collective(&mut self) {
        self.stats.record_collective();
        self.time.comm_us += self.cost.sync_cost_us(self.nprocs());
    }

    /// The message tag for the next exchange-engine execution.  Exchanges are collective
    /// and every rank *starts* them in the same order, so the per-rank sequence number is
    /// a machine-wide identifier for one exchange episode (its *epoch*) — including
    /// split-phase exchanges whose finishes interleave with later starts.
    pub(crate) fn next_exchange_tag(&mut self) -> u64 {
        let tag = crate::exchange::EXCHANGE_TAG_BASE + self.exchange_seq;
        self.exchange_seq += 1;
        tag
    }

    /// Number of exchange-engine epochs this rank has started (blocking executions and
    /// split-phase starts alike).  Reported in the engine's mismatch diagnostics so a
    /// crossed or non-collective exchange sequence names both the epoch being drained
    /// and how far this rank has run ahead.
    pub fn exchange_epochs_started(&self) -> u64 {
        self.exchange_seq
    }

    /// Record one started collective in the ledger (no-op unless the machine was
    /// configured with [`crate::topology::MachineConfig::with_ledger`]).  See
    /// [`crate::ledger`] for the op/epoch/elem conventions.
    pub(crate) fn ledger_record(&mut self, op: &'static str, epoch: u64, elem: &'static str) {
        if let Some(ledger) = self.ledger.as_mut() {
            ledger.trace.push(LedgerEntry { op, epoch, elem });
        }
    }

    /// This rank's collective-ledger trace so far, or `None` when the ledger is off.
    pub fn ledger_trace(&self) -> Option<&[LedgerEntry]> {
        self.ledger.as_ref().map(|l| l.trace.as_slice())
    }
}

/// Result of running an SPMD program: one entry per rank.
#[derive(Debug)]
pub struct RunOutcome<R> {
    /// The value returned by each rank's closure, indexed by rank.
    pub results: Vec<R>,
    /// Each rank's raw counters at the end of the run, indexed by rank.
    pub stats: Vec<RankStats>,
    /// Each rank's modeled time at the end of the run, indexed by rank.
    pub times: Vec<TimeSnapshot>,
    /// Each rank's pack-buffer pool counters at the end of the run, indexed by rank.
    pub pool: Vec<PackPoolStats>,
}

impl<R> RunOutcome<R> {
    /// Aggregate machine-wide statistics.
    pub fn machine_stats(&self) -> MachineStats {
        MachineStats::from_ranks(&self.stats)
    }

    /// Pack-buffer pool counters summed over all ranks.
    pub fn pool_totals(&self) -> PackPoolStats {
        self.pool
            .iter()
            .fold(PackPoolStats::default(), |acc, p| acc.merged(p))
    }

    /// The paper reports "execution time" as the maximum over processors of the per-rank
    /// net time; this helper returns that maximum of the modeled totals, in microseconds.
    pub fn max_total_us(&self) -> f64 {
        self.times.iter().map(|t| t.total_us()).fold(0.0, f64::max)
    }

    /// Average modeled computation time over ranks, in microseconds (the paper averages
    /// computation and communication time over processors).
    pub fn avg_compute_us(&self) -> f64 {
        if self.times.is_empty() {
            0.0
        } else {
            self.times.iter().map(|t| t.compute_us).sum::<f64>() / self.times.len() as f64
        }
    }

    /// Average modeled communication time over ranks, in microseconds.
    pub fn avg_comm_us(&self) -> f64 {
        if self.times.is_empty() {
            0.0
        } else {
            self.times.iter().map(|t| t.comm_us).sum::<f64>() / self.times.len() as f64
        }
    }

    /// The load-balance index defined in Section 4.1 of the paper:
    /// `LB = max_i(compute_i) * n / sum_i(compute_i)`.  1.0 is perfect balance.
    pub fn load_balance_index(&self) -> f64 {
        let max = self
            .times
            .iter()
            .map(|t| t.compute_us)
            .fold(0.0f64, f64::max);
        let sum: f64 = self.times.iter().map(|t| t.compute_us).sum();
        if sum == 0.0 {
            1.0
        } else {
            max * self.times.len() as f64 / sum
        }
    }
}

/// A reusable machine description.  [`Machine::run`] spawns the ranks, runs the SPMD
/// closure on each, and collects results, counters and modeled times.
pub struct Machine {
    config: MachineConfig,
}

impl Machine {
    /// Create a machine from a configuration.
    pub fn new(config: MachineConfig) -> Self {
        assert!(config.nprocs > 0, "machine needs at least one rank");
        Self { config }
    }

    /// Number of ranks this machine simulates.
    pub fn nprocs(&self) -> usize {
        self.config.nprocs
    }

    /// Run `f` on every rank and wait for all of them to finish.
    ///
    /// # Panics
    /// If any rank's closure panics, the panic is propagated (tagged with the rank id).
    pub fn run<R, F>(&self, f: F) -> RunOutcome<R>
    where
        R: Send + 'static,
        F: Fn(&mut Rank) -> R + Send + Sync + 'static,
    {
        let nprocs = self.config.nprocs;
        let mailboxes = match self.config.backend {
            ExchangeBackend::Modeled => Mailbox::create_all(nprocs),
            ExchangeBackend::SharedMem => Mailbox::create_shared(nprocs),
        };
        let f = Arc::new(f);
        let hub = self.config.ledger.then(|| LedgerHub::new(nprocs));

        let mut handles = Vec::with_capacity(nprocs);
        for mailbox in mailboxes {
            let f = Arc::clone(&f);
            let cost = self.config.cost;
            let backend = self.config.backend;
            let hub = hub.clone();
            let builder = thread::Builder::new()
                .name(format!("mpsim-rank-{}", mailbox.rank()))
                .stack_size(self.config.stack_size);
            let handle = builder
                .spawn(move || {
                    let mut rank = Rank {
                        mailbox,
                        cost,
                        backend,
                        stats: RankStats::default(),
                        time: TimeSnapshot::default(),
                        exchange_seq: 0,
                        barrier_seq: 0,
                        pool: Vec::new(),
                        scratch: HashMap::new(),
                        scratch_clock: 0,
                        pool_stats: PackPoolStats::default(),
                        ledger: hub.map(|hub| {
                            Box::new(LedgerRank {
                                hub,
                                trace: Vec::new(),
                            })
                        }),
                    };
                    let result = f(&mut rank);
                    // Publish the final trace for the shutdown cross-check; joining
                    // below makes every deposit visible to the main thread.
                    if let Some(ledger) = rank.ledger.take() {
                        ledger.hub.deposit(rank.mailbox.rank(), &ledger.trace);
                    }
                    (result, rank.stats, rank.time, rank.pool_stats)
                })
                .expect("failed to spawn rank thread");
            handles.push(handle);
        }

        let mut results = Vec::with_capacity(nprocs);
        let mut stats = Vec::with_capacity(nprocs);
        let mut times = Vec::with_capacity(nprocs);
        let mut pool = Vec::with_capacity(nprocs);
        for (rank, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok((r, s, t, ps)) => {
                    results.push(r);
                    stats.push(s);
                    times.push(t);
                    pool.push(ps);
                }
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "<non-string panic payload>".to_string());
                    panic!("rank {rank} panicked: {msg}");
                }
            }
        }
        // Shutdown cross-check: after a clean join, every rank's final trace must
        // still agree — this catches divergences after the last barrier.
        if let Some(hub) = hub {
            if let Some(report) = hub.divergence() {
                panic!("{report}");
            }
        }
        RunOutcome {
            results,
            stats,
            times,
            pool,
        }
    }
}

/// Convenience wrapper: build a [`Machine`] from `config` and run `f` on every rank.
pub fn run<R, F>(config: MachineConfig, f: F) -> RunOutcome<R>
where
    R: Send + 'static,
    F: Fn(&mut Rank) -> R + Send + Sync + 'static,
{
    Machine::new(config).run(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    #[test]
    fn ranks_see_their_ids_and_size() {
        let out = run(MachineConfig::new(5), |rank| (rank.rank(), rank.nprocs()));
        assert_eq!(out.results.len(), 5);
        for (i, (r, n)) in out.results.iter().enumerate() {
            assert_eq!(*r, i);
            assert_eq!(*n, 5);
        }
    }

    #[test]
    fn ring_exchange_delivers_typed_payloads() {
        let out = run(MachineConfig::new(4), |rank| {
            let me = rank.rank();
            let next = (me + 1) % rank.nprocs();
            let prev = (me + rank.nprocs() - 1) % rank.nprocs();
            rank.send_slice(next, 1, &[me as f64, me as f64 * 10.0]);
            let got: Vec<f64> = rank.recv_vec(prev, 1);
            got
        });
        for (me, got) in out.results.iter().enumerate() {
            let prev = (me + 3) % 4;
            assert_eq!(got, &vec![prev as f64, prev as f64 * 10.0]);
        }
    }

    #[test]
    fn modeled_time_charges_both_ends() {
        let cfg = MachineConfig::new(2).with_cost(CostModel::uniform(10.0, 1.0, 0.0));
        let out = run(cfg, |rank| {
            if rank.rank() == 0 {
                rank.send_slice(1, 0, &[1.0f64; 4]); // 32 bytes => 10 + 32 = 42
            } else {
                let _: Vec<f64> = rank.recv_vec(0, 0);
            }
            rank.modeled()
        });
        assert!((out.results[0].comm_us - 42.0).abs() < 1e-9);
        assert!((out.results[1].comm_us - 42.0).abs() < 1e-9);
        assert_eq!(out.stats[0].msgs_sent, 1);
        assert_eq!(out.stats[0].bytes_sent, 32);
        assert_eq!(out.stats[1].msgs_received, 1);
        assert_eq!(out.stats[1].bytes_received, 32);
    }

    #[test]
    fn compute_charges_and_load_balance_index() {
        let cfg = MachineConfig::new(4).with_cost(CostModel::compute_only(2.0));
        let out = run(cfg, |rank| {
            // Rank i does (i+1)*100 units of work: imbalanced by construction.
            rank.charge_compute(100.0 * (rank.rank() + 1) as f64);
        });
        let lb = out.load_balance_index();
        // max = 400, mean = 250 => LB = 1.6
        assert!((lb - 1.6).abs() < 1e-9);
        assert!((out.max_total_us() - 800.0).abs() < 1e-9);
        assert!((out.avg_compute_us() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn barrier_is_charged_and_synchronises() {
        let out = run(MachineConfig::new(8), |rank| {
            for _ in 0..3 {
                rank.barrier();
            }
            rank.stats().collectives
        });
        assert!(out.results.iter().all(|&c| c == 3));
        assert!(out.times.iter().all(|t| t.comm_us > 0.0));
    }

    #[test]
    #[should_panic(expected = "rank 2 panicked")]
    fn rank_panic_is_propagated_with_rank_id() {
        let _ = run(MachineConfig::new(4), |rank| {
            if rank.rank() == 2 {
                panic!("boom");
            }
        });
    }

    /// Regression for the decode-scratch type map: cycling more distinct element types
    /// than [`SCRATCH_MAX_TYPES`] through the pool must evict least-recently-used free
    /// lists instead of growing the map without bound.
    #[test]
    fn scratch_pool_type_map_is_bounded_with_lru_eviction() {
        let out = run(MachineConfig::new(1), |rank| {
            fn touch<T: Element>(rank: &mut Rank) {
                let mut list = rank.detach_decode_scratch::<T>();
                let buf = rank.take_decode_scratch(&mut list, 4);
                rank.recycle_decode_scratch(&mut list, buf);
                rank.reattach_decode_scratch(list);
            }
            macro_rules! touch_arrays {
                ($($n:literal),+ $(,)?) => { $( touch::<[u8; $n]>(rank); )+ };
            }
            // 40 distinct element types, in order — more than the map may keep.
            touch_arrays!(
                1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23,
                24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 34, 35, 36, 37, 38, 39, 40
            );
            let count = rank.scratch_type_count();
            // The oldest types were evicted (their free lists are gone), the newest kept.
            let oldest = rank.detach_decode_scratch::<[u8; 1]>();
            let newest = rank.detach_decode_scratch::<[u8; 40]>();
            (count, oldest.len(), newest.len())
        });
        let (count, oldest_len, newest_len) = out.results[0];
        assert_eq!(
            count, SCRATCH_MAX_TYPES,
            "map must sit exactly at the bound"
        );
        assert_eq!(oldest_len, 0, "LRU type must have been evicted");
        assert_eq!(newest_len, 1, "most recent type keeps its pooled buffer");
    }

    #[test]
    fn single_rank_machine_works() {
        let out = run(MachineConfig::new(1), |rank| {
            rank.charge_compute(5.0);
            rank.barrier();
            rank.rank()
        });
        assert_eq!(out.results, vec![0]);
        assert_eq!(out.load_balance_index(), 1.0);
    }
}
