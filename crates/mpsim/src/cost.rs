//! Modeled-time accounting.
//!
//! The paper reports execution, computation and communication times measured on an Intel
//! iPSC/860.  We cannot (and are not expected to) reproduce absolute numbers; instead every
//! rank accumulates *modeled* time from a simple linear cost model:
//!
//! * each message costs `message_latency_us + bytes * per_byte_us` on both the sender and
//!   the receiver (start-up cost dominates small messages, bandwidth dominates large ones —
//!   exactly the trade-off that makes communication vectorization and software caching
//!   worthwhile);
//! * each barrier or reduction additionally costs `sync_latency_us * ceil(log2(P))`.
//!   This is no longer an aspirational "modelling a tree implementation" fudge: the
//!   barrier and every reduction really do run `ceil(log2 P)` dissemination rounds
//!   (see [`crate::topology`]), so the charged depth matches the messages on the wire
//!   (the reductions' per-message latency/byte costs are charged on top, per message);
//! * computation is charged explicitly by application code in abstract work units
//!   (one unit ≈ one inner-loop interaction), converted via `compute_unit_us`.
//!
//! The default parameters are in the right ballpark for an iPSC/860-class machine
//! (≈ 70 µs message start-up, ≈ 2.8 MB/s effective bandwidth, a few µs per irregular
//! inner-loop iteration), which is what gives the reproduced tables the same *shape* as the
//! paper's: the absolute scale is arbitrary.

/// Linear communication/computation cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Start-up cost charged per point-to-point message (microseconds).
    pub message_latency_us: f64,
    /// Transfer cost per payload byte (microseconds per byte).
    pub per_byte_us: f64,
    /// Cost of one application-level work unit (microseconds).
    pub compute_unit_us: f64,
    /// Per-stage cost of a synchronising collective (barrier, reduction), multiplied by
    /// `ceil(log2(P))` (microseconds).
    pub sync_latency_us: f64,
}

impl CostModel {
    /// Parameters approximating the Intel iPSC/860 used in the paper.
    pub fn ipsc860() -> Self {
        Self {
            message_latency_us: 70.0,
            per_byte_us: 0.36,
            compute_unit_us: 1.1,
            sync_latency_us: 40.0,
        }
    }

    /// A uniform model useful for tests: explicit latency, per-byte and per-unit costs,
    /// zero synchronisation cost.
    pub fn uniform(latency_us: f64, per_byte_us: f64, compute_unit_us: f64) -> Self {
        Self {
            message_latency_us: latency_us,
            per_byte_us,
            compute_unit_us,
            sync_latency_us: 0.0,
        }
    }

    /// A model in which communication is free; only compute accumulates.  Handy for
    /// isolating load-balance effects in tests.
    pub fn compute_only(compute_unit_us: f64) -> Self {
        Self {
            message_latency_us: 0.0,
            per_byte_us: 0.0,
            compute_unit_us,
            sync_latency_us: 0.0,
        }
    }

    /// Modeled cost of transferring one message with a payload of `bytes` bytes.
    pub fn message_cost_us(&self, bytes: usize) -> f64 {
        self.message_latency_us + bytes as f64 * self.per_byte_us
    }

    /// Modeled cost of one synchronising collective across `nprocs` ranks.
    pub fn sync_cost_us(&self, nprocs: usize) -> f64 {
        if nprocs <= 1 {
            0.0
        } else {
            self.sync_latency_us * (nprocs as f64).log2().ceil()
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::ipsc860()
    }
}

/// A snapshot of one rank's accumulated modeled time, split into communication and
/// computation components.  Subtract two snapshots to attribute time to a program phase.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimeSnapshot {
    /// Modeled communication time in microseconds.
    pub comm_us: f64,
    /// Modeled computation time in microseconds.
    pub compute_us: f64,
}

impl TimeSnapshot {
    /// Total modeled time (communication + computation) in microseconds.
    pub fn total_us(&self) -> f64 {
        self.comm_us + self.compute_us
    }

    /// Total modeled time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_us() / 1e6
    }

    /// Element-wise difference `self - earlier`; used to bill a phase.
    pub fn since(&self, earlier: &TimeSnapshot) -> TimeSnapshot {
        TimeSnapshot {
            comm_us: self.comm_us - earlier.comm_us,
            compute_us: self.compute_us - earlier.compute_us,
        }
    }
}

impl std::ops::Add for TimeSnapshot {
    type Output = TimeSnapshot;
    fn add(self, rhs: TimeSnapshot) -> TimeSnapshot {
        TimeSnapshot {
            comm_us: self.comm_us + rhs.comm_us,
            compute_us: self.compute_us + rhs.compute_us,
        }
    }
}

impl std::ops::AddAssign for TimeSnapshot {
    fn add_assign(&mut self, rhs: TimeSnapshot) {
        self.comm_us += rhs.comm_us;
        self.compute_us += rhs.compute_us;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_cost_is_affine_in_bytes() {
        let m = CostModel::uniform(10.0, 2.0, 1.0);
        assert_eq!(m.message_cost_us(0), 10.0);
        assert_eq!(m.message_cost_us(5), 20.0);
        assert_eq!(m.message_cost_us(100), 210.0);
    }

    #[test]
    fn sync_cost_scales_logarithmically() {
        let m = CostModel {
            sync_latency_us: 10.0,
            ..CostModel::uniform(0.0, 0.0, 0.0)
        };
        assert_eq!(m.sync_cost_us(1), 0.0);
        assert_eq!(m.sync_cost_us(2), 10.0);
        assert_eq!(m.sync_cost_us(8), 30.0);
        assert_eq!(m.sync_cost_us(128), 70.0);
        // Non power of two rounds up.
        assert_eq!(m.sync_cost_us(5), 30.0);
    }

    #[test]
    fn snapshot_arithmetic() {
        let a = TimeSnapshot {
            comm_us: 5.0,
            compute_us: 7.0,
        };
        let b = TimeSnapshot {
            comm_us: 2.0,
            compute_us: 3.0,
        };
        let d = a.since(&b);
        assert_eq!(d.comm_us, 3.0);
        assert_eq!(d.compute_us, 4.0);
        assert_eq!((a + b).total_us(), 17.0);
        let mut c = a;
        c += b;
        assert_eq!(c.total_us(), 17.0);
    }

    #[test]
    fn ipsc860_defaults_are_sane() {
        let m = CostModel::ipsc860();
        // Latency should dominate tiny messages, bandwidth large ones.
        assert!(m.message_cost_us(8) < 2.0 * m.message_latency_us);
        assert!(m.message_cost_us(1_000_000) > 100.0 * m.message_latency_us);
    }
}
