//! The unified all-to-allv exchange engine.
//!
//! Every data-movement pattern in the CHAOS runtime — schedule-driven gather/scatter,
//! light-weight append, remapping, translation-table dereference, and the dense
//! collectives built on top of point-to-point messages — is some flavour of a
//! *personalised all-to-all*: each rank packs a (possibly empty) buffer per peer, ships
//! only the non-empty ones, and places whatever arrives according to plan-specific rules.
//! Historically each call site hand-rolled its own pack → send → recv → unpack loop; this
//! module is the single implementation they all share.
//!
//! The engine separates the *plan* from the *transfer*:
//!
//! * [`ExchangePlan`] — who this rank sends to (and how many elements each peer gets) and
//!   who it will hear from (and, when known, how many elements each message carries).
//!   Plans are cheap, reusable values; schedule types build them once and execute them
//!   many times.
//! * [`alltoallv`] — executes a plan: packs nothing itself (callers pass per-destination
//!   buffers), sends only the messages the plan calls for, receives from any source, and
//!   hands each incoming payload to a caller-supplied placement closure as a borrowed
//!   [`Placed`] view over pooled scratch.  The local (self → self) portion is delivered
//!   through the same placement path without touching the network or the communication
//!   cost model.
//!
//! Three entry points execute a plan, differing only in where the outgoing bytes come
//! from:
//!
//! * [`alltoallv`] — callers pass one pre-built buffer per destination (borrowed; the
//!   engine never copies them into intermediate `Vec<T>`s).
//! * [`alltoallv_replicated`] — every planned destination receives the *same* borrowed
//!   payload (all-gather, broadcast, reductions); no per-peer buffers exist at all.
//! * [`alltoallv_with`] — the caller packs each destination's elements *directly into the
//!   outgoing message buffer* through a [`PackBuf`], so steady-state executor loops build
//!   no per-destination `Vec<T>`s either.  This is the hot-path form used by the CHAOS
//!   gather/scatter/append/remap primitives.
//!
//! ## The buffer pools: zero allocations in both directions
//!
//! Outgoing messages are encoded into byte buffers drawn from the calling rank's
//! pack-buffer pool ([`Rank::pool_stats`]), and every consumed incoming message returns
//! its payload buffer to the pool.  On the receive side, incoming payloads are decoded
//! (through the bulk codec hooks of [`Element`]) into *typed* scratch buffers drawn from
//! a per-rank, per-type decode-scratch pool, and handed to the placement closure as a
//! borrowed [`Placed`] view.  A closure that only reads the values — the executor's
//! gather/scatter permutation placement, remapping, count negotiations — returns its
//! scratch to the pool automatically; the few callers that genuinely keep the payload
//! (the executor's append, the dense collectives that hand buffers to the application)
//! take ownership with [`Placed::into_vec`], which removes that one buffer from
//! circulation.
//!
//! A steady-state exchange loop therefore reaches a fixed point after one warm-up
//! iteration in *both* directions: each iteration's receives replenish exactly the byte
//! buffers its sends draw, each placement recycles the scratch it borrowed, and both
//! `allocations` counters stop moving.  The `exchange_microbench` harness in
//! `crates/bench` reports these counters and the pool smoke tests assert the
//! zero-allocation steady state.
//!
//! On the shared-memory backend ([`crate::ExchangeBackend::SharedMem`]) the byte codec
//! drops out entirely for POD element types ([`Element::is_pod_le`]): messages are packed
//! verbatim into typed buffers drawn from the decode-scratch pool, cross the fabric by
//! pointer move, and are placed as-is on the receiving rank — which recycles them into
//! *its* pool, so the steady-state fixed point holds there too.  Modeled time, stats and
//! results are identical across backends; only host wall-clock differs.
//!
//! Communication cost is charged in exactly one place — the engine's sends and receives —
//! and a per-element pack/unpack compute cost is charged uniformly here rather than ad hoc
//! at every call site.  Each execution returns an [`ExchangeStats`] with the message and
//! byte counts it generated, so callers (and regression tests) can assert that no empty
//! messages are sent and nothing is transferred twice.
//!
//! ## Matching without per-peer tags
//!
//! Receiving from any source means messages from different *exchanges* must never be
//! confused, even though ranks run ahead of one another (a rank with nothing to do in
//! exchange *k* may already be sending for exchange *k+1*).  The engine therefore tags
//! every message with a per-rank exchange sequence number — the exchange's **epoch**.
//! Exchanges are **collective**: every rank of the machine must *start* the same sequence
//! of engine executions, which makes the epoch a machine-wide identifier for one exchange
//! episode.
//!
//! ## Split-phase execution
//!
//! Every blocking entry point has a split-phase sibling: [`start_alltoallv`] /
//! [`start_alltoallv_with`] post the plan's sends immediately (and stage the local
//! portion) and return an [`ExchangeHandle`]; [`ExchangeHandle::finish`] drains the
//! receives and runs the placement closure.  Between the two calls the caller is free to
//! compute — the natural overlap of a time-stepped executor (post the ghost exchange,
//! run the force loop that needs no ghosts, then finish) — and may even start *and
//! complete* further exchanges: epoch tagging keeps any number of in-flight exchanges
//! from crossing, because each episode's messages carry its own epoch and receives match
//! on it selectively.  What stays collective is the **start order**: every rank must
//! start the same exchanges in the same order (finishes may interleave freely).  A
//! handle dropped without `finish` panics — its receives would otherwise sit in the
//! mailbox forever and surface as confusing stalls several exchanges later.
//!
//! ## Fused multi-array exchanges
//!
//! When several same-length arrays travel through the *same* plan in the same direction
//! (CHARMM gathers `x`, `y`, `z` through one schedule every step), executing the plan
//! once per array multiplies message count and latency by the array count.
//! [`ExchangePlan::fused`] scales a plan's element counts by a lane count and
//! [`alltoallv_multi`] executes the scaled plan with each lane packed as one contiguous
//! block (`x0 x1 … y0 y1 … z0 z1 …`), so N arrays move in **one** message per
//! processor pair — same bytes, 1/N of the messages.  Blocked lanes keep both pack and
//! place a straight per-lane sweep (autovectorizable, and a bulk copy when the lane is
//! already contiguous at the caller) instead of a strided element-wise shuffle.  The
//! executor's `gather_multi` / `scatter_add_multi` wrappers in `chaos` pack and place
//! the lane blocks.

use crate::machine::Rank;
use crate::message::{Element, Payload};
use crate::shared::{ExchangeBackend, SharedFabric};

/// Modeled compute cost (work units per element) of packing an element into an outgoing
/// message buffer or placing a received element — the `0.02` the executor primitives
/// historically charged.
pub const PACK_UNPACK_COST_UNITS: f64 = 0.02;

/// Base of the exchange-engine tag window: `tag = EXCHANGE_TAG_BASE + epoch`.  The single
/// source of truth shared by [`Rank::next_exchange_tag`] and [`epoch_of_tag`], so the
/// epoch numbers in mismatch diagnostics can never drift from the tags on the wire.
pub(crate) const EXCHANGE_TAG_BASE: u64 = crate::collectives::RESERVED_TAG_BASE + (1 << 20);

/// What one exchange expects to receive from one peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvSpec {
    /// No message will arrive from this peer.
    None,
    /// A message will arrive; its size is not known in advance (dense exchanges and
    /// rooted collectives where only the sender knows the length).
    Any,
    /// A message of exactly this many elements will arrive (schedule-driven exchanges,
    /// where both endpoints of every transfer are precomputed).
    Exact(usize),
}

/// A reusable description of one personalised all-to-all transfer from this rank's
/// point of view: per-destination send sizes and per-source receive expectations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangePlan {
    my_rank: usize,
    /// `sends[p]`: `Some(n)` means "send a message of exactly `n` elements to `p`"
    /// (`n == 0` is a real, empty message — dense collectives rely on it); `None` means
    /// no message.  `sends[my_rank]` describes the local portion, delivered through the
    /// placement closure without any communication.
    sends: Vec<Option<usize>>,
    /// `recvs[p]`: what to expect from source `p`.  `recvs[my_rank]` is ignored.
    recvs: Vec<RecvSpec>,
}

impl ExchangePlan {
    /// A plan from explicit per-peer send messages and receive expectations.  This is the
    /// fully general constructor used by rooted collectives; most callers want
    /// [`ExchangePlan::sparse`] or [`ExchangePlan::dense`].
    pub fn from_parts(my_rank: usize, sends: Vec<Option<usize>>, recvs: Vec<RecvSpec>) -> Self {
        assert_eq!(
            sends.len(),
            recvs.len(),
            "send and receive sides of a plan must span the same machine"
        );
        assert!(my_rank < sends.len(), "plan owner outside the machine");
        ExchangePlan {
            my_rank,
            sends,
            recvs,
        }
    }

    /// A sparse plan: only non-empty transfers become messages.  `send_counts[p]` elements
    /// go to `p` (zero → no message), `recv_counts[p]` elements are expected from `p`
    /// (zero → no message).  The self entry of `send_counts` is delivered locally.
    pub fn sparse(my_rank: usize, send_counts: Vec<usize>, recv_counts: Vec<usize>) -> Self {
        assert_eq!(send_counts.len(), recv_counts.len());
        let recvs = recv_counts
            .iter()
            .enumerate()
            .map(|(p, &c)| {
                if p == my_rank || c == 0 {
                    RecvSpec::None
                } else {
                    RecvSpec::Exact(c)
                }
            })
            .collect();
        let sends = send_counts
            .into_iter()
            .map(|c| if c == 0 { None } else { Some(c) })
            .collect();
        Self::from_parts(my_rank, sends, recvs)
    }

    /// A dense plan: every peer gets a message (empty ones included) and a message of
    /// unknown size is expected from every peer.  This is the message pattern of the
    /// classic `all_to_all` / `all_gather` collectives, where no prior size agreement
    /// exists between ranks.
    pub fn dense(my_rank: usize, send_counts: Vec<usize>) -> Self {
        let n = send_counts.len();
        let recvs = (0..n)
            .map(|p| {
                if p == my_rank {
                    RecvSpec::None
                } else {
                    RecvSpec::Any
                }
            })
            .collect();
        let sends = send_counts.into_iter().map(Some).collect();
        Self::from_parts(my_rank, sends, recvs)
    }

    /// Build a sparse plan when only the send side is known: a *sparse-neighborhood*
    /// count negotiation tells every rank what it will receive, exactly the
    /// size-negotiation round the light-weight schedule of §3.2.1 is built from.
    /// Collective.
    ///
    /// The negotiation is Bruck-style store-and-forward routing over the log-depth ring:
    /// each nonzero `(destination, source, count)` triple starts at its source and, in
    /// round `k`, hops `2^k` ranks forward whenever bit `k` of its remaining offset is
    /// set — so after `ceil(log2 P)` rounds every triple sits at its destination.  Every
    /// rank sends exactly one (possibly empty) message per round: `ceil(log2 P)`
    /// messages per rank regardless of fan-out, and *zero-count pairs never enter the
    /// stream at all*.  A 26-neighbor halo at P = 1024 costs 10 routing messages per
    /// rank, not 1023 count messages — and the dense O(P) count exchange is gone.
    ///
    /// Takes the send counts by value — they become the plan's send side without a copy.
    /// The resulting plan is identical to one negotiated by a dense count exchange.
    pub fn negotiate(rank: &mut Rank, send_counts: Vec<usize>) -> Self {
        let n = rank.nprocs();
        let me = rank.rank();
        assert_eq!(send_counts.len(), n, "one send count per rank required");
        assert!(
            n <= u32::MAX as usize,
            "rank ids must fit the routing header"
        );
        // Stream of (dest, src, count) triples this rank currently holds.  Self-sends
        // never need negotiating (the plan's receive side ignores them).
        let mut held: Vec<(u32, u32, u64)> = Vec::new();
        for (p, &c) in send_counts.iter().enumerate() {
            if p != me && c > 0 {
                held.push((p as u32, me as u32, c as u64));
            }
        }
        let mut fwd: Vec<(u32, u32, u64)> = Vec::new();
        let mut incoming: Vec<(u32, u32, u64)> = Vec::new();
        for k in 0..crate::topology::tree_rounds(n) {
            let d = 1usize << k;
            let to = (me + d) % n;
            let from = (me + n - d) % n;
            // Split the held stream: triples whose remaining offset has bit k set hop
            // forward this round; the rest stay.  A triple received this round has bits
            // 0..=k of its offset clear, so it can never need this round's hop —
            // merging after the split is safe.
            fwd.clear();
            held.retain(|&triple| {
                let offset = (triple.0 as usize + n - me) % n;
                if offset & d != 0 {
                    fwd.push(triple);
                    false
                } else {
                    true
                }
            });
            let mut sends: Vec<Option<usize>> = vec![None; n];
            sends[to] = Some(fwd.len());
            let mut recvs = vec![RecvSpec::None; n];
            recvs[from] = RecvSpec::Any;
            let plan = ExchangePlan::from_parts(me, sends, recvs);
            incoming.clear();
            alltoallv_with(
                rank,
                &plan,
                |_p, buf: &mut PackBuf<'_, (u32, u32, u64)>| buf.extend_from_slice(&fwd),
                |_src, v: Placed<'_, (u32, u32, u64)>| incoming.extend_from_slice(&v),
            );
            held.extend_from_slice(&incoming);
        }
        let mut recv_counts = vec![0usize; n];
        for &(dest, src, count) in &held {
            debug_assert_eq!(dest as usize, me, "negotiation routing incomplete");
            recv_counts[src as usize] = count as usize;
        }
        ExchangePlan::sparse(me, send_counts, recv_counts)
    }

    /// Number of ranks the plan spans.
    pub fn nprocs(&self) -> usize {
        self.sends.len()
    }

    /// The rank this plan belongs to.
    pub fn my_rank(&self) -> usize {
        self.my_rank
    }

    /// Number of messages executing this plan will put on the network (local delivery is
    /// not a message).
    pub fn send_message_count(&self) -> usize {
        self.sends
            .iter()
            .enumerate()
            .filter(|&(p, s)| p != self.my_rank && s.is_some())
            .count()
    }

    /// Number of messages this rank will wait for when executing the plan.
    pub fn recv_message_count(&self) -> usize {
        self.recvs
            .iter()
            .enumerate()
            .filter(|&(p, r)| p != self.my_rank && *r != RecvSpec::None)
            .count()
    }

    /// Elements expected from source `p` (zero when no message or size unknown).
    pub fn recv_count(&self, p: usize) -> usize {
        match self.recvs[p] {
            RecvSpec::Exact(n) => n,
            _ => 0,
        }
    }

    /// Per-source expected element counts (zero where no message or size unknown).
    pub fn recv_counts(&self) -> Vec<usize> {
        (0..self.nprocs()).map(|p| self.recv_count(p)).collect()
    }

    /// Elements this plan sends to destination `p` (zero when no message).
    pub fn send_count(&self, p: usize) -> usize {
        self.sends[p].unwrap_or(0)
    }

    /// Per-destination send element counts (zero where no message).
    pub fn send_counts(&self) -> Vec<usize> {
        (0..self.nprocs()).map(|p| self.send_count(p)).collect()
    }

    /// The fused version of this plan: every element count (send and exact-receive)
    /// multiplied by `lanes`.  This is the plan of a multi-array exchange that moves
    /// `lanes` same-schedule arrays as per-lane blocks through one message per pair — the
    /// message *pattern* (who talks to whom) is unchanged, only the payload sizes scale.
    /// See [`alltoallv_multi`].
    pub fn fused(&self, lanes: usize) -> ExchangePlan {
        assert!(lanes > 0, "a fused plan needs at least one lane");
        ExchangePlan {
            my_rank: self.my_rank,
            sends: self.sends.iter().map(|s| s.map(|n| n * lanes)).collect(),
            recvs: self
                .recvs
                .iter()
                .map(|r| match r {
                    RecvSpec::Exact(n) => RecvSpec::Exact(n * lanes),
                    other => *other,
                })
                .collect(),
        }
    }
}

/// Route sparse per-destination records to their destinations through the same log-depth
/// Bruck ring as [`ExchangePlan::negotiate`] — but carrying the *records themselves*
/// instead of counts, so negotiation and delivery fuse into a single store-and-forward
/// phase of exactly `ceil(log2 P)` messages per rank.
///
/// This is the delta-communication primitive: when the payload is a handful of edit
/// records, a negotiate-then-sparse-send pair costs `log2 P` routing messages *plus* one
/// direct message per active peer, while this routes everything in the `log2 P` messages
/// alone.  Records pay store-and-forward inflation (each travels up to `log2 P` hops),
/// which is the right trade precisely when they are few and small.
///
/// Returns one `Vec<T>` per source rank.  Records from the same source arrive in the
/// order that source sent them (all records of one source/destination pair make identical
/// hop decisions, and every round preserves stream order), so the result is
/// deterministic.  The self entry of `sends` is delivered locally without touching the
/// network.  Collective — every rank sends one (possibly empty) message per round.
///
/// # Panics
/// Panics if `sends.len()` differs from the machine size.
pub fn route_sparse<T: Element>(rank: &mut Rank, sends: &[Vec<T>]) -> Vec<Vec<T>> {
    let n = rank.nprocs();
    let me = rank.rank();
    assert_eq!(sends.len(), n, "one record list per rank required");
    assert!(
        n <= u32::MAX as usize,
        "rank ids must fit the routing header"
    );
    // Stream of (dest, src, record) triples this rank currently holds.
    let mut held: Vec<(u32, u32, T)> = Vec::new();
    for (p, records) in sends.iter().enumerate() {
        if p != me {
            held.extend(records.iter().map(|&r| (p as u32, me as u32, r)));
        }
    }
    let mut fwd: Vec<(u32, u32, T)> = Vec::new();
    let mut incoming: Vec<(u32, u32, T)> = Vec::new();
    for k in 0..crate::topology::tree_rounds(n) {
        let d = 1usize << k;
        let to = (me + d) % n;
        let from = (me + n - d) % n;
        // Same split as `negotiate`: triples whose remaining offset has bit k set hop
        // forward this round; arrivals have bits 0..=k clear, so merging after the split
        // is safe.
        fwd.clear();
        held.retain(|&triple| {
            let offset = (triple.0 as usize + n - me) % n;
            if offset & d != 0 {
                fwd.push(triple);
                false
            } else {
                true
            }
        });
        let mut plan_sends: Vec<Option<usize>> = vec![None; n];
        plan_sends[to] = Some(fwd.len());
        let mut recvs = vec![RecvSpec::None; n];
        recvs[from] = RecvSpec::Any;
        let plan = ExchangePlan::from_parts(me, plan_sends, recvs);
        incoming.clear();
        alltoallv_with(
            rank,
            &plan,
            |_p, buf: &mut PackBuf<'_, (u32, u32, T)>| buf.extend_from_slice(&fwd),
            |_src, v: Placed<'_, (u32, u32, T)>| incoming.extend_from_slice(&v),
        );
        held.extend_from_slice(&incoming);
    }
    let mut out: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
    out[me].extend_from_slice(&sends[me]);
    for &(dest, src, record) in &held {
        debug_assert_eq!(dest as usize, me, "record routing incomplete");
        out[src as usize].push(record);
    }
    out
}

/// An outgoing message buffer handed to the pack closure of [`alltoallv_with`].
///
/// Elements pushed here land straight in the buffer the message will be sent from —
/// there is no intermediate `Vec<T>`.  On the modeled backend that buffer is a pooled
/// byte buffer and elements are encoded through the [`Element`] codec; on the
/// shared-memory backend, POD element types ([`Element::is_pod_le`]) are packed verbatim
/// into a pooled *typed* buffer that crosses the fabric by pointer move, skipping the
/// encode/decode round-trip entirely.  Pack closures cannot tell the difference.  The
/// engine checks after the closure returns that exactly the plan's declared element
/// count was packed.
pub struct PackBuf<'a, T: Element> {
    sink: PackSink<'a, T>,
    len: usize,
}

/// Where a [`PackBuf`]'s elements physically go.
enum PackSink<'a, T> {
    /// Encode through the byte codec into a pooled message buffer (modeled backend, and
    /// non-POD element types on every backend).
    Bytes(&'a mut Vec<u8>),
    /// The shared-memory POD fast path: elements land in a typed buffer verbatim.
    Typed(&'a mut Vec<T>),
}

impl<'a, T: Element> PackBuf<'a, T> {
    fn new(buf: &'a mut Vec<u8>) -> Self {
        PackBuf {
            sink: PackSink::Bytes(buf),
            len: 0,
        }
    }

    fn typed(values: &'a mut Vec<T>) -> Self {
        PackBuf {
            sink: PackSink::Typed(values),
            len: 0,
        }
    }

    /// Append one element to the outgoing message.
    #[inline]
    pub fn push(&mut self, value: T) {
        match &mut self.sink {
            PackSink::Bytes(buf) => value.write_le(buf),
            PackSink::Typed(values) => values.push(value),
        }
        self.len += 1;
    }

    /// Append a slice of elements to the outgoing message through the bulk codec
    /// ([`Element::write_le_slice`] — vectorised for primitives and fixed arrays; a plain
    /// `memcpy` on the typed fast path).
    #[inline]
    pub fn extend_from_slice(&mut self, values: &[T]) {
        match &mut self.sink {
            PackSink::Bytes(buf) => T::write_le_slice(values, buf),
            PackSink::Typed(out) => out.extend_from_slice(values),
        }
        self.len += values.len();
    }

    /// Number of elements packed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been packed yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// One received message's decoded values, handed to the placement closure of the engine.
///
/// The values live in a typed scratch buffer drawn from the receiving rank's
/// decode-scratch pool; when the closure returns without taking ownership, the engine
/// recycles the buffer for the next message, so placement closures that only *read* the
/// values (the common case: permutation placement, combining, counting) cost no
/// allocation in steady state.  The view derefs to `&[T]`, so `&placed[i]`, iteration and
/// slice methods all work directly.
///
/// Callers that genuinely keep the payload — the executor's append, collectives that
/// return buffers to the application — call [`Placed::into_vec`], which is O(1): it
/// steals the scratch buffer itself (no copy), at the price of removing that buffer from
/// the pool's circulation (counted as a future `decode_allocations` when the pool has to
/// replace it).
pub struct Placed<'a, T: Element> {
    values: &'a mut Vec<T>,
    taken: &'a mut bool,
}

impl<'a, T: Element> Placed<'a, T> {
    fn new(values: &'a mut Vec<T>, taken: &'a mut bool) -> Self {
        Placed { values, taken }
    }

    /// Take ownership of the decoded values without copying them.
    ///
    /// The backing scratch buffer leaves the decode-scratch pool for good; use this only
    /// when the payload genuinely outlives the placement call.
    pub fn into_vec(self) -> Vec<T> {
        *self.taken = true;
        std::mem::take(self.values)
    }

    /// The decoded values as a slice (also available through `Deref`).
    pub fn as_slice(&self) -> &[T] {
        self.values
    }
}

impl<T: Element> std::ops::Deref for Placed<'_, T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.values
    }
}

/// Message and byte counts generated by one engine execution on one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExchangeStats {
    /// Point-to-point messages sent (empty messages included, local delivery excluded).
    pub msgs_sent: u64,
    /// Point-to-point messages received.
    pub msgs_received: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
}

impl ExchangeStats {
    /// Combine the stats of two executions (e.g. the two rounds of a lookup protocol).
    pub fn merged(&self, other: &ExchangeStats) -> ExchangeStats {
        ExchangeStats {
            msgs_sent: self.msgs_sent + other.msgs_sent,
            msgs_received: self.msgs_received + other.msgs_received,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            bytes_received: self.bytes_received + other.bytes_received,
        }
    }
}

/// Execute `plan`: ship `sends[p]` to each peer the plan names, deliver `sends[me]`
/// locally, and hand every incoming buffer to `place(source, values)`.
///
/// Send buffers are borrowed — messages are encoded straight from the slices into pooled
/// byte buffers, so callers never copy their payloads just to hand them over.  Callers
/// moving a *large* kept portion (the executor's append, remapping) place it directly
/// instead of planning a self transfer.  When every planned destination receives the
/// *same* payload (all-gather, broadcast, reductions), use [`alltoallv_replicated`]; when
/// the per-destination buffers would themselves be freshly allocated each call, use
/// [`alltoallv_with`] and pack into the message directly.
///
/// Collective: every rank of the machine must call the engine in the same order (see the
/// module docs for why this is what makes any-source matching sound).  Buffers are
/// placed in arrival order; callers that need a deterministic placement order must key off
/// the source rank (every CHAOS schedule does).  The placement closure receives a
/// borrowed [`Placed`] view backed by pooled scratch; call [`Placed::into_vec`] only when
/// the payload must outlive the call.
///
/// # Panics
/// Panics if the plan does not match the machine or the calling rank, if a buffer's
/// length differs from the plan's declared send count, or if an incoming message violates
/// the plan's receive expectations.
pub fn alltoallv<T: Element>(
    rank: &mut Rank,
    plan: &ExchangePlan,
    sends: &[Vec<T>],
    place: impl FnMut(usize, Placed<'_, T>),
) -> ExchangeStats {
    validate_send_buffers(plan, sends);
    run_exchange(
        rank,
        plan,
        Some(&sends[plan.my_rank()]),
        |p, buf| buf.extend_from_slice(&sends[p]),
        place,
    )
}

/// Shared validation of the slice-backed entry points ([`alltoallv`] /
/// [`start_alltoallv`]): one buffer per rank, and no payload where the plan sends
/// nothing.  (Length-vs-declared-count mismatches are caught by the pack phase.)
fn validate_send_buffers<T: Element>(plan: &ExchangePlan, sends: &[Vec<T>]) {
    assert_eq!(
        sends.len(),
        plan.nprocs(),
        "one send buffer per rank required (empty where the plan sends nothing)"
    );
    for (p, payload) in sends.iter().enumerate() {
        assert!(
            plan.sends[p].is_some() || payload.is_empty(),
            "rank {}: buffer for peer {p} has {} elements but the plan sends none",
            plan.my_rank(),
            payload.len()
        );
    }
}

/// Execute `plan` sending the *same* `payload` to every planned destination — the message
/// pattern of `all_gather`, `broadcast` and the reductions.  No per-peer buffers exist;
/// each message is encoded straight from the borrowed slice into a pooled buffer (the
/// self-routed copy, if the plan has one, goes through the same pooled path).
///
/// The plan's declared send count must equal `payload.len()` for every planned
/// destination.  Collectivity and panics as for [`alltoallv`].
pub fn alltoallv_replicated<T: Element>(
    rank: &mut Rank,
    plan: &ExchangePlan,
    payload: &[T],
    place: impl FnMut(usize, Placed<'_, T>),
) -> ExchangeStats {
    run_exchange(
        rank,
        plan,
        Some(payload),
        |_p, buf| buf.extend_from_slice(payload),
        place,
    )
}

/// Execute `plan`, letting the caller pack each destination's elements directly into the
/// outgoing message buffer.  `pack(p, buf)` is called once per planned destination (self
/// included when the plan routes to it) and must push exactly the plan's declared element
/// count for `p`.
///
/// This is the zero-intermediate-buffer form: combined with the pack-buffer pool it is
/// what lets the executor's steady-state gather/scatter/append/remap loops run without
/// allocating any fresh send buffers.  Collectivity and panics as for [`alltoallv`].
pub fn alltoallv_with<T: Element>(
    rank: &mut Rank,
    plan: &ExchangePlan,
    pack: impl FnMut(usize, &mut PackBuf<'_, T>),
    place: impl FnMut(usize, Placed<'_, T>),
) -> ExchangeStats {
    run_exchange(rank, plan, None, pack, place)
}

/// Execute `plan` moving `lanes` same-schedule arrays in one message per processor pair.
///
/// `plan` is the *single-lane* plan (e.g. a schedule's gather plan); the engine executes
/// [`ExchangePlan::fused`]`(lanes)`, so `pack(p, buf)` must push `lanes ×` the single-lane
/// element count for `p`, with each lane packed as one contiguous block
/// (`x0 x1 … y0 y1 … z0 z1 …`), and the placement closure receives them back in the same
/// blocked order (`values[lane * count + k]`, where `count` is the single-lane element
/// count for that source).  Blocked lanes make pack and place straight per-lane sweeps —
/// autovectorizable, with no per-element stride arithmetic.  Same bytes on the wire as
/// `lanes` single-array executions, `1/lanes` of the messages and message latencies.
///
/// Collectivity and panics as for [`alltoallv`].
pub fn alltoallv_multi<T: Element>(
    rank: &mut Rank,
    plan: &ExchangePlan,
    lanes: usize,
    pack: impl FnMut(usize, &mut PackBuf<'_, T>),
    place: impl FnMut(usize, Placed<'_, T>),
) -> ExchangeStats {
    let fused = plan.fused(lanes);
    run_exchange(rank, &fused, None, pack, place)
}

/// How many list positions ahead the engine's permutation loops prefetch.  Indexed
/// gather/place loops are bandwidth-bound with data-dependent addresses the hardware
/// prefetcher cannot predict; a dozen elements of software lookahead covers the memory
/// latency without evicting the lines still in use.
const PREFETCH_AHEAD: usize = 12;

/// How many times a direct-exchange sender yields while waiting for a peer's delivery
/// window before falling back to a classic message.  Peers publish their windows before
/// their own send phases, so under collective lockstep the window is at most one
/// scheduling quantum away; the bound only matters for peers that never publish (their
/// plan kept them on the classic arm), where the fallback message is the correct path.
const WINDOW_WAIT_YIELDS: usize = 4096;

/// Hint the CPU to pull `p` into cache; no-op on architectures without a stable
/// prefetch intrinsic.
#[inline(always)]
fn prefetch<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a pure cache hint — it never dereferences `p`, so any
    // pointer value (dangling or misaligned included) is sound to pass.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p as *const i8);
    };
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Execute a **gather-shaped permutation exchange**: for every destination `p` the
/// elements `src[send_lists[p][k]]` travel to `p`, and every contribution arriving from
/// source `q` lands at `dst[perm_lists[q][k]]` — the executor's schedule-driven gather,
/// lifted into the engine so the transport can exploit its shape.
///
/// On the shared-memory backend with a POD element type ([`Element::is_pod_le`]) and a
/// fully size-negotiated plan (no [`RecvSpec::Any`] rows), the transfer runs
/// **zero-copy**: the receiving rank publishes its destination region and permutation
/// lists as a *delivery window* on the fabric, and each sender writes its contribution
/// straight into place — one copy per element, no message buffer, no codec.  A sender
/// that reaches its send phase before the receiver has published falls back to the
/// classic typed message, which the receiver places itself, so correctness never
/// depends on timing.  Everywhere else ([`ExchangeBackend::Modeled`], non-POD types,
/// plans with unknown sizes) the call is exactly the classic pack → send → place
/// exchange of [`alltoallv_with`].
///
/// Gather is the one direction that can go zero-copy: a schedule's permutation lists
/// give every ghost slot exactly one writer, so concurrent senders touch disjoint
/// destinations.  The scatter direction combines contributions *at* the owner (repeated
/// owned offsets, arbitrary combining operators), so it keeps the classic path.
///
/// Modeled time, statistics, delivered values and [`ExchangeStats`] are identical
/// across backends — the window only changes host wall-clock.  Collectivity and panics
/// as for [`alltoallv`]; additionally panics if a list length disagrees with the plan.
pub fn alltoallv_permute<T: Element>(
    rank: &mut Rank,
    plan: &ExchangePlan,
    src: &[T],
    send_lists: &[Vec<u32>],
    dst: &mut [T],
    perm_lists: &[Vec<u32>],
) -> ExchangeStats {
    assert_eq!(
        send_lists.len(),
        plan.nprocs(),
        "one send list per rank required"
    );
    assert_eq!(
        perm_lists.len(),
        plan.nprocs(),
        "one permutation list per rank required"
    );
    let me = plan.my_rank();
    let direct = rank.backend() == ExchangeBackend::SharedMem
        && T::is_pod_le()
        && plan
            .recvs
            .iter()
            .enumerate()
            .all(|(p, r)| p == me || !matches!(r, RecvSpec::Any));
    if direct {
        if let Some(fabric) = rank.shared_fabric() {
            return direct_gather(rank, plan, src, send_lists, dst, perm_lists, &fabric);
        }
    }
    run_exchange(
        rank,
        plan,
        None,
        |p, buf: &mut PackBuf<'_, T>| {
            let list = &send_lists[p];
            for (k, &off) in list.iter().enumerate() {
                if let Some(&ahead) = list.get(k + PREFETCH_AHEAD) {
                    // SAFETY: prefetch never dereferences; send-list offsets all index
                    // `src`, so the hinted address stays inside the allocation.
                    prefetch(unsafe { src.as_ptr().add(ahead as usize) });
                }
                debug_assert!((off as usize) < src.len());
                // SAFETY: the caller's send lists index `src` (debug-asserted above);
                // the schedule builder produced them from offsets < src.len().
                buf.push(unsafe { *src.get_unchecked(off as usize) });
            }
        },
        |q, values: Placed<'_, T>| {
            let list = &perm_lists[q];
            for (k, (slot, &v)) in list.iter().zip(values.iter()).enumerate() {
                if let Some(&ahead) = list.get(k + PREFETCH_AHEAD) {
                    // SAFETY: prefetch never dereferences; perm-list slots all index
                    // `dst`, so the hinted address stays inside the allocation.
                    prefetch(unsafe { dst.as_ptr().add(ahead as usize) });
                }
                debug_assert!((*slot as usize) < dst.len());
                // SAFETY: perm-list slots index `dst` (debug-asserted above); the
                // schedule builder produced them from slots < dst.len().
                unsafe { *dst.get_unchecked_mut(*slot as usize) = v };
            }
        },
    )
}

/// Panic guard of a published direct window: if the exchange unwinds (a pack-length
/// assertion, a crossed-plan panic on a peer's message), the outstanding contributions
/// are absorbed before the destination region is freed, and the window is retired so
/// the slot stays usable.  The normal path retires the window itself and disarms.
struct WindowGuard<'a> {
    fabric: &'a SharedFabric,
    me: usize,
    tag: u64,
    armed: bool,
}

impl Drop for WindowGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.fabric.abort_window(self.me, self.tag);
        }
    }
}

/// The zero-copy arm of [`alltoallv_permute`]: publish the delivery window, send this
/// rank's contributions (direct where the peer's window is already up, classic typed
/// message otherwise), copy the local portion, place whatever fallback messages arrive,
/// and charge the receive side deterministically from the plan.
fn direct_gather<T: Element>(
    rank: &mut Rank,
    plan: &ExchangePlan,
    src: &[T],
    send_lists: &[Vec<u32>],
    dst: &mut [T],
    perm_lists: &[Vec<u32>],
    fabric: &SharedFabric,
) -> ExchangeStats {
    let me = plan.my_rank();
    let tag = rank.next_exchange_tag();
    rank.ledger_record(
        "exchange.direct",
        epoch_of_tag(tag),
        std::any::type_name::<T>(),
    );
    let mut stats = ExchangeStats::default();
    let pending = plan.recv_message_count();
    let dst_ptr = dst.as_mut_ptr();
    let dst_len = dst.len();

    // Publish before sending, so peers already in their send phase deliver directly
    // from this moment on.  Which side wins the race never affects correctness — a
    // peer that misses the window sends the classic message placed in the drain below.
    let mut guard = WindowGuard {
        fabric,
        me,
        tag,
        armed: false,
    };
    if pending > 0 {
        for (p, r) in plan.recvs.iter().enumerate() {
            if p == me {
                continue;
            }
            if let RecvSpec::Exact(n) = r {
                assert_eq!(
                    perm_lists[p].len(),
                    *n,
                    "rank {me}: permutation list for source {p} does not match the plan"
                );
            }
        }
        fabric.publish_window::<T>(me, tag, dst_ptr, dst_len, pending, |p| {
            match plan.recvs[p] {
                RecvSpec::Exact(_) if p != me => {
                    Some((perm_lists[p].as_ptr(), perm_lists[p].len()))
                }
                _ => None,
            }
        });
        guard.armed = true;
    }

    // Send phase, in peer order like the classic engine.  Every planned transfer is
    // charged and counted identically whether it lands by direct copy or by message.
    //
    // A peer that has not published its window yet is almost certainly just behind us
    // in the same collective — it publishes *before* its own send phase — so a short
    // yield-wait nearly always converts the miss into a direct delivery and keeps the
    // steady state allocation-free.  The wait is bounded: a peer whose own plan keeps
    // it on the classic arm (unnegotiated receive sizes) never publishes, and then the
    // classic typed message below is the correct — merely slower — delivery.
    let mut scratch_pool: Option<Vec<Vec<T>>> = None;
    for (p, declared) in plan.sends.iter().enumerate() {
        let Some(declared) = *declared else { continue };
        if p == me {
            continue;
        }
        let list = &send_lists[p];
        assert_eq!(
            list.len(),
            declared,
            "rank {me}: send list for peer {p} does not match the plan"
        );
        let copy_into = |peer_dst: *mut T, peer_dst_len: usize, perm: &[u32]| {
            assert_eq!(
                perm.len(),
                list.len(),
                "rank {me}: peer {p} expects a different contribution size"
            );
            for k in 0..list.len() {
                if let Some(&ahead) = list.get(k + PREFETCH_AHEAD) {
                    // Pull both the next source element and its destination slot.
                    // SAFETY: prefetch never dereferences the hinted address.
                    prefetch(unsafe { src.as_ptr().add(ahead as usize) });
                    // SAFETY: `k + PREFETCH_AHEAD < list.len() == perm.len()` — the
                    // `list.get` above succeeded and the lengths were asserted equal.
                    let slot_ahead = unsafe { *perm.get_unchecked(k + PREFETCH_AHEAD) };
                    // SAFETY: prefetch never dereferences the hinted address.
                    prefetch(unsafe { peer_dst.add(slot_ahead as usize) } as *const T);
                }
                // SAFETY: `k < list.len()` by the loop bound.
                let off = unsafe { *list.get_unchecked(k) } as usize;
                // SAFETY: `k < perm.len()` — `perm.len() == list.len()` was asserted
                // above.
                let slot = unsafe { *perm.get_unchecked(k) } as usize;
                debug_assert!(off < src.len() && slot < peer_dst_len);
                // SAFETY: `off` indexes this rank's own `src` (schedule-built, debug-
                // asserted above); `slot` indexes the peer's published window, which
                // stays alive until every declared sender delivers.  Permutation slots
                // are disjoint across sources (one writer per ghost slot), so
                // concurrent direct writes never overlap.
                unsafe { *peer_dst.add(slot) = *src.get_unchecked(off) };
            }
        };
        let mut delivered = fabric.try_direct_deliver::<T>(me, p, tag, copy_into);
        let mut yields = 0;
        while !delivered && yields < WINDOW_WAIT_YIELDS && !fabric.peer_terminated(p) {
            std::thread::yield_now();
            yields += 1;
            delivered = fabric.try_direct_deliver::<T>(me, p, tag, copy_into);
        }
        if delivered {
            rank.charge_direct_send(declared * T::SIZE);
        } else {
            if scratch_pool.is_none() {
                scratch_pool = Some(rank.detach_decode_scratch::<T>());
            }
            let pool = scratch_pool.as_mut().expect("just filled");
            let mut values = rank.take_decode_scratch(pool, declared);
            for (k, &off) in list.iter().enumerate() {
                if let Some(&ahead) = list.get(k + PREFETCH_AHEAD) {
                    // SAFETY: prefetch never dereferences; send-list offsets all
                    // index `src`.
                    prefetch(unsafe { src.as_ptr().add(ahead as usize) });
                }
                debug_assert!((off as usize) < src.len());
                // SAFETY: send-list offsets index `src` (debug-asserted above).
                values.push(unsafe { *src.get_unchecked(off as usize) });
            }
            rank.send_typed(p, tag, values);
        }
        rank.charge_compute(declared as f64 * PACK_UNPACK_COST_UNITS);
        stats.msgs_sent += 1;
        stats.bytes_sent += (declared * T::SIZE) as u64;
    }

    // Local portion: a straight permutation copy — no staging, no charge (local
    // delivery never touches the network or the cost model).  Written through the same
    // raw pointer the window published: peer writes to other regions of `dst` may be
    // in flight, so every window-lifetime write goes through that pointer.
    if let Some(declared) = plan.sends[me] {
        let list = &send_lists[me];
        let perm = &perm_lists[me];
        assert_eq!(
            list.len(),
            declared,
            "rank {me}: send list for peer {me} does not match the plan"
        );
        assert_eq!(
            perm.len(),
            declared,
            "rank {me}: permutation list for source {me} does not match the plan"
        );
        for (&off, &slot) in list.iter().zip(perm.iter()) {
            debug_assert!((off as usize) < src.len() && (slot as usize) < dst_len);
            // SAFETY: `off` indexes `src` and `slot` indexes this rank's own published
            // window (both schedule-built, debug-asserted above); local slots are
            // disjoint from every peer's slots, so in-flight peer writes to other
            // regions of `dst` never alias these writes.
            unsafe { *dst_ptr.add(slot as usize) = *src.get_unchecked(off as usize) };
        }
    }

    // Drain: place the classic fallback contributions of peers that missed the window,
    // until every contribution — direct or fallback — has landed, then retire.
    if pending > 0 {
        while let Some(env) = rank.recv_tag_or_window_drained(tag) {
            let from = env.from;
            let byte_len = env.payload.byte_len();
            assert!(
                byte_len.is_multiple_of(T::SIZE),
                "rank {me}: payload from rank {from} is not a whole number of elements"
            );
            let count = byte_len / T::SIZE;
            match plan.recvs[from] {
                RecvSpec::Exact(n) if from != me => {
                    assert_eq!(
                        count,
                        n,
                        "rank {me}: expected {n} elements from rank {from} in exchange epoch {}",
                        epoch_of_tag(tag)
                    );
                }
                _ => panic!(
                    "rank {me}: unexpected exchange message from rank {from} ({count} elements) \
                     in direct exchange epoch {} (this rank has started {} epochs — a crossed \
                     or non-collective exchange sequence)",
                    epoch_of_tag(tag),
                    rank.exchange_epochs_started()
                ),
            }
            let values: Vec<T> = match env.payload {
                // The common fallback: the sender's typed buffer, placed as-is.
                Payload::Typed(typed) => typed.into_values::<T>(),
                Payload::Bytes(bytes) => {
                    if scratch_pool.is_none() {
                        scratch_pool = Some(rank.detach_decode_scratch::<T>());
                    }
                    let pool = scratch_pool.as_mut().expect("just filled");
                    let mut scratch = rank.take_decode_scratch(pool, count);
                    T::read_le_into(&bytes, &mut scratch);
                    rank.recycle_pack_buffer(bytes);
                    scratch
                }
            };
            let perm = &perm_lists[from];
            for (&slot, &v) in perm.iter().zip(values.iter()) {
                debug_assert!((slot as usize) < dst_len);
                // SAFETY: perm-list slots index this rank's own still-published window
                // (debug-asserted above); each source's slots are disjoint from every
                // other's, so fallback placement never races a peer's direct write.
                unsafe { *dst_ptr.add(slot as usize) = v };
            }
            if scratch_pool.is_none() {
                scratch_pool = Some(rank.detach_decode_scratch::<T>());
            }
            rank.recycle_decode_scratch(scratch_pool.as_mut().expect("just filled"), values);
            fabric.contribution_delivered(me);
        }
        fabric.retire_window(me);
        guard.armed = false;
    }
    if let Some(pool) = scratch_pool.take() {
        rank.reattach_decode_scratch(pool);
    }

    // Receive-side accounting, deterministic from the plan: every contribution's byte
    // count is fixed by its Exact spec, so arrival order (and delivery mechanism)
    // cannot matter.  Same multiset of charges as the classic per-message path.
    for (p, r) in plan.recvs.iter().enumerate() {
        if p == me {
            continue;
        }
        let RecvSpec::Exact(n) = *r else { continue };
        let bytes = n * T::SIZE;
        rank.charge_direct_recv(bytes);
        rank.charge_compute(n as f64 * PACK_UNPACK_COST_UNITS);
        stats.msgs_received += 1;
        stats.bytes_received += bytes as u64;
    }
    stats
}

/// A split-phase exchange in flight: sends are posted, receives not yet drained.
///
/// Produced by [`start_alltoallv`] / [`start_alltoallv_with`]; consumed by
/// [`ExchangeHandle::finish`].  The handle owns its plan and the staged local portion, so
/// nothing borrows the caller's arrays while the exchange is in flight — pack runs at
/// start, placement at finish, and the caller computes freely in between.
///
/// Dropping a handle without finishing it panics: the posted messages would sit
/// unconsumed in every peer's mailbox and surface as a confusing stall (or an
/// unexpected-message panic) several exchanges later.  `finish` is the only way out.
#[must_use = "a split-phase exchange must be finished (dropping the handle panics)"]
pub struct ExchangeHandle<T: Element> {
    inflight: Option<InFlight<T>>,
}

struct InFlight<T: Element> {
    plan: ExchangePlan,
    tag: u64,
    send_stats: ExchangeStats,
    /// The staged local portion, already decoded into pooled scratch (empty when the plan
    /// has no self transfer or it carries nothing).
    self_values: Vec<T>,
    deliver_self: bool,
}

impl<T: Element> ExchangeHandle<T> {
    /// The plan this exchange is executing.
    pub fn plan(&self) -> &ExchangePlan {
        &self
            .inflight
            .as_ref()
            .expect("exchange already finished")
            .plan
    }

    /// The exchange epoch (per-rank engine sequence number) this exchange was started in.
    pub fn epoch(&self) -> u64 {
        epoch_of_tag(
            self.inflight
                .as_ref()
                .expect("exchange already finished")
                .tag,
        )
    }

    /// Message/byte counts of the send phase (the receive side is added by `finish`).
    pub fn send_stats(&self) -> ExchangeStats {
        self.inflight
            .as_ref()
            .expect("exchange already finished")
            .send_stats
    }

    /// Drain this exchange's receives, handing each payload (and the staged local
    /// portion) to `place`, and return the combined send + receive stats.
    ///
    /// Must be called on the same rank that started the exchange.  Other exchanges may
    /// have been started — and even finished — in between; epoch tagging keeps them
    /// apart.
    pub fn finish(
        mut self,
        rank: &mut Rank,
        place: impl FnMut(usize, Placed<'_, T>),
    ) -> ExchangeStats {
        let fl = self.inflight.take().expect("exchange already finished");
        let recv_stats = finish_exchange(
            rank,
            &fl.plan,
            fl.tag,
            fl.self_values,
            fl.deliver_self,
            place,
        );
        fl.send_stats.merged(&recv_stats)
    }
}

impl<T: Element> Drop for ExchangeHandle<T> {
    fn drop(&mut self) {
        if let Some(fl) = &self.inflight {
            if !std::thread::panicking() {
                panic!(
                    "split-phase exchange (epoch {}) dropped without finish(): \
                     its receives were never drained",
                    epoch_of_tag(fl.tag)
                );
            }
        }
    }
}

/// Split-phase form of [`alltoallv`]: post the plan's sends (borrowing one pre-built
/// buffer per destination, exactly as the blocking form does) and return a handle whose
/// [`ExchangeHandle::finish`] drains the receives.
///
/// The handle owns `plan` — callers that reuse a long-lived plan pass a clone.  Starts
/// are collective in the same order on every rank; see the module docs for the
/// split-phase rules.  Panics as for [`alltoallv`] (plan/buffer mismatches are caught at
/// start; receive violations at finish).
pub fn start_alltoallv<T: Element>(
    rank: &mut Rank,
    plan: ExchangePlan,
    sends: &[Vec<T>],
) -> ExchangeHandle<T> {
    validate_send_buffers(&plan, sends);
    let me = plan.my_rank();
    let (tag, send_stats, self_values, deliver_self) =
        start_exchange(rank, &plan, Some(&sends[me]), |p, buf| {
            buf.extend_from_slice(&sends[p]);
        });
    ExchangeHandle {
        inflight: Some(InFlight {
            plan,
            tag,
            send_stats,
            self_values,
            deliver_self,
        }),
    }
}

/// Split-phase form of [`alltoallv_with`]: `pack` runs once per planned destination at
/// start (encoding straight into pooled message buffers — the zero-intermediate-buffer
/// hot path), the returned handle's [`ExchangeHandle::finish`] drains the receives.
///
/// Combine with [`ExchangePlan::fused`] for a split-phase fused multi-array exchange.
/// The handle owns `plan`; collectivity and panics as for [`start_alltoallv`].
pub fn start_alltoallv_with<T: Element>(
    rank: &mut Rank,
    plan: ExchangePlan,
    pack: impl FnMut(usize, &mut PackBuf<'_, T>),
) -> ExchangeHandle<T> {
    let (tag, send_stats, self_values, deliver_self) = start_exchange(rank, &plan, None, pack);
    ExchangeHandle {
        inflight: Some(InFlight {
            plan,
            tag,
            send_stats,
            self_values,
            deliver_self,
        }),
    }
}

/// The exchange epoch encoded in a message tag (inverse of [`Rank::next_exchange_tag`]).
fn epoch_of_tag(tag: u64) -> u64 {
    tag - EXCHANGE_TAG_BASE
}

/// Shared engine core of the blocking entry points: a start immediately followed by a
/// finish.  See [`start_exchange`] and [`finish_exchange`], which the split-phase API
/// exposes individually.
fn run_exchange<T: Element>(
    rank: &mut Rank,
    plan: &ExchangePlan,
    self_payload: Option<&[T]>,
    pack: impl FnMut(usize, &mut PackBuf<'_, T>),
    place: impl FnMut(usize, Placed<'_, T>),
) -> ExchangeStats {
    let (tag, send_stats, self_values, deliver_self) =
        start_exchange(rank, plan, self_payload, pack);
    let recv_stats = finish_exchange(rank, plan, tag, self_values, deliver_self, place);
    send_stats.merged(&recv_stats)
}

/// Start phase: claim the next exchange epoch, pack and post one pooled message per
/// planned destination, and stage the local portion (already decoded into pooled
/// scratch, so finishing needs no further pack state).  Returns everything the finish
/// phase needs: the epoch tag, the send-side stats, and the staged self payload.
///
/// `self_payload` is the fast path for the slice-backed entry points: when the caller
/// already holds the self elements as a slice, staging is one bulk copy into scratch
/// instead of an encode/decode round-trip through a staging buffer.  `alltoallv_with`
/// and `start_alltoallv_with` pass `None` (their pack closure is the only data source).
fn start_exchange<T: Element>(
    rank: &mut Rank,
    plan: &ExchangePlan,
    self_payload: Option<&[T]>,
    mut pack: impl FnMut(usize, &mut PackBuf<'_, T>),
) -> (u64, ExchangeStats, Vec<T>, bool) {
    assert_eq!(
        plan.nprocs(),
        rank.nprocs(),
        "exchange plan spans a different machine"
    );
    assert_eq!(
        plan.my_rank(),
        rank.rank(),
        "exchange plan belongs to a different rank"
    );
    let me = plan.my_rank();
    let tag = rank.next_exchange_tag();
    rank.ledger_record("exchange", epoch_of_tag(tag), std::any::type_name::<T>());
    let mut stats = ExchangeStats::default();

    // The shared-memory POD fast path packs each message verbatim into a `Vec<T>` drawn
    // from the decode-scratch pool and ships the buffer itself — the receiving rank
    // takes it by pointer move, so neither side runs the LE codec.  Every cost-model
    // charge and stat below is identical on both paths: modeled results never depend on
    // the backend, only host wall-clock does.
    let typed = rank.backend() == ExchangeBackend::SharedMem && T::is_pod_le();
    let mut scratch_pool = rank.detach_decode_scratch::<T>();

    // Send phase: one message per planned destination, empty payloads included when the
    // plan says so (dense mode).  The self payload is staged for local delivery below.
    for (p, declared) in plan.sends.iter().enumerate() {
        let Some(declared) = declared else { continue };
        if p == me {
            continue;
        }
        let packed = if typed {
            let mut values = rank.take_decode_scratch(&mut scratch_pool, *declared);
            let mut buf = PackBuf::typed(&mut values);
            pack(p, &mut buf);
            let packed = buf.len();
            assert_eq!(
                packed, *declared,
                "rank {me}: buffer for peer {p} does not match the plan"
            );
            rank.send_typed(p, tag, values);
            packed
        } else {
            let mut raw = rank.take_pack_buffer(declared * T::SIZE);
            let mut buf = PackBuf::new(&mut raw);
            pack(p, &mut buf);
            let packed = buf.len();
            assert_eq!(
                packed, *declared,
                "rank {me}: buffer for peer {p} does not match the plan"
            );
            rank.send_packed(p, tag, raw);
            packed
        };
        rank.charge_compute(packed as f64 * PACK_UNPACK_COST_UNITS);
        stats.msgs_sent += 1;
        stats.bytes_sent += (packed * T::SIZE) as u64;
    }

    // Stage the local portion: decoded into pooled scratch now (while the pack source is
    // at hand), delivered through the placement path at finish, with no communication
    // and no cost-model charge.  Slice-backed callers stage with one bulk copy;
    // pack-closure callers encode into a pooled buffer that goes straight back — or,
    // on the typed fast path, pack straight into the staged scratch with no codec pass.
    let mut self_values: Vec<T> = Vec::new();
    let mut deliver_self = false;
    if let Some(declared) = plan.sends[me] {
        if let Some(payload) = self_payload {
            assert_eq!(
                payload.len(),
                declared,
                "rank {me}: buffer for peer {me} does not match the plan"
            );
            if !payload.is_empty() {
                let mut scratch = rank.take_decode_scratch(&mut scratch_pool, payload.len());
                scratch.extend_from_slice(payload);
                self_values = scratch;
                deliver_self = true;
            }
        } else if typed {
            let mut values = rank.take_decode_scratch(&mut scratch_pool, declared);
            let mut buf = PackBuf::typed(&mut values);
            pack(me, &mut buf);
            assert_eq!(
                buf.len(),
                declared,
                "rank {me}: buffer for peer {me} does not match the plan"
            );
            if !values.is_empty() {
                self_values = values;
                deliver_self = true;
            } else {
                rank.recycle_decode_scratch(&mut scratch_pool, values);
            }
        } else {
            let mut raw = rank.take_pack_buffer(declared * T::SIZE);
            let mut buf = PackBuf::new(&mut raw);
            pack(me, &mut buf);
            assert_eq!(
                buf.len(),
                declared,
                "rank {me}: buffer for peer {me} does not match the plan"
            );
            if !raw.is_empty() {
                let mut scratch = rank.take_decode_scratch(&mut scratch_pool, declared);
                T::read_le_into(&raw, &mut scratch);
                self_values = scratch;
                deliver_self = true;
            }
            rank.recycle_pack_buffer(raw);
        }
    }
    rank.reattach_decode_scratch(scratch_pool);
    (tag, stats, self_values, deliver_self)
}

/// Finish phase: deliver the staged local portion, then consume exactly the planned
/// number of incoming messages for this epoch, from whichever source is ready first —
/// each decoded through the bulk codec into pooled typed scratch and placed as a
/// borrowed [`Placed`] view (both the payload byte buffer and, unless the closure took
/// ownership, the scratch go back to their pools).
fn finish_exchange<T: Element>(
    rank: &mut Rank,
    plan: &ExchangePlan,
    tag: u64,
    mut self_values: Vec<T>,
    deliver_self: bool,
    mut place: impl FnMut(usize, Placed<'_, T>),
) -> ExchangeStats {
    let me = plan.my_rank();
    let epoch = epoch_of_tag(tag);
    let mut stats = ExchangeStats::default();
    // The decode-scratch free list for `T` is detached for the whole drain, so the
    // per-message take/recycle below is a plain `Vec` pop/push — the typed-pool map is
    // consulted twice per finish, not twice per message.
    let mut scratch_pool = rank.detach_decode_scratch::<T>();

    if deliver_self {
        let mut taken = false;
        place(me, Placed::new(&mut self_values, &mut taken));
        if !taken {
            rank.recycle_decode_scratch(&mut scratch_pool, self_values);
        }
    }

    for _ in 0..plan.recv_message_count() {
        let (src, payload) = rank.recv_payload_any(tag);
        let byte_len = payload.byte_len();
        assert!(
            byte_len.is_multiple_of(T::SIZE),
            "rank {me}: payload from rank {src} is not a whole number of elements"
        );
        let count = byte_len / T::SIZE;
        match plan.recvs[src] {
            RecvSpec::None => {
                panic!(
                    "rank {me}: unexpected exchange message from rank {src} ({count} elements) \
                     in exchange epoch {epoch}, whose plan expects nothing from that source \
                     (this rank has started {} epochs — a crossed or non-collective exchange \
                     sequence)",
                    rank.exchange_epochs_started()
                )
            }
            RecvSpec::Any => {}
            RecvSpec::Exact(n) => {
                assert_eq!(
                    count, n,
                    "rank {me}: expected {n} elements from rank {src} in exchange epoch {epoch}"
                );
            }
        }
        rank.charge_compute(count as f64 * PACK_UNPACK_COST_UNITS);
        stats.msgs_received += 1;
        stats.bytes_received += byte_len as u64;
        let mut scratch = match payload {
            Payload::Bytes(bytes) => {
                let mut scratch = rank.take_decode_scratch(&mut scratch_pool, count);
                T::read_le_into(&bytes, &mut scratch);
                rank.recycle_pack_buffer(bytes);
                scratch
            }
            // The typed fast path: the sender's buffer arrives by pointer move and is
            // placed as-is; when the closure does not take it, it joins this rank's
            // decode-scratch pool, keeping the pools balanced across the machine.
            Payload::Typed(typed) => typed.into_values::<T>(),
        };
        let mut taken = false;
        place(src, Placed::new(&mut scratch, &mut taken));
        if !taken {
            rank.recycle_decode_scratch(&mut scratch_pool, scratch);
        }
    }
    rank.reattach_decode_scratch(scratch_pool);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::topology::MachineConfig;
    use crate::{run, RankStats};

    #[test]
    fn route_sparse_matches_dense_exchange_in_log_depth_messages() {
        // Every rank sends a distinctive record stream to a sparse set of peers; routing
        // must deliver exactly what a dense all_to_all would, in source order, within
        // ceil(log2 P) messages per rank per call.
        let out = run(MachineConfig::new(6), |rank| {
            let me = rank.rank();
            let n = rank.nprocs();
            let mut sends: Vec<Vec<(u32, u32, u32)>> = vec![Vec::new(); n];
            // Each rank talks to me+1 and me+3 (mod n) only, plus itself.
            for hop in [0usize, 1, 3] {
                let dest = (me + hop) % n;
                for i in 0..(me + hop + 1) {
                    sends[dest].push((me as u32, dest as u32, i as u32));
                }
            }
            let msgs_before = rank.stats().msgs_sent;
            let routed = route_sparse(rank, &sends);
            let msgs = rank.stats().msgs_sent - msgs_before;
            let dense = rank.all_to_all(&sends);
            (routed, dense, msgs)
        });
        for (me, (routed, dense, msgs)) in out.results.iter().enumerate() {
            assert_eq!(routed, dense, "rank {me}: routed delivery must match dense");
            assert_eq!(
                *msgs,
                crate::topology::tree_rounds(6) as u64,
                "rank {me}: one message per routing round, regardless of fan-out"
            );
        }
    }

    #[test]
    fn sparse_plan_skips_empty_messages() {
        // Ring: rank r sends r+1 elements to (r+1) % n and nothing else.
        let out = run(MachineConfig::new(4), |rank| {
            let me = rank.rank();
            let n = rank.nprocs();
            let next = (me + 1) % n;
            let prev = (me + n - 1) % n;
            let mut send_counts = vec![0; n];
            send_counts[next] = me + 1;
            let mut recv_counts = vec![0; n];
            recv_counts[prev] = prev + 1;
            let plan = ExchangePlan::sparse(me, send_counts, recv_counts);
            let mut sends: Vec<Vec<u32>> = vec![Vec::new(); n];
            sends[next] = vec![me as u32; me + 1];
            let mut got: Vec<(usize, Vec<u32>)> = Vec::new();
            let stats = alltoallv(rank, &plan, &sends, |src, v| got.push((src, v.into_vec())));
            (got, stats)
        });
        for (me, (got, stats)) in out.results.iter().enumerate() {
            let prev = (me + 3) % 4;
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].0, prev);
            assert_eq!(got[0].1, vec![prev as u32; prev + 1]);
            assert_eq!(stats.msgs_sent, 1);
            assert_eq!(stats.msgs_received, 1);
            assert_eq!(stats.bytes_sent, 4 * (me as u64 + 1));
        }
    }

    #[test]
    fn dense_plan_sends_empty_messages_too() {
        let out = run(MachineConfig::new(3), |rank| {
            let me = rank.rank();
            let n = rank.nprocs();
            // Only rank 0 has data, but a dense plan still moves one message per pair.
            let sends: Vec<Vec<u64>> = (0..n)
                .map(|_| if me == 0 { vec![0, 1] } else { Vec::new() })
                .collect();
            let plan = ExchangePlan::dense(me, sends.iter().map(Vec::len).collect());
            let mut received_from = Vec::new();
            let stats = alltoallv(rank, &plan, &sends, |src, _v: Placed<'_, u64>| {
                received_from.push(src);
            });
            received_from.sort_unstable();
            (received_from, stats)
        });
        for (me, (from, stats)) in out.results.iter().enumerate() {
            assert_eq!(stats.msgs_sent, 2, "dense plans message every peer");
            assert_eq!(stats.msgs_received, 2);
            // Local delivery only happens for a non-empty self buffer (rank 0 here).
            let mut expected: Vec<usize> = (0..3).filter(|&p| p != me).collect();
            if me == 0 {
                expected.push(0);
                expected.sort_unstable();
            }
            assert_eq!(from, &expected);
        }
    }

    #[test]
    fn local_portion_bypasses_the_network() {
        let cfg = MachineConfig::new(2).with_cost(CostModel::uniform(50.0, 1.0, 0.0));
        let out = run(cfg, |rank| {
            let me = rank.rank();
            let mut send_counts = vec![0; 2];
            send_counts[me] = 3; // self only
            let plan = ExchangePlan::sparse(me, send_counts, vec![0; 2]);
            let mut sends: Vec<Vec<f64>> = vec![Vec::new(); 2];
            sends[me] = vec![1.0, 2.0, 3.0];
            let mut local = Vec::new();
            let stats = alltoallv(rank, &plan, &sends, |src, v| {
                assert_eq!(src, me);
                local = v.into_vec();
            });
            (local, stats, rank.stats().msgs_sent, rank.modeled().comm_us)
        });
        for (local, stats, sent, comm_us) in &out.results {
            assert_eq!(local, &vec![1.0, 2.0, 3.0]);
            assert_eq!(*stats, ExchangeStats::default());
            assert_eq!(*sent, 0);
            assert_eq!(
                *comm_us, 0.0,
                "local delivery must not charge the cost model"
            );
        }
    }

    #[test]
    fn negotiate_learns_receive_counts() {
        let out = run(MachineConfig::new(4), |rank| {
            let me = rank.rank();
            let n = rank.nprocs();
            // Rank r sends r elements to every peer (and keeps r for itself).
            let plan = ExchangePlan::negotiate(rank, vec![me; n]);
            (plan.recv_counts(), plan.send_message_count())
        });
        for (me, (recv_counts, msgs)) in out.results.iter().enumerate() {
            for (p, &c) in recv_counts.iter().enumerate() {
                // Sparse plans know exact counts for real messages; self and empty
                // sources report zero.
                let expected = if p == me || p == 0 { 0 } else { p };
                assert_eq!(c, expected, "rank {me}: wrong count from {p}");
            }
            // me == 0 sends nothing (count 0 everywhere).
            assert_eq!(*msgs, if me == 0 { 0 } else { 3 });
        }
    }

    #[test]
    fn sparse_negotiation_messages_are_logarithmic() {
        use crate::topology::tree_rounds;
        // A two-neighbor ring halo: the negotiation must cost ceil(log2 P) routing
        // messages per rank — not P - 1 count messages — and executing the resulting
        // sparse plan must move only the two real messages, skipping every silent pair.
        for p in [4usize, 6, 13] {
            let out = run(MachineConfig::new(p), move |rank| {
                let me = rank.rank();
                let n = rank.nprocs();
                let mut counts = vec![0usize; n];
                counts[(me + 1) % n] = 5;
                counts[(me + n - 1) % n] = 7;
                let s0 = rank.stats().msgs_sent;
                let plan = ExchangePlan::negotiate(rank, counts);
                let negotiation_msgs = rank.stats().msgs_sent - s0;
                let sends: Vec<Vec<u32>> = plan
                    .send_counts()
                    .iter()
                    .map(|&c| vec![me as u32; c])
                    .collect();
                let s1 = rank.stats().msgs_sent;
                let mut got = 0usize;
                alltoallv(rank, &plan, &sends, |_src, _v: Placed<'_, u32>| got += 1);
                let exec_msgs = rank.stats().msgs_sent - s1;
                (negotiation_msgs, exec_msgs, got, plan.recv_counts())
            });
            for (me, (neg, exec, got, rc)) in out.results.iter().enumerate() {
                assert_eq!(*neg, tree_rounds(p) as u64, "P={p} rank {me}");
                assert_eq!(*exec, 2, "P={p} rank {me}: only real pairs send");
                assert_eq!(*got, 2, "P={p} rank {me}");
                for (q, &c) in rc.iter().enumerate() {
                    let expected = if q == (me + p - 1) % p {
                        5 // the left neighbor ships 5 to us
                    } else if q == (me + 1) % p {
                        7 // the right neighbor ships 7 to us
                    } else {
                        0
                    };
                    assert_eq!(c, expected, "P={p} rank {me}: count from {q}");
                }
            }
        }
    }

    #[test]
    fn back_to_back_exchanges_do_not_interfere() {
        // Rank 1 has nothing to do in round one and races ahead into round two; epoch
        // tagging must keep the rounds separate on rank 0, which receives with
        // recv_vec_any.
        let out = run(MachineConfig::new(3), |rank| {
            let me = rank.rank();
            let n = rank.nprocs();
            // Round one: only rank 2 -> rank 0.
            let mut s1 = vec![0; n];
            let mut r1 = vec![0; n];
            if me == 2 {
                s1[0] = 1;
            }
            if me == 0 {
                r1[2] = 1;
            }
            let plan1 = ExchangePlan::sparse(me, s1, r1);
            // Round two: only rank 1 -> rank 0.
            let mut s2 = vec![0; n];
            let mut r2 = vec![0; n];
            if me == 1 {
                s2[0] = 1;
            }
            if me == 0 {
                r2[1] = 1;
            }
            let plan2 = ExchangePlan::sparse(me, s2, r2);

            let mut got = Vec::new();
            let mut sends1: Vec<Vec<u8>> = vec![Vec::new(); n];
            if me == 2 {
                sends1[0] = vec![22];
            }
            alltoallv(rank, &plan1, &sends1, |src, v| {
                got.push((1, src, v.into_vec()));
            });
            let mut sends2: Vec<Vec<u8>> = vec![Vec::new(); n];
            if me == 1 {
                sends2[0] = vec![11];
            }
            alltoallv(rank, &plan2, &sends2, |src, v| {
                got.push((2, src, v.into_vec()));
            });
            got
        });
        assert_eq!(
            out.results[0],
            vec![(1, 2, vec![22u8]), (2, 1, vec![11u8])],
            "rounds must be delivered to the matching exchange"
        );
    }

    #[test]
    fn stats_match_rank_counters() {
        let out = run(MachineConfig::new(4), |rank| {
            let me = rank.rank();
            let n = rank.nprocs();
            let plan = ExchangePlan::dense(me, vec![2; n]);
            let sends: Vec<Vec<u64>> = (0..n).map(|p| vec![me as u64, p as u64]).collect();
            let before: RankStats = rank.stats();
            let stats = alltoallv(rank, &plan, &sends, |_src, _v| {});
            let after = rank.stats();
            (
                stats,
                after.msgs_sent - before.msgs_sent,
                after.bytes_sent - before.bytes_sent,
            )
        });
        for (stats, msgs, bytes) in &out.results {
            assert_eq!(stats.msgs_sent, *msgs);
            assert_eq!(stats.bytes_sent, *bytes);
            assert_eq!(stats.msgs_received, 3);
            assert_eq!(stats.bytes_received, 3 * 16);
        }
    }

    #[test]
    fn steady_exchange_loops_stop_allocating_after_warmup() {
        // The pool invariant the microbench harness reports: after one warm-up round, a
        // repeated exchange draws every buffer from the pool — including dense rounds
        // whose messages are all empty (zero-byte payloads bypass the heap and the pool
        // counters entirely, so they cannot leak `allocations` either).
        let out = run(MachineConfig::new(3), |rank| {
            let me = rank.rank();
            let n = rank.nprocs();
            let data_round = |rank: &mut Rank| {
                let plan = ExchangePlan::dense(me, vec![2; n]);
                let sends: Vec<Vec<u64>> = (0..n).map(|p| vec![me as u64, p as u64]).collect();
                alltoallv(rank, &plan, &sends, |_src, _v| {});
            };
            let empty_round = |rank: &mut Rank| {
                let plan = ExchangePlan::dense(me, vec![0; n]);
                let sends: Vec<Vec<u64>> = vec![Vec::new(); n];
                alltoallv(rank, &plan, &sends, |_src, _v| {});
            };
            data_round(rank);
            let warm = rank.pool_stats();
            for _ in 0..8 {
                data_round(rank);
                empty_round(rank);
            }
            rank.pool_stats().since(&warm)
        });
        for delta in &out.results {
            assert_eq!(
                delta.allocations, 0,
                "steady state drew a fresh pack buffer"
            );
            // On the shared-memory POD fast path the pack-buffer pool is idle (typed
            // buffers come from the decode-scratch pool), so count both pools.
            assert!(
                delta.reuses + delta.decode_reuses > 0,
                "data rounds must be served from the pools"
            );
            assert_eq!(
                delta.decode_allocations, 0,
                "steady state drew a fresh decode scratch"
            );
            assert!(
                delta.decode_reuses > 0,
                "data rounds must reuse decode scratch"
            );
        }
    }

    #[test]
    fn borrowed_placement_recycles_scratch_but_into_vec_keeps_it() {
        // Borrow-only placement must reach a zero-allocation receive steady state; taking
        // ownership with into_vec removes one scratch from circulation per message, so
        // the pool has to allocate a replacement on the next round.
        let out = run(MachineConfig::new(2), |rank| {
            let me = rank.rank();
            let round = |rank: &mut Rank, keep: bool| -> Vec<u64> {
                let plan = ExchangePlan::dense(me, vec![3; 2]);
                let sends: Vec<Vec<u64>> = vec![vec![me as u64; 3]; 2];
                let mut kept = Vec::new();
                alltoallv(rank, &plan, &sends, |_src, v| {
                    if keep {
                        kept = v.into_vec();
                    } else {
                        assert_eq!(v.len(), 3);
                        assert_eq!(v.as_slice(), &v[..]);
                    }
                });
                kept
            };
            // Warm both pools, then measure a borrow-only window and a keeping window.
            round(rank, false);
            round(rank, false);
            let warm = rank.pool_stats();
            for _ in 0..4 {
                round(rank, false);
            }
            let borrowed = rank.pool_stats().since(&warm);
            let warm = rank.pool_stats();
            let mut kept = Vec::new();
            for _ in 0..4 {
                kept = round(rank, true);
            }
            let keeping = rank.pool_stats().since(&warm);
            (borrowed, keeping, kept)
        });
        for (borrowed, keeping, kept) in &out.results {
            assert_eq!(borrowed.decode_allocations, 0);
            assert!(borrowed.decode_reuses > 0);
            assert!(
                keeping.decode_allocations > 0,
                "into_vec must drain the scratch pool: {keeping:?}"
            );
            assert_eq!(kept.len(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "does not match the plan")]
    fn mismatched_buffer_length_is_rejected() {
        let _ = run(MachineConfig::new(2), |rank| {
            let me = rank.rank();
            let plan = ExchangePlan::sparse(me, vec![0, 2], vec![0, 2]);
            // Declared two elements, packed one.
            let sends: Vec<Vec<u8>> = vec![Vec::new(), vec![1]];
            alltoallv(rank, &plan, &sends, |_s, _v| {});
        });
    }

    #[test]
    fn split_phase_matches_blocking_and_allows_compute_in_flight() {
        // Ring exchange executed split-phase: sends posted, local "compute" runs, then
        // the receives are drained.  The results and stats must match the blocking form.
        let out = run(MachineConfig::new(4), |rank| {
            let me = rank.rank();
            let n = rank.nprocs();
            let next = (me + 1) % n;
            let prev = (me + n - 1) % n;
            let mut send_counts = vec![0; n];
            send_counts[next] = 3;
            let mut recv_counts = vec![0; n];
            recv_counts[prev] = 3;
            let plan = ExchangePlan::sparse(me, send_counts, recv_counts);
            let mut sends: Vec<Vec<u32>> = vec![Vec::new(); n];
            sends[next] = vec![me as u32; 3];
            let handle = start_alltoallv(rank, plan.clone(), &sends);
            assert_eq!(handle.send_stats().msgs_sent, 1);
            // Compute while the exchange is in flight.
            rank.charge_compute(10.0);
            let mut got: Vec<(usize, Vec<u32>)> = Vec::new();
            let split_stats = handle.finish(rank, |src, v| got.push((src, v.into_vec())));

            let mut blocking: Vec<(usize, Vec<u32>)> = Vec::new();
            let blocking_stats = alltoallv(rank, &plan, &sends, |src, v| {
                blocking.push((src, v.into_vec()));
            });
            (got, split_stats, blocking, blocking_stats)
        });
        for (me, (got, split_stats, blocking, blocking_stats)) in out.results.iter().enumerate() {
            let prev = (me + 3) % 4;
            assert_eq!(got, &vec![(prev, vec![prev as u32; 3])]);
            assert_eq!(got, blocking);
            assert_eq!(split_stats, blocking_stats);
        }
    }

    #[test]
    fn two_in_flight_exchanges_do_not_cross() {
        // Start two exchanges back to back, finish them out of band: epoch tagging must
        // route each message to the exchange that started it, even with both in flight.
        let out = run(MachineConfig::new(3), |rank| {
            let me = rank.rank();
            let n = rank.nprocs();
            let plan1 = ExchangePlan::dense(me, vec![1; n]);
            let plan2 = ExchangePlan::dense(me, vec![2; n]);
            let h1 = start_alltoallv_with(rank, plan1, |_p, buf: &mut PackBuf<'_, u64>| {
                buf.push(100 + me as u64);
            });
            let h2 = start_alltoallv_with(rank, plan2, |_p, buf: &mut PackBuf<'_, u64>| {
                buf.extend_from_slice(&[200 + me as u64, 300 + me as u64]);
            });
            assert_eq!(h2.epoch(), h1.epoch() + 1);
            // Finish in reverse start order: matching is per-epoch, not FIFO.
            let mut second: Vec<(usize, Vec<u64>)> = Vec::new();
            h2.finish(rank, |src, v| second.push((src, v.into_vec())));
            let mut first: Vec<(usize, Vec<u64>)> = Vec::new();
            h1.finish(rank, |src, v| first.push((src, v.into_vec())));
            first.sort_unstable();
            second.sort_unstable();
            (first, second)
        });
        for (me, (first, second)) in out.results.iter().enumerate() {
            let expected_first: Vec<(usize, Vec<u64>)> =
                (0..3).map(|src| (src, vec![100 + src as u64])).collect();
            let expected_second: Vec<(usize, Vec<u64>)> = (0..3)
                .map(|src| (src, vec![200 + src as u64, 300 + src as u64]))
                .collect();
            assert_eq!(first, &expected_first, "rank {me}: first exchange crossed");
            assert_eq!(
                second, &expected_second,
                "rank {me}: second exchange crossed"
            );
        }
    }

    #[test]
    fn fused_plan_scales_counts_but_not_messages() {
        let plan = ExchangePlan::sparse(0, vec![0, 2, 0, 5], vec![0, 0, 3, 0]);
        let fused = plan.fused(3);
        assert_eq!(fused.send_counts(), vec![0, 6, 0, 15]);
        assert_eq!(fused.recv_counts(), vec![0, 0, 9, 0]);
        assert_eq!(fused.send_message_count(), plan.send_message_count());
        assert_eq!(fused.recv_message_count(), plan.recv_message_count());
        assert_eq!(plan.fused(1), plan);
    }

    #[test]
    fn alltoallv_multi_moves_lanes_in_one_message() {
        // Each rank sends 2 logical elements to every peer, fused over 3 lanes: one
        // message per pair carrying x0 x1 y0 y1 z0 z1 (contiguous per-lane blocks), 1/3
        // the messages of three single-lane exchanges of the same data.
        let out = run(MachineConfig::new(3), |rank| {
            let me = rank.rank();
            let n = rank.nprocs();
            let plan = ExchangePlan::sparse(
                me,
                (0..n).map(|p| if p == me { 0 } else { 2 }).collect(),
                (0..n).map(|p| if p == me { 0 } else { 2 }).collect(),
            );
            let mut got: Vec<(usize, Vec<f64>)> = Vec::new();
            let stats = alltoallv_multi(
                rank,
                &plan,
                3,
                |_p, buf: &mut PackBuf<'_, f64>| {
                    for lane in 0..3 {
                        for k in 0..2 {
                            buf.push((me * 100 + k * 10 + lane) as f64);
                        }
                    }
                },
                |src, v| got.push((src, v.into_vec())),
            );
            got.sort_by_key(|(src, _)| *src);
            (got, stats)
        });
        for (me, (got, stats)) in out.results.iter().enumerate() {
            assert_eq!(stats.msgs_sent, 2, "one fused message per peer");
            assert_eq!(stats.bytes_sent, 2 * 6 * 8, "six lanes-worth per peer");
            for (src, values) in got {
                assert_ne!(*src, me);
                let expected: Vec<f64> = (0..3)
                    .flat_map(|lane| (0..2).map(move |k| (src * 100 + k * 10 + lane) as f64))
                    .collect();
                assert_eq!(values, &expected, "per-lane blocks preserved");
                // The blocked layout is exactly the transpose of the historical
                // element-major interleave (x0 y0 z0 x1 y1 z1): same data, rearranged —
                // pinned at the decode boundary so a layout change on either side of
                // the wire cannot slip through.
                let element_major: Vec<f64> = (0..2)
                    .flat_map(|k| (0..3).map(move |lane| (src * 100 + k * 10 + lane) as f64))
                    .collect();
                for lane in 0..3 {
                    for k in 0..2 {
                        assert_eq!(values[lane * 2 + k], element_major[k * 3 + lane]);
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "in exchange epoch 0")]
    fn unexpected_message_panic_names_the_epochs() {
        // Rank 1 sends to rank 0, but rank 0's plan says nothing comes from rank 1 (it
        // waits on rank 2, which never sends): the non-collective sequence must be
        // diagnosed with the epoch in the panic message.
        let _ = run(MachineConfig::new(3), |rank| {
            let me = rank.rank();
            match me {
                0 => {
                    let plan = ExchangePlan::from_parts(
                        0,
                        vec![None; 3],
                        vec![RecvSpec::None, RecvSpec::None, RecvSpec::Exact(1)],
                    );
                    alltoallv_with(rank, &plan, |_p, _b: &mut PackBuf<'_, u8>| {}, |_s, _v| {});
                }
                1 => {
                    let plan = ExchangePlan::sparse(1, vec![1, 0, 0], vec![0; 3]);
                    alltoallv_with(
                        rank,
                        &plan,
                        |_p, b: &mut PackBuf<'_, u8>| b.push(7),
                        |_s, _v| {},
                    );
                }
                _ => {}
            }
        });
    }

    #[test]
    #[should_panic(expected = "dropped without finish")]
    fn dropping_an_unfinished_handle_panics() {
        let _ = run(MachineConfig::new(2), |rank| {
            let me = rank.rank();
            let plan = ExchangePlan::sparse(me, vec![0; 2], vec![0; 2]);
            let handle: ExchangeHandle<u8> = start_alltoallv_with(rank, plan, |_p, _b| {});
            drop(handle);
        });
    }

    #[test]
    #[should_panic(expected = "dropped without finish")]
    fn dropping_an_unfinished_handle_panics_on_shared_backend() {
        // The split-phase drop guard is backend-independent: losing a finish() on the
        // zero-copy transport must be refused exactly like on the modeled one.
        let cfg = MachineConfig::new(2).with_backend(ExchangeBackend::SharedMem);
        let _ = run(cfg, |rank| {
            let me = rank.rank();
            let plan = ExchangePlan::sparse(me, vec![0; 2], vec![0; 2]);
            let handle: ExchangeHandle<u8> = start_alltoallv_with(rank, plan, |_p, _b| {});
            drop(handle);
        });
    }

    #[test]
    #[should_panic(expected = "exchange epoch 0")]
    fn epoch_mismatch_panics_on_shared_backend() {
        // Same non-collective sequence as `unexpected_message_panic_names_the_epochs`,
        // pinned to the shared-memory fabric: a message from a source the epoch-0 plan
        // never listed must be diagnosed with the epoch on this transport too.
        let cfg = MachineConfig::new(3).with_backend(ExchangeBackend::SharedMem);
        let _ = run(cfg, |rank| {
            let me = rank.rank();
            match me {
                0 => {
                    let plan = ExchangePlan::from_parts(
                        0,
                        vec![None; 3],
                        vec![RecvSpec::None, RecvSpec::None, RecvSpec::Exact(1)],
                    );
                    alltoallv_with(rank, &plan, |_p, _b: &mut PackBuf<'_, u8>| {}, |_s, _v| {});
                }
                1 => {
                    let plan = ExchangePlan::sparse(1, vec![1, 0, 0], vec![0; 3]);
                    alltoallv_with(
                        rank,
                        &plan,
                        |_p, b: &mut PackBuf<'_, u8>| b.push(7),
                        |_s, _v| {},
                    );
                }
                _ => {}
            }
        });
    }

    #[test]
    fn split_phase_steady_loop_stays_allocation_free() {
        // A start/compute/finish loop must reach the same zero-allocation fixed point as
        // the blocking loops: the staged self scratch and every receive scratch are
        // recycled at finish.
        let out = run(MachineConfig::new(3), |rank| {
            let me = rank.rank();
            let n = rank.nprocs();
            let round = |rank: &mut Rank| {
                let plan = ExchangePlan::dense(me, vec![2; n]);
                let handle = start_alltoallv_with(rank, plan, |p, buf: &mut PackBuf<'_, u64>| {
                    buf.extend_from_slice(&[me as u64, p as u64]);
                });
                rank.charge_compute(1.0);
                handle.finish(rank, |_src, v| assert_eq!(v.len(), 2));
            };
            round(rank);
            let warm = rank.pool_stats();
            for _ in 0..8 {
                round(rank);
            }
            rank.pool_stats().since(&warm)
        });
        for delta in &out.results {
            assert_eq!(delta.allocations, 0, "split-phase drew a fresh pack buffer");
            assert_eq!(
                delta.decode_allocations, 0,
                "split-phase drew fresh decode scratch"
            );
            assert!(delta.reuses + delta.decode_reuses > 0);
            assert!(delta.decode_reuses > 0);
        }
    }

    /// One gather-shaped permutation round: every rank sends 3 elements to `me+1`,
    /// 2 to `me-1`, and keeps 1 for itself, with fixed source offsets and
    /// destination slots.  Returns the filled destination and the exchange stats.
    fn permute_round(rank: &mut Rank) -> (Vec<f64>, ExchangeStats) {
        let me = rank.rank();
        let n = rank.nprocs();
        let next = (me + 1) % n;
        let prev = (me + n - 1) % n;
        let src: Vec<f64> = (0..6).map(|i| (me * 10 + i) as f64).collect();
        let mut send_counts = vec![0usize; n];
        send_counts[next] = 3;
        send_counts[prev] = 2;
        send_counts[me] = 1;
        let mut recv_counts = vec![0usize; n];
        recv_counts[prev] = 3;
        recv_counts[next] = 2;
        let plan = ExchangePlan::sparse(me, send_counts.clone(), recv_counts);
        let mut send_lists: Vec<Vec<u32>> = vec![Vec::new(); n];
        send_lists[next] = vec![0, 2, 4];
        send_lists[prev] = vec![1, 3];
        send_lists[me] = vec![5];
        let mut perm_lists: Vec<Vec<u32>> = vec![Vec::new(); n];
        perm_lists[prev] = vec![0, 1, 2];
        perm_lists[next] = vec![3, 4];
        perm_lists[me] = vec![5];
        let mut dst = vec![f64::NAN; 6];
        let stats = alltoallv_permute(rank, &plan, &src, &send_lists, &mut dst, &perm_lists);
        (dst, stats)
    }

    #[test]
    fn permute_exchange_matches_across_backends() {
        // The permutation engine's direct (zero-copy window) arm on SharedMem must be
        // observably identical to the classic modeled path: same delivered values, same
        // ExchangeStats, same hand-computed expectation.
        let run_backend = |backend| {
            let out = run(MachineConfig::new(4).with_backend(backend), permute_round);
            out.results
        };
        let modeled = run_backend(ExchangeBackend::Modeled);
        let shared = run_backend(ExchangeBackend::SharedMem);
        assert_eq!(
            modeled, shared,
            "backends disagree on a permutation exchange"
        );
        for (me, (dst, stats)) in modeled.iter().enumerate() {
            let next = (me + 1) % 4;
            let prev = (me + 3) % 4;
            // prev sent its offsets [0, 2, 4] into slots [0, 1, 2]; next sent
            // offsets [1, 3] into slots [3, 4]; self kept offset 5 in slot 5.
            let expect = vec![
                (prev * 10) as f64,
                (prev * 10 + 2) as f64,
                (prev * 10 + 4) as f64,
                (next * 10 + 1) as f64,
                (next * 10 + 3) as f64,
                (me * 10 + 5) as f64,
            ];
            assert_eq!(dst, &expect, "rank {me}: wrong gathered values");
            assert_eq!(stats.msgs_sent, 2);
            assert_eq!(stats.msgs_received, 2);
            assert_eq!(stats.bytes_sent, 5 * 8);
            assert_eq!(stats.bytes_received, 5 * 8);
        }
    }

    #[test]
    fn direct_permute_steady_loop_stays_allocation_free() {
        // The zero-copy window arm must hit the same allocation fixed point as the
        // classic engine: direct deliveries touch no buffers at all, and any fallback
        // messages draw from / return to the typed scratch pool.
        let cfg = MachineConfig::new(4).with_backend(ExchangeBackend::SharedMem);
        let out = run(cfg, |rank| {
            permute_round(rank);
            let warm = rank.pool_stats();
            for _ in 0..8 {
                permute_round(rank);
            }
            rank.pool_stats().since(&warm)
        });
        for delta in &out.results {
            assert_eq!(
                delta.allocations, 0,
                "direct permute drew a fresh pack buffer"
            );
            assert_eq!(
                delta.decode_allocations, 0,
                "direct permute drew fresh decode scratch"
            );
        }
    }
}
