//! # mpsim — a simulated distributed-memory message-passing machine
//!
//! The SC'94 CHAOS paper evaluates its runtime on an Intel iPSC/860 hypercube with up to
//! 128 processors.  This crate provides the substrate that stands in for that machine: an
//! SPMD execution model in which every *rank* runs the same closure on its own OS thread,
//! owns its own private memory, and communicates with other ranks **only** through typed
//! messages.
//!
//! Two kinds of time are tracked:
//!
//! * **Wall-clock** time of the host — irrelevant for reproducing the paper's *tables*
//!   (the host is a shared-memory machine, not a 128-node hypercube) but the whole point
//!   of the [`shared`] backend: with [`ExchangeBackend::SharedMem`] ranks exchange
//!   through lock-free shared-memory rings and POD payloads skip the codec, so host
//!   wall-clock becomes a meaningful throughput measurement (reported by the benchmark
//!   harness, never by the machine itself).
//! * **Modeled** time, accumulated per rank by a [`cost::CostModel`]: every message is
//!   charged a start-up latency plus a per-byte transfer cost, and application code reports
//!   its computational work in abstract *work units* via [`Rank::charge_compute`].  The
//!   model parameters default to iPSC/860-class values so that the relative shapes of the
//!   paper's tables (scaling curves, crossover points, preprocessing-to-execution ratios)
//!   are reproduced on commodity hardware.
//!
//! The communication API is deliberately MPI-flavoured (tagged point-to-point send/receive,
//! barrier, all-to-all, all-gather, all-reduce) because that is the abstraction the original
//! CHAOS library was written against.  Underneath, every collective and every
//! schedule-driven transfer executes on the unified [`exchange`] engine: an
//! [`ExchangePlan`] describes one personalised all-to-all and [`alltoallv`] moves the
//! bytes, charges the cost model, and reports an [`ExchangeStats`].
//!
//! ## Quick example
//!
//! ```
//! use mpsim::{MachineConfig, run};
//!
//! // Four ranks each contribute their rank id; the sum is reduced everywhere.
//! let outcome = run(MachineConfig::new(4), |rank| {
//!     rank.all_reduce_sum(rank.rank() as f64)
//! });
//! assert!(outcome.results.iter().all(|&s| s == 6.0));
//! ```

#![deny(missing_docs)]

pub mod barrier;
pub mod collectives;
pub mod comm;
pub mod cost;
pub mod exchange;
pub mod ledger;
pub mod machine;
pub mod message;
pub mod proto;
pub mod shared;
pub mod stats;
pub mod topology;

pub use cost::{CostModel, TimeSnapshot};
pub use exchange::{
    alltoallv, alltoallv_multi, alltoallv_permute, alltoallv_replicated, alltoallv_with,
    route_sparse, start_alltoallv, start_alltoallv_with, ExchangeHandle, ExchangePlan,
    ExchangeStats, PackBuf, Placed, RecvSpec,
};
pub use ledger::LedgerEntry;
pub use machine::{run, Machine, Rank, RunOutcome};
pub use message::Element;
pub use shared::ExchangeBackend;
pub use stats::{PackPoolStats, RankStats};
pub use topology::{tree_rounds, BinomialTree, Dissemination, GroupMap, MachineConfig};
