//! A reusable sense-reversing barrier, plus the tag space of the machine's
//! message-based barrier.
//!
//! [`crate::machine::Rank::barrier`] is *not* built on the condvar [`Barrier`] here: it
//! runs a dissemination barrier — `ceil(log2 P)` rounds of empty messages over the
//! [`crate::topology::Dissemination`] schedule — matching the log-depth shape its
//! modeled cost (`sync_latency × ceil(log2 P)`) claims.  The condvar `Barrier` remains
//! as a host-side utility for code coordinating OS threads outside a simulated machine.

use std::sync::{Condvar, Mutex};

/// Base tag of the message-based barrier's dissemination rounds: barrier episode `i`
/// uses tag `BARRIER_TAG_BASE + i`.  Sits in the reserved tag space, below the
/// exchange engine's [`crate::exchange::EXCHANGE_TAG_BASE`] (which is `1 << 20` above
/// the reserved base).
pub(crate) const BARRIER_TAG_BASE: u64 = crate::collectives::RESERVED_TAG_BASE + (1 << 19);

struct BarrierState {
    count: usize,
    sense: bool,
}

/// Sense-reversing barrier.  All `nprocs` ranks must call [`Barrier::wait`] before any of
/// them returns; the barrier is immediately reusable for the next episode.
pub struct Barrier {
    nprocs: usize,
    state: Mutex<BarrierState>,
    condvar: Condvar,
}

impl Barrier {
    /// Create a barrier for `nprocs` participants.
    pub fn new(nprocs: usize) -> Self {
        assert!(nprocs > 0, "a barrier needs at least one participant");
        Self {
            nprocs,
            state: Mutex::new(BarrierState {
                count: 0,
                sense: false,
            }),
            condvar: Condvar::new(),
        }
    }

    /// Number of participants.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Block until all participants have arrived.  Returns `true` on exactly one rank per
    /// episode (the last arriver), mirroring `std::sync::Barrier`'s leader election.
    pub fn wait(&self) -> bool {
        let mut state = self.state.lock().expect("barrier mutex poisoned");
        let my_sense = !state.sense;
        state.count += 1;
        if state.count == self.nprocs {
            state.count = 0;
            state.sense = my_sense;
            self.condvar.notify_all();
            true
        } else {
            while state.sense != my_sense {
                state = self.condvar.wait(state).expect("barrier mutex poisoned");
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn single_participant_never_blocks() {
        let b = Barrier::new(1);
        for _ in 0..10 {
            assert!(b.wait());
        }
    }

    #[test]
    fn all_threads_cross_each_episode_together() {
        let nprocs = 8;
        let episodes = 50;
        let barrier = Arc::new(Barrier::new(nprocs));
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..nprocs)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    for episode in 0..episodes {
                        counter.fetch_add(1, Ordering::SeqCst);
                        barrier.wait();
                        // After the barrier, every rank must observe all arrivals of this
                        // episode (and none of the next, which has not started yet for us).
                        let seen = counter.load(Ordering::SeqCst);
                        assert!(seen >= (episode + 1) * nprocs);
                        barrier.wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), nprocs * episodes);
    }

    #[test]
    fn exactly_one_leader_per_episode() {
        let nprocs = 6;
        let barrier = Arc::new(Barrier::new(nprocs));
        let leaders = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..nprocs)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let leaders = Arc::clone(&leaders);
                thread::spawn(move || {
                    for _ in 0..20 {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::SeqCst), 20);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        let _ = Barrier::new(0);
    }
}
