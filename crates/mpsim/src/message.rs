//! Typed message payloads.
//!
//! Ranks exchange byte buffers; the [`Element`] trait describes fixed-width, `Copy` values
//! that can be written to and read from such buffers in little-endian order.  This is the
//! minimal machinery the CHAOS executor needs: data arrays in the paper hold REAL*8 /
//! INTEGER values (and, in the applications, small fixed-size records such as particle
//! velocities), all of which encode to a fixed number of bytes.
//!
//! The codec is hand-rolled instead of pulling in `serde`: the element types are tiny and
//! fixed-width, and keeping the encoding transparent makes the byte-count accounting used
//! by the cost model exact.

/// A fixed-width value that can travel in a message payload.
pub trait Element: Copy + Send + 'static {
    /// Encoded size in bytes.  Must be the same for every value of the type.
    const SIZE: usize;

    /// Append the little-endian encoding of `self` to `buf`.
    fn write_le(&self, buf: &mut Vec<u8>);

    /// Decode a value from exactly `Self::SIZE` bytes.
    ///
    /// # Panics
    /// Panics if `bytes.len() < Self::SIZE`.
    fn read_le(bytes: &[u8]) -> Self;

    /// Append the little-endian encodings of every value in `values` to `buf`.
    ///
    /// This is the bulk entry point of the codec: the default is the per-element loop,
    /// and primitives (plus fixed arrays of primitives) override it with chunk-level code
    /// the compiler can vectorise.  Overrides must stay byte-for-byte identical to the
    /// per-element default — the equivalence tests pin this for every implementation.
    #[inline]
    fn write_le_slice(values: &[Self], buf: &mut Vec<u8>) {
        buf.reserve(values.len() * Self::SIZE);
        for v in values {
            v.write_le(buf);
        }
    }

    /// Whether the in-memory representation of this type **is** its little-endian
    /// encoding: `size_of::<Self>() == Self::SIZE` (no padding) and the native byte
    /// order of every lane is little-endian.
    ///
    /// When this returns `true`, the encode/decode round-trip through
    /// [`Element::write_le_slice`] / [`Element::read_le_into`] is a plain copy — so a
    /// transport that can hand over typed buffers directly (the shared-memory backend's
    /// `Vec<T>` pointer move) may skip the codec entirely and remain byte-identical to
    /// the encoded path.  The default is `false` (always safe); implementations must
    /// only return `true` when the identity genuinely holds — `pod_identity_holds` in
    /// this module's tests pins the contract for every `true` implementation.
    #[inline]
    fn is_pod_le() -> bool {
        false
    }

    /// Decode a whole payload, appending the elements to `out`.
    ///
    /// The bulk counterpart of [`Element::read_le`]: the default is the per-element loop;
    /// overrides must decode exactly what the default decodes.
    ///
    /// # Panics
    /// Panics if `bytes.len()` is not a multiple of `Self::SIZE`.
    #[inline]
    fn read_le_into(bytes: &[u8], out: &mut Vec<Self>) {
        assert!(
            bytes.len().is_multiple_of(Self::SIZE),
            "payload length {} is not a multiple of element size {}",
            bytes.len(),
            Self::SIZE
        );
        out.reserve(bytes.len() / Self::SIZE);
        for chunk in bytes.chunks_exact(Self::SIZE) {
            out.push(Self::read_le(chunk));
        }
    }
}

macro_rules! impl_element_primitive {
    ($($t:ty),* $(,)?) => {
        $(
            impl Element for $t {
                const SIZE: usize = std::mem::size_of::<$t>();

                // On little-endian targets `to_le_bytes` is the identity and primitives
                // have no padding, so memory repr == wire repr.
                #[inline]
                fn is_pod_le() -> bool {
                    cfg!(target_endian = "little")
                }

                #[inline]
                fn write_le(&self, buf: &mut Vec<u8>) {
                    buf.extend_from_slice(&self.to_le_bytes());
                }

                #[inline]
                fn read_le(bytes: &[u8]) -> Self {
                    let mut raw = [0u8; std::mem::size_of::<$t>()];
                    raw.copy_from_slice(&bytes[..std::mem::size_of::<$t>()]);
                    <$t>::from_le_bytes(raw)
                }

                #[inline]
                fn write_le_slice(values: &[Self], buf: &mut Vec<u8>) {
                    const S: usize = std::mem::size_of::<$t>();
                    // Resize once, then fill fixed-width lanes: on little-endian targets
                    // `to_le_bytes` is the identity and the loop compiles to a straight
                    // copy the autovectoriser handles.
                    let start = buf.len();
                    buf.resize(start + values.len() * S, 0);
                    for (dst, v) in buf[start..].chunks_exact_mut(S).zip(values) {
                        dst.copy_from_slice(&v.to_le_bytes());
                    }
                }

                #[inline]
                fn read_le_into(bytes: &[u8], out: &mut Vec<Self>) {
                    const S: usize = std::mem::size_of::<$t>();
                    assert!(
                        bytes.len().is_multiple_of(S),
                        "payload length {} is not a multiple of element size {}",
                        bytes.len(),
                        S
                    );
                    out.reserve(bytes.len() / S);
                    for chunk in bytes.chunks_exact(S) {
                        let mut raw = [0u8; S];
                        raw.copy_from_slice(chunk);
                        out.push(<$t>::from_le_bytes(raw));
                    }
                }
            }
        )*
    };
}

impl_element_primitive!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

impl Element for usize {
    const SIZE: usize = 8;

    // `usize` travels as a u64, so the identity additionally needs a 64-bit target.
    #[inline]
    fn is_pod_le() -> bool {
        cfg!(target_endian = "little") && std::mem::size_of::<usize>() == 8
    }

    #[inline]
    fn write_le(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(*self as u64).to_le_bytes());
    }

    #[inline]
    fn read_le(bytes: &[u8]) -> Self {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&bytes[..8]);
        u64::from_le_bytes(raw) as usize
    }

    #[inline]
    fn write_le_slice(values: &[Self], buf: &mut Vec<u8>) {
        let start = buf.len();
        buf.resize(start + values.len() * 8, 0);
        for (dst, v) in buf[start..].chunks_exact_mut(8).zip(values) {
            dst.copy_from_slice(&(*v as u64).to_le_bytes());
        }
    }

    #[inline]
    fn read_le_into(bytes: &[u8], out: &mut Vec<Self>) {
        assert!(
            bytes.len().is_multiple_of(8),
            "payload length {} is not a multiple of element size 8",
            bytes.len()
        );
        out.reserve(bytes.len() / 8);
        for chunk in bytes.chunks_exact(8) {
            let mut raw = [0u8; 8];
            raw.copy_from_slice(chunk);
            out.push(u64::from_le_bytes(raw) as usize);
        }
    }
}

impl<T: Element, const N: usize> Element for [T; N] {
    const SIZE: usize = T::SIZE * N;

    // Arrays insert no padding, so `[T; N]` inherits the identity from `T`.
    #[inline]
    fn is_pod_le() -> bool {
        T::is_pod_le()
    }

    #[inline]
    fn write_le(&self, buf: &mut Vec<u8>) {
        for v in self {
            v.write_le(buf);
        }
    }

    #[inline]
    fn read_le(bytes: &[u8]) -> Self {
        std::array::from_fn(|i| T::read_le(&bytes[i * T::SIZE..]))
    }

    #[inline]
    fn write_le_slice(values: &[Self], buf: &mut Vec<u8>) {
        // `[[T; N]]` flattens to `[T]` with the same memory layout, so a slice of fixed
        // arrays encodes through the inner type's bulk path (vectorised for primitives).
        T::write_le_slice(values.as_flattened(), buf);
    }

    #[inline]
    fn read_le_into(bytes: &[u8], out: &mut Vec<Self>) {
        assert!(
            bytes.len().is_multiple_of(Self::SIZE),
            "payload length {} is not a multiple of element size {}",
            bytes.len(),
            Self::SIZE
        );
        out.reserve(bytes.len() / Self::SIZE);
        // Decode the flattened lane stream: every lane handed to `T::read_le` is an
        // exact `T::SIZE` chunk (not an unbounded tail slice as in the per-element
        // default), so the inner bounds checks vanish.  `std::array::from_fn` calls its
        // closure in ascending index order, which is what keeps the lane iterator and
        // the array slots aligned.
        for chunk in bytes.chunks_exact(Self::SIZE) {
            let mut lanes = chunk.chunks_exact(T::SIZE);
            out.push(std::array::from_fn(|_| {
                T::read_le(lanes.next().expect("flattened array lane missing"))
            }));
        }
    }
}

impl<A: Element, B: Element> Element for (A, B) {
    const SIZE: usize = A::SIZE + B::SIZE;

    #[inline]
    fn write_le(&self, buf: &mut Vec<u8>) {
        self.0.write_le(buf);
        self.1.write_le(buf);
    }

    #[inline]
    fn read_le(bytes: &[u8]) -> Self {
        (A::read_le(bytes), B::read_le(&bytes[A::SIZE..]))
    }
}

impl<A: Element, B: Element, C: Element> Element for (A, B, C) {
    const SIZE: usize = A::SIZE + B::SIZE + C::SIZE;

    #[inline]
    fn write_le(&self, buf: &mut Vec<u8>) {
        self.0.write_le(buf);
        self.1.write_le(buf);
        self.2.write_le(buf);
    }

    #[inline]
    fn read_le(bytes: &[u8]) -> Self {
        (
            A::read_le(bytes),
            B::read_le(&bytes[A::SIZE..]),
            C::read_le(&bytes[A::SIZE + B::SIZE..]),
        )
    }
}

/// Implement [`Element`] for a plain struct whose fields are all `Element`s.
///
/// ```
/// use mpsim::impl_element_struct;
///
/// #[derive(Clone, Copy, Debug, PartialEq)]
/// struct Particle { x: f64, v: f64, cell: u32 }
/// impl_element_struct!(Particle { x: f64, v: f64, cell: u32 });
///
/// let p = Particle { x: 1.0, v: -2.0, cell: 7 };
/// let bytes = mpsim::message::encode_slice(&[p]);
/// assert_eq!(mpsim::message::decode_vec::<Particle>(&bytes), vec![p]);
/// ```
#[macro_export]
macro_rules! impl_element_struct {
    ($name:ident { $($field:ident : $fty:ty),+ $(,)? }) => {
        impl $crate::message::Element for $name {
            const SIZE: usize = 0 $(+ <$fty as $crate::message::Element>::SIZE)+;

            #[inline]
            fn write_le(&self, buf: &mut Vec<u8>) {
                $( $crate::message::Element::write_le(&self.$field, buf); )+
            }

            #[inline]
            fn read_le(bytes: &[u8]) -> Self {
                let mut offset = 0usize;
                $(
                    let $field = <$fty as $crate::message::Element>::read_le(&bytes[offset..]);
                    offset += <$fty as $crate::message::Element>::SIZE;
                )+
                let _ = offset;
                Self { $($field),+ }
            }
        }
    };
}

/// Encode a slice of elements into a contiguous byte buffer.
///
/// A thin wrapper over [`Element::write_le_slice`] (kept for tests, docs and callers that
/// want an owned buffer); the exchange engine and [`crate::Rank::send_slice`] use the bulk
/// hook directly on pooled buffers.
pub fn encode_slice<T: Element>(values: &[T]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(values.len() * T::SIZE);
    T::write_le_slice(values, &mut buf);
    buf
}

/// Decode a byte buffer produced by [`encode_slice`] back into a vector of elements.
///
/// A thin wrapper over [`Element::read_le_into`] into a fresh vector; the exchange engine
/// decodes into pooled scratch buffers instead.
///
/// # Panics
/// Panics if `bytes.len()` is not a multiple of `T::SIZE`.
pub fn decode_vec<T: Element>(bytes: &[u8]) -> Vec<T> {
    let mut out = Vec::new();
    T::read_le_into(bytes, &mut out);
    out
}

/// The contents of one in-flight message.
///
/// The modeled transport always ships encoded bytes; the shared-memory transport ships
/// the *typed* buffer itself when the element type satisfies [`Element::is_pod_le`] (the
/// encode/decode round-trip would be an identity copy, so handing over the `Vec<T>` is
/// byte-equivalent and allocation-free).  Cost accounting is uniform: both variants know
/// their encoded byte length, and the cost model is charged from that, never from how the
/// payload physically travelled.
pub enum Payload {
    /// Little-endian encoded bytes (the universal representation).
    Bytes(Vec<u8>),
    /// A typed buffer moved without encoding (POD fast path of the shared-memory
    /// backend).
    Typed(TypedPayload),
}

impl Payload {
    /// Encoded byte length of the payload — what the cost model and the stats counters
    /// charge, identical across variants.
    pub fn byte_len(&self) -> usize {
        match self {
            Payload::Bytes(b) => b.len(),
            Payload::Typed(t) => t.byte_len,
        }
    }

    /// True when the payload carries no elements.
    pub fn is_empty(&self) -> bool {
        self.byte_len() == 0
    }

    /// The encoded bytes, for transports and callers that only speak bytes.
    ///
    /// # Panics
    /// Panics if the payload is typed — byte-only receive paths must never see the
    /// typed fast path (the exchange engine keeps the two separate by construction).
    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            Payload::Bytes(b) => b,
            Payload::Typed(_) => {
                panic!("typed payload reached a byte-only receive path")
            }
        }
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Payload::Bytes(b) => f.debug_tuple("Bytes").field(&b.len()).finish(),
            Payload::Typed(t) => f
                .debug_struct("Typed")
                .field("elems", &t.elem_count)
                .field("bytes", &t.byte_len)
                .finish(),
        }
    }
}

/// A type-erased `Vec<T>` travelling as a message payload (see [`Payload::Typed`]).
pub struct TypedPayload {
    elem_count: usize,
    byte_len: usize,
    data: Box<dyn std::any::Any + Send>,
}

impl TypedPayload {
    /// Wrap a typed buffer for transport.  Only meaningful for
    /// [`Element::is_pod_le`] types; the caller (the exchange engine) enforces that.
    pub fn new<T: Element>(values: Vec<T>) -> Self {
        debug_assert!(T::is_pod_le(), "typed transport requires a POD-LE element");
        TypedPayload {
            elem_count: values.len(),
            byte_len: values.len() * T::SIZE,
            data: Box::new(values),
        }
    }

    /// Number of elements in the buffer.
    pub fn elem_count(&self) -> usize {
        self.elem_count
    }

    /// Recover the typed buffer.
    ///
    /// # Panics
    /// Panics if `T` is not the type the payload was created with — which would mean
    /// two different exchanges matched the same epoch tag, a protocol violation worth
    /// failing loudly on.
    pub fn into_values<T: Element>(self) -> Vec<T> {
        *self
            .data
            .downcast::<Vec<T>>()
            .unwrap_or_else(|_| panic!("typed payload holds a different element type"))
    }
}

/// A message in flight between two ranks.
#[derive(Debug)]
pub struct Envelope {
    /// Sending rank.
    pub from: usize,
    /// Application-level tag used for selective receive.
    pub tag: u64,
    /// The payload — encoded bytes or a typed fast-path buffer.
    pub payload: Payload,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trip() {
        let xs: Vec<f64> = vec![0.0, -1.5, 3.25, f64::MAX, f64::MIN_POSITIVE];
        assert_eq!(decode_vec::<f64>(&encode_slice(&xs)), xs);
        let ys: Vec<i32> = vec![0, -1, i32::MAX, i32::MIN, 42];
        assert_eq!(decode_vec::<i32>(&encode_slice(&ys)), ys);
        let zs: Vec<usize> = vec![0, 1, usize::MAX >> 1, 1234567];
        assert_eq!(decode_vec::<usize>(&encode_slice(&zs)), zs);
    }

    #[test]
    fn array_and_tuple_round_trip() {
        let xs: Vec<[f64; 3]> = vec![[1.0, 2.0, 3.0], [-0.5, 0.0, 9.75]];
        assert_eq!(decode_vec::<[f64; 3]>(&encode_slice(&xs)), xs);
        let ps: Vec<(u32, f64)> = vec![(7, 1.25), (0, -3.5)];
        assert_eq!(decode_vec::<(u32, f64)>(&encode_slice(&ps)), ps);
        let ts: Vec<(u32, f64, i64)> = vec![(7, 1.25, -9), (0, -3.5, 11)];
        assert_eq!(decode_vec::<(u32, f64, i64)>(&encode_slice(&ts)), ts);
    }

    #[test]
    fn struct_macro_round_trip() {
        #[derive(Clone, Copy, Debug, PartialEq)]
        struct P {
            pos: [f64; 2],
            vel: [f64; 2],
            id: u64,
        }
        impl_element_struct!(P {
            pos: [f64; 2],
            vel: [f64; 2],
            id: u64
        });

        let ps = vec![
            P {
                pos: [0.0, 1.0],
                vel: [2.0, -2.0],
                id: 3,
            },
            P {
                pos: [9.5, -8.25],
                vel: [0.0, 0.125],
                id: u64::MAX,
            },
        ];
        assert_eq!(P::SIZE, 40);
        assert_eq!(decode_vec::<P>(&encode_slice(&ps)), ps);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn decode_rejects_ragged_payload() {
        let bytes = vec![0u8; 7];
        let _ = decode_vec::<f64>(&bytes);
    }

    /// Pin the bulk codec byte-for-byte against the per-element hooks: any specialised
    /// `write_le_slice`/`read_le_into` must encode and decode exactly what the
    /// element-at-a-time loop does.
    fn assert_bulk_matches_per_element<T: Element + PartialEq + std::fmt::Debug>(values: &[T]) {
        // Encode: per-element reference vs bulk, including appending to a non-empty buffer
        // (the PackBuf case — bulk writes must not disturb earlier bytes).
        let mut reference = vec![0xAB, 0xCD];
        for v in values {
            v.write_le(&mut reference);
        }
        let mut bulk = vec![0xAB, 0xCD];
        T::write_le_slice(values, &mut bulk);
        assert_eq!(reference, bulk, "bulk encode diverged from per-element");

        // Decode: per-element reference vs bulk, appending after pre-existing elements.
        let payload = &bulk[2..];
        let decoded_ref: Vec<T> = payload.chunks_exact(T::SIZE).map(T::read_le).collect();
        let mut decoded_bulk: Vec<T> = Vec::new();
        T::read_le_into(payload, &mut decoded_bulk);
        assert_eq!(
            decoded_ref, decoded_bulk,
            "bulk decode diverged from per-element"
        );
        assert_eq!(decoded_bulk, values);
        let mut appended = decoded_ref.clone();
        T::read_le_into(payload, &mut appended);
        assert_eq!(appended.len(), 2 * values.len());
        assert_eq!(&appended[values.len()..], values);
    }

    #[test]
    fn bulk_codec_matches_per_element_for_primitives() {
        assert_bulk_matches_per_element::<u8>(&[0, 1, 0x7F, 0xFF]);
        assert_bulk_matches_per_element::<i8>(&[0, -1, i8::MIN, i8::MAX]);
        assert_bulk_matches_per_element::<u16>(&[0, 1, 0xBEEF, u16::MAX]);
        assert_bulk_matches_per_element::<i16>(&[0, -2, i16::MIN, i16::MAX]);
        assert_bulk_matches_per_element::<u32>(&[0, 7, 0xDEAD_BEEF, u32::MAX]);
        assert_bulk_matches_per_element::<i32>(&[0, -3, i32::MIN, i32::MAX]);
        assert_bulk_matches_per_element::<u64>(&[0, 11, u64::MAX]);
        assert_bulk_matches_per_element::<i64>(&[0, -5, i64::MIN, i64::MAX]);
        assert_bulk_matches_per_element::<usize>(&[0, 42, usize::MAX >> 1]);
        assert_bulk_matches_per_element::<f32>(&[0.0, -1.5, f32::MAX, f32::MIN_POSITIVE]);
        assert_bulk_matches_per_element::<f64>(&[0.0, -1.5, f64::MAX, f64::MIN_POSITIVE]);
    }

    #[test]
    fn bulk_codec_matches_per_element_for_arrays_and_tuples() {
        assert_bulk_matches_per_element::<[f64; 3]>(&[[1.0, 2.0, 3.0], [-0.5, 0.0, 9.75]]);
        assert_bulk_matches_per_element::<[u32; 4]>(&[[1, 2, 3, 4], [u32::MAX, 0, 7, 9]]);
        assert_bulk_matches_per_element::<[[f64; 2]; 2]>(&[[[1.0, 2.0], [3.0, 4.0]]]);
        assert_bulk_matches_per_element::<(u32, f64)>(&[(7, 1.25), (0, -3.5)]);
        assert_bulk_matches_per_element::<(u32, f64, i64)>(&[(7, 1.25, -9), (0, -3.5, 11)]);
    }

    #[test]
    fn bulk_codec_matches_per_element_for_derive_macro_structs() {
        #[derive(Clone, Copy, Debug, PartialEq)]
        struct P {
            pos: [f64; 2],
            vel: [f64; 2],
            id: u64,
        }
        impl_element_struct!(P {
            pos: [f64; 2],
            vel: [f64; 2],
            id: u64
        });
        assert_bulk_matches_per_element::<P>(&[
            P {
                pos: [0.0, 1.0],
                vel: [2.0, -2.0],
                id: 3,
            },
            P {
                pos: [9.5, -8.25],
                vel: [0.0, 0.125],
                id: u64::MAX,
            },
        ]);
    }

    #[test]
    fn bulk_codec_handles_empty_slices() {
        assert_bulk_matches_per_element::<f64>(&[]);
        assert_bulk_matches_per_element::<[f64; 3]>(&[]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn bulk_decode_rejects_ragged_payload() {
        let bytes = vec![0u8; 13];
        let mut out: Vec<u32> = Vec::new();
        u32::read_le_into(&bytes, &mut out);
    }

    /// The [`Element::is_pod_le`] contract: every type that claims the identity must
    /// encode to exactly its in-memory bytes (same length, same contents).  Types that
    /// return `false` are unconstrained — the check is one-directional.
    fn assert_pod_identity_holds<T: Element>(values: &[T]) {
        if !T::is_pod_le() {
            return;
        }
        assert_eq!(std::mem::size_of::<T>(), T::SIZE, "POD-LE type has padding");
        let encoded = encode_slice(values);
        // SAFETY: viewing initialized `T`s as bytes is always valid — the pointer and
        // length come straight from the live slice, and the padding-free layout was
        // asserted just above.
        let native = unsafe {
            std::slice::from_raw_parts(values.as_ptr().cast::<u8>(), std::mem::size_of_val(values))
        };
        assert_eq!(encoded, native, "POD-LE encoding is not the memory repr");
    }

    #[test]
    fn pod_identity_holds() {
        assert_pod_identity_holds::<u8>(&[0, 1, 0xFF]);
        assert_pod_identity_holds::<u32>(&[0, 7, u32::MAX]);
        assert_pod_identity_holds::<i64>(&[0, -5, i64::MIN]);
        assert_pod_identity_holds::<f64>(&[0.0, -1.5, f64::MAX]);
        assert_pod_identity_holds::<usize>(&[0, 42, usize::MAX >> 1]);
        assert_pod_identity_holds::<[f64; 3]>(&[[1.0, 2.0, 3.0], [-0.5, 0.0, 9.75]]);
        assert_pod_identity_holds::<[[f64; 2]; 2]>(&[[[1.0, 2.0], [3.0, 4.0]]]);
        // Tuples may carry padding, so they must not claim the identity.
        assert!(!<(u32, f64)>::is_pod_le());
        assert!(!<(u32, f64, i64)>::is_pod_le());
    }

    #[test]
    fn typed_payload_round_trips_and_counts_bytes() {
        let p = Payload::Typed(TypedPayload::new(vec![1.0f64, 2.0, 3.0]));
        assert_eq!(p.byte_len(), 24);
        assert!(!p.is_empty());
        match p {
            Payload::Typed(t) => {
                assert_eq!(t.elem_count(), 3);
                assert_eq!(t.into_values::<f64>(), vec![1.0, 2.0, 3.0]);
            }
            Payload::Bytes(_) => unreachable!(),
        }
    }

    #[test]
    #[should_panic(expected = "different element type")]
    fn typed_payload_rejects_wrong_type() {
        let t = TypedPayload::new(vec![1.0f64]);
        let _ = t.into_values::<u64>();
    }

    #[test]
    fn empty_round_trip() {
        let xs: Vec<f64> = vec![];
        let enc = encode_slice(&xs);
        assert!(enc.is_empty());
        assert_eq!(decode_vec::<f64>(&enc), xs);
    }
}
