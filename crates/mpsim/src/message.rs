//! Typed message payloads.
//!
//! Ranks exchange byte buffers; the [`Element`] trait describes fixed-width, `Copy` values
//! that can be written to and read from such buffers in little-endian order.  This is the
//! minimal machinery the CHAOS executor needs: data arrays in the paper hold REAL*8 /
//! INTEGER values (and, in the applications, small fixed-size records such as particle
//! velocities), all of which encode to a fixed number of bytes.
//!
//! The codec is hand-rolled instead of pulling in `serde`: the element types are tiny and
//! fixed-width, and keeping the encoding transparent makes the byte-count accounting used
//! by the cost model exact.

/// A fixed-width value that can travel in a message payload.
pub trait Element: Copy + Send + 'static {
    /// Encoded size in bytes.  Must be the same for every value of the type.
    const SIZE: usize;

    /// Append the little-endian encoding of `self` to `buf`.
    fn write_le(&self, buf: &mut Vec<u8>);

    /// Decode a value from exactly `Self::SIZE` bytes.
    ///
    /// # Panics
    /// Panics if `bytes.len() < Self::SIZE`.
    fn read_le(bytes: &[u8]) -> Self;
}

macro_rules! impl_element_primitive {
    ($($t:ty),* $(,)?) => {
        $(
            impl Element for $t {
                const SIZE: usize = std::mem::size_of::<$t>();

                #[inline]
                fn write_le(&self, buf: &mut Vec<u8>) {
                    buf.extend_from_slice(&self.to_le_bytes());
                }

                #[inline]
                fn read_le(bytes: &[u8]) -> Self {
                    let mut raw = [0u8; std::mem::size_of::<$t>()];
                    raw.copy_from_slice(&bytes[..std::mem::size_of::<$t>()]);
                    <$t>::from_le_bytes(raw)
                }
            }
        )*
    };
}

impl_element_primitive!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

impl Element for usize {
    const SIZE: usize = 8;

    #[inline]
    fn write_le(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(*self as u64).to_le_bytes());
    }

    #[inline]
    fn read_le(bytes: &[u8]) -> Self {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&bytes[..8]);
        u64::from_le_bytes(raw) as usize
    }
}

impl<T: Element, const N: usize> Element for [T; N] {
    const SIZE: usize = T::SIZE * N;

    #[inline]
    fn write_le(&self, buf: &mut Vec<u8>) {
        for v in self {
            v.write_le(buf);
        }
    }

    #[inline]
    fn read_le(bytes: &[u8]) -> Self {
        std::array::from_fn(|i| T::read_le(&bytes[i * T::SIZE..]))
    }
}

impl<A: Element, B: Element> Element for (A, B) {
    const SIZE: usize = A::SIZE + B::SIZE;

    #[inline]
    fn write_le(&self, buf: &mut Vec<u8>) {
        self.0.write_le(buf);
        self.1.write_le(buf);
    }

    #[inline]
    fn read_le(bytes: &[u8]) -> Self {
        (A::read_le(bytes), B::read_le(&bytes[A::SIZE..]))
    }
}

impl<A: Element, B: Element, C: Element> Element for (A, B, C) {
    const SIZE: usize = A::SIZE + B::SIZE + C::SIZE;

    #[inline]
    fn write_le(&self, buf: &mut Vec<u8>) {
        self.0.write_le(buf);
        self.1.write_le(buf);
        self.2.write_le(buf);
    }

    #[inline]
    fn read_le(bytes: &[u8]) -> Self {
        (
            A::read_le(bytes),
            B::read_le(&bytes[A::SIZE..]),
            C::read_le(&bytes[A::SIZE + B::SIZE..]),
        )
    }
}

/// Implement [`Element`] for a plain struct whose fields are all `Element`s.
///
/// ```
/// use mpsim::impl_element_struct;
///
/// #[derive(Clone, Copy, Debug, PartialEq)]
/// struct Particle { x: f64, v: f64, cell: u32 }
/// impl_element_struct!(Particle { x: f64, v: f64, cell: u32 });
///
/// let p = Particle { x: 1.0, v: -2.0, cell: 7 };
/// let bytes = mpsim::message::encode_slice(&[p]);
/// assert_eq!(mpsim::message::decode_vec::<Particle>(&bytes), vec![p]);
/// ```
#[macro_export]
macro_rules! impl_element_struct {
    ($name:ident { $($field:ident : $fty:ty),+ $(,)? }) => {
        impl $crate::message::Element for $name {
            const SIZE: usize = 0 $(+ <$fty as $crate::message::Element>::SIZE)+;

            #[inline]
            fn write_le(&self, buf: &mut Vec<u8>) {
                $( $crate::message::Element::write_le(&self.$field, buf); )+
            }

            #[inline]
            fn read_le(bytes: &[u8]) -> Self {
                let mut offset = 0usize;
                $(
                    let $field = <$fty as $crate::message::Element>::read_le(&bytes[offset..]);
                    offset += <$fty as $crate::message::Element>::SIZE;
                )+
                let _ = offset;
                Self { $($field),+ }
            }
        }
    };
}

/// Encode a slice of elements into a contiguous byte buffer.
pub fn encode_slice<T: Element>(values: &[T]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(values.len() * T::SIZE);
    for v in values {
        v.write_le(&mut buf);
    }
    buf
}

/// Decode a byte buffer produced by [`encode_slice`] back into a vector of elements.
///
/// # Panics
/// Panics if `bytes.len()` is not a multiple of `T::SIZE`.
pub fn decode_vec<T: Element>(bytes: &[u8]) -> Vec<T> {
    assert!(
        bytes.len().is_multiple_of(T::SIZE),
        "payload length {} is not a multiple of element size {}",
        bytes.len(),
        T::SIZE
    );
    bytes.chunks_exact(T::SIZE).map(T::read_le).collect()
}

/// A message in flight between two ranks.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sending rank.
    pub from: usize,
    /// Application-level tag used for selective receive.
    pub tag: u64,
    /// Encoded payload bytes.
    pub payload: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trip() {
        let xs: Vec<f64> = vec![0.0, -1.5, 3.25, f64::MAX, f64::MIN_POSITIVE];
        assert_eq!(decode_vec::<f64>(&encode_slice(&xs)), xs);
        let ys: Vec<i32> = vec![0, -1, i32::MAX, i32::MIN, 42];
        assert_eq!(decode_vec::<i32>(&encode_slice(&ys)), ys);
        let zs: Vec<usize> = vec![0, 1, usize::MAX >> 1, 1234567];
        assert_eq!(decode_vec::<usize>(&encode_slice(&zs)), zs);
    }

    #[test]
    fn array_and_tuple_round_trip() {
        let xs: Vec<[f64; 3]> = vec![[1.0, 2.0, 3.0], [-0.5, 0.0, 9.75]];
        assert_eq!(decode_vec::<[f64; 3]>(&encode_slice(&xs)), xs);
        let ps: Vec<(u32, f64)> = vec![(7, 1.25), (0, -3.5)];
        assert_eq!(decode_vec::<(u32, f64)>(&encode_slice(&ps)), ps);
        let ts: Vec<(u32, f64, i64)> = vec![(7, 1.25, -9), (0, -3.5, 11)];
        assert_eq!(decode_vec::<(u32, f64, i64)>(&encode_slice(&ts)), ts);
    }

    #[test]
    fn struct_macro_round_trip() {
        #[derive(Clone, Copy, Debug, PartialEq)]
        struct P {
            pos: [f64; 2],
            vel: [f64; 2],
            id: u64,
        }
        impl_element_struct!(P {
            pos: [f64; 2],
            vel: [f64; 2],
            id: u64
        });

        let ps = vec![
            P {
                pos: [0.0, 1.0],
                vel: [2.0, -2.0],
                id: 3,
            },
            P {
                pos: [9.5, -8.25],
                vel: [0.0, 0.125],
                id: u64::MAX,
            },
        ];
        assert_eq!(P::SIZE, 40);
        assert_eq!(decode_vec::<P>(&encode_slice(&ps)), ps);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn decode_rejects_ragged_payload() {
        let bytes = vec![0u8; 7];
        let _ = decode_vec::<f64>(&bytes);
    }

    #[test]
    fn empty_round_trip() {
        let xs: Vec<f64> = vec![];
        let enc = encode_slice(&xs);
        assert!(enc.is_empty());
        assert_eq!(decode_vec::<f64>(&enc), xs);
    }
}
